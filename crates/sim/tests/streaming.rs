//! Integration tests for the streaming runtime: event-heap residency,
//! bit-identical determinism, thread-count invariance of the replication
//! runner, and shard-count invariance of the sharded engine.

use sprout_queueing::dist::ServiceDistribution;
use sprout_sim::{CacheScheme, SimConfig, SimFile, Simulation};

fn nodes(n: usize, rate: f64) -> Vec<ServiceDistribution> {
    vec![ServiceDistribution::exponential(rate); n]
}

fn files(count: usize, rate: f64, k: usize, m: usize) -> Vec<SimFile> {
    (0..count)
        .map(|i| {
            let placement: Vec<usize> = (0..m).map(|j| (i + j) % m).collect();
            SimFile::new(rate, k, placement)
        })
        .collect()
}

/// The acceptance bar of the streaming refactor: a horizon producing more
/// than a million arrivals runs without materializing a trace — the event
/// heap never holds more than one arrival per file plus one completion per
/// node, i.e. O(files), not O(requests).
#[test]
fn million_request_horizon_keeps_event_heap_at_o_files() {
    let num_files = 8;
    let num_nodes = 4;
    // 8 files x 15 req/s x 9000 s ≈ 1.08 M arrivals; k = 1 keeps the
    // per-node load at 30 chunk/s against a service rate of 45/s (ρ ≈ 0.67).
    let sim = Simulation::new(
        nodes(num_nodes, 45.0),
        files(num_files, 15.0, 1, num_nodes),
        CacheScheme::NoCache,
        SimConfig::new(9_000.0, 2024),
    );
    let report = sim.run();
    assert!(
        report.completed_requests >= 1_000_000,
        "horizon should produce >= 1M requests, got {}",
        report.completed_requests
    );
    assert!(
        report.peak_event_queue <= num_files + num_nodes,
        "event heap must stay O(files + nodes): peak {} vs {} files + {} nodes",
        report.peak_event_queue,
        num_files,
        num_nodes
    );
    assert_eq!(report.failed_requests, 0);
}

/// Same seed ⇒ bit-identical report, run after run.
#[test]
fn same_seed_gives_bit_identical_reports() {
    let build = || {
        Simulation::new(
            nodes(6, 0.5),
            files(5, 0.06, 2, 6),
            CacheScheme::ceph_lru(8),
            SimConfig::new(30_000.0, 424_242),
        )
    };
    let a = build().run();
    let b = build().run();
    assert_eq!(a, b, "identical seeds must give bit-identical reports");
    // A different seed must not (statistically impossible at this horizon).
    let c = Simulation::new(
        nodes(6, 0.5),
        files(5, 0.06, 2, 6),
        CacheScheme::ceph_lru(8),
        SimConfig::new(30_000.0, 424_243),
    )
    .run();
    assert_ne!(a.completed_requests, c.completed_requests);
}

/// The sharded engine at streaming scale: many files split across disjoint
/// placement groups run as parallel epoch-synchronized event loops. The
/// reported heap/in-flight peaks are per *logical shard* — bounded by
/// O(files_in_shard + nodes_in_shard), far below the global file count — and
/// the whole report, counters included, is bit-identical to the unsharded
/// run.
#[test]
fn many_file_sharded_run_bounds_per_shard_heap_and_matches_unsharded() {
    let groups = 8;
    let nodes_per_group = 2;
    let files_per_group = 8;
    let build = |shards: usize| {
        // 64 files at 2 req/s, k = 1 on 2 nodes per group: 8 chunk/s per
        // node against a service rate of 10/s (ρ = 0.8), ~256k requests.
        let mut grouped = Vec::new();
        for g in 0..groups {
            for _ in 0..files_per_group {
                let placement: Vec<usize> = (0..nodes_per_group)
                    .map(|j| g * nodes_per_group + j)
                    .collect();
                grouped.push(SimFile::new(2.0, 1, placement));
            }
        }
        Simulation::new(
            nodes(groups * nodes_per_group, 10.0),
            grouped,
            CacheScheme::NoCache,
            SimConfig::new(2_000.0, 7).with_shards(shards),
        )
    };

    let unsharded = build(1).run();
    assert!(
        unsharded.completed_requests > 100_000,
        "the horizon should produce a six-figure request count, got {}",
        unsharded.completed_requests
    );
    assert_eq!(unsharded.logical_shards, groups);
    assert!(
        unsharded.peak_event_queue <= files_per_group + nodes_per_group,
        "per-shard heap peak {} must be O(files_in_shard + nodes_in_shard), \
         not O(total files)",
        unsharded.peak_event_queue
    );

    for shards in [2, 8] {
        let sharded = build(shards).run();
        assert_eq!(
            sharded.completed_requests, unsharded.completed_requests,
            "summed counters must match the unsharded run at {shards} shards"
        );
        assert_eq!(
            sharded.node_chunks_served, unsharded.node_chunks_served,
            "per-node chunk counts must match at {shards} shards"
        );
        assert_eq!(
            sharded, unsharded,
            "the full report must be bit-identical at {shards} shards"
        );
    }
}

/// The replication runner's summary must not depend on how many worker
/// threads executed it — replication r always gets the same derived seed and
/// aggregation happens in replication order.
#[test]
fn replication_summary_is_identical_across_thread_counts() {
    let sim = Simulation::new(
        nodes(4, 0.6),
        files(4, 0.05, 2, 4),
        CacheScheme::NoCache,
        SimConfig::new(8_000.0, 99),
    );
    let serial = sim.run_replications(6, 1);
    let parallel = sim.run_replications(6, 4);
    let oversubscribed = sim.run_replications(6, 16);
    assert_eq!(serial, parallel, "1 vs 4 threads");
    assert_eq!(serial, oversubscribed, "1 vs 16 threads");
    assert_eq!(serial.mean_latency.replications, 6);
    assert!(serial.mean_latency.mean > 0.0);
    assert!(serial.mean_latency.ci95 >= 0.0);
    // Replications are genuinely different sample paths.
    let first = &serial.reports[0];
    assert!(serial.reports[1..].iter().any(|r| r != first));
}
