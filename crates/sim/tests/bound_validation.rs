//! Cross-crate validation: the analytical latency bound of Lemma 1 (as used
//! by the optimizer) must upper-bound the latency measured by the
//! discrete-event simulator, and optimizer-driven functional caching must
//! beat the no-cache configuration in simulation.

use sprout_optimizer::{FileModel, Optimizer, OptimizerConfig, StorageModel};
use sprout_queueing::dist::ServiceDistribution;
use sprout_sim::{CacheScheme, SimConfig, SimFile, Simulation};

fn service_rates() -> Vec<f64> {
    vec![0.5, 0.5, 0.4, 0.4, 0.3, 0.3]
}

fn build_model(num_files: usize, rate: f64) -> (StorageModel, Vec<SimFile>) {
    let nodes: Vec<_> = service_rates()
        .iter()
        .map(|&mu| ServiceDistribution::exponential(mu).moments())
        .collect();
    let mut files = Vec::new();
    let mut sim_files = Vec::new();
    for i in 0..num_files {
        let placement: Vec<usize> = (0..4).map(|j| (i + j) % 6).collect();
        files.push(FileModel::new(rate, 3, placement.clone()));
        sim_files.push(SimFile::new(rate, 3, placement));
    }
    (StorageModel::new(nodes, files).unwrap(), sim_files)
}

fn dists() -> Vec<ServiceDistribution> {
    service_rates()
        .iter()
        .map(|&mu| ServiceDistribution::exponential(mu))
        .collect()
}

#[test]
fn analytic_bound_dominates_simulated_mean_latency() {
    let (model, sim_files) = build_model(6, 0.05);
    let plan = Optimizer::new(OptimizerConfig::default())
        .run(&model, 6)
        .unwrap();

    let sim = Simulation::new(
        dists(),
        sim_files,
        CacheScheme::Functional {
            cached_chunks: plan.cached_chunks.clone(),
            scheduling: plan.scheduling.clone(),
            rule: sprout_sim::policy::SchedulingRule::Probabilistic,
        },
        SimConfig::new(200_000.0, 11),
    );
    let report = sim.run();
    assert!(report.completed_requests > 1000);
    assert!(
        plan.objective >= report.overall.mean * 0.95,
        "bound {} should not be materially below the simulated mean {}",
        plan.objective,
        report.overall.mean
    );
}

#[test]
fn optimized_functional_caching_beats_no_cache_in_simulation() {
    let (model, sim_files) = build_model(8, 0.06);
    let plan = Optimizer::new(OptimizerConfig::default())
        .run(&model, 8)
        .unwrap();
    assert!(plan.cache_chunks_used() > 0);

    let cached = Simulation::new(
        dists(),
        sim_files.clone(),
        CacheScheme::Functional {
            cached_chunks: plan.cached_chunks.clone(),
            scheduling: plan.scheduling.clone(),
            rule: sprout_sim::policy::SchedulingRule::Probabilistic,
        },
        SimConfig::new(100_000.0, 21),
    )
    .run();
    let uncached = Simulation::new(
        dists(),
        sim_files,
        CacheScheme::NoCache,
        SimConfig::new(100_000.0, 21),
    )
    .run();
    assert!(
        cached.overall.mean < uncached.overall.mean,
        "functional caching ({}) should beat no caching ({})",
        cached.overall.mean,
        uncached.overall.mean
    );
}

#[test]
fn probabilistic_scheduling_beats_uniform_scheduling_on_heterogeneous_nodes() {
    let (model, sim_files) = build_model(6, 0.06);
    let plan = Optimizer::new(OptimizerConfig::default())
        .run(&model, 3)
        .unwrap();

    let probabilistic = Simulation::new(
        dists(),
        sim_files.clone(),
        CacheScheme::Functional {
            cached_chunks: plan.cached_chunks.clone(),
            scheduling: plan.scheduling.clone(),
            rule: sprout_sim::policy::SchedulingRule::Probabilistic,
        },
        SimConfig::new(150_000.0, 31),
    )
    .run();
    let uniform = Simulation::new(
        dists(),
        sim_files,
        CacheScheme::Functional {
            cached_chunks: plan.cached_chunks.clone(),
            scheduling: plan.scheduling.clone(),
            rule: sprout_sim::policy::SchedulingRule::Uniform,
        },
        SimConfig::new(150_000.0, 31),
    )
    .run();
    assert!(
        probabilistic.overall.mean <= uniform.overall.mean * 1.05,
        "optimized scheduling ({}) should not lose to uniform ({})",
        probabilistic.overall.mean,
        uniform.overall.mean
    );
}
