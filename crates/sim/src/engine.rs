//! The discrete-event simulation engine.

use std::collections::hash_map::Entry;
use std::collections::{HashMap, VecDeque};

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use sprout_queueing::dist::ServiceDistribution;
use sprout_workload::arrivals::PoissonArrivals;

use crate::config::SimConfig;
use crate::event::EventQueue;
use crate::metrics::{LatencySummary, SlotCounts};
use crate::policy::{CacheScheme, SchedulingRule};
use crate::scheduler::{systematic_sample_into, uniform_sample_into};

/// A file as seen by the simulator: its arrival rate, code dimension `k` and
/// the storage nodes hosting its chunks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimFile {
    /// Request arrival rate (requests per second).
    pub arrival_rate: f64,
    /// Number of chunks needed to reconstruct the file.
    pub k: usize,
    /// Hosting storage nodes (chunk row `i` lives on `placement[i]`).
    pub placement: Vec<usize>,
}

impl SimFile {
    /// Creates a file description.
    pub fn new(arrival_rate: f64, k: usize, placement: Vec<usize>) -> Self {
        SimFile {
            arrival_rate,
            k,
            placement,
        }
    }
}

/// Everything measured during a run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Latency summary over all completed, post-warm-up requests.
    pub overall: LatencySummary,
    /// Per-file latency summaries.
    pub per_file: Vec<LatencySummary>,
    /// Per-node busy fraction over the horizon.
    pub node_utilization: Vec<f64>,
    /// Chunk-source counts per time slot (Fig. 7).
    pub slots: SlotCounts,
    /// Requests served entirely from the cache.
    pub full_cache_hits: u64,
    /// Total completed requests (including warm-up).
    pub completed_requests: u64,
}

#[derive(Debug, Clone, PartialEq)]
enum Event {
    /// A file request arrives (index into the pre-generated trace).
    Arrival(usize),
    /// A storage node finishes the chunk it was serving.
    NodeComplete(usize),
}

#[derive(Debug, Clone)]
struct RequestState {
    file: usize,
    start: f64,
    outstanding: usize,
    last_completion: f64,
}

#[derive(Debug, Default, Clone)]
struct NodeState {
    queue: VecDeque<usize>, // request ids waiting for this node
    serving: Option<usize>,
    busy_time: f64,
}

/// Reusable buffers for the per-arrival planning step.
///
/// `plan_request` runs once per simulated request — millions of times at the
/// paper's horizons — so its working sets (sampling marginals, the sampled
/// index set, and the chosen node list) live here instead of being allocated
/// per call.
#[derive(Debug, Default)]
struct PlanScratch {
    marginals: Vec<f64>,
    picks: Vec<usize>,
    /// Output: the storage nodes chosen to serve the request.
    nodes: Vec<usize>,
}

/// A configured simulation, ready to run.
#[derive(Debug, Clone)]
pub struct Simulation {
    nodes: Vec<ServiceDistribution>,
    files: Vec<SimFile>,
    scheme: CacheScheme,
    config: SimConfig,
}

impl Simulation {
    /// Creates a simulation.
    ///
    /// # Panics
    ///
    /// Panics if a file references a node out of range, has `k = 0`, or is
    /// hosted on fewer than `k` nodes.
    pub fn new(
        nodes: Vec<ServiceDistribution>,
        files: Vec<SimFile>,
        scheme: CacheScheme,
        config: SimConfig,
    ) -> Self {
        for (i, f) in files.iter().enumerate() {
            assert!(f.k > 0, "file {i} has k = 0");
            assert!(
                f.placement.len() >= f.k,
                "file {i} is hosted on fewer than k nodes"
            );
            assert!(
                f.placement.iter().all(|&n| n < nodes.len()),
                "file {i} references a node out of range"
            );
        }
        Simulation {
            nodes,
            files,
            scheme,
            config,
        }
    }

    /// Runs the simulation and returns the measured report.
    pub fn run(&self) -> SimReport {
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ 0x5EED);
        let mut arrivals_rng = PoissonArrivals::new(self.config.seed);
        let rates: Vec<f64> = self.files.iter().map(|f| f.arrival_rate).collect();
        let trace = arrivals_rng.generate(&rates, self.config.horizon);

        let mut events: EventQueue<Event> = EventQueue::new();
        for (idx, req) in trace.iter().enumerate() {
            events.push(req.time, Event::Arrival(idx));
        }

        let mut nodes: Vec<NodeState> = vec![NodeState::default(); self.nodes.len()];
        let mut requests: HashMap<usize, RequestState> = HashMap::new();
        let mut latencies: Vec<Vec<f64>> = vec![Vec::new(); self.files.len()];
        let mut slots = SlotCounts::new(self.config.horizon, self.config.slot_length);
        let mut full_cache_hits = 0u64;
        let mut completed = 0u64;

        // LRU cache state (object id -> last access tick), capacity in chunks.
        let mut lru_last: HashMap<usize, u64> = HashMap::new();
        let mut lru_used_chunks: usize = 0;
        let mut lru_tick: u64 = 0;
        let mut scratch = PlanScratch::default();

        while let Some((now, event)) = events.pop() {
            match event {
                Event::Arrival(idx) => {
                    let file = trace[idx].file;
                    let cache_chunks = self.plan_request(
                        file,
                        &mut rng,
                        &mut lru_last,
                        &mut lru_used_chunks,
                        &mut lru_tick,
                        &mut scratch,
                    );
                    slots.record(now, cache_chunks as u64, scratch.nodes.len() as u64);

                    let cache_latency = if cache_chunks > 0 {
                        self.config.cache_chunk_latency
                    } else {
                        0.0
                    };

                    if scratch.nodes.is_empty() {
                        // Served entirely from the cache.
                        full_cache_hits += 1;
                        completed += 1;
                        if now >= self.config.warmup {
                            latencies[file].push(cache_latency);
                        }
                        continue;
                    }

                    requests.insert(
                        idx,
                        RequestState {
                            file,
                            start: now,
                            outstanding: scratch.nodes.len(),
                            last_completion: now + cache_latency,
                        },
                    );
                    for &node in &scratch.nodes {
                        self.enqueue_chunk(node, idx, now, &mut nodes, &mut events, &mut rng);
                    }
                }
                Event::NodeComplete(node) => {
                    let finished = nodes[node]
                        .serving
                        .take()
                        .expect("completion without a job");
                    if let Some(req) = requests.get_mut(&finished) {
                        req.outstanding -= 1;
                        req.last_completion = req.last_completion.max(now);
                        if req.outstanding == 0 {
                            let req = requests.remove(&finished).expect("request state present");
                            completed += 1;
                            if req.start >= self.config.warmup {
                                latencies[req.file].push(req.last_completion - req.start);
                            }
                        }
                    }
                    // Start the next queued chunk, if any.
                    if let Some(next) = nodes[node].queue.pop_front() {
                        self.start_service(node, next, now, &mut nodes, &mut events, &mut rng);
                    }
                }
            }
        }

        let all: Vec<f64> = latencies.iter().flatten().copied().collect();
        SimReport {
            overall: LatencySummary::from_samples(&all),
            per_file: latencies
                .iter()
                .map(|l| LatencySummary::from_samples(l))
                .collect(),
            node_utilization: nodes
                .iter()
                .map(|n| (n.busy_time / self.config.horizon).min(1.0))
                .collect(),
            slots,
            full_cache_hits,
            completed_requests: completed,
        }
    }

    /// Decides, for one request of `file`, how many chunks the cache serves
    /// (the return value) and which storage nodes serve the rest (written to
    /// `scratch.nodes`). All working sets live in `scratch`, so the arrival
    /// hot loop allocates nothing.
    fn plan_request(
        &self,
        file: usize,
        rng: &mut StdRng,
        lru_last: &mut HashMap<usize, u64>,
        lru_used_chunks: &mut usize,
        lru_tick: &mut u64,
        scratch: &mut PlanScratch,
    ) -> usize {
        let spec = &self.files[file];
        scratch.nodes.clear();
        match &self.scheme {
            CacheScheme::NoCache => {
                uniform_sample_into(spec.placement.len(), spec.k, rng, &mut scratch.picks);
                scratch
                    .nodes
                    .extend(scratch.picks.iter().map(|&i| spec.placement[i]));
                0
            }
            CacheScheme::Functional {
                cached_chunks,
                scheduling,
                rule,
            } => {
                let d = cached_chunks.get(file).copied().unwrap_or(0).min(spec.k);
                let needed = spec.k - d;
                if needed == 0 {
                    return d;
                }
                match rule {
                    SchedulingRule::Probabilistic => {
                        scratch.marginals.clear();
                        scratch.marginals.extend(
                            spec.placement
                                .iter()
                                .map(|&j| scheduling[file].get(j).copied().unwrap_or(0.0)),
                        );
                        systematic_sample_into(&scratch.marginals, rng, &mut scratch.picks);
                    }
                    SchedulingRule::Uniform => {
                        uniform_sample_into(spec.placement.len(), needed, rng, &mut scratch.picks);
                    }
                }
                scratch
                    .nodes
                    .extend(scratch.picks.iter().map(|&i| spec.placement[i]));
                d
            }
            CacheScheme::Exact {
                cached_chunks,
                scheduling,
            } => {
                let d = cached_chunks.get(file).copied().unwrap_or(0).min(spec.k);
                let needed = spec.k - d;
                if needed == 0 {
                    return d;
                }
                // The first d placement entries host the exactly-cached rows
                // and cannot serve the request.
                let eligible = &spec.placement[d..];
                scratch.marginals.clear();
                scratch.marginals.extend(
                    eligible
                        .iter()
                        .map(|&j| scheduling[file].get(j).copied().unwrap_or(0.0)),
                );
                let total: f64 = scratch.marginals.iter().sum();
                if (total - needed as f64).abs() < 1e-6 {
                    systematic_sample_into(&scratch.marginals, rng, &mut scratch.picks);
                } else {
                    uniform_sample_into(
                        eligible.len(),
                        needed.min(eligible.len()),
                        rng,
                        &mut scratch.picks,
                    );
                }
                scratch
                    .nodes
                    .extend(scratch.picks.iter().map(|&i| eligible[i]));
                d
            }
            CacheScheme::LruReplicated {
                capacity_chunks,
                replication,
            } => {
                *lru_tick += 1;
                if let Entry::Occupied(mut hit) = lru_last.entry(file) {
                    hit.insert(*lru_tick);
                    return spec.k;
                }
                // Miss: read k chunks from storage, then promote the object.
                uniform_sample_into(spec.placement.len(), spec.k, rng, &mut scratch.picks);
                scratch
                    .nodes
                    .extend(scratch.picks.iter().map(|&i| spec.placement[i]));
                let footprint = spec.k * *replication as usize;
                if footprint <= *capacity_chunks {
                    while *lru_used_chunks + footprint > *capacity_chunks {
                        // Evict the least recently used object.
                        let victim = lru_last.iter().min_by_key(|(_, &t)| t).map(|(&f, _)| f);
                        match victim {
                            Some(v) => {
                                lru_last.remove(&v);
                                *lru_used_chunks -= self.files[v].k * *replication as usize;
                            }
                            None => break,
                        }
                    }
                    if *lru_used_chunks + footprint <= *capacity_chunks {
                        lru_last.insert(file, *lru_tick);
                        *lru_used_chunks += footprint;
                    }
                }
                0
            }
        }
    }

    fn enqueue_chunk(
        &self,
        node: usize,
        request: usize,
        now: f64,
        nodes: &mut [NodeState],
        events: &mut EventQueue<Event>,
        rng: &mut StdRng,
    ) {
        if nodes[node].serving.is_none() {
            self.start_service(node, request, now, nodes, events, rng);
        } else {
            nodes[node].queue.push_back(request);
        }
    }

    fn start_service(
        &self,
        node: usize,
        request: usize,
        now: f64,
        nodes: &mut [NodeState],
        events: &mut EventQueue<Event>,
        rng: &mut StdRng,
    ) {
        let service = self.nodes[node].sample(rng);
        nodes[node].serving = Some(request);
        nodes[node].busy_time += service;
        events.push(now + service, Event::NodeComplete(node));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nodes(n: usize, rate: f64) -> Vec<ServiceDistribution> {
        vec![ServiceDistribution::exponential(rate); n]
    }

    fn simple_files(count: usize, rate: f64, k: usize, m: usize) -> Vec<SimFile> {
        (0..count)
            .map(|i| {
                let placement: Vec<usize> = (0..m).map(|j| (i + j) % m).collect();
                SimFile::new(rate, k, placement)
            })
            .collect()
    }

    #[test]
    fn no_cache_latency_close_to_mm1_fork_join_bounds() {
        // Single file, k = 1, one node: the system is exactly M/M/1 and the
        // mean sojourn time is 1/(mu - lambda).
        let sim = Simulation::new(
            vec![ServiceDistribution::exponential(1.0)],
            vec![SimFile::new(0.5, 1, vec![0])],
            CacheScheme::NoCache,
            SimConfig::new(200_000.0, 42),
        );
        let report = sim.run();
        let expect = 1.0 / (1.0 - 0.5);
        assert!(
            (report.overall.mean - expect).abs() / expect < 0.05,
            "M/M/1 sojourn {} vs {expect}",
            report.overall.mean
        );
        assert!(report.node_utilization[0] > 0.45 && report.node_utilization[0] < 0.55);
    }

    #[test]
    fn fork_join_latency_exceeds_single_chunk_latency() {
        let nodes = nodes(6, 0.5);
        let one = Simulation::new(
            nodes.clone(),
            vec![SimFile::new(0.05, 1, vec![0, 1, 2, 3, 4, 5])],
            CacheScheme::NoCache,
            SimConfig::new(100_000.0, 1),
        )
        .run();
        let four = Simulation::new(
            nodes,
            vec![SimFile::new(0.05, 4, vec![0, 1, 2, 3, 4, 5])],
            CacheScheme::NoCache,
            SimConfig::new(100_000.0, 1),
        )
        .run();
        assert!(four.overall.mean > one.overall.mean);
    }

    #[test]
    fn functional_caching_reduces_latency_monotonically_in_d() {
        let m = 6;
        let files = simple_files(4, 0.05, 4, m);
        let service = nodes(m, 0.5);
        let mut prev = f64::INFINITY;
        for d in 0..=4usize {
            let cached = vec![d; 4];
            // spread the remaining k - d reads uniformly
            let scheduling: Vec<Vec<f64>> = files
                .iter()
                .map(|f| {
                    let mut row = vec![0.0; m];
                    for &j in &f.placement {
                        row[j] = (f.k - d) as f64 / f.placement.len() as f64;
                    }
                    row
                })
                .collect();
            let report = Simulation::new(
                service.clone(),
                files.clone(),
                CacheScheme::Functional {
                    cached_chunks: cached,
                    scheduling,
                    rule: SchedulingRule::Probabilistic,
                },
                SimConfig::new(50_000.0, 3),
            )
            .run();
            assert!(
                report.overall.mean <= prev + 0.2,
                "latency should fall as d grows: d={d}, {} vs {prev}",
                report.overall.mean
            );
            prev = report.overall.mean;
            if d == 4 {
                assert_eq!(
                    report.overall.mean, 0.0,
                    "fully cached files have zero latency"
                );
                assert!(report.full_cache_hits > 0);
            }
        }
    }

    #[test]
    fn slot_counts_track_cache_share() {
        let m = 6;
        let files = simple_files(3, 0.05, 4, m);
        let scheduling: Vec<Vec<f64>> = files
            .iter()
            .map(|f| {
                let mut row = vec![0.0; m];
                for &j in &f.placement {
                    row[j] = 2.0 / f.placement.len() as f64;
                }
                row
            })
            .collect();
        let report = Simulation::new(
            nodes(m, 0.5),
            files,
            CacheScheme::Functional {
                cached_chunks: vec![2, 2, 2],
                scheduling,
                rule: SchedulingRule::Probabilistic,
            },
            SimConfig::new(20_000.0, 9),
        )
        .run();
        // Half of each request's 4 chunks come from the cache.
        assert!((report.slots.cache_fraction() - 0.5).abs() < 0.02);
    }

    #[test]
    fn lru_cache_hits_after_first_access_when_capacity_allows() {
        let m = 4;
        let files = simple_files(2, 0.05, 2, m);
        let report = Simulation::new(
            nodes(m, 0.5),
            files,
            CacheScheme::ceph_lru(100),
            SimConfig::new(20_000.0, 5),
        )
        .run();
        // After both files are promoted every request is a full cache hit.
        assert!(report.full_cache_hits > report.completed_requests / 2);
        assert!(report.overall.mean < 1.0);
    }

    #[test]
    fn lru_cache_with_tiny_capacity_behaves_like_no_cache() {
        let m = 4;
        let files = simple_files(4, 0.05, 2, m);
        let tiny = Simulation::new(
            nodes(m, 0.5),
            files.clone(),
            CacheScheme::ceph_lru(1),
            SimConfig::new(20_000.0, 6),
        )
        .run();
        let none = Simulation::new(
            nodes(m, 0.5),
            files,
            CacheScheme::NoCache,
            SimConfig::new(20_000.0, 6),
        )
        .run();
        assert!((tiny.overall.mean - none.overall.mean).abs() / none.overall.mean < 0.25);
        assert_eq!(tiny.full_cache_hits, 0);
    }

    #[test]
    fn deterministic_across_runs_with_same_seed() {
        let files = simple_files(3, 0.05, 2, 4);
        let a = Simulation::new(
            nodes(4, 0.5),
            files.clone(),
            CacheScheme::NoCache,
            SimConfig::new(5_000.0, 77),
        )
        .run();
        let b = Simulation::new(
            nodes(4, 0.5),
            files,
            CacheScheme::NoCache,
            SimConfig::new(5_000.0, 77),
        )
        .run();
        assert_eq!(a.overall, b.overall);
        assert_eq!(a.completed_requests, b.completed_requests);
    }

    #[test]
    #[should_panic(expected = "fewer than k")]
    fn invalid_file_panics() {
        let _ = Simulation::new(
            nodes(2, 0.5),
            vec![SimFile::new(0.1, 3, vec![0, 1])],
            CacheScheme::NoCache,
            SimConfig::new(10.0, 0),
        );
    }
}
