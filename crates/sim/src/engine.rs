//! The discrete-event simulation engine.
//!
//! The engine is a *streaming*, *backend-generic*, *scenario-driven*,
//! *shardable* runtime:
//!
//! * **Streaming arrivals** — each file keeps exactly one pending arrival
//!   event (drawn lazily from an arrival stream), so event-heap residency
//!   is O(files + nodes) regardless of how many requests the horizon
//!   produces. [`SimReport::peak_event_queue`] records the high-water mark
//!   as a regression guard.
//! * **Pluggable backends** — everything that decides *which* chunks serve a
//!   request lives in the runtime; what a chunk read *costs* (and, for
//!   byte-accurate backends, the actual bytes) is delegated to a
//!   [`ChunkBackend`]. Planning and service randomness are decoupled, so two
//!   backends on the same seed make identical chunk-source decisions.
//! * **Dynamic scenarios** — timed [`Scenario`] events (node failures and
//!   recoveries, arrival-rate shifts, online cache-plan swaps) apply at
//!   deterministic epoch edges between event-loop drains.
//! * **Sharded execution** — [`Simulation::run`] partitions the cluster into
//!   logical shards (placement-graph components) and can run them as
//!   parallel epoch-synchronized event loops ([`crate::shard`]); the
//!   [`SimConfig::shards`] knob is purely an execution parameter and reports
//!   are bit-identical at any value. Every random stream is keyed per entity
//!   ([`stream_seed`]/[`plan_seed`] per file, [`service_seed`] per node) to
//!   make that possible.
//!
//! The event-loop mechanics themselves (queues, slab, planning, epoch
//! synchronization, report merging) live in [`crate::shard`]; this module
//! holds the model description ([`Simulation`], [`SimFile`]), the report
//! ([`SimReport`]) and the seed derivations.

use serde::{Deserialize, Serialize};
use sprout_queueing::dist::ServiceDistribution;
use sprout_workload::arrivals::RateProfile;
use sprout_workload::timebins::RateSchedule;

use crate::backend::ChunkBackend;
use crate::config::SimConfig;
use crate::metrics::{LatencySummary, SlotCounts};
use crate::policy::CacheScheme;
use crate::scenario::Scenario;
use crate::shard::{ShardPlan, ShardedEngine};

/// A file as seen by the simulator: its arrival rate, code dimension `k` and
/// the storage nodes hosting its chunks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimFile {
    /// Request arrival rate (requests per second).
    pub arrival_rate: f64,
    /// Number of chunks needed to reconstruct the file.
    pub k: usize,
    /// Hosting storage nodes (chunk row `i` lives on `placement[i]`).
    pub placement: Vec<usize>,
}

impl SimFile {
    /// Creates a file description.
    pub fn new(arrival_rate: f64, k: usize, placement: Vec<usize>) -> Self {
        SimFile {
            arrival_rate,
            k,
            placement,
        }
    }
}

/// Everything measured during a run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Latency summary over all completed, post-warm-up requests.
    pub overall: LatencySummary,
    /// Per-file latency summaries.
    pub per_file: Vec<LatencySummary>,
    /// Per-node busy fraction over the horizon.
    pub node_utilization: Vec<f64>,
    /// Chunk-source counts per time slot (Fig. 7).
    pub slots: SlotCounts,
    /// Requests served entirely from the cache.
    pub full_cache_hits: u64,
    /// Total completed requests (including warm-up).
    pub completed_requests: u64,
    /// Chunks scheduled onto each storage node (the engine's chunk-source
    /// decisions; backend-independent for a fixed seed).
    pub node_chunks_served: Vec<u64>,
    /// Requests that could not be served because node failures left fewer
    /// than the needed number of online hosts.
    pub failed_requests: u64,
    /// Completed requests whose backend reconstruction failed (always zero
    /// for the analytic backend).
    pub reconstruction_failures: u64,
    /// High-water mark of pending events, maximized over logical shards —
    /// O(files_in_shard + nodes_in_shard) under streaming arrivals, *not*
    /// O(total requests). Independent of the shard count.
    pub peak_event_queue: usize,
    /// High-water mark of concurrently in-flight requests, maximized over
    /// logical shards. Guards the pooled-allocation property: the request
    /// slab grows to this count and steady-state arrivals then reuse slots
    /// instead of allocating.
    pub peak_in_flight: usize,
    /// Number of logical shards the run decomposed into: the connected
    /// components of the file–node placement graph (1 when a globally
    /// coupled cache scheme forces a single component). Independent of
    /// [`SimConfig::shards`], which only packs these onto event loops.
    pub logical_shards: usize,
    /// Objects promoted into the LRU cache tier (zero for other schemes).
    pub cache_promotions: u64,
    /// Objects evicted from the LRU cache tier by admission pressure.
    pub cache_evictions: u64,
}

/// SplitMix64 finalizer: decorrelates seeds derived from a base seed.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The seed of replication `r` derived from a base seed — what
/// [`Simulation::run_replications`] gives each replication.
pub fn replication_seed(base: u64, replication: usize) -> u64 {
    splitmix64(base ^ (replication as u64).wrapping_mul(0xD6E8_FEB8_6659_FD93))
}

/// Mixes a base seed with an arbitrary salt (the sweep runner's
/// coordinate hash) into a decorrelated derived seed.
pub(crate) fn mix_seed(base: u64, salt: u64) -> u64 {
    splitmix64(base ^ salt.wrapping_mul(0x2545_F491_4F6C_DD1D))
}

/// Seed of a file's arrival stream. Per-file streams are what keep arrivals
/// independent of the event interleaving — a precondition for sharded
/// execution being bit-identical to the single loop.
pub(crate) fn stream_seed(base: u64, file: usize) -> u64 {
    splitmix64(base ^ (file as u64).wrapping_mul(0xA24B_AED4_963E_E407))
}

/// Seed of a file's request-planning RNG (chunk-source sampling and offline
/// repair draws). One stream per file, so a file's planning decisions depend
/// only on its own request sequence — never on other files' interleaved
/// arrivals.
pub(crate) fn plan_seed(base: u64, file: usize) -> u64 {
    splitmix64(base ^ 0x5EED ^ (file as u64).wrapping_mul(0x9E6C_63D0_876A_3F6B))
}

/// Seed of a node's service-time RNG ([`crate::AnalyticBackend`] keeps one
/// stream per node). A node's service draws depend only on its own read
/// sequence, which is what lets disjoint placement components run on
/// separate event loops without perturbing each other's samples.
pub(crate) fn service_seed(base: u64, node: usize) -> u64 {
    splitmix64(base ^ 0x5E2F_1CE5 ^ (node as u64).wrapping_mul(0xFF51_AFD7_ED55_8CCD))
}

/// A configured simulation, ready to run.
#[derive(Debug, Clone)]
pub struct Simulation {
    pub(crate) nodes: Vec<ServiceDistribution>,
    pub(crate) files: Vec<SimFile>,
    pub(crate) scheme: CacheScheme,
    pub(crate) config: SimConfig,
    pub(crate) scenario: Scenario,
    pub(crate) profiles: Option<Vec<RateProfile>>,
}

impl Simulation {
    /// Creates a simulation.
    ///
    /// # Panics
    ///
    /// Panics if a file references a node out of range, has `k = 0`, or is
    /// hosted on fewer than `k` nodes.
    pub fn new(
        nodes: Vec<ServiceDistribution>,
        files: Vec<SimFile>,
        scheme: CacheScheme,
        config: SimConfig,
    ) -> Self {
        for (i, f) in files.iter().enumerate() {
            assert!(f.k > 0, "file {i} has k = 0");
            assert!(
                f.placement.len() >= f.k,
                "file {i} is hosted on fewer than k nodes"
            );
            assert!(
                f.placement.iter().all(|&n| n < nodes.len()),
                "file {i} references a node out of range"
            );
        }
        scheme.validate(files.len());
        Simulation {
            nodes,
            files,
            scheme,
            config,
            scenario: Scenario::default(),
            profiles: None,
        }
    }

    /// Attaches a dynamic scenario (node failures, rate shifts, plan swaps).
    ///
    /// # Panics
    ///
    /// Panics if the scenario references nodes or files out of range.
    pub fn with_scenario(mut self, scenario: Scenario) -> Self {
        scenario.validate(self.nodes.len(), self.files.len());
        self.scenario = scenario;
        self
    }

    /// Drives arrivals from a piecewise-constant rate schedule instead of the
    /// per-file constant rates (the rate is zero past the schedule's end).
    ///
    /// A [`crate::scenario::ScenarioAction::SetRates`]/
    /// [`crate::scenario::ScenarioAction::SetFileRate`] event supersedes the
    /// remaining schedule for the affected files: from the event on, the
    /// scenario's rate holds as a constant.
    ///
    /// # Panics
    ///
    /// Panics if the schedule's file count differs from the simulation's.
    pub fn with_rate_schedule(mut self, schedule: &RateSchedule) -> Self {
        assert_eq!(
            schedule.num_files(),
            self.files.len(),
            "rate schedule covers {} files but the simulation has {}",
            schedule.num_files(),
            self.files.len()
        );
        self.profiles = Some(schedule.file_profiles());
        self
    }

    /// Replaces the run seed (used by the replication runner).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// The simulation configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Runs the simulation on the analytic backend and returns the report.
    ///
    /// Execution is sharded per [`SimConfig::shards`] (see
    /// [`ShardedEngine`]); the report is bit-identical at any shard count.
    pub fn run(&self) -> SimReport {
        ShardedEngine::new(self).run()
    }

    /// Runs the simulation on an explicit backend (e.g. the byte-accurate
    /// `StoreBackend` of the facade crate). Always a single event loop —
    /// external backends own global state the sharded engine cannot split —
    /// so the report is trivially independent of [`SimConfig::shards`].
    ///
    /// # Panics
    ///
    /// Panics if the backend's node count differs from the simulation's.
    pub fn run_on<B: ChunkBackend>(&self, backend: &mut B) -> SimReport {
        assert_eq!(
            backend.num_nodes(),
            self.nodes.len(),
            "backend has {} nodes but the simulation has {}",
            backend.num_nodes(),
            self.nodes.len()
        );
        let plan = ShardPlan::new(self);
        crate::shard::run_single(self, &plan, backend)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::SchedulingRule;

    fn nodes(n: usize, rate: f64) -> Vec<ServiceDistribution> {
        vec![ServiceDistribution::exponential(rate); n]
    }

    fn simple_files(count: usize, rate: f64, k: usize, m: usize) -> Vec<SimFile> {
        (0..count)
            .map(|i| {
                let placement: Vec<usize> = (0..m).map(|j| (i + j) % m).collect();
                SimFile::new(rate, k, placement)
            })
            .collect()
    }

    #[test]
    fn no_cache_latency_close_to_mm1_fork_join_bounds() {
        // Single file, k = 1, one node: the system is exactly M/M/1 and the
        // mean sojourn time is 1/(mu - lambda).
        let sim = Simulation::new(
            vec![ServiceDistribution::exponential(1.0)],
            vec![SimFile::new(0.5, 1, vec![0])],
            CacheScheme::NoCache,
            SimConfig::new(200_000.0, 42),
        );
        let report = sim.run();
        let expect = 1.0 / (1.0 - 0.5);
        assert!(
            (report.overall.mean - expect).abs() / expect < 0.05,
            "M/M/1 sojourn {} vs {expect}",
            report.overall.mean
        );
        assert!(report.node_utilization[0] > 0.45 && report.node_utilization[0] < 0.55);
        assert_eq!(report.failed_requests, 0);
        assert_eq!(report.reconstruction_failures, 0);
        assert_eq!(
            report.node_chunks_served[0], report.completed_requests,
            "every request reads one chunk from the only node"
        );
        assert_eq!(report.logical_shards, 1);
    }

    #[test]
    fn fork_join_latency_exceeds_single_chunk_latency() {
        let nodes = nodes(6, 0.5);
        let one = Simulation::new(
            nodes.clone(),
            vec![SimFile::new(0.05, 1, vec![0, 1, 2, 3, 4, 5])],
            CacheScheme::NoCache,
            SimConfig::new(100_000.0, 1),
        )
        .run();
        let four = Simulation::new(
            nodes,
            vec![SimFile::new(0.05, 4, vec![0, 1, 2, 3, 4, 5])],
            CacheScheme::NoCache,
            SimConfig::new(100_000.0, 1),
        )
        .run();
        assert!(four.overall.mean > one.overall.mean);
    }

    #[test]
    fn functional_caching_reduces_latency_monotonically_in_d() {
        let m = 6;
        let files = simple_files(4, 0.05, 4, m);
        let service = nodes(m, 0.5);
        let mut prev = f64::INFINITY;
        for d in 0..=4usize {
            let cached = vec![d; 4];
            // spread the remaining k - d reads uniformly
            let scheduling: Vec<Vec<f64>> = files
                .iter()
                .map(|f| {
                    let mut row = vec![0.0; m];
                    for &j in &f.placement {
                        row[j] = (f.k - d) as f64 / f.placement.len() as f64;
                    }
                    row
                })
                .collect();
            let report = Simulation::new(
                service.clone(),
                files.clone(),
                CacheScheme::Functional {
                    cached_chunks: cached,
                    scheduling,
                    rule: SchedulingRule::Probabilistic,
                },
                SimConfig::new(50_000.0, 3),
            )
            .run();
            assert!(
                report.overall.mean <= prev + 0.2,
                "latency should fall as d grows: d={d}, {} vs {prev}",
                report.overall.mean
            );
            prev = report.overall.mean;
            if d == 4 {
                assert_eq!(
                    report.overall.mean, 0.0,
                    "fully cached files have zero latency"
                );
                assert!(report.full_cache_hits > 0);
            }
        }
    }

    #[test]
    fn slot_counts_track_cache_share() {
        let m = 6;
        let files = simple_files(3, 0.05, 4, m);
        let scheduling: Vec<Vec<f64>> = files
            .iter()
            .map(|f| {
                let mut row = vec![0.0; m];
                for &j in &f.placement {
                    row[j] = 2.0 / f.placement.len() as f64;
                }
                row
            })
            .collect();
        let report = Simulation::new(
            nodes(m, 0.5),
            files,
            CacheScheme::Functional {
                cached_chunks: vec![2, 2, 2],
                scheduling,
                rule: SchedulingRule::Probabilistic,
            },
            SimConfig::new(20_000.0, 9),
        )
        .run();
        // Half of each request's 4 chunks come from the cache.
        assert!((report.slots.cache_fraction() - 0.5).abs() < 0.02);
    }

    #[test]
    fn lru_cache_hits_after_first_access_when_capacity_allows() {
        let m = 4;
        let files = simple_files(2, 0.05, 2, m);
        let report = Simulation::new(
            nodes(m, 0.5),
            files,
            CacheScheme::ceph_lru(100),
            SimConfig::new(20_000.0, 5),
        )
        .run();
        // After both files are promoted every request is a full cache hit.
        assert!(report.full_cache_hits > report.completed_requests / 2);
        assert!(report.overall.mean < 1.0);
        // The global LRU tier couples all files into one logical shard.
        assert_eq!(report.logical_shards, 1);
    }

    #[test]
    fn lru_tier_reports_promotions_and_evictions() {
        let m = 4;
        let files = simple_files(4, 0.05, 2, m);
        // Capacity 4 chunks at replication 2 and k = 2 means a footprint of 4
        // per object: exactly one resident object, so promotions churn.
        let report = Simulation::new(
            nodes(m, 0.5),
            files.clone(),
            CacheScheme::ceph_lru(4),
            SimConfig::new(20_000.0, 5),
        )
        .run();
        assert!(report.cache_promotions > 1, "objects must be promoted");
        assert!(report.cache_evictions > 0, "the tier must churn");
        assert!(
            report.cache_promotions - report.cache_evictions <= 1,
            "at most one object fits the tier"
        );
        let none = Simulation::new(
            nodes(m, 0.5),
            files,
            CacheScheme::NoCache,
            SimConfig::new(1_000.0, 5),
        )
        .run();
        assert_eq!(none.cache_promotions, 0);
        assert_eq!(none.cache_evictions, 0);
    }

    #[test]
    fn lru_cache_with_tiny_capacity_behaves_like_no_cache() {
        let m = 4;
        let files = simple_files(4, 0.05, 2, m);
        let tiny = Simulation::new(
            nodes(m, 0.5),
            files.clone(),
            CacheScheme::ceph_lru(1),
            SimConfig::new(20_000.0, 6),
        )
        .run();
        let none = Simulation::new(
            nodes(m, 0.5),
            files,
            CacheScheme::NoCache,
            SimConfig::new(20_000.0, 6),
        )
        .run();
        assert!((tiny.overall.mean - none.overall.mean).abs() / none.overall.mean < 0.25);
        assert_eq!(tiny.full_cache_hits, 0);
    }

    #[test]
    fn deterministic_across_runs_with_same_seed() {
        let files = simple_files(3, 0.05, 2, 4);
        let a = Simulation::new(
            nodes(4, 0.5),
            files.clone(),
            CacheScheme::NoCache,
            SimConfig::new(5_000.0, 77),
        )
        .run();
        let b = Simulation::new(
            nodes(4, 0.5),
            files,
            CacheScheme::NoCache,
            SimConfig::new(5_000.0, 77),
        )
        .run();
        assert_eq!(a, b, "same seed must give a bit-identical report");
    }

    #[test]
    fn in_flight_requests_stay_bounded_over_long_horizons() {
        // ~20k requests over the horizon, but only a handful in flight at
        // once: the slab must stay at the concurrency high-water mark, not
        // grow with the request count.
        let files = simple_files(8, 0.5, 2, 6);
        let report = Simulation::new(
            nodes(6, 2.0),
            files,
            CacheScheme::NoCache,
            SimConfig::new(10_000.0, 4),
        )
        .run();
        assert!(report.completed_requests > 10_000);
        assert!(
            report.peak_in_flight < 200,
            "peak in-flight {} should be far below the {} completed requests",
            report.peak_in_flight,
            report.completed_requests
        );
    }

    #[test]
    fn event_heap_residency_is_bounded_by_files_and_nodes() {
        let files = simple_files(8, 0.5, 2, 6);
        let report = Simulation::new(
            nodes(6, 2.0),
            files,
            CacheScheme::NoCache,
            SimConfig::new(10_000.0, 4),
        )
        .run();
        assert!(report.completed_requests > 10_000);
        // 8 pending arrivals + at most 6 in-service completions.
        assert!(
            report.peak_event_queue <= 8 + 6,
            "peak {} exceeds files + nodes",
            report.peak_event_queue
        );
    }

    #[test]
    fn node_failure_degrades_and_recovery_restores_service() {
        let files = simple_files(3, 0.1, 2, 4);
        let horizon = 40_000.0;
        let baseline = Simulation::new(
            nodes(4, 0.6),
            files.clone(),
            CacheScheme::NoCache,
            SimConfig::new(horizon, 12),
        );
        let with_failure = baseline.clone().with_scenario(
            Scenario::default()
                .node_down(10_000.0, 0)
                .node_up(30_000.0, 0),
        );
        let a = baseline.run();
        let b = with_failure.run();
        assert_eq!(b.failed_requests, 0, "3 online hosts still cover k = 2");
        assert!(
            b.node_chunks_served[0] < a.node_chunks_served[0],
            "the failed node must serve fewer chunks ({} vs {})",
            b.node_chunks_served[0],
            a.node_chunks_served[0]
        );
        assert!(
            b.overall.mean > a.overall.mean,
            "losing a node concentrates load and raises latency ({} vs {})",
            b.overall.mean,
            a.overall.mean
        );
    }

    #[test]
    fn failure_beyond_redundancy_fails_requests() {
        let sim = Simulation::new(
            nodes(2, 0.8),
            vec![SimFile::new(0.2, 2, vec![0, 1])],
            CacheScheme::NoCache,
            SimConfig::new(2_000.0, 3),
        )
        .with_scenario(Scenario::default().node_down(500.0, 0));
        let report = sim.run();
        assert!(report.failed_requests > 0);
        assert!(report.completed_requests > 0);
    }

    #[test]
    fn rate_shift_scenario_changes_throughput() {
        let sim = Simulation::new(
            nodes(4, 2.0),
            simple_files(2, 0.5, 1, 4),
            CacheScheme::NoCache,
            SimConfig::new(10_000.0, 8),
        )
        .with_scenario(Scenario::default().set_rates(5_000.0, vec![2.0, 2.0]));
        let report = sim.run();
        let base = Simulation::new(
            nodes(4, 2.0),
            simple_files(2, 0.5, 1, 4),
            CacheScheme::NoCache,
            SimConfig::new(10_000.0, 8),
        )
        .run();
        // Doubling both rates halfway through adds ~1.5e4 requests over the
        // baseline's ~1e4; allow generous slack.
        assert!(
            report.completed_requests as f64 > base.completed_requests as f64 * 1.8,
            "{} vs {}",
            report.completed_requests,
            base.completed_requests
        );
    }

    #[test]
    fn rate_schedule_stops_arrivals_past_the_last_bin() {
        use sprout_workload::timebins::{RateSchedule, TimeBin};
        let schedule = RateSchedule::new(vec![
            TimeBin::new(1_000.0, vec![1.0, 0.0]),
            TimeBin::new(1_000.0, vec![0.0, 1.0]),
        ]);
        let sim = Simulation::new(
            nodes(4, 5.0),
            simple_files(2, 123.0, 1, 4), // constant rates are overridden
            CacheScheme::NoCache,
            SimConfig::new(10_000.0, 5).with_warmup(0.0),
        )
        .with_rate_schedule(&schedule);
        let report = sim.run();
        let total = report.completed_requests as f64;
        assert!(
            (total - 2_000.0).abs() < 300.0,
            "~1 req/s over 2000 s expected, got {total}"
        );
    }

    #[test]
    fn swap_scheme_scenario_takes_effect() {
        let m = 4;
        let files = simple_files(2, 0.2, 2, m);
        let scheduling: Vec<Vec<f64>> = files
            .iter()
            .map(|f| {
                let mut row = vec![0.0; m];
                for &j in &f.placement {
                    row[j] = 0.0;
                }
                row
            })
            .collect();
        let full_cache = CacheScheme::Functional {
            cached_chunks: vec![2, 2],
            scheduling,
            rule: SchedulingRule::Probabilistic,
        };
        let sim = Simulation::new(
            nodes(m, 0.8),
            files,
            CacheScheme::NoCache,
            SimConfig::new(10_000.0, 21).with_warmup(0.0),
        )
        .with_scenario(Scenario::default().swap_scheme(5_000.0, full_cache));
        let report = sim.run();
        assert!(
            report.full_cache_hits > 0,
            "after the swap every request is a full cache hit"
        );
        let frac = report.full_cache_hits as f64 / report.completed_requests as f64;
        assert!(
            (frac - 0.5).abs() < 0.1,
            "~half the horizon runs fully cached, got {frac}"
        );
    }

    #[test]
    #[should_panic(expected = "fewer than k")]
    fn invalid_file_panics() {
        let _ = Simulation::new(
            nodes(2, 0.5),
            vec![SimFile::new(0.1, 3, vec![0, 1])],
            CacheScheme::NoCache,
            SimConfig::new(10.0, 0),
        );
    }

    #[test]
    #[should_panic(expected = "references node")]
    fn scenario_with_bad_node_panics() {
        let _ = Simulation::new(
            nodes(2, 0.5),
            vec![SimFile::new(0.1, 1, vec![0, 1])],
            CacheScheme::NoCache,
            SimConfig::new(10.0, 0),
        )
        .with_scenario(Scenario::default().node_down(1.0, 9));
    }
}
