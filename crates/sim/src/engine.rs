//! The discrete-event simulation engine.
//!
//! The engine is a *streaming*, *backend-generic*, *scenario-driven* runtime:
//!
//! * **Streaming arrivals** — each file keeps exactly one pending arrival
//!   event (drawn lazily from an [`ArrivalStream`]), so event-heap residency
//!   is O(files + nodes + scenario events) regardless of how many requests
//!   the horizon produces. [`SimReport::peak_event_queue`] records the
//!   high-water mark as a regression guard.
//! * **Pluggable backends** — everything that decides *which* chunks serve a
//!   request lives here; what a chunk read *costs* (and, for byte-accurate
//!   backends, the actual bytes) is delegated to a [`ChunkBackend`]. Planning
//!   and service randomness are decoupled, so two backends on the same seed
//!   make identical chunk-source decisions.
//! * **Dynamic scenarios** — timed [`Scenario`] events (node failures and
//!   recoveries, arrival-rate shifts, online cache-plan swaps) interleave
//!   deterministically with the workload.

use std::collections::VecDeque;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use sprout_cluster::{CacheTier, LruTier};
use sprout_queueing::dist::ServiceDistribution;
use sprout_workload::arrivals::{ArrivalStream, RateProfile};
use sprout_workload::timebins::RateSchedule;

use crate::backend::{AnalyticBackend, ChunkBackend, FinishedRequest};
use crate::config::SimConfig;
use crate::event::EventQueue;
use crate::metrics::{LatencySummary, SlotCounts};
use crate::policy::{CacheScheme, SchedulingRule};
use crate::scenario::{Scenario, ScenarioAction};
use crate::scheduler::{systematic_sample_into, uniform_sample_into};

/// A file as seen by the simulator: its arrival rate, code dimension `k` and
/// the storage nodes hosting its chunks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimFile {
    /// Request arrival rate (requests per second).
    pub arrival_rate: f64,
    /// Number of chunks needed to reconstruct the file.
    pub k: usize,
    /// Hosting storage nodes (chunk row `i` lives on `placement[i]`).
    pub placement: Vec<usize>,
}

impl SimFile {
    /// Creates a file description.
    pub fn new(arrival_rate: f64, k: usize, placement: Vec<usize>) -> Self {
        SimFile {
            arrival_rate,
            k,
            placement,
        }
    }
}

/// Everything measured during a run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Latency summary over all completed, post-warm-up requests.
    pub overall: LatencySummary,
    /// Per-file latency summaries.
    pub per_file: Vec<LatencySummary>,
    /// Per-node busy fraction over the horizon.
    pub node_utilization: Vec<f64>,
    /// Chunk-source counts per time slot (Fig. 7).
    pub slots: SlotCounts,
    /// Requests served entirely from the cache.
    pub full_cache_hits: u64,
    /// Total completed requests (including warm-up).
    pub completed_requests: u64,
    /// Chunks scheduled onto each storage node (the engine's chunk-source
    /// decisions; backend-independent for a fixed seed).
    pub node_chunks_served: Vec<u64>,
    /// Requests that could not be served because node failures left fewer
    /// than the needed number of online hosts.
    pub failed_requests: u64,
    /// Completed requests whose backend reconstruction failed (always zero
    /// for the analytic backend).
    pub reconstruction_failures: u64,
    /// High-water mark of the event queue — O(files + nodes + scenario
    /// events) under streaming arrivals, *not* O(total requests).
    pub peak_event_queue: usize,
    /// High-water mark of concurrently in-flight requests — the number of
    /// slots the request slab grew to. Guards the pooled-allocation property:
    /// steady-state arrivals reuse these slots instead of allocating.
    pub peak_in_flight: usize,
    /// Objects promoted into the LRU cache tier (zero for other schemes).
    pub cache_promotions: u64,
    /// Objects evicted from the LRU cache tier by admission pressure.
    pub cache_evictions: u64,
}

#[derive(Debug, Clone, PartialEq)]
enum Event {
    /// The next request of a file arrives. The epoch stamps the arrival
    /// stream generation: rate-shift scenario events bump it, so stale
    /// pre-shift arrivals are discarded when popped.
    Arrival { file: usize, epoch: u32 },
    /// A storage node finishes the chunk it was serving.
    NodeComplete(usize),
    /// A scenario action fires (index into the scenario's event list).
    Scenario(usize),
}

#[derive(Debug, Clone, Default)]
struct RequestState {
    file: usize,
    start: f64,
    outstanding: usize,
    last_completion: f64,
    cache_chunks: usize,
    nodes: Vec<usize>,
}

/// Free-list slab of in-flight request state.
///
/// The arrival hot path used to allocate twice per request — a fresh
/// `nodes` Vec clone plus `HashMap` bucket churn. The slab recycles whole
/// `RequestState` slots (including the `nodes` capacity), so steady-state
/// arrivals allocate nothing: slot count grows to the peak number of
/// concurrently in-flight requests and then stays flat.
///
/// Slot reuse without generation counters is sound because an id can only
/// reach a node queue from a live request, and the slot is released exactly
/// when its last queued chunk completes — no stale id can survive a release.
#[derive(Debug, Default)]
struct RequestSlab {
    slots: Vec<RequestState>,
    free: Vec<usize>,
}

impl RequestSlab {
    /// Claims a slot, reusing a freed one (and its `nodes` capacity) when
    /// available, and returns its id.
    fn insert(
        &mut self,
        file: usize,
        start: f64,
        last_completion: f64,
        cache_chunks: usize,
        nodes: &[usize],
    ) -> u64 {
        let slot = match self.free.pop() {
            Some(slot) => slot,
            None => {
                self.slots.push(RequestState::default());
                self.slots.len() - 1
            }
        };
        let state = &mut self.slots[slot];
        state.file = file;
        state.start = start;
        state.outstanding = nodes.len();
        state.last_completion = last_completion;
        state.cache_chunks = cache_chunks;
        state.nodes.clear();
        state.nodes.extend_from_slice(nodes);
        slot as u64
    }

    fn get_mut(&mut self, id: u64) -> &mut RequestState {
        &mut self.slots[id as usize]
    }

    /// Returns a slot (and its `nodes` buffer) to the free list for reuse by
    /// a later `insert`.
    fn release(&mut self, id: u64) {
        self.free.push(id as usize);
    }
}

#[derive(Debug, Default, Clone)]
struct NodeState {
    queue: VecDeque<(u64, usize)>, // (request id, file) waiting for this node
    serving: Option<u64>,
    busy_time: f64,
}

/// Per-node FIFO service queues in virtual time. Service durations come from
/// the backend; this struct only sequences them.
#[derive(Debug, Default)]
struct ServiceQueues {
    nodes: Vec<NodeState>,
}

impl ServiceQueues {
    fn new(count: usize) -> Self {
        ServiceQueues {
            nodes: vec![NodeState::default(); count],
        }
    }

    fn enqueue<B: ChunkBackend>(
        &mut self,
        node: usize,
        request: u64,
        file: usize,
        now: f64,
        events: &mut EventQueue<Event>,
        backend: &mut B,
    ) {
        if self.nodes[node].serving.is_none() {
            self.start(node, request, file, now, events, backend);
        } else {
            self.nodes[node].queue.push_back((request, file));
        }
    }

    fn start<B: ChunkBackend>(
        &mut self,
        node: usize,
        request: u64,
        file: usize,
        now: f64,
        events: &mut EventQueue<Event>,
        backend: &mut B,
    ) {
        let service = backend.sample_service(node, file);
        let state = &mut self.nodes[node];
        state.serving = Some(request);
        state.busy_time += service;
        events.push(now + service, Event::NodeComplete(node));
    }
}

/// The engine's LRU cache tier for [`CacheScheme::LruReplicated`]: the same
/// [`LruTier`] implementation the cluster's byte-accurate `Cache` runs, here
/// with *chunks* as the weight unit (the abstract model has no byte sizes).
/// The tier's decisions scale linearly with the unit, so a byte-accurate
/// mirror fed the same access sequence stays in lockstep — see
/// `sprout_cluster::tier`.
fn lru_tier_for(scheme: &CacheScheme) -> Option<LruTier> {
    match scheme {
        CacheScheme::LruReplicated {
            capacity_chunks,
            replication,
        } => Some(LruTier::new(*capacity_chunks as u64, (*replication).max(1))),
        _ => None,
    }
}

/// Reusable buffers for the per-arrival planning step.
///
/// `plan_request` runs once per simulated request — millions of times at the
/// paper's horizons — so its working sets (sampling marginals, the sampled
/// index set, the chosen node list and the offline-repair pool) live here
/// instead of being allocated per call.
#[derive(Debug, Default)]
struct PlanScratch {
    marginals: Vec<f64>,
    picks: Vec<usize>,
    /// Online candidates used to repair a plan that picked failed nodes.
    avail: Vec<usize>,
    /// Output: the storage nodes chosen to serve the request.
    nodes: Vec<usize>,
}

/// SplitMix64 finalizer: decorrelates seeds derived from a base seed.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The seed of replication `r` derived from a base seed — what
/// [`Simulation::run_replications`] gives each replication.
pub fn replication_seed(base: u64, replication: usize) -> u64 {
    splitmix64(base ^ (replication as u64).wrapping_mul(0xD6E8_FEB8_6659_FD93))
}

/// Mixes a base seed with an arbitrary salt (the sweep runner's
/// coordinate hash) into a decorrelated derived seed.
pub(crate) fn mix_seed(base: u64, salt: u64) -> u64 {
    splitmix64(base ^ salt.wrapping_mul(0x2545_F491_4F6C_DD1D))
}

fn stream_seed(base: u64, file: usize) -> u64 {
    splitmix64(base ^ (file as u64).wrapping_mul(0xA24B_AED4_963E_E407))
}

/// A configured simulation, ready to run.
#[derive(Debug, Clone)]
pub struct Simulation {
    nodes: Vec<ServiceDistribution>,
    files: Vec<SimFile>,
    scheme: CacheScheme,
    config: SimConfig,
    scenario: Scenario,
    profiles: Option<Vec<RateProfile>>,
}

impl Simulation {
    /// Creates a simulation.
    ///
    /// # Panics
    ///
    /// Panics if a file references a node out of range, has `k = 0`, or is
    /// hosted on fewer than `k` nodes.
    pub fn new(
        nodes: Vec<ServiceDistribution>,
        files: Vec<SimFile>,
        scheme: CacheScheme,
        config: SimConfig,
    ) -> Self {
        for (i, f) in files.iter().enumerate() {
            assert!(f.k > 0, "file {i} has k = 0");
            assert!(
                f.placement.len() >= f.k,
                "file {i} is hosted on fewer than k nodes"
            );
            assert!(
                f.placement.iter().all(|&n| n < nodes.len()),
                "file {i} references a node out of range"
            );
        }
        scheme.validate(files.len());
        Simulation {
            nodes,
            files,
            scheme,
            config,
            scenario: Scenario::default(),
            profiles: None,
        }
    }

    /// Attaches a dynamic scenario (node failures, rate shifts, plan swaps).
    ///
    /// # Panics
    ///
    /// Panics if the scenario references nodes or files out of range.
    pub fn with_scenario(mut self, scenario: Scenario) -> Self {
        scenario.validate(self.nodes.len(), self.files.len());
        self.scenario = scenario;
        self
    }

    /// Drives arrivals from a piecewise-constant rate schedule instead of the
    /// per-file constant rates (the rate is zero past the schedule's end).
    ///
    /// A [`ScenarioAction::SetRates`]/[`ScenarioAction::SetFileRate`] event
    /// supersedes the remaining schedule for the affected files: from the
    /// event on, the scenario's rate holds as a constant.
    ///
    /// # Panics
    ///
    /// Panics if the schedule's file count differs from the simulation's.
    pub fn with_rate_schedule(mut self, schedule: &RateSchedule) -> Self {
        assert_eq!(
            schedule.num_files(),
            self.files.len(),
            "rate schedule covers {} files but the simulation has {}",
            schedule.num_files(),
            self.files.len()
        );
        self.profiles = Some(schedule.file_profiles());
        self
    }

    /// Replaces the run seed (used by the replication runner).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// The simulation configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Runs the simulation on the analytic backend and returns the report.
    pub fn run(&self) -> SimReport {
        let mut backend = AnalyticBackend::new(self.nodes.clone(), self.config.seed);
        self.run_on(&mut backend)
    }

    /// Runs the simulation on an explicit backend (e.g. the byte-accurate
    /// `StoreBackend` of the facade crate).
    ///
    /// # Panics
    ///
    /// Panics if the backend's node count differs from the simulation's.
    pub fn run_on<B: ChunkBackend>(&self, backend: &mut B) -> SimReport {
        assert_eq!(
            backend.num_nodes(),
            self.nodes.len(),
            "backend has {} nodes but the simulation has {}",
            backend.num_nodes(),
            self.nodes.len()
        );
        let horizon = self.config.horizon;
        let mut plan_rng = StdRng::seed_from_u64(self.config.seed ^ 0x5EED);
        let mut scheme = self.scheme.clone();

        // One lazily-sampled arrival stream per file; exactly one pending
        // arrival event per file lives in the queue at any time.
        let mut streams: Vec<ArrivalStream> = self
            .files
            .iter()
            .enumerate()
            .map(|(i, f)| {
                let profile = match &self.profiles {
                    Some(p) => p[i].clone(),
                    None => RateProfile::constant(f.arrival_rate),
                };
                ArrivalStream::new(profile, stream_seed(self.config.seed, i))
            })
            .collect();
        let mut epochs = vec![0u32; self.files.len()];

        let mut events: EventQueue<Event> = EventQueue::new();
        for (i, ev) in self.scenario.events().iter().enumerate() {
            if ev.at < horizon {
                events.push(ev.at, Event::Scenario(i));
            }
        }
        for (file, stream) in streams.iter_mut().enumerate() {
            if let Some(t) = stream.next_arrival(0.0, horizon) {
                events.push(t, Event::Arrival { file, epoch: 0 });
            }
        }

        let mut queues = ServiceQueues::new(self.nodes.len());
        let mut requests = RequestSlab::default();
        let mut latencies: Vec<Vec<f64>> = vec![Vec::new(); self.files.len()];
        let mut slots = SlotCounts::new(horizon, self.config.slot_length);
        let mut node_chunks_served = vec![0u64; self.nodes.len()];
        let mut full_cache_hits = 0u64;
        let mut completed = 0u64;
        let mut failed = 0u64;
        let mut reconstruction_failures = 0u64;
        let mut tier = lru_tier_for(&scheme);
        // Promotion/eviction counts accumulated across scheme swaps (a swap
        // restarts the tier cold).
        let mut tier_promotions = 0u64;
        let mut tier_evictions = 0u64;
        let mut scratch = PlanScratch::default();
        let mut peak_events = events.len();

        while let Some((now, event)) = events.pop() {
            match event {
                Event::Arrival { file, epoch } => {
                    if epoch != epochs[file] {
                        continue; // stale arrival from before a rate shift
                    }
                    // Keep the stream primed: schedule this file's next
                    // arrival before processing the current one.
                    if let Some(t) = streams[file].next_arrival(now, horizon) {
                        events.push(t, Event::Arrival { file, epoch });
                    }
                    match self.plan_request(
                        file,
                        &scheme,
                        backend,
                        &mut plan_rng,
                        &mut tier,
                        &mut scratch,
                    ) {
                        None => failed += 1,
                        Some(cache_chunks) => {
                            slots.record(now, cache_chunks as u64, scratch.nodes.len() as u64);
                            for &node in &scratch.nodes {
                                node_chunks_served[node] += 1;
                            }
                            let cache_latency = if cache_chunks > 0 {
                                backend
                                    .sample_cache_read(file, cache_chunks)
                                    .unwrap_or(self.config.cache_chunk_latency)
                            } else {
                                0.0
                            };

                            if scratch.nodes.is_empty() {
                                // Served entirely from the cache.
                                if !backend.finish_request(FinishedRequest {
                                    file,
                                    cache_chunks,
                                    storage_nodes: &[],
                                }) {
                                    reconstruction_failures += 1;
                                }
                                full_cache_hits += 1;
                                completed += 1;
                                if now >= self.config.warmup {
                                    latencies[file].push(cache_latency);
                                }
                                continue;
                            }

                            let id = requests.insert(
                                file,
                                now,
                                now + cache_latency,
                                cache_chunks,
                                &scratch.nodes,
                            );
                            for &node in &scratch.nodes {
                                queues.enqueue(node, id, file, now, &mut events, backend);
                            }
                        }
                    }
                }
                Event::NodeComplete(node) => {
                    let finished = queues.nodes[node]
                        .serving
                        .take()
                        .expect("completion without a job");
                    let req = requests.get_mut(finished);
                    req.outstanding -= 1;
                    req.last_completion = req.last_completion.max(now);
                    if req.outstanding == 0 {
                        if !backend.finish_request(FinishedRequest {
                            file: req.file,
                            cache_chunks: req.cache_chunks,
                            storage_nodes: &req.nodes,
                        }) {
                            reconstruction_failures += 1;
                        }
                        completed += 1;
                        if req.start >= self.config.warmup {
                            latencies[req.file].push(req.last_completion - req.start);
                        }
                        requests.release(finished);
                    }
                    // Start the next queued chunk, if any.
                    if let Some((next, file)) = queues.nodes[node].queue.pop_front() {
                        queues.start(node, next, file, now, &mut events, backend);
                    }
                }
                Event::Scenario(i) => match &self.scenario.events()[i].action {
                    ScenarioAction::NodeDown { node } => backend.set_node_online(*node, false),
                    ScenarioAction::NodeUp { node } => backend.set_node_online(*node, true),
                    ScenarioAction::SetRates { rates } => {
                        for (file, &rate) in rates.iter().enumerate() {
                            Self::retarget_rate(
                                file,
                                rate,
                                now,
                                horizon,
                                &mut streams,
                                &mut epochs,
                                &mut events,
                            );
                        }
                    }
                    ScenarioAction::SetFileRate { file, rate } => {
                        Self::retarget_rate(
                            *file,
                            *rate,
                            now,
                            horizon,
                            &mut streams,
                            &mut epochs,
                            &mut events,
                        );
                    }
                    ScenarioAction::SwapScheme { scheme: next } => {
                        if let Some(old) = tier.take() {
                            let stats = old.stats();
                            tier_promotions += stats.promotions;
                            tier_evictions += stats.evictions;
                        }
                        scheme = next.clone();
                        tier = lru_tier_for(&scheme);
                        backend.apply_scheme(&scheme);
                    }
                },
            }
            peak_events = peak_events.max(events.len());
        }

        if let Some(tier) = &tier {
            let stats = tier.stats();
            tier_promotions += stats.promotions;
            tier_evictions += stats.evictions;
        }

        let all: Vec<f64> = latencies.iter().flatten().copied().collect();
        SimReport {
            overall: LatencySummary::from_samples(&all),
            per_file: latencies
                .iter()
                .map(|l| LatencySummary::from_samples(l))
                .collect(),
            node_utilization: queues
                .nodes
                .iter()
                .map(|n| (n.busy_time / horizon).min(1.0))
                .collect(),
            slots,
            full_cache_hits,
            completed_requests: completed,
            node_chunks_served,
            failed_requests: failed,
            reconstruction_failures,
            peak_event_queue: peak_events,
            peak_in_flight: requests.slots.len(),
            cache_promotions: tier_promotions,
            cache_evictions: tier_evictions,
        }
    }

    /// Re-seats a file's arrival process at a new constant rate from `now`
    /// on. By Poisson memorylessness the pending pre-shift arrival can simply
    /// be discarded (the epoch bump invalidates it) and a fresh interarrival
    /// drawn at the new rate.
    fn retarget_rate(
        file: usize,
        rate: f64,
        now: f64,
        horizon: f64,
        streams: &mut [ArrivalStream],
        epochs: &mut [u32],
        events: &mut EventQueue<Event>,
    ) {
        epochs[file] = epochs[file].wrapping_add(1);
        streams[file].set_rate(rate);
        if let Some(t) = streams[file].next_arrival(now, horizon) {
            events.push(
                t,
                Event::Arrival {
                    file,
                    epoch: epochs[file],
                },
            );
        }
    }

    /// Decides, for one request of `file`, how many chunks the cache serves
    /// and which storage nodes serve the rest (written to `scratch.nodes`).
    /// Returns `None` when node failures leave fewer online hosts than the
    /// request needs. All working sets live in `scratch`, so the arrival hot
    /// loop allocates nothing beyond per-request state.
    ///
    /// For [`CacheScheme::LruReplicated`] the engine's `tier` is the single
    /// source of truth for hit/miss/promotion/eviction decisions; every
    /// admission and eviction is mirrored into the backend
    /// ([`ChunkBackend::tier_promote`] / [`ChunkBackend::tier_evict`]) so
    /// byte-accurate backends keep the same objects resident.
    fn plan_request<B: ChunkBackend>(
        &self,
        file: usize,
        scheme: &CacheScheme,
        backend: &mut B,
        rng: &mut StdRng,
        tier: &mut Option<LruTier>,
        scratch: &mut PlanScratch,
    ) -> Option<usize> {
        let spec = &self.files[file];
        scratch.nodes.clear();
        match scheme {
            CacheScheme::NoCache => {
                uniform_sample_into(spec.placement.len(), spec.k, rng, &mut scratch.picks);
                scratch
                    .nodes
                    .extend(scratch.picks.iter().map(|&i| spec.placement[i]));
                self.repair_offline(&spec.placement, backend, rng, scratch)
                    .then_some(0)
            }
            CacheScheme::Functional {
                cached_chunks,
                scheduling,
                rule,
            } => {
                let d = cached_chunks.get(file).copied().unwrap_or(0).min(spec.k);
                let needed = spec.k - d;
                if needed == 0 {
                    return Some(d);
                }
                match rule {
                    SchedulingRule::Probabilistic => {
                        scratch.marginals.clear();
                        scratch.marginals.extend(
                            spec.placement
                                .iter()
                                .map(|&j| scheduling[file].get(j).copied().unwrap_or(0.0)),
                        );
                        systematic_sample_into(&scratch.marginals, rng, &mut scratch.picks);
                    }
                    SchedulingRule::Uniform => {
                        uniform_sample_into(spec.placement.len(), needed, rng, &mut scratch.picks);
                    }
                }
                scratch
                    .nodes
                    .extend(scratch.picks.iter().map(|&i| spec.placement[i]));
                self.repair_offline(&spec.placement, backend, rng, scratch)
                    .then_some(d)
            }
            CacheScheme::Exact {
                cached_chunks,
                scheduling,
            } => {
                let d = cached_chunks.get(file).copied().unwrap_or(0).min(spec.k);
                let needed = spec.k - d;
                if needed == 0 {
                    return Some(d);
                }
                // The first d placement entries host the exactly-cached rows
                // and cannot serve the request.
                let eligible = &spec.placement[d..];
                scratch.marginals.clear();
                scratch.marginals.extend(
                    eligible
                        .iter()
                        .map(|&j| scheduling[file].get(j).copied().unwrap_or(0.0)),
                );
                let total: f64 = scratch.marginals.iter().sum();
                if (total - needed as f64).abs() < 1e-6 {
                    systematic_sample_into(&scratch.marginals, rng, &mut scratch.picks);
                } else {
                    uniform_sample_into(
                        eligible.len(),
                        needed.min(eligible.len()),
                        rng,
                        &mut scratch.picks,
                    );
                }
                scratch
                    .nodes
                    .extend(scratch.picks.iter().map(|&i| eligible[i]));
                self.repair_offline(eligible, backend, rng, scratch)
                    .then_some(d)
            }
            CacheScheme::LruReplicated { .. } => {
                let tier = tier.as_mut().expect("an LRU scheme always has a tier");
                if tier.touch(file as u64) {
                    return Some(spec.k);
                }
                // Miss: read k chunks from storage, then promote the object.
                uniform_sample_into(spec.placement.len(), spec.k, rng, &mut scratch.picks);
                scratch
                    .nodes
                    .extend(scratch.picks.iter().map(|&i| spec.placement[i]));
                if !self.repair_offline(&spec.placement, backend, rng, scratch) {
                    return None;
                }
                let admission = tier.admit(file as u64, spec.k as u64);
                for &victim in &admission.evicted {
                    backend.tier_evict(victim as usize);
                }
                if admission.admitted {
                    backend.tier_promote(file);
                }
                Some(0)
            }
        }
    }

    /// Replaces planned reads that landed on offline nodes with draws from
    /// the online remainder of `pool`. Returns `false` (degraded beyond
    /// repair) when fewer online candidates exist than chunks are needed.
    /// Draws happen only when a failure is actually present, so runs without
    /// scenarios consume the planning RNG exactly as before.
    fn repair_offline<B: ChunkBackend>(
        &self,
        pool: &[usize],
        backend: &B,
        rng: &mut StdRng,
        scratch: &mut PlanScratch,
    ) -> bool {
        if scratch.nodes.iter().all(|&n| backend.is_online(n)) {
            return true;
        }
        let target = scratch.nodes.len();
        scratch.nodes.retain(|&n| backend.is_online(n));
        scratch.avail.clear();
        scratch.avail.extend(
            pool.iter()
                .copied()
                .filter(|&n| backend.is_online(n) && !scratch.nodes.contains(&n)),
        );
        while scratch.nodes.len() < target {
            if scratch.avail.is_empty() {
                return false;
            }
            let j = rng.gen_range(0..scratch.avail.len());
            scratch.nodes.push(scratch.avail.swap_remove(j));
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nodes(n: usize, rate: f64) -> Vec<ServiceDistribution> {
        vec![ServiceDistribution::exponential(rate); n]
    }

    fn simple_files(count: usize, rate: f64, k: usize, m: usize) -> Vec<SimFile> {
        (0..count)
            .map(|i| {
                let placement: Vec<usize> = (0..m).map(|j| (i + j) % m).collect();
                SimFile::new(rate, k, placement)
            })
            .collect()
    }

    #[test]
    fn no_cache_latency_close_to_mm1_fork_join_bounds() {
        // Single file, k = 1, one node: the system is exactly M/M/1 and the
        // mean sojourn time is 1/(mu - lambda).
        let sim = Simulation::new(
            vec![ServiceDistribution::exponential(1.0)],
            vec![SimFile::new(0.5, 1, vec![0])],
            CacheScheme::NoCache,
            SimConfig::new(200_000.0, 42),
        );
        let report = sim.run();
        let expect = 1.0 / (1.0 - 0.5);
        assert!(
            (report.overall.mean - expect).abs() / expect < 0.05,
            "M/M/1 sojourn {} vs {expect}",
            report.overall.mean
        );
        assert!(report.node_utilization[0] > 0.45 && report.node_utilization[0] < 0.55);
        assert_eq!(report.failed_requests, 0);
        assert_eq!(report.reconstruction_failures, 0);
        assert_eq!(
            report.node_chunks_served[0], report.completed_requests,
            "every request reads one chunk from the only node"
        );
    }

    #[test]
    fn fork_join_latency_exceeds_single_chunk_latency() {
        let nodes = nodes(6, 0.5);
        let one = Simulation::new(
            nodes.clone(),
            vec![SimFile::new(0.05, 1, vec![0, 1, 2, 3, 4, 5])],
            CacheScheme::NoCache,
            SimConfig::new(100_000.0, 1),
        )
        .run();
        let four = Simulation::new(
            nodes,
            vec![SimFile::new(0.05, 4, vec![0, 1, 2, 3, 4, 5])],
            CacheScheme::NoCache,
            SimConfig::new(100_000.0, 1),
        )
        .run();
        assert!(four.overall.mean > one.overall.mean);
    }

    #[test]
    fn functional_caching_reduces_latency_monotonically_in_d() {
        let m = 6;
        let files = simple_files(4, 0.05, 4, m);
        let service = nodes(m, 0.5);
        let mut prev = f64::INFINITY;
        for d in 0..=4usize {
            let cached = vec![d; 4];
            // spread the remaining k - d reads uniformly
            let scheduling: Vec<Vec<f64>> = files
                .iter()
                .map(|f| {
                    let mut row = vec![0.0; m];
                    for &j in &f.placement {
                        row[j] = (f.k - d) as f64 / f.placement.len() as f64;
                    }
                    row
                })
                .collect();
            let report = Simulation::new(
                service.clone(),
                files.clone(),
                CacheScheme::Functional {
                    cached_chunks: cached,
                    scheduling,
                    rule: SchedulingRule::Probabilistic,
                },
                SimConfig::new(50_000.0, 3),
            )
            .run();
            assert!(
                report.overall.mean <= prev + 0.2,
                "latency should fall as d grows: d={d}, {} vs {prev}",
                report.overall.mean
            );
            prev = report.overall.mean;
            if d == 4 {
                assert_eq!(
                    report.overall.mean, 0.0,
                    "fully cached files have zero latency"
                );
                assert!(report.full_cache_hits > 0);
            }
        }
    }

    #[test]
    fn slot_counts_track_cache_share() {
        let m = 6;
        let files = simple_files(3, 0.05, 4, m);
        let scheduling: Vec<Vec<f64>> = files
            .iter()
            .map(|f| {
                let mut row = vec![0.0; m];
                for &j in &f.placement {
                    row[j] = 2.0 / f.placement.len() as f64;
                }
                row
            })
            .collect();
        let report = Simulation::new(
            nodes(m, 0.5),
            files,
            CacheScheme::Functional {
                cached_chunks: vec![2, 2, 2],
                scheduling,
                rule: SchedulingRule::Probabilistic,
            },
            SimConfig::new(20_000.0, 9),
        )
        .run();
        // Half of each request's 4 chunks come from the cache.
        assert!((report.slots.cache_fraction() - 0.5).abs() < 0.02);
    }

    #[test]
    fn lru_cache_hits_after_first_access_when_capacity_allows() {
        let m = 4;
        let files = simple_files(2, 0.05, 2, m);
        let report = Simulation::new(
            nodes(m, 0.5),
            files,
            CacheScheme::ceph_lru(100),
            SimConfig::new(20_000.0, 5),
        )
        .run();
        // After both files are promoted every request is a full cache hit.
        assert!(report.full_cache_hits > report.completed_requests / 2);
        assert!(report.overall.mean < 1.0);
    }

    #[test]
    fn lru_tier_reports_promotions_and_evictions() {
        let m = 4;
        let files = simple_files(4, 0.05, 2, m);
        // Capacity 4 chunks at replication 2 and k = 2 means a footprint of 4
        // per object: exactly one resident object, so promotions churn.
        let report = Simulation::new(
            nodes(m, 0.5),
            files.clone(),
            CacheScheme::ceph_lru(4),
            SimConfig::new(20_000.0, 5),
        )
        .run();
        assert!(report.cache_promotions > 1, "objects must be promoted");
        assert!(report.cache_evictions > 0, "the tier must churn");
        assert!(
            report.cache_promotions - report.cache_evictions <= 1,
            "at most one object fits the tier"
        );
        let none = Simulation::new(
            nodes(m, 0.5),
            files,
            CacheScheme::NoCache,
            SimConfig::new(1_000.0, 5),
        )
        .run();
        assert_eq!(none.cache_promotions, 0);
        assert_eq!(none.cache_evictions, 0);
    }

    #[test]
    fn lru_cache_with_tiny_capacity_behaves_like_no_cache() {
        let m = 4;
        let files = simple_files(4, 0.05, 2, m);
        let tiny = Simulation::new(
            nodes(m, 0.5),
            files.clone(),
            CacheScheme::ceph_lru(1),
            SimConfig::new(20_000.0, 6),
        )
        .run();
        let none = Simulation::new(
            nodes(m, 0.5),
            files,
            CacheScheme::NoCache,
            SimConfig::new(20_000.0, 6),
        )
        .run();
        assert!((tiny.overall.mean - none.overall.mean).abs() / none.overall.mean < 0.25);
        assert_eq!(tiny.full_cache_hits, 0);
    }

    #[test]
    fn deterministic_across_runs_with_same_seed() {
        let files = simple_files(3, 0.05, 2, 4);
        let a = Simulation::new(
            nodes(4, 0.5),
            files.clone(),
            CacheScheme::NoCache,
            SimConfig::new(5_000.0, 77),
        )
        .run();
        let b = Simulation::new(
            nodes(4, 0.5),
            files,
            CacheScheme::NoCache,
            SimConfig::new(5_000.0, 77),
        )
        .run();
        assert_eq!(a, b, "same seed must give a bit-identical report");
    }

    #[test]
    fn request_slab_recycles_slots_and_node_capacity() {
        let mut slab = RequestSlab::default();
        let a = slab.insert(0, 0.0, 0.0, 1, &[1, 2, 3]);
        let b = slab.insert(1, 0.5, 0.5, 0, &[4]);
        assert_eq!(slab.slots.len(), 2);
        slab.release(a);
        // The freed slot (and its nodes buffer) is reused, not reallocated.
        let c = slab.insert(2, 1.0, 1.0, 2, &[5, 6]);
        assert_eq!(c, a);
        assert_eq!(slab.slots.len(), 2);
        assert_eq!(slab.get_mut(c).nodes, vec![5, 6]);
        assert_eq!(slab.get_mut(b).nodes, vec![4]);
    }

    #[test]
    fn in_flight_requests_stay_bounded_over_long_horizons() {
        // ~20k requests over the horizon, but only a handful in flight at
        // once: the slab must stay at the concurrency high-water mark, not
        // grow with the request count.
        let files = simple_files(8, 0.5, 2, 6);
        let report = Simulation::new(
            nodes(6, 2.0),
            files,
            CacheScheme::NoCache,
            SimConfig::new(10_000.0, 4),
        )
        .run();
        assert!(report.completed_requests > 10_000);
        assert!(
            report.peak_in_flight < 200,
            "peak in-flight {} should be far below the {} completed requests",
            report.peak_in_flight,
            report.completed_requests
        );
    }

    #[test]
    fn event_heap_residency_is_bounded_by_files_and_nodes() {
        let files = simple_files(8, 0.5, 2, 6);
        let report = Simulation::new(
            nodes(6, 2.0),
            files,
            CacheScheme::NoCache,
            SimConfig::new(10_000.0, 4),
        )
        .run();
        assert!(report.completed_requests > 10_000);
        // 8 pending arrivals + at most 6 in-service completions.
        assert!(
            report.peak_event_queue <= 8 + 6,
            "peak {} exceeds files + nodes",
            report.peak_event_queue
        );
    }

    #[test]
    fn node_failure_degrades_and_recovery_restores_service() {
        let files = simple_files(3, 0.1, 2, 4);
        let horizon = 40_000.0;
        let baseline = Simulation::new(
            nodes(4, 0.6),
            files.clone(),
            CacheScheme::NoCache,
            SimConfig::new(horizon, 12),
        );
        let with_failure = baseline.clone().with_scenario(
            Scenario::default()
                .node_down(10_000.0, 0)
                .node_up(30_000.0, 0),
        );
        let a = baseline.run();
        let b = with_failure.run();
        assert_eq!(b.failed_requests, 0, "3 online hosts still cover k = 2");
        assert!(
            b.node_chunks_served[0] < a.node_chunks_served[0],
            "the failed node must serve fewer chunks ({} vs {})",
            b.node_chunks_served[0],
            a.node_chunks_served[0]
        );
        assert!(
            b.overall.mean > a.overall.mean,
            "losing a node concentrates load and raises latency ({} vs {})",
            b.overall.mean,
            a.overall.mean
        );
    }

    #[test]
    fn failure_beyond_redundancy_fails_requests() {
        let sim = Simulation::new(
            nodes(2, 0.8),
            vec![SimFile::new(0.2, 2, vec![0, 1])],
            CacheScheme::NoCache,
            SimConfig::new(2_000.0, 3),
        )
        .with_scenario(Scenario::default().node_down(500.0, 0));
        let report = sim.run();
        assert!(report.failed_requests > 0);
        assert!(report.completed_requests > 0);
    }

    #[test]
    fn rate_shift_scenario_changes_throughput() {
        let sim = Simulation::new(
            nodes(4, 2.0),
            simple_files(2, 0.5, 1, 4),
            CacheScheme::NoCache,
            SimConfig::new(10_000.0, 8),
        )
        .with_scenario(Scenario::default().set_rates(5_000.0, vec![2.0, 2.0]));
        let report = sim.run();
        let base = Simulation::new(
            nodes(4, 2.0),
            simple_files(2, 0.5, 1, 4),
            CacheScheme::NoCache,
            SimConfig::new(10_000.0, 8),
        )
        .run();
        // Doubling both rates halfway through adds ~1.5e4 requests over the
        // baseline's ~1e4; allow generous slack.
        assert!(
            report.completed_requests as f64 > base.completed_requests as f64 * 1.8,
            "{} vs {}",
            report.completed_requests,
            base.completed_requests
        );
    }

    #[test]
    fn rate_schedule_stops_arrivals_past_the_last_bin() {
        use sprout_workload::timebins::{RateSchedule, TimeBin};
        let schedule = RateSchedule::new(vec![
            TimeBin::new(1_000.0, vec![1.0, 0.0]),
            TimeBin::new(1_000.0, vec![0.0, 1.0]),
        ]);
        let sim = Simulation::new(
            nodes(4, 5.0),
            simple_files(2, 123.0, 1, 4), // constant rates are overridden
            CacheScheme::NoCache,
            SimConfig::new(10_000.0, 5).with_warmup(0.0),
        )
        .with_rate_schedule(&schedule);
        let report = sim.run();
        let total = report.completed_requests as f64;
        assert!(
            (total - 2_000.0).abs() < 300.0,
            "~1 req/s over 2000 s expected, got {total}"
        );
    }

    #[test]
    fn swap_scheme_scenario_takes_effect() {
        let m = 4;
        let files = simple_files(2, 0.2, 2, m);
        let scheduling: Vec<Vec<f64>> = files
            .iter()
            .map(|f| {
                let mut row = vec![0.0; m];
                for &j in &f.placement {
                    row[j] = 0.0;
                }
                row
            })
            .collect();
        let full_cache = CacheScheme::Functional {
            cached_chunks: vec![2, 2],
            scheduling,
            rule: SchedulingRule::Probabilistic,
        };
        let sim = Simulation::new(
            nodes(m, 0.8),
            files,
            CacheScheme::NoCache,
            SimConfig::new(10_000.0, 21).with_warmup(0.0),
        )
        .with_scenario(Scenario::default().swap_scheme(5_000.0, full_cache));
        let report = sim.run();
        assert!(
            report.full_cache_hits > 0,
            "after the swap every request is a full cache hit"
        );
        let frac = report.full_cache_hits as f64 / report.completed_requests as f64;
        assert!(
            (frac - 0.5).abs() < 0.1,
            "~half the horizon runs fully cached, got {frac}"
        );
    }

    #[test]
    #[should_panic(expected = "fewer than k")]
    fn invalid_file_panics() {
        let _ = Simulation::new(
            nodes(2, 0.5),
            vec![SimFile::new(0.1, 3, vec![0, 1])],
            CacheScheme::NoCache,
            SimConfig::new(10.0, 0),
        );
    }

    #[test]
    #[should_panic(expected = "references node")]
    fn scenario_with_bad_node_panics() {
        let _ = Simulation::new(
            nodes(2, 0.5),
            vec![SimFile::new(0.1, 1, vec![0, 1])],
            CacheScheme::NoCache,
            SimConfig::new(10.0, 0),
        )
        .with_scenario(Scenario::default().node_down(1.0, 9));
    }
}
