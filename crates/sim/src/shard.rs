//! Sharded execution of the simulation: intra-replication parallelism with
//! epoch-synchronized event loops.
//!
//! The streaming engine keeps only O(files + nodes) state, and the sweep
//! runner parallelizes *across* cells and replications — but a single
//! replication used to be one thread. This module shards the replication
//! itself:
//!
//! 1. **Partition.** [`ShardPlan`] splits the cluster into *logical shards*:
//!    the connected components of the file–node placement graph (two files
//!    share a component iff their placements share a node, transitively).
//!    Components are exact — no cross-component interaction exists in the
//!    model — so the decomposition is lossless, unlike rate-splitting
//!    approximations. A globally coupled cache scheme
//!    ([`CacheScheme::LruReplicated`], whose tier spans all files) forces a
//!    single component.
//! 2. **Pack.** The `shards` knob ([`crate::SimConfig::shards`]) packs the
//!    components onto `min(shards, components)` event loops (longest
//!    processing time first). Packing is unobservable in results.
//! 3. **Run.** Each loop owns its files' arrival streams, planning RNGs, node
//!    queues and event heap. Loops synchronize conservatively at **epoch
//!    edges** — the firing times of scenario events — via a barrier: every
//!    loop drains strictly past its own events up to the edge, waits, then
//!    applies the edge's actions (NodeDown/NodeUp/SetRates/SwapScheme)
//!    locally. Scenario effects therefore land at deterministic epoch
//!    boundaries in every loop, exactly as they interleave in the one-loop
//!    run.
//!
//! **Determinism contract:** [`SimReport`] is bit-identical at any shard
//! count. This holds because every random stream is keyed per entity — one
//! arrival stream and one planning RNG per *file*, one service RNG per *node*
//! ([`AnalyticBackend`]) — and a node belongs to exactly one component, so a
//! component's event trajectory is invariant under any packing. The
//! single-loop path and the sharded path run the same per-component code and
//! merge per-entity results in global order.
//!
//! Byte-accurate backends run through [`Simulation::run_on`], which always
//! uses one loop (their service RNG is global); their reports are trivially
//! shard-invariant.

use std::collections::VecDeque;
use std::sync::{Barrier, Mutex};
use std::thread;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sprout_cluster::{CacheTier, LruTier};
use sprout_workload::arrivals::{ArrivalStream, RateProfile};

use crate::backend::{AnalyticBackend, ChunkBackend, FinishedRequest};
use crate::engine::{plan_seed, stream_seed, SimFile, SimReport, Simulation};
use crate::event::EventQueue;
use crate::metrics::{LatencySummary, SlotCounts};
use crate::policy::{CacheScheme, SchedulingRule};
use crate::scenario::ScenarioAction;
use crate::scheduler::{systematic_sample_into, uniform_sample_into};

/// Whether a scheme couples all files through shared cache state (the LRU
/// tier is one global structure), forcing a single logical shard.
fn scheme_couples(scheme: &CacheScheme) -> bool {
    matches!(scheme, CacheScheme::LruReplicated { .. })
}

fn find(parent: &mut [usize], mut x: usize) -> usize {
    while parent[x] != x {
        parent[x] = parent[parent[x]];
        x = parent[x];
    }
    x
}

/// The partition of a simulation into logical shards (placement-graph
/// connected components) and their packing onto execution loops.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    /// Component of each file.
    comp_of_file: Vec<usize>,
    /// Component of each node; `None` for nodes hosting no file.
    comp_of_node: Vec<Option<usize>>,
    /// Number of components (components are numbered by first appearance in
    /// file order, so ids are placement-deterministic).
    num_components: usize,
    /// Execution groups: `groups[g]` lists the component ids loop `g` owns.
    groups: Vec<Vec<usize>>,
}

impl ShardPlan {
    /// Builds the plan for `sim` using its configured shard count.
    pub fn new(sim: &Simulation) -> Self {
        Self::with_shards(sim, sim.config().shards)
    }

    /// Builds the plan for `sim` packing components onto at most `shards`
    /// loops. The partition itself (and everything reported) is independent
    /// of `shards`; only the packing changes.
    pub fn with_shards(sim: &Simulation, shards: usize) -> Self {
        let num_files = sim.files.len();
        let num_nodes = sim.nodes.len();
        let coupled = scheme_couples(&sim.scheme)
            || sim.scenario.events().iter().any(|e| {
                matches!(&e.action, ScenarioAction::SwapScheme { scheme } if scheme_couples(scheme))
            });
        if coupled {
            return ShardPlan {
                comp_of_file: vec![0; num_files],
                comp_of_node: vec![Some(0); num_nodes],
                num_components: 1,
                groups: vec![vec![0]],
            };
        }

        let mut parent: Vec<usize> = (0..num_nodes).collect();
        for f in &sim.files {
            let first = f.placement[0];
            for &n in &f.placement[1..] {
                let (a, b) = (find(&mut parent, first), find(&mut parent, n));
                if a != b {
                    parent[a] = b;
                }
            }
        }
        let mut comp_of_root: Vec<Option<usize>> = vec![None; num_nodes];
        let mut comp_of_file = Vec::with_capacity(num_files);
        let mut comp_weight: Vec<usize> = Vec::new(); // files per component
        for f in &sim.files {
            let root = find(&mut parent, f.placement[0]);
            let comp = match comp_of_root[root] {
                Some(c) => c,
                None => {
                    let c = comp_weight.len();
                    comp_of_root[root] = Some(c);
                    comp_weight.push(0);
                    c
                }
            };
            comp_weight[comp] += 1;
            comp_of_file.push(comp);
        }
        let comp_of_node: Vec<Option<usize>> = (0..num_nodes)
            .map(|n| comp_of_root[find(&mut parent, n)])
            .collect();

        let num_components = comp_weight.len();
        let num_groups = shards.max(1).min(num_components).max(1);
        // Longest-processing-time packing: heaviest components first, each
        // onto the least-loaded loop. Deterministic (ties break on ids), and
        // unobservable in results either way.
        let mut order: Vec<usize> = (0..num_components).collect();
        order.sort_by_key(|&c| (std::cmp::Reverse(comp_weight[c]), c));
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); num_groups];
        let mut load = vec![0usize; num_groups];
        for c in order {
            let g = (0..num_groups)
                .min_by_key(|&g| (load[g], g))
                .expect("at least one group");
            groups[g].push(c);
            load[g] += comp_weight[c].max(1);
        }
        for g in &mut groups {
            g.sort_unstable();
        }
        ShardPlan {
            comp_of_file,
            comp_of_node,
            num_components,
            groups,
        }
    }

    /// Number of logical shards (placement-graph components).
    pub fn num_components(&self) -> usize {
        self.num_components
    }

    /// Number of event loops the components are packed onto.
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// The logical shard owning `file`.
    pub fn component_of_file(&self, file: usize) -> usize {
        self.comp_of_file[file]
    }

    /// The logical shard owning `node`, or `None` if no file is placed on it.
    pub fn component_of_node(&self, node: usize) -> Option<usize> {
        self.comp_of_node[node]
    }
}

/// Runs a [`Simulation`] as epoch-synchronized sharded event loops on the
/// analytic backend, behind the same `run()`/[`SimReport`] surface.
///
/// [`Simulation::run`] constructs this internally; build one directly to
/// inspect the [`ShardPlan`]. Reports are bit-identical at any shard count
/// (see the [module docs](self)).
#[derive(Debug)]
pub struct ShardedEngine<'a> {
    sim: &'a Simulation,
    plan: ShardPlan,
}

impl<'a> ShardedEngine<'a> {
    /// Plans sharded execution of `sim` using its configured shard count.
    pub fn new(sim: &'a Simulation) -> Self {
        ShardedEngine {
            plan: ShardPlan::new(sim),
            sim,
        }
    }

    /// The partition and packing this engine will run.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// Runs the simulation and returns the merged report.
    pub fn run(&self) -> SimReport {
        if self.plan.num_groups() <= 1 {
            let mut backend = AnalyticBackend::new(self.sim.nodes.clone(), self.sim.config.seed);
            return run_single(self.sim, &self.plan, &mut backend);
        }
        run_sharded(self.sim, &self.plan)
    }
}

/// Runs every component on one loop over `backend` (the classic path; also
/// the only path for byte-accurate backends, whose service RNG is global).
pub(crate) fn run_single<B: ChunkBackend>(
    sim: &Simulation,
    plan: &ShardPlan,
    backend: &mut B,
) -> SimReport {
    let owned = vec![true; plan.num_components];
    let outcome = run_loop(sim, plan, &owned, backend, None);
    merge_outcomes(sim, plan, vec![outcome])
}

/// Spawns one thread per execution group, each running its components on its
/// own analytic backend, with a barrier at every epoch edge (conservative
/// synchronization), then merges the partial outcomes.
fn run_sharded(sim: &Simulation, plan: &ShardPlan) -> SimReport {
    let barrier = Barrier::new(plan.groups.len());
    let outcomes: Vec<Mutex<Option<LoopOutcome>>> =
        plan.groups.iter().map(|_| Mutex::new(None)).collect();
    thread::scope(|scope| {
        for (g, comps) in plan.groups.iter().enumerate() {
            let barrier = &barrier;
            let slot = &outcomes[g];
            scope.spawn(move || {
                let mut owned = vec![false; plan.num_components];
                for &c in comps {
                    owned[c] = true;
                }
                // Every loop seeds the full per-node RNG vector identically;
                // each node is only ever sampled by its owning loop.
                let mut backend = AnalyticBackend::new(sim.nodes.clone(), sim.config.seed);
                let outcome = run_loop(sim, plan, &owned, &mut backend, Some(barrier));
                *slot.lock().expect("no poisoned outcome slot") = Some(outcome);
            });
        }
    });
    let outcomes = outcomes
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("no poisoned outcome slot")
                .expect("every loop stores its outcome")
        })
        .collect();
    merge_outcomes(sim, plan, outcomes)
}

#[derive(Debug, Clone, PartialEq)]
enum Event {
    /// The next request of a loop-local file arrives. The epoch stamps the
    /// arrival-stream generation: rate-shift actions bump it, so stale
    /// pre-shift arrivals are discarded when popped.
    Arrival { file: usize, epoch: u32 },
    /// A storage node finishes the chunk it was serving.
    NodeComplete(usize),
}

#[derive(Debug, Clone, Default)]
struct RequestState {
    /// Global file index (what backends and plans see).
    file: usize,
    /// Loop-local file index (what per-file accounting uses).
    local: usize,
    start: f64,
    outstanding: usize,
    last_completion: f64,
    cache_chunks: usize,
    nodes: Vec<usize>,
}

/// Free-list slab of in-flight request state.
///
/// The arrival hot path used to allocate twice per request — a fresh
/// `nodes` Vec clone plus `HashMap` bucket churn. The slab recycles whole
/// `RequestState` slots (including the `nodes` capacity), so steady-state
/// arrivals allocate nothing: slot count grows to the peak number of
/// concurrently in-flight requests and then stays flat.
///
/// Slot reuse without generation counters is sound because an id can only
/// reach a node queue from a live request, and the slot is released exactly
/// when its last queued chunk completes — no stale id can survive a release.
#[derive(Debug, Default)]
struct RequestSlab {
    slots: Vec<RequestState>,
    free: Vec<usize>,
}

impl RequestSlab {
    /// Claims a slot, reusing a freed one (and its `nodes` capacity) when
    /// available, and returns its id.
    #[allow(clippy::too_many_arguments)]
    fn insert(
        &mut self,
        file: usize,
        local: usize,
        start: f64,
        last_completion: f64,
        cache_chunks: usize,
        nodes: &[usize],
    ) -> u64 {
        let slot = match self.free.pop() {
            Some(slot) => slot,
            None => {
                self.slots.push(RequestState::default());
                self.slots.len() - 1
            }
        };
        let state = &mut self.slots[slot];
        state.file = file;
        state.local = local;
        state.start = start;
        state.outstanding = nodes.len();
        state.last_completion = last_completion;
        state.cache_chunks = cache_chunks;
        state.nodes.clear();
        state.nodes.extend_from_slice(nodes);
        slot as u64
    }

    fn get_mut(&mut self, id: u64) -> &mut RequestState {
        &mut self.slots[id as usize]
    }

    /// Returns a slot (and its `nodes` buffer) to the free list for reuse by
    /// a later `insert`.
    fn release(&mut self, id: u64) {
        self.free.push(id as usize);
    }
}

#[derive(Debug, Default, Clone)]
struct NodeState {
    queue: VecDeque<(u64, usize)>, // (request id, global file) waiting
    serving: Option<u64>,
    busy_time: f64,
}

/// Per-node FIFO service queues in virtual time. Service durations come from
/// the backend; this struct only sequences them.
#[derive(Debug, Default)]
struct ServiceQueues {
    nodes: Vec<NodeState>,
}

impl ServiceQueues {
    fn new(count: usize) -> Self {
        ServiceQueues {
            nodes: vec![NodeState::default(); count],
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn enqueue<B: ChunkBackend>(
        &mut self,
        node: usize,
        request: u64,
        file: usize,
        now: f64,
        events: &mut EventQueue<Event>,
        backend: &mut B,
        comp: usize,
        load: &mut CompLoad,
    ) {
        if self.nodes[node].serving.is_none() {
            self.start(node, request, file, now, events, backend, comp, load);
        } else {
            self.nodes[node].queue.push_back((request, file));
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn start<B: ChunkBackend>(
        &mut self,
        node: usize,
        request: u64,
        file: usize,
        now: f64,
        events: &mut EventQueue<Event>,
        backend: &mut B,
        comp: usize,
        load: &mut CompLoad,
    ) {
        let service = backend.sample_service(node, file);
        let state = &mut self.nodes[node];
        state.serving = Some(request);
        state.busy_time += service;
        events.push(now + service, Event::NodeComplete(node));
        load.event_pushed(comp);
    }
}

/// Per-logical-shard high-water accounting: pending events and in-flight
/// requests per component, so the report's guards bound every shard rather
/// than only their sum.
#[derive(Debug)]
struct CompLoad {
    pending: Vec<usize>,
    peak_events: Vec<usize>,
    in_flight: Vec<usize>,
    peak_in_flight: Vec<usize>,
}

impl CompLoad {
    fn new(components: usize) -> Self {
        CompLoad {
            pending: vec![0; components],
            peak_events: vec![0; components],
            in_flight: vec![0; components],
            peak_in_flight: vec![0; components],
        }
    }

    fn event_pushed(&mut self, comp: usize) {
        self.pending[comp] += 1;
        self.peak_events[comp] = self.peak_events[comp].max(self.pending[comp]);
    }

    fn event_popped(&mut self, comp: usize) {
        self.pending[comp] -= 1;
    }

    fn request_opened(&mut self, comp: usize) {
        self.in_flight[comp] += 1;
        self.peak_in_flight[comp] = self.peak_in_flight[comp].max(self.in_flight[comp]);
    }

    fn request_closed(&mut self, comp: usize) {
        self.in_flight[comp] -= 1;
    }
}

/// Everything one event loop accumulates; merged across loops by
/// [`merge_outcomes`]. All fields are either per-entity (placed by global
/// id) or order-insensitive sums/maxima, which is what makes the merge
/// independent of the packing.
#[derive(Debug)]
struct LoopOutcome {
    /// `(global file, post-warm-up latencies)` for every owned file.
    latencies: Vec<(usize, Vec<f64>)>,
    /// Busy seconds per node (zero for unowned nodes).
    busy_time: Vec<f64>,
    slots: SlotCounts,
    node_chunks_served: Vec<u64>,
    full_cache_hits: u64,
    completed: u64,
    failed: u64,
    reconstruction_failures: u64,
    tier_promotions: u64,
    tier_evictions: u64,
    /// Peak pending events per component (owned components only nonzero).
    peak_events: Vec<usize>,
    /// Peak in-flight requests per component.
    peak_in_flight: Vec<usize>,
}

/// The engine's LRU cache tier for [`CacheScheme::LruReplicated`]: the same
/// [`LruTier`] implementation the cluster's byte-accurate `Cache` runs, here
/// with *chunks* as the weight unit (the abstract model has no byte sizes).
/// The tier's decisions scale linearly with the unit, so a byte-accurate
/// mirror fed the same access sequence stays in lockstep — see
/// `sprout_cluster::tier`.
fn lru_tier_for(scheme: &CacheScheme) -> Option<LruTier> {
    match scheme {
        CacheScheme::LruReplicated {
            capacity_chunks,
            replication,
        } => Some(LruTier::new(*capacity_chunks as u64, (*replication).max(1))),
        _ => None,
    }
}

/// Reusable buffers for the per-arrival planning step.
///
/// `plan_request` runs once per simulated request — millions of times at the
/// paper's horizons — so its working sets (sampling marginals, the sampled
/// index set, the chosen node list and the offline-repair pool) live here
/// instead of being allocated per call.
#[derive(Debug, Default)]
struct PlanScratch {
    marginals: Vec<f64>,
    picks: Vec<usize>,
    /// Online candidates used to repair a plan that picked failed nodes.
    avail: Vec<usize>,
    /// Output: the storage nodes chosen to serve the request.
    nodes: Vec<usize>,
}

/// One event loop over a subset of components (all of them on the single
/// path). `owned` masks components; `barrier`, when present, synchronizes
/// epoch edges with sibling loops.
fn run_loop<B: ChunkBackend>(
    sim: &Simulation,
    plan: &ShardPlan,
    owned: &[bool],
    backend: &mut B,
    barrier: Option<&Barrier>,
) -> LoopOutcome {
    let horizon = sim.config.horizon;
    let files: Vec<usize> = (0..sim.files.len())
        .filter(|&f| owned[plan.comp_of_file[f]])
        .collect();
    let comp_of_local: Vec<usize> = files.iter().map(|&f| plan.comp_of_file[f]).collect();
    let streams: Vec<ArrivalStream> = files
        .iter()
        .map(|&f| {
            let profile = match &sim.profiles {
                Some(p) => p[f].clone(),
                None => RateProfile::constant(sim.files[f].arrival_rate),
            };
            ArrivalStream::new(profile, stream_seed(sim.config.seed, f))
        })
        .collect();
    let plan_rngs: Vec<StdRng> = files
        .iter()
        .map(|&f| StdRng::seed_from_u64(plan_seed(sim.config.seed, f)))
        .collect();
    let scheme = sim.scheme.clone();
    let num_locals = files.len();
    let mut core = LoopCore {
        sim,
        plan,
        backend,
        files,
        comp_of_local,
        tier: lru_tier_for(&scheme),
        scheme,
        streams,
        epochs: vec![0u32; num_locals],
        plan_rngs,
        events: EventQueue::new(),
        queues: ServiceQueues::new(sim.nodes.len()),
        requests: RequestSlab::default(),
        latencies: vec![Vec::new(); num_locals],
        slots: SlotCounts::new(horizon, sim.config.slot_length),
        node_chunks_served: vec![0u64; sim.nodes.len()],
        full_cache_hits: 0,
        completed: 0,
        failed: 0,
        reconstruction_failures: 0,
        tier_promotions: 0,
        tier_evictions: 0,
        scratch: PlanScratch::default(),
        load: CompLoad::new(plan.num_components),
    };

    // One lazily-sampled arrival stream per owned file; exactly one pending
    // arrival event per file lives in the queue at any time.
    for local in 0..core.files.len() {
        if let Some(t) = core.streams[local].next_arrival(0.0, horizon) {
            core.events.push(
                t,
                Event::Arrival {
                    file: local,
                    epoch: 0,
                },
            );
            core.load.event_pushed(core.comp_of_local[local]);
        }
    }

    // Epoch edges are the scenario's firing times (inside the horizon).
    // Events strictly before an edge drain first; the edge's actions apply
    // (in declaration order), then the loop resumes — so same-time workload
    // events observe the scenario effects, exactly as in the legacy
    // in-queue ordering. The barrier makes the edge a conservative global
    // synchronization point across loops.
    let scenario = sim.scenario.events();
    let mut i = 0;
    while i < scenario.len() && scenario[i].at < horizon {
        let edge = scenario[i].at;
        let mut j = i;
        while j < scenario.len() && scenario[j].at == edge {
            j += 1;
        }
        core.drain_before(edge);
        if let Some(b) = barrier {
            b.wait();
        }
        for ev in &scenario[i..j] {
            core.apply_action(edge, &ev.action);
        }
        i = j;
    }
    core.drain_all();
    core.into_outcome()
}

struct LoopCore<'a, B: ChunkBackend> {
    sim: &'a Simulation,
    plan: &'a ShardPlan,
    backend: &'a mut B,
    /// Owned files, ascending global ids; events carry the local index.
    files: Vec<usize>,
    comp_of_local: Vec<usize>,
    scheme: CacheScheme,
    streams: Vec<ArrivalStream>,
    epochs: Vec<u32>,
    plan_rngs: Vec<StdRng>,
    events: EventQueue<Event>,
    queues: ServiceQueues,
    requests: RequestSlab,
    latencies: Vec<Vec<f64>>,
    slots: SlotCounts,
    node_chunks_served: Vec<u64>,
    full_cache_hits: u64,
    completed: u64,
    failed: u64,
    reconstruction_failures: u64,
    tier: Option<LruTier>,
    tier_promotions: u64,
    tier_evictions: u64,
    scratch: PlanScratch,
    load: CompLoad,
}

impl<B: ChunkBackend> LoopCore<'_, B> {
    /// Drains events with firing time strictly before `limit`.
    fn drain_before(&mut self, limit: f64) {
        while let Some(t) = self.events.next_time() {
            if t >= limit {
                break;
            }
            let (now, event) = self.events.pop().expect("a peeked event pops");
            self.handle(now, event);
        }
    }

    /// Drains the queue to exhaustion (the final epoch).
    fn drain_all(&mut self) {
        while let Some((now, event)) = self.events.pop() {
            self.handle(now, event);
        }
    }

    fn handle(&mut self, now: f64, event: Event) {
        match event {
            Event::Arrival { file: local, epoch } => {
                self.load.event_popped(self.comp_of_local[local]);
                if epoch != self.epochs[local] {
                    return; // stale arrival from before a rate shift
                }
                // Keep the stream primed: schedule this file's next arrival
                // before processing the current one.
                if let Some(t) = self.streams[local].next_arrival(now, self.sim.config.horizon) {
                    self.events.push(t, Event::Arrival { file: local, epoch });
                    self.load.event_pushed(self.comp_of_local[local]);
                }
                let global = self.files[local];
                match plan_request(
                    &self.sim.files,
                    global,
                    &self.scheme,
                    self.backend,
                    &mut self.plan_rngs[local],
                    &mut self.tier,
                    &mut self.scratch,
                ) {
                    None => self.failed += 1,
                    Some(cache_chunks) => {
                        self.slots.record(
                            now,
                            cache_chunks as u64,
                            self.scratch.nodes.len() as u64,
                        );
                        for &node in &self.scratch.nodes {
                            self.node_chunks_served[node] += 1;
                        }
                        let cache_latency = if cache_chunks > 0 {
                            self.backend
                                .sample_cache_read(global, cache_chunks)
                                .unwrap_or(self.sim.config.cache_chunk_latency)
                        } else {
                            0.0
                        };

                        if self.scratch.nodes.is_empty() {
                            // Served entirely from the cache.
                            if !self.backend.finish_request(FinishedRequest {
                                file: global,
                                cache_chunks,
                                storage_nodes: &[],
                            }) {
                                self.reconstruction_failures += 1;
                            }
                            self.full_cache_hits += 1;
                            self.completed += 1;
                            if now >= self.sim.config.warmup {
                                self.latencies[local].push(cache_latency);
                            }
                            return;
                        }

                        let id = self.requests.insert(
                            global,
                            local,
                            now,
                            now + cache_latency,
                            cache_chunks,
                            &self.scratch.nodes,
                        );
                        self.load.request_opened(self.comp_of_local[local]);
                        for &node in &self.scratch.nodes {
                            self.queues.enqueue(
                                node,
                                id,
                                global,
                                now,
                                &mut self.events,
                                self.backend,
                                self.comp_of_local[local],
                                &mut self.load,
                            );
                        }
                    }
                }
            }
            Event::NodeComplete(node) => {
                let comp =
                    self.plan.comp_of_node[node].expect("completions only fire on placed nodes");
                self.load.event_popped(comp);
                let finished = self.queues.nodes[node]
                    .serving
                    .take()
                    .expect("completion without a job");
                let req = self.requests.get_mut(finished);
                req.outstanding -= 1;
                req.last_completion = req.last_completion.max(now);
                if req.outstanding == 0 {
                    if !self.backend.finish_request(FinishedRequest {
                        file: req.file,
                        cache_chunks: req.cache_chunks,
                        storage_nodes: &req.nodes,
                    }) {
                        self.reconstruction_failures += 1;
                    }
                    self.completed += 1;
                    if req.start >= self.sim.config.warmup {
                        self.latencies[req.local].push(req.last_completion - req.start);
                    }
                    self.requests.release(finished);
                    self.load.request_closed(comp);
                }
                // Start the next queued chunk, if any.
                if let Some((next, file)) = self.queues.nodes[node].queue.pop_front() {
                    self.queues.start(
                        node,
                        next,
                        file,
                        now,
                        &mut self.events,
                        self.backend,
                        comp,
                        &mut self.load,
                    );
                }
            }
        }
    }

    /// Applies one scenario action at epoch edge `at`. Actions are loop-local
    /// by construction: node flags apply to this loop's backend, rate shifts
    /// to owned files, scheme swaps to this loop's scheme clone. (A swap *to*
    /// a coupling scheme forces a single component at plan time, so it never
    /// reaches a multi-loop run.)
    fn apply_action(&mut self, at: f64, action: &ScenarioAction) {
        match action {
            ScenarioAction::NodeDown { node } => self.backend.set_node_online(*node, false),
            ScenarioAction::NodeUp { node } => self.backend.set_node_online(*node, true),
            ScenarioAction::SetRates { rates } => {
                for local in 0..self.files.len() {
                    if let Some(&rate) = rates.get(self.files[local]) {
                        self.retarget(local, rate, at);
                    }
                }
            }
            ScenarioAction::SetFileRate { file, rate } => {
                if let Ok(local) = self.files.binary_search(file) {
                    self.retarget(local, *rate, at);
                }
            }
            ScenarioAction::SwapScheme { scheme } => {
                // Promotion/eviction counts accumulate across swaps (a swap
                // restarts the tier cold).
                if let Some(old) = self.tier.take() {
                    let stats = old.stats();
                    self.tier_promotions += stats.promotions;
                    self.tier_evictions += stats.evictions;
                }
                self.scheme = scheme.clone();
                self.tier = lru_tier_for(&self.scheme);
                self.backend.apply_scheme(&self.scheme);
            }
        }
    }

    /// Re-seats a file's arrival process at a new constant rate from `now`
    /// on. By Poisson memorylessness the pending pre-shift arrival can simply
    /// be discarded (the epoch bump invalidates it) and a fresh interarrival
    /// drawn at the new rate.
    fn retarget(&mut self, local: usize, rate: f64, now: f64) {
        self.epochs[local] = self.epochs[local].wrapping_add(1);
        self.streams[local].set_rate(rate);
        if let Some(t) = self.streams[local].next_arrival(now, self.sim.config.horizon) {
            self.events.push(
                t,
                Event::Arrival {
                    file: local,
                    epoch: self.epochs[local],
                },
            );
            self.load.event_pushed(self.comp_of_local[local]);
        }
    }

    fn into_outcome(self) -> LoopOutcome {
        let mut tier_promotions = self.tier_promotions;
        let mut tier_evictions = self.tier_evictions;
        if let Some(tier) = &self.tier {
            let stats = tier.stats();
            tier_promotions += stats.promotions;
            tier_evictions += stats.evictions;
        }
        LoopOutcome {
            latencies: self.files.into_iter().zip(self.latencies).collect(),
            busy_time: self.queues.nodes.iter().map(|n| n.busy_time).collect(),
            slots: self.slots,
            node_chunks_served: self.node_chunks_served,
            full_cache_hits: self.full_cache_hits,
            completed: self.completed,
            failed: self.failed,
            reconstruction_failures: self.reconstruction_failures,
            tier_promotions,
            tier_evictions,
            peak_events: self.load.peak_events,
            peak_in_flight: self.load.peak_in_flight,
        }
    }
}

/// Merges per-loop outcomes into the report. Per-file and per-node data are
/// placed by global id, counters and slot counts are summed, peaks are
/// folded per component then maxed — all independent of loop count and
/// packing, which is what makes reports bit-identical at any shard count.
fn merge_outcomes(sim: &Simulation, plan: &ShardPlan, outcomes: Vec<LoopOutcome>) -> SimReport {
    let horizon = sim.config.horizon;
    let mut latencies: Vec<Vec<f64>> = vec![Vec::new(); sim.files.len()];
    let mut busy = vec![0.0f64; sim.nodes.len()];
    let mut slots = SlotCounts::new(horizon, sim.config.slot_length);
    let mut node_chunks_served = vec![0u64; sim.nodes.len()];
    let mut full_cache_hits = 0u64;
    let mut completed = 0u64;
    let mut failed = 0u64;
    let mut reconstruction_failures = 0u64;
    let mut tier_promotions = 0u64;
    let mut tier_evictions = 0u64;
    let mut peak_events = vec![0usize; plan.num_components];
    let mut peak_in_flight = vec![0usize; plan.num_components];
    for outcome in outcomes {
        for (global, samples) in outcome.latencies {
            latencies[global] = samples;
        }
        for (node, b) in outcome.busy_time.iter().enumerate() {
            busy[node] += b;
        }
        for (slot, c) in outcome.slots.cache_chunks.iter().enumerate() {
            slots.cache_chunks[slot] += c;
        }
        for (slot, c) in outcome.slots.storage_chunks.iter().enumerate() {
            slots.storage_chunks[slot] += c;
        }
        for (node, c) in outcome.node_chunks_served.iter().enumerate() {
            node_chunks_served[node] += c;
        }
        full_cache_hits += outcome.full_cache_hits;
        completed += outcome.completed;
        failed += outcome.failed;
        reconstruction_failures += outcome.reconstruction_failures;
        tier_promotions += outcome.tier_promotions;
        tier_evictions += outcome.tier_evictions;
        for (comp, p) in outcome.peak_events.iter().enumerate() {
            peak_events[comp] = peak_events[comp].max(*p);
        }
        for (comp, p) in outcome.peak_in_flight.iter().enumerate() {
            peak_in_flight[comp] = peak_in_flight[comp].max(*p);
        }
    }
    let all: Vec<f64> = latencies.iter().flatten().copied().collect();
    SimReport {
        overall: LatencySummary::from_samples(&all),
        per_file: latencies
            .iter()
            .map(|l| LatencySummary::from_samples(l))
            .collect(),
        node_utilization: busy.iter().map(|b| (b / horizon).min(1.0)).collect(),
        slots,
        full_cache_hits,
        completed_requests: completed,
        node_chunks_served,
        failed_requests: failed,
        reconstruction_failures,
        peak_event_queue: peak_events.iter().copied().max().unwrap_or(0),
        peak_in_flight: peak_in_flight.iter().copied().max().unwrap_or(0),
        logical_shards: plan.num_components,
        cache_promotions: tier_promotions,
        cache_evictions: tier_evictions,
    }
}

/// Decides, for one request of `file` (a global index), how many chunks the
/// cache serves and which storage nodes serve the rest (written to
/// `scratch.nodes`). Returns `None` when node failures leave fewer online
/// hosts than the request needs. All working sets live in `scratch`, so the
/// arrival hot loop allocates nothing beyond per-request state.
///
/// For [`CacheScheme::LruReplicated`] the loop's `tier` is the single source
/// of truth for hit/miss/promotion/eviction decisions; every admission and
/// eviction is mirrored into the backend ([`ChunkBackend::tier_promote`] /
/// [`ChunkBackend::tier_evict`]) so byte-accurate backends keep the same
/// objects resident.
fn plan_request<B: ChunkBackend>(
    files: &[SimFile],
    file: usize,
    scheme: &CacheScheme,
    backend: &mut B,
    rng: &mut StdRng,
    tier: &mut Option<LruTier>,
    scratch: &mut PlanScratch,
) -> Option<usize> {
    let spec = &files[file];
    scratch.nodes.clear();
    match scheme {
        CacheScheme::NoCache => {
            uniform_sample_into(spec.placement.len(), spec.k, rng, &mut scratch.picks);
            scratch
                .nodes
                .extend(scratch.picks.iter().map(|&i| spec.placement[i]));
            repair_offline(&spec.placement, backend, rng, scratch).then_some(0)
        }
        CacheScheme::Functional {
            cached_chunks,
            scheduling,
            rule,
        } => {
            let d = cached_chunks.get(file).copied().unwrap_or(0).min(spec.k);
            let needed = spec.k - d;
            if needed == 0 {
                return Some(d);
            }
            match rule {
                SchedulingRule::Probabilistic => {
                    scratch.marginals.clear();
                    scratch.marginals.extend(
                        spec.placement
                            .iter()
                            .map(|&j| scheduling[file].get(j).copied().unwrap_or(0.0)),
                    );
                    systematic_sample_into(&scratch.marginals, rng, &mut scratch.picks);
                }
                SchedulingRule::Uniform => {
                    uniform_sample_into(spec.placement.len(), needed, rng, &mut scratch.picks);
                }
            }
            scratch
                .nodes
                .extend(scratch.picks.iter().map(|&i| spec.placement[i]));
            repair_offline(&spec.placement, backend, rng, scratch).then_some(d)
        }
        CacheScheme::Exact {
            cached_chunks,
            scheduling,
        } => {
            let d = cached_chunks.get(file).copied().unwrap_or(0).min(spec.k);
            let needed = spec.k - d;
            if needed == 0 {
                return Some(d);
            }
            // The first d placement entries host the exactly-cached rows
            // and cannot serve the request.
            let eligible = &spec.placement[d..];
            scratch.marginals.clear();
            scratch.marginals.extend(
                eligible
                    .iter()
                    .map(|&j| scheduling[file].get(j).copied().unwrap_or(0.0)),
            );
            let total: f64 = scratch.marginals.iter().sum();
            if (total - needed as f64).abs() < 1e-6 {
                systematic_sample_into(&scratch.marginals, rng, &mut scratch.picks);
            } else {
                uniform_sample_into(
                    eligible.len(),
                    needed.min(eligible.len()),
                    rng,
                    &mut scratch.picks,
                );
            }
            scratch
                .nodes
                .extend(scratch.picks.iter().map(|&i| eligible[i]));
            repair_offline(eligible, backend, rng, scratch).then_some(d)
        }
        CacheScheme::LruReplicated { .. } => {
            let tier = tier.as_mut().expect("an LRU scheme always has a tier");
            if tier.touch(file as u64) {
                return Some(spec.k);
            }
            // Miss: read k chunks from storage, then promote the object.
            uniform_sample_into(spec.placement.len(), spec.k, rng, &mut scratch.picks);
            scratch
                .nodes
                .extend(scratch.picks.iter().map(|&i| spec.placement[i]));
            if !repair_offline(&spec.placement, backend, rng, scratch) {
                return None;
            }
            let admission = tier.admit(file as u64, spec.k as u64);
            for &victim in &admission.evicted {
                backend.tier_evict(victim as usize);
            }
            if admission.admitted {
                backend.tier_promote(file);
            }
            Some(0)
        }
    }
}

/// Replaces planned reads that landed on offline nodes with draws from
/// the online remainder of `pool`. Returns `false` (degraded beyond
/// repair) when fewer online candidates exist than chunks are needed.
/// Draws happen only when a failure is actually present, so runs without
/// scenarios consume each file's planning RNG exactly as before.
fn repair_offline<B: ChunkBackend>(
    pool: &[usize],
    backend: &B,
    rng: &mut StdRng,
    scratch: &mut PlanScratch,
) -> bool {
    if scratch.nodes.iter().all(|&n| backend.is_online(n)) {
        return true;
    }
    let target = scratch.nodes.len();
    scratch.nodes.retain(|&n| backend.is_online(n));
    scratch.avail.clear();
    scratch.avail.extend(
        pool.iter()
            .copied()
            .filter(|&n| backend.is_online(n) && !scratch.nodes.contains(&n)),
    );
    while scratch.nodes.len() < target {
        if scratch.avail.is_empty() {
            return false;
        }
        let j = rng.gen_range(0..scratch.avail.len());
        scratch.nodes.push(scratch.avail.swap_remove(j));
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::scenario::Scenario;
    use sprout_queueing::dist::ServiceDistribution;

    /// `groups` disjoint node groups of `nodes_per` nodes; `files_per` files
    /// pinned inside each group (placement covers the whole group).
    fn grouped_sim(
        groups: usize,
        nodes_per: usize,
        files_per: usize,
        k: usize,
        rate: f64,
        config: SimConfig,
    ) -> Simulation {
        let nodes = vec![ServiceDistribution::exponential(1.0); groups * nodes_per];
        let mut files = Vec::new();
        for g in 0..groups {
            for _ in 0..files_per {
                let placement: Vec<usize> = (0..nodes_per).map(|j| g * nodes_per + j).collect();
                files.push(SimFile::new(rate, k, placement));
            }
        }
        Simulation::new(nodes, files, CacheScheme::NoCache, config)
    }

    #[test]
    fn plan_partitions_disjoint_placement_groups() {
        let sim = grouped_sim(4, 3, 5, 2, 0.1, SimConfig::new(100.0, 1));
        let plan = ShardPlan::with_shards(&sim, 4);
        assert_eq!(plan.num_components(), 4);
        assert_eq!(plan.num_groups(), 4);
        for f in 0..20 {
            assert_eq!(plan.component_of_file(f), f / 5);
        }
        for n in 0..12 {
            assert_eq!(plan.component_of_node(n), Some(n / 3));
        }
    }

    #[test]
    fn plan_packs_components_onto_requested_shards() {
        let sim = grouped_sim(5, 2, 3, 1, 0.1, SimConfig::new(100.0, 1));
        for shards in [1, 2, 3, 5, 16] {
            let plan = ShardPlan::with_shards(&sim, shards);
            assert_eq!(plan.num_components(), 5);
            assert_eq!(plan.num_groups(), shards.min(5));
            // Every component lands in exactly one group.
            let mut seen = vec![0usize; plan.num_components()];
            for g in &plan.groups {
                for &c in g {
                    seen[c] += 1;
                }
            }
            assert!(seen.iter().all(|&s| s == 1));
        }
    }

    #[test]
    fn overlapping_placements_and_lru_force_fewer_components() {
        // Files share node 2 across the two groups: one component.
        let nodes = vec![ServiceDistribution::exponential(1.0); 5];
        let files = vec![
            SimFile::new(0.1, 1, vec![0, 1, 2]),
            SimFile::new(0.1, 1, vec![2, 3, 4]),
        ];
        let sim = Simulation::new(nodes, files, CacheScheme::NoCache, SimConfig::new(100.0, 1));
        let plan = ShardPlan::with_shards(&sim, 8);
        assert_eq!(plan.num_components(), 1);

        // The global LRU tier couples every file: one component regardless
        // of placement.
        let sim = grouped_sim(4, 2, 2, 1, 0.1, SimConfig::new(100.0, 1));
        let lru = Simulation::new(
            vec![ServiceDistribution::exponential(1.0); 8],
            (0..8).map(|g| SimFile::new(0.1, 1, vec![g])).collect(),
            CacheScheme::ceph_lru(8),
            SimConfig::new(100.0, 1),
        );
        assert_eq!(ShardPlan::with_shards(&lru, 8).num_components(), 1);

        // A scenario that swaps *to* LRU mid-run couples the whole horizon.
        let swap =
            sim.with_scenario(Scenario::default().swap_scheme(50.0, CacheScheme::ceph_lru(8)));
        assert_eq!(ShardPlan::with_shards(&swap, 8).num_components(), 1);
    }

    #[test]
    fn sharded_run_is_bit_identical_to_single_loop() {
        let config = SimConfig::new(2_000.0, 42);
        let scenario = Scenario::default()
            .node_down(500.0, 0)
            .node_up(1_500.0, 0)
            .set_rates(1_000.0, vec![0.4; 18]);
        for shards in [2, 3, 8] {
            let single = grouped_sim(6, 2, 3, 2, 0.2, config)
                .with_scenario(scenario.clone())
                .run();
            let sharded = grouped_sim(6, 2, 3, 2, 0.2, config.with_shards(shards))
                .with_scenario(scenario.clone())
                .run();
            assert_eq!(
                single, sharded,
                "shards = {shards} must not change the report"
            );
            assert_eq!(single.logical_shards, 6);
        }
    }

    #[test]
    fn sharded_engine_exposes_its_plan() {
        let sim = grouped_sim(3, 2, 2, 1, 0.1, SimConfig::new(500.0, 7).with_shards(2));
        let engine = ShardedEngine::new(&sim);
        assert_eq!(engine.plan().num_components(), 3);
        assert_eq!(engine.plan().num_groups(), 2);
        let report = engine.run();
        assert_eq!(report, sim.run());
        assert_eq!(report.logical_shards, 3);
    }

    #[test]
    fn request_slab_recycles_slots_and_node_capacity() {
        let mut slab = RequestSlab::default();
        let a = slab.insert(0, 0, 0.0, 0.0, 1, &[1, 2, 3]);
        let b = slab.insert(1, 1, 0.5, 0.5, 0, &[4]);
        assert_eq!(slab.slots.len(), 2);
        slab.release(a);
        // The freed slot (and its nodes buffer) is reused, not reallocated.
        let c = slab.insert(2, 2, 1.0, 1.0, 2, &[5, 6]);
        assert_eq!(c, a);
        assert_eq!(slab.slots.len(), 2);
        assert_eq!(slab.get_mut(c).nodes, vec![5, 6]);
        assert_eq!(slab.get_mut(b).nodes, vec![4]);
    }
}
