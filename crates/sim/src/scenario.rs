//! Dynamic scenarios: timed events injected into a simulation run.
//!
//! A [`Scenario`] is a time-ordered list of [`ScenarioAction`]s — node
//! failures and recoveries, arrival-rate shifts at time-bin boundaries, and
//! cache-plan swaps. The engine schedules them in its event queue alongside
//! arrivals and completions, so scenario effects interleave deterministically
//! with the workload.
//!
//! The types derive `Serialize`/`Deserialize` and load from TOML/JSON
//! through the vendored serde stack — the committed files under
//! `scenarios/` are the canonical examples. Higher-level actions (e.g.
//! "re-run the optimizer at this bin boundary") live in the `sprout` facade
//! crate, which compiles them down to these primitive actions.

use serde::{Deserialize, Serialize};

use crate::policy::CacheScheme;

/// One timed action.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ScenarioAction {
    /// A storage node fails: it stops accepting new chunk reads (queued reads
    /// drain).
    NodeDown {
        /// The failing node.
        node: usize,
    },
    /// A failed storage node recovers.
    NodeUp {
        /// The recovering node.
        node: usize,
    },
    /// Every file's arrival rate changes (a time-bin boundary). By Poisson
    /// memorylessness the engine discards each file's pending arrival and
    /// redraws it at the new rate.
    ///
    /// The new rate holds as a *constant* from this point on: it supersedes
    /// any remaining segments of a rate schedule attached with
    /// `Simulation::with_rate_schedule` (a dynamic shift overrides the
    /// static plan).
    SetRates {
        /// New per-file rates (length must equal the file count).
        rates: Vec<f64>,
    },
    /// One file's arrival rate changes.
    SetFileRate {
        /// The file whose rate changes.
        file: usize,
        /// The new rate (requests/second).
        rate: f64,
    },
    /// The cache plan is swapped online: the engine plans subsequent requests
    /// with the new scheme and the backend re-installs cache contents.
    SwapScheme {
        /// The scheme in force from this point on.
        scheme: CacheScheme,
    },
}

/// A timed scenario event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioEvent {
    /// Simulated time at which the action fires.
    pub at: f64,
    /// The action.
    pub action: ScenarioAction,
}

/// A time-ordered scenario. Construction sorts events by time (stable, so
/// same-time events keep their declaration order).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Scenario {
    events: Vec<ScenarioEvent>,
}

impl Scenario {
    /// Creates a scenario from events (sorted by firing time, stable).
    ///
    /// # Panics
    ///
    /// Panics if an event time is negative or NaN.
    pub fn new(mut events: Vec<ScenarioEvent>) -> Self {
        for e in &events {
            assert!(
                e.at >= 0.0 && !e.at.is_nan(),
                "scenario event time must be non-negative"
            );
        }
        events.sort_by(|a, b| a.at.partial_cmp(&b.at).expect("times are not NaN"));
        Scenario { events }
    }

    /// The events, in firing order.
    pub fn events(&self) -> &[ScenarioEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the scenario has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Appends an action at `at` (re-sorting lazily at the next run is not
    /// needed: insertion keeps the list sorted).
    pub fn push(&mut self, at: f64, action: ScenarioAction) -> &mut Self {
        assert!(
            at >= 0.0 && !at.is_nan(),
            "scenario event time must be non-negative"
        );
        let pos = self.events.partition_point(|e| e.at <= at);
        self.events.insert(pos, ScenarioEvent { at, action });
        self
    }

    /// Convenience: node failure at `at`.
    pub fn node_down(mut self, at: f64, node: usize) -> Self {
        self.push(at, ScenarioAction::NodeDown { node });
        self
    }

    /// Convenience: node recovery at `at`.
    pub fn node_up(mut self, at: f64, node: usize) -> Self {
        self.push(at, ScenarioAction::NodeUp { node });
        self
    }

    /// Convenience: rate shift at `at`.
    pub fn set_rates(mut self, at: f64, rates: Vec<f64>) -> Self {
        self.push(at, ScenarioAction::SetRates { rates });
        self
    }

    /// Convenience: cache-plan swap at `at`.
    pub fn swap_scheme(mut self, at: f64, scheme: CacheScheme) -> Self {
        self.push(at, ScenarioAction::SwapScheme { scheme });
        self
    }

    /// Validates the scenario against a system shape; called by the engine.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range node or file indices, rate vectors of the wrong
    /// length, or negative rates.
    pub fn validate(&self, num_nodes: usize, num_files: usize) {
        for e in &self.events {
            match &e.action {
                ScenarioAction::NodeDown { node } | ScenarioAction::NodeUp { node } => {
                    assert!(
                        *node < num_nodes,
                        "scenario references node {node} but the system has {num_nodes}"
                    );
                }
                ScenarioAction::SetRates { rates } => {
                    assert!(
                        rates.len() == num_files,
                        "scenario rate vector covers {} files, system has {num_files}",
                        rates.len()
                    );
                    assert!(
                        rates.iter().all(|r| *r >= 0.0),
                        "scenario rates must be non-negative"
                    );
                }
                ScenarioAction::SetFileRate { file, rate } => {
                    assert!(
                        *file < num_files,
                        "scenario references file {file} but the system has {num_files}"
                    );
                    assert!(*rate >= 0.0, "scenario rates must be non-negative");
                }
                ScenarioAction::SwapScheme { scheme } => scheme.validate(num_files),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_sorts_and_builders_insert_in_order() {
        let s = Scenario::new(vec![
            ScenarioEvent {
                at: 50.0,
                action: ScenarioAction::NodeUp { node: 1 },
            },
            ScenarioEvent {
                at: 10.0,
                action: ScenarioAction::NodeDown { node: 1 },
            },
        ]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.events()[0].at, 10.0);
        assert_eq!(s.events()[1].at, 50.0);

        let s = Scenario::default()
            .node_up(50.0, 0)
            .node_down(10.0, 0)
            .set_rates(30.0, vec![0.1]);
        let times: Vec<f64> = s.events().iter().map(|e| e.at).collect();
        assert_eq!(times, vec![10.0, 30.0, 50.0]);
        assert!(!s.is_empty());
    }

    #[test]
    fn same_time_events_keep_declaration_order() {
        let s = Scenario::default().node_down(5.0, 0).node_up(5.0, 1);
        assert!(matches!(
            s.events()[0].action,
            ScenarioAction::NodeDown { node: 0 }
        ));
        assert!(matches!(
            s.events()[1].action,
            ScenarioAction::NodeUp { node: 1 }
        ));
    }

    #[test]
    fn validate_accepts_well_formed_scenarios() {
        Scenario::default()
            .node_down(1.0, 2)
            .set_rates(2.0, vec![0.1, 0.2])
            .swap_scheme(3.0, CacheScheme::NoCache)
            .validate(3, 2);
    }

    #[test]
    #[should_panic(expected = "references node")]
    fn validate_rejects_bad_node() {
        Scenario::default().node_down(1.0, 7).validate(3, 2);
    }

    #[test]
    #[should_panic(expected = "covers")]
    fn validate_rejects_bad_rate_length() {
        Scenario::default().set_rates(1.0, vec![0.1]).validate(3, 2);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_event_time_panics() {
        let _ = Scenario::default().node_down(-1.0, 0);
    }

    #[test]
    #[should_panic(expected = "scheduling rows")]
    fn validate_rejects_swapped_scheme_with_short_scheduling() {
        use crate::policy::SchedulingRule;
        Scenario::default()
            .swap_scheme(
                1.0,
                CacheScheme::Functional {
                    cached_chunks: vec![],
                    scheduling: vec![],
                    rule: SchedulingRule::Probabilistic,
                },
            )
            .validate(3, 2);
    }
}
