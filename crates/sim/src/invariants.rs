//! Typed engine invariants: the properties every run must satisfy, as
//! `Result`-returning checks instead of scattered `assert!`s.
//!
//! The scenario fuzzer (and any CI harness) needs violations to be *values*
//! it can collect, print with the offending seed, and turn into a failing
//! exit code — a panic inside a worker thread loses the seed context. Each
//! check here returns the first [`InvariantViolation`] it finds.
//!
//! The invariants themselves are the engine's documented contracts:
//!
//! * the pending-event queue stays `O(files + nodes)` under streaming
//!   arrivals (plus the scenario's own events) — it must never scale with
//!   the total request count;
//! * the in-flight request population stays bounded (the pooled-allocation
//!   property: the request slab stops growing after warm-up);
//! * reports are bit-identical for any shard packing of the same run.

use crate::engine::SimReport;
use std::fmt;

/// One violated engine invariant.
#[derive(Debug, Clone, PartialEq)]
pub enum InvariantViolation {
    /// The pending-event queue grew past its structural bound.
    EventQueueBound {
        /// Observed high-water mark.
        peak: usize,
        /// The bound it must stay under.
        bound: usize,
    },
    /// The in-flight request population grew past the supplied cap.
    InFlightBound {
        /// Observed high-water mark.
        peak: usize,
        /// The cap it must stay under.
        bound: usize,
    },
    /// A backend reported a failed byte reconstruction.
    ReconstructionFailures {
        /// Number of failed reconstructions.
        count: u64,
    },
    /// Two shard packings of the same run disagreed.
    ShardMismatch {
        /// Shard count of the diverging run.
        shards: usize,
        /// Which report field diverged first.
        field: &'static str,
    },
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvariantViolation::EventQueueBound { peak, bound } => write!(
                f,
                "peak event queue {peak} exceeds its structural bound {bound}"
            ),
            InvariantViolation::InFlightBound { peak, bound } => {
                write!(f, "peak in-flight requests {peak} exceeds the cap {bound}")
            }
            InvariantViolation::ReconstructionFailures { count } => {
                write!(f, "{count} byte reconstruction(s) failed to verify")
            }
            InvariantViolation::ShardMismatch { shards, field } => write!(
                f,
                "report field '{field}' diverges at shards={shards} (must be bit-identical)"
            ),
        }
    }
}

impl std::error::Error for InvariantViolation {}

/// Per-run resource bounds derived from the workload's shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineBounds {
    /// Bound on the pending-event high-water mark. The structural guarantee
    /// is `files + nodes + scenario events + O(1)`; see [`EngineBounds::for_run`].
    pub event_queue: usize,
    /// Cap on concurrently in-flight requests. Not structural — overload can
    /// grow it — so callers derive it from the load they offered.
    pub in_flight: usize,
}

impl EngineBounds {
    /// The bounds for a run over `files` files and `nodes` nodes with
    /// `scenario_events` timed events (of which `rate_events` change arrival
    /// rates), capping in-flight requests at `in_flight`.
    ///
    /// The event-queue bound is
    /// `files * (1 + rate_events) + nodes + scenario_events + 4`: one
    /// pending arrival per file, at most one service completion per node,
    /// the scenario's own timed events, and a small constant for bookkeeping
    /// events (warm-up cut, horizon end). Each rate shift re-primes every
    /// affected file's arrival stream at a new epoch while the superseded
    /// arrival event is discarded only when it pops, so up to one stale
    /// arrival per file per rate event can transiently share the queue.
    pub fn for_run(
        files: usize,
        nodes: usize,
        scenario_events: usize,
        rate_events: usize,
        in_flight: usize,
    ) -> Self {
        EngineBounds {
            event_queue: files * (1 + rate_events) + nodes + scenario_events + 4,
            in_flight,
        }
    }
}

/// Checks one report against the engine bounds and the zero-failed-decode
/// contract.
///
/// # Errors
///
/// Returns the first violated invariant.
pub fn check_report(report: &SimReport, bounds: EngineBounds) -> Result<(), InvariantViolation> {
    if report.peak_event_queue > bounds.event_queue {
        return Err(InvariantViolation::EventQueueBound {
            peak: report.peak_event_queue,
            bound: bounds.event_queue,
        });
    }
    if report.peak_in_flight > bounds.in_flight {
        return Err(InvariantViolation::InFlightBound {
            peak: report.peak_in_flight,
            bound: bounds.in_flight,
        });
    }
    if report.reconstruction_failures > 0 {
        return Err(InvariantViolation::ReconstructionFailures {
            count: report.reconstruction_failures,
        });
    }
    Ok(())
}

/// Checks that every report is bit-identical to the first — the sharded
/// engine's determinism contract. `shard_counts[i]` labels `reports[i]` for
/// the error message.
///
/// # Errors
///
/// Returns [`InvariantViolation::ShardMismatch`] naming the first diverging
/// field of the first diverging report.
pub fn check_shard_identity(
    reports: &[SimReport],
    shard_counts: &[usize],
) -> Result<(), InvariantViolation> {
    let Some(reference) = reports.first() else {
        return Ok(());
    };
    for (report, &shards) in reports.iter().zip(shard_counts).skip(1) {
        let field = if report.overall != reference.overall {
            "overall"
        } else if report.per_file != reference.per_file {
            "per_file"
        } else if report.node_utilization != reference.node_utilization {
            "node_utilization"
        } else if report.slots != reference.slots {
            "slots"
        } else if report.node_chunks_served != reference.node_chunks_served {
            "node_chunks_served"
        } else if report.completed_requests != reference.completed_requests {
            "completed_requests"
        } else if report.full_cache_hits != reference.full_cache_hits {
            "full_cache_hits"
        } else if report.failed_requests != reference.failed_requests {
            "failed_requests"
        } else if report.peak_event_queue != reference.peak_event_queue {
            "peak_event_queue"
        } else if report.peak_in_flight != reference.peak_in_flight {
            "peak_in_flight"
        } else if report != reference {
            "report"
        } else {
            continue;
        };
        return Err(InvariantViolation::ShardMismatch { shards, field });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::engine::{SimFile, Simulation};
    use crate::policy::CacheScheme;
    use sprout_queueing::dist::ServiceDistribution;

    fn run(shards: usize) -> SimReport {
        let files = vec![
            SimFile::new(0.05, 2, vec![0, 1, 2]),
            SimFile::new(0.05, 2, vec![1, 2, 3]),
            SimFile::new(0.05, 2, vec![0, 2, 3]),
        ];
        let nodes = vec![ServiceDistribution::exponential(0.5); 4];
        Simulation::new(
            nodes,
            files,
            CacheScheme::NoCache,
            SimConfig::new(4_000.0, 11).with_shards(shards),
        )
        .run()
    }

    #[test]
    fn healthy_run_passes_all_checks() {
        let reports: Vec<SimReport> = [1, 2, 4].iter().map(|&s| run(s)).collect();
        let bounds = EngineBounds::for_run(3, 4, 0, 0, 200);
        for report in &reports {
            check_report(report, bounds).unwrap();
        }
        check_shard_identity(&reports, &[1, 2, 4]).unwrap();
    }

    #[test]
    fn violations_are_reported_not_panicked() {
        let report = run(1);
        let tight = EngineBounds {
            event_queue: 0,
            in_flight: 200,
        };
        assert!(matches!(
            check_report(&report, tight),
            Err(InvariantViolation::EventQueueBound { .. })
        ));
        let tight = EngineBounds {
            event_queue: 100,
            in_flight: 0,
        };
        assert!(matches!(
            check_report(&report, tight),
            Err(InvariantViolation::InFlightBound { .. })
        ));

        let mut broken = run(1);
        broken.reconstruction_failures = 3;
        let bounds = EngineBounds::for_run(3, 4, 0, 0, 200);
        assert_eq!(
            check_report(&broken, bounds),
            Err(InvariantViolation::ReconstructionFailures { count: 3 })
        );
    }

    #[test]
    fn a_deliberately_tampered_report_fails_shard_identity() {
        let mut reports = vec![run(1), run(2)];
        check_shard_identity(&reports, &[1, 2]).unwrap();
        reports[1].completed_requests += 1;
        assert_eq!(
            check_shard_identity(&reports, &[1, 2]),
            Err(InvariantViolation::ShardMismatch {
                shards: 2,
                field: "completed_requests",
            })
        );
        // An empty or singleton set is vacuously identical.
        check_shard_identity(&[], &[]).unwrap();
    }
}
