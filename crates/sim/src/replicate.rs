//! Parallel replication runs with mean / confidence-interval aggregation.
//!
//! A single simulation run is one sample path; the paper's figures (and any
//! serious latency claim) need several independent replications. The runner
//! executes `R` seeded replications across `std::thread` workers and folds
//! the per-replication [`SimReport`]s into [`MeanCi`] summaries.
//!
//! Determinism: replication `r` always uses
//! [`replication_seed`]`(base, r)` and results are aggregated in replication
//! order, so the summary is **bit-identical for any worker count** — the
//! thread pool only changes wall-clock time, never the numbers.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use serde::{Deserialize, Serialize};

use crate::engine::{replication_seed, SimReport, Simulation};

/// Two-sided 97.5 % Student-t quantiles for `df = 1..=30`; beyond 30 the
/// normal quantile 1.96 is close enough. Replication counts are small (4–16
/// in the scenario suite), where the normal approximation would understate
/// a 95 % interval by up to 2x.
const T_975: [f64; 30] = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
    2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
    2.052, 2.048, 2.045, 2.042,
];

fn t_quantile_975(df: usize) -> f64 {
    if df == 0 {
        0.0
    } else if df <= T_975.len() {
        T_975[df - 1]
    } else {
        1.96
    }
}

/// Sample mean with spread: sample standard deviation and a 95 % Student-t
/// confidence half-width over replication-level values.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MeanCi {
    /// Number of replications aggregated.
    pub replications: usize,
    /// Mean over replications.
    pub mean: f64,
    /// Sample standard deviation (Bessel-corrected) over replications.
    pub std_dev: f64,
    /// Half-width of the 95 % confidence interval
    /// (`t_{0.975, R−1} · s / √R`; zero for a single replication).
    pub ci95: f64,
}

impl MeanCi {
    /// Aggregates replication-level values (empty input yields all zeros).
    pub fn from_values(values: &[f64]) -> Self {
        let n = values.len();
        if n == 0 {
            return MeanCi {
                replications: 0,
                mean: 0.0,
                std_dev: 0.0,
                ci95: 0.0,
            };
        }
        let mean = values.iter().sum::<f64>() / n as f64;
        let (std_dev, ci95) = if n > 1 {
            let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n as f64 - 1.0);
            let std_dev = var.sqrt();
            (std_dev, t_quantile_975(n - 1) * std_dev / (n as f64).sqrt())
        } else {
            (0.0, 0.0)
        };
        MeanCi {
            replications: n,
            mean,
            std_dev,
            ci95,
        }
    }

    /// Lower edge of the 95 % interval.
    pub fn lo(&self) -> f64 {
        self.mean - self.ci95
    }

    /// Upper edge of the 95 % interval.
    pub fn hi(&self) -> f64 {
        self.mean + self.ci95
    }
}

/// Aggregated outcome of `R` replications.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplicationSummary {
    /// Mean request latency across replications.
    pub mean_latency: MeanCi,
    /// 95th-percentile latency across replications.
    pub p95_latency: MeanCi,
    /// Completed requests summed over replications.
    pub completed_requests: u64,
    /// Failed (unservable) requests summed over replications.
    pub failed_requests: u64,
    /// Backend reconstruction failures summed over replications.
    pub reconstruction_failures: u64,
    /// The per-replication reports, in replication order.
    pub reports: Vec<SimReport>,
}

impl ReplicationSummary {
    /// Folds per-replication reports (in replication order).
    pub fn from_reports(reports: Vec<SimReport>) -> Self {
        let means: Vec<f64> = reports.iter().map(|r| r.overall.mean).collect();
        let p95s: Vec<f64> = reports.iter().map(|r| r.overall.p95).collect();
        ReplicationSummary {
            mean_latency: MeanCi::from_values(&means),
            p95_latency: MeanCi::from_values(&p95s),
            completed_requests: reports.iter().map(|r| r.completed_requests).sum(),
            failed_requests: reports.iter().map(|r| r.failed_requests).sum(),
            reconstruction_failures: reports.iter().map(|r| r.reconstruction_failures).sum(),
            reports,
        }
    }
}

/// Runs `replications` independent runs across up to `threads` OS threads.
///
/// `run(r)` must produce replication `r`'s report; it is called at most once
/// per index, from worker threads. Workers pull indices from a shared
/// counter, so an expensive replication does not stall the others; results
/// land in an index-addressed slot table, so aggregation order (and thus the
/// summary) is independent of scheduling.
pub fn run_replications<F>(replications: usize, threads: usize, run: F) -> ReplicationSummary
where
    F: Fn(usize) -> SimReport + Sync,
{
    let workers = threads.max(1).min(replications.max(1));
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<SimReport>>> =
        (0..replications).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let r = next.fetch_add(1, Ordering::Relaxed);
                if r >= replications {
                    break;
                }
                let report = run(r);
                *slots[r].lock().expect("no panics while holding the slot") = Some(report);
            });
        }
    });
    let reports: Vec<SimReport> = slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("worker did not panic")
                .expect("every replication index was claimed")
        })
        .collect();
    ReplicationSummary::from_reports(reports)
}

impl Simulation {
    /// Runs `replications` seeded replications of this simulation across
    /// `threads` workers on the analytic backend. Replication `r` runs with
    /// [`replication_seed`]`(seed, r)`; the summary is identical for any
    /// thread count.
    pub fn run_replications(&self, replications: usize, threads: usize) -> ReplicationSummary {
        let base = self.config().seed;
        run_replications(replications, threads, |r| {
            self.clone().with_seed(replication_seed(base, r)).run()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_ci_of_known_values() {
        let m = MeanCi::from_values(&[1.0, 2.0, 3.0]);
        assert_eq!(m.replications, 3);
        assert!((m.mean - 2.0).abs() < 1e-12);
        // Sample (Bessel-corrected) standard deviation: var = (1+0+1)/2 = 1.
        assert!((m.std_dev - 1.0).abs() < 1e-12);
        // t_{0.975, df=2} = 4.303, so ci95 = 4.303 / sqrt(3).
        assert!((m.ci95 - 4.303 / 3.0f64.sqrt()).abs() < 1e-9);
        assert!(m.lo() < m.mean && m.mean < m.hi());
        let single = MeanCi::from_values(&[5.0]);
        assert_eq!(single.ci95, 0.0);
        assert_eq!(MeanCi::from_values(&[]).replications, 0);
    }

    #[test]
    fn small_sample_intervals_are_wider_than_normal_theory() {
        // At R = 4 the t half-width must exceed the z half-width by ~62 %.
        let values = [1.0, 2.0, 3.0, 4.0];
        let m = MeanCi::from_values(&values);
        let z_halfwidth = 1.96 * m.std_dev / 2.0;
        assert!(m.ci95 > z_halfwidth * 1.5, "{} vs {z_halfwidth}", m.ci95);
        // Large samples converge to the normal quantile.
        let big: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let b = MeanCi::from_values(&big);
        assert!((b.ci95 - 1.96 * b.std_dev / 10.0).abs() < 1e-9);
    }

    #[test]
    fn replication_seeds_are_distinct_and_stable() {
        let a = replication_seed(7, 0);
        let b = replication_seed(7, 1);
        assert_ne!(a, b);
        assert_eq!(a, replication_seed(7, 0));
        assert_ne!(replication_seed(8, 0), a);
    }

    #[test]
    fn runner_visits_every_index_exactly_once() {
        use std::sync::atomic::AtomicU64;
        let calls = AtomicU64::new(0);
        let summary = run_replications(9, 4, |r| {
            calls.fetch_add(1, Ordering::Relaxed);
            let mut report = dummy_report();
            report.completed_requests = r as u64;
            report
        });
        assert_eq!(calls.load(Ordering::Relaxed), 9);
        assert_eq!(summary.reports.len(), 9);
        for (r, report) in summary.reports.iter().enumerate() {
            assert_eq!(report.completed_requests, r as u64);
        }
        assert_eq!(summary.completed_requests, (0..9).sum::<u64>());
    }

    fn dummy_report() -> SimReport {
        SimReport {
            overall: crate::metrics::LatencySummary::from_samples(&[1.0]),
            per_file: vec![],
            node_utilization: vec![],
            slots: crate::metrics::SlotCounts::new(1.0, 1.0),
            full_cache_hits: 0,
            completed_requests: 0,
            node_chunks_served: vec![],
            failed_requests: 0,
            reconstruction_failures: 0,
            peak_event_queue: 0,
            peak_in_flight: 0,
            logical_shards: 1,
            cache_promotions: 0,
            cache_evictions: 0,
        }
    }
}
