//! Simulation configuration.

use serde::{Deserialize, Serialize};

/// Run-length and sampling parameters of a simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Simulated horizon in seconds.
    pub horizon: f64,
    /// RNG seed (arrivals, service times, scheduling draws).
    pub seed: u64,
    /// Requests arriving before this time are simulated but excluded from the
    /// latency statistics (queue warm-up).
    pub warmup: f64,
    /// Mean latency of serving one chunk from the cache, in seconds. The
    /// paper treats cache reads as negligible next to HDD reads; a small
    /// nonzero value can be supplied to model the SSD of Table V.
    pub cache_chunk_latency: f64,
    /// Length of the time slots used for the chunk-source counts of Fig. 7
    /// (seconds).
    pub slot_length: f64,
    /// Number of event loops the run's logical shards are packed onto (the
    /// sharded engine's parallelism knob). Purely an execution parameter:
    /// reports are bit-identical at any value. `1` (the default) runs the
    /// classic single event loop.
    pub shards: usize,
}

impl SimConfig {
    /// Creates a configuration with the given horizon and seed and default
    /// warm-up (5 % of the horizon), zero cache latency and 5-second slots.
    ///
    /// # Panics
    ///
    /// Panics if `horizon <= 0`.
    pub fn new(horizon: f64, seed: u64) -> Self {
        assert!(horizon > 0.0, "horizon must be positive");
        SimConfig {
            horizon,
            seed,
            warmup: horizon * 0.05,
            cache_chunk_latency: 0.0,
            slot_length: 5.0,
            shards: 1,
        }
    }

    /// Sets the warm-up period.
    pub fn with_warmup(mut self, warmup: f64) -> Self {
        self.warmup = warmup.max(0.0);
        self
    }

    /// Sets the per-chunk cache read latency.
    pub fn with_cache_latency(mut self, latency: f64) -> Self {
        self.cache_chunk_latency = latency.max(0.0);
        self
    }

    /// Sets the slot length used for chunk-source accounting.
    pub fn with_slot_length(mut self, slot: f64) -> Self {
        assert!(slot > 0.0, "slot length must be positive");
        self.slot_length = slot;
        self
    }

    /// Sets the shard count (event loops the run is packed onto). Results
    /// are bit-identical at any value; see [`crate::shard::ShardedEngine`].
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn with_shards(mut self, shards: usize) -> Self {
        assert!(shards > 0, "shard count must be positive");
        self.shards = shards;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_and_builders() {
        let c = SimConfig::new(1000.0, 3);
        assert!((c.warmup - 50.0).abs() < 1e-9);
        assert_eq!(c.cache_chunk_latency, 0.0);
        assert_eq!(c.shards, 1);
        let c = c
            .with_warmup(10.0)
            .with_cache_latency(0.002)
            .with_slot_length(2.0)
            .with_shards(4);
        assert_eq!(c.warmup, 10.0);
        assert_eq!(c.cache_chunk_latency, 0.002);
        assert_eq!(c.slot_length, 2.0);
        assert_eq!(c.shards, 4);
        let clamped = SimConfig::new(10.0, 0).with_warmup(-5.0);
        assert_eq!(clamped.warmup, 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_horizon_panics() {
        let _ = SimConfig::new(0.0, 1);
    }

    #[test]
    #[should_panic(expected = "shard count")]
    fn zero_shards_panics() {
        let _ = SimConfig::new(10.0, 1).with_shards(0);
    }
}
