//! A deterministic event queue keyed by simulated time.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event scheduled at a simulated time.
#[derive(Debug, Clone, PartialEq)]
pub struct Scheduled<E> {
    /// Firing time.
    pub time: f64,
    /// Insertion sequence number (ties broken FIFO for determinism).
    pub seq: u64,
    /// The payload.
    pub event: E,
}

impl<E: PartialEq> Eq for Scheduled<E> {}

impl<E: PartialEq> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E: PartialEq> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse ordering: the BinaryHeap is a max-heap, we need earliest first.
        other
            .time
            .partial_cmp(&self.time)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered event queue.
#[derive(Debug, Clone, Default)]
pub struct EventQueue<E: PartialEq> {
    heap: BinaryHeap<Scheduled<E>>,
    seq: u64,
}

impl<E: PartialEq> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `event` at `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is NaN.
    pub fn push(&mut self, time: f64, event: E) {
        assert!(!time.is_nan(), "event time must not be NaN");
        self.heap.push(Scheduled {
            time,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(f64, E)> {
        self.heap.pop().map(|s| (s.time, s.event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_come_out_in_time_order() {
        let mut q = EventQueue::new();
        q.push(5.0, "c");
        q.push(1.0, "a");
        q.push(3.0, "b");
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(), Some((1.0, "a")));
        assert_eq!(q.pop(), Some((3.0, "b")));
        assert_eq!(q.pop(), Some((5.0, "c")));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn ties_break_in_insertion_order() {
        let mut q = EventQueue::new();
        q.push(2.0, 1u32);
        q.push(2.0, 2u32);
        q.push(2.0, 3u32);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_time_panics() {
        let mut q = EventQueue::new();
        q.push(f64::NAN, ());
    }
}
