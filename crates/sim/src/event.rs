//! A deterministic event queue keyed by simulated time.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event scheduled at a simulated time.
#[derive(Debug, Clone, PartialEq)]
pub struct Scheduled<E> {
    /// Firing time.
    pub time: f64,
    /// Insertion sequence number (ties broken FIFO for determinism).
    pub seq: u64,
    /// The payload.
    pub event: E,
}

impl<E: PartialEq> Eq for Scheduled<E> {}

impl<E: PartialEq> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E: PartialEq> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse ordering: the BinaryHeap is a max-heap, we need earliest first.
        other
            .time
            .partial_cmp(&self.time)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered event queue.
#[derive(Debug, Clone, Default)]
pub struct EventQueue<E: PartialEq> {
    heap: BinaryHeap<Scheduled<E>>,
    seq: u64,
}

impl<E: PartialEq> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `event` at `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is NaN.
    pub fn push(&mut self, time: f64, event: E) {
        assert!(!time.is_nan(), "event time must not be NaN");
        self.heap.push(Scheduled {
            time,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(f64, E)> {
        self.heap.pop().map(|s| (s.time, s.event))
    }

    /// Borrows the earliest event without removing it.
    pub fn peek(&self) -> Option<(f64, &E)> {
        self.heap.peek().map(|s| (s.time, &s.event))
    }

    /// The firing time of the earliest event, if any.
    pub fn next_time(&self) -> Option<f64> {
        self.heap.peek().map(|s| s.time)
    }

    /// Drops every pending event. The insertion sequence counter is *not*
    /// reset, so FIFO tie-breaking stays globally consistent across a clear
    /// (events pushed after a clear still fire after same-time events pushed
    /// before it would have).
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_come_out_in_time_order() {
        let mut q = EventQueue::new();
        q.push(5.0, "c");
        q.push(1.0, "a");
        q.push(3.0, "b");
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(), Some((1.0, "a")));
        assert_eq!(q.pop(), Some((3.0, "b")));
        assert_eq!(q.pop(), Some((5.0, "c")));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn ties_break_in_insertion_order() {
        let mut q = EventQueue::new();
        q.push(2.0, 1u32);
        q.push(2.0, 2u32);
        q.push(2.0, 3u32);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_time_panics() {
        let mut q = EventQueue::new();
        q.push(f64::NAN, ());
    }

    #[test]
    fn peek_and_next_time_do_not_consume() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek(), None);
        assert_eq!(q.next_time(), None);
        q.push(3.0, "b");
        q.push(1.0, "a");
        assert_eq!(q.peek(), Some((1.0, &"a")));
        assert_eq!(q.next_time(), Some(1.0));
        assert_eq!(q.len(), 2, "peek must not consume");
        assert_eq!(q.pop(), Some((1.0, "a")));
        assert_eq!(q.next_time(), Some(3.0));
    }

    #[test]
    fn peek_respects_fifo_tie_break_at_equal_times() {
        let mut q = EventQueue::new();
        q.push(2.0, 10u32);
        q.push(2.0, 20u32);
        assert_eq!(q.peek(), Some((2.0, &10)), "earliest insertion wins ties");
        q.pop();
        assert_eq!(q.peek(), Some((2.0, &20)));
    }

    #[test]
    fn clear_empties_but_keeps_tie_break_order() {
        let mut q = EventQueue::new();
        q.push(1.0, 1u32);
        q.push(1.0, 2u32);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        // Events pushed after the clear keep FIFO order among themselves.
        q.push(1.0, 3u32);
        q.push(1.0, 4u32);
        assert_eq!(q.pop(), Some((1.0, 3)));
        assert_eq!(q.pop(), Some((1.0, 4)));
    }
}
