//! Cache schemes the simulator can run.

use serde::{Deserialize, Serialize};

/// How chunk reads are scheduled onto storage nodes when a plan is in force.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchedulingRule {
    /// Probabilistic scheduling with the plan's `π_{i,j}` marginals (the
    /// policy analysed by the paper).
    Probabilistic,
    /// Load-oblivious: `k_i − d_i` distinct hosting nodes chosen uniformly at
    /// random (ablation baseline).
    Uniform,
}

/// The caching scheme simulated for the whole system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CacheScheme {
    /// No cache: every request reads `k_i` chunks from storage, scheduled
    /// uniformly over the file's hosting nodes.
    NoCache,
    /// A planner-provided placement (functional caching): file `i` has
    /// `cached_chunks[i]` coded chunks in the cache and schedules its
    /// remaining reads with the given marginals.
    Functional {
        /// Number of cached (functional) chunks per file.
        cached_chunks: Vec<usize>,
        /// Scheduling marginals `π_{i,j}` (dense, zero off-placement).
        scheduling: Vec<Vec<f64>>,
        /// How to turn the marginals into per-request node sets.
        rule: SchedulingRule,
    },
    /// Exact caching: like `Functional`, but the cached chunks are copies of
    /// the first `d_i` storage chunks, so those hosting nodes cannot serve
    /// the request. The scheduling marginals must already be zero on the
    /// excluded nodes (the optimizer run against the reduced placement
    /// guarantees this).
    Exact {
        /// Number of cached (copied) chunks per file.
        cached_chunks: Vec<usize>,
        /// Scheduling marginals over the non-excluded nodes.
        scheduling: Vec<Vec<f64>>,
    },
    /// Ceph-style LRU replicated cache tier: whole objects are promoted on
    /// access and evicted least-recently-used; a cache-resident object is
    /// served entirely from the cache.
    LruReplicated {
        /// Cache capacity in chunks (of the simulated chunk size).
        capacity_chunks: usize,
        /// Replication factor of the cache tier (the paper's baseline uses 2).
        replication: u32,
    },
}

impl CacheScheme {
    /// The paper's baseline: dual-replicated LRU cache tier.
    pub fn ceph_lru(capacity_chunks: usize) -> Self {
        CacheScheme::LruReplicated {
            capacity_chunks,
            replication: 2,
        }
    }

    /// Number of cached chunks for `file` under this scheme at plan time
    /// (LRU caching is dynamic, so it reports 0 here).
    pub fn planned_cache_chunks(&self, file: usize) -> usize {
        match self {
            CacheScheme::Functional { cached_chunks, .. }
            | CacheScheme::Exact { cached_chunks, .. } => {
                cached_chunks.get(file).copied().unwrap_or(0)
            }
            _ => 0,
        }
    }

    /// Checks the scheme can plan requests for `num_files` files: the
    /// planned schemes index `scheduling[file]` on every arrival, so a short
    /// scheduling matrix must fail fast here rather than mid-run.
    ///
    /// # Panics
    ///
    /// Panics if a Functional/Exact scheduling matrix has fewer rows than
    /// `num_files`.
    pub fn validate(&self, num_files: usize) {
        match self {
            CacheScheme::Functional { scheduling, .. } | CacheScheme::Exact { scheduling, .. } => {
                assert!(
                    scheduling.len() >= num_files,
                    "cache scheme has {} scheduling rows but the system has {num_files} files",
                    scheduling.len()
                );
            }
            CacheScheme::NoCache | CacheScheme::LruReplicated { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceph_lru_baseline_uses_dual_replication() {
        let s = CacheScheme::ceph_lru(100);
        assert_eq!(
            s,
            CacheScheme::LruReplicated {
                capacity_chunks: 100,
                replication: 2
            }
        );
        assert_eq!(s.planned_cache_chunks(3), 0);
    }

    #[test]
    fn planned_cache_chunks_lookup() {
        let s = CacheScheme::Functional {
            cached_chunks: vec![1, 2, 0],
            scheduling: vec![vec![]; 3],
            rule: SchedulingRule::Probabilistic,
        };
        assert_eq!(s.planned_cache_chunks(0), 1);
        assert_eq!(s.planned_cache_chunks(1), 2);
        assert_eq!(s.planned_cache_chunks(9), 0);
        assert_eq!(CacheScheme::NoCache.planned_cache_chunks(0), 0);
    }
}
