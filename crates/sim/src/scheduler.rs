//! Chunk-request scheduling: choosing which storage nodes serve a request.
//!
//! Probabilistic scheduling (the policy analysed by the paper) requires
//! drawing a *set* of exactly `k − d` distinct nodes such that node `j` is
//! included with probability `π_{i,j}`. Madow's systematic sampling does this
//! exactly whenever `Σ_j π_{i,j} = k − d`, which the optimizer guarantees.
//! A load-oblivious uniform sampler is also provided as an ablation baseline.

use rand::Rng;

/// Draws a subset whose inclusion probabilities are exactly `marginals`
/// (Madow's systematic sampling). The marginals must lie in `[0, 1]` and sum
/// to (approximately) an integer `s`; the returned set has exactly `s`
/// elements, identified by their index into `marginals`.
///
/// # Panics
///
/// Panics if a marginal is outside `[0, 1 + ε]`.
pub fn systematic_sample<R: Rng + ?Sized>(marginals: &[f64], rng: &mut R) -> Vec<usize> {
    let mut selected = Vec::new();
    systematic_sample_into(marginals, rng, &mut selected);
    selected
}

/// Allocation-free variant of [`systematic_sample`]: clears `selected` and
/// fills it with the drawn indices, reusing its capacity. The simulator's
/// arrival loop calls this once per request, so avoiding a fresh `Vec` per
/// call matters at long horizons.
///
/// # Panics
///
/// Panics if a marginal is outside `[0, 1 + ε]`.
pub fn systematic_sample_into<R: Rng + ?Sized>(
    marginals: &[f64],
    rng: &mut R,
    selected: &mut Vec<usize>,
) {
    selected.clear();
    let total: f64 = marginals.iter().sum();
    if total <= 1e-12 {
        return;
    }
    let u: f64 = rng.gen_range(0.0..1.0);
    let mut cum = 0.0;
    let mut next_mark = u;
    for (idx, &p) in marginals.iter().enumerate() {
        assert!(
            (-1e-9..=1.0 + 1e-9).contains(&p),
            "marginal {p} out of [0, 1]"
        );
        let p = p.clamp(0.0, 1.0);
        cum += p;
        while next_mark < cum - 1e-12 {
            selected.push(idx);
            next_mark += 1.0;
        }
    }
}

/// Chooses `count` distinct indices uniformly at random from `0..n`
/// (load-oblivious baseline).
///
/// # Panics
///
/// Panics if `count > n`.
pub fn uniform_sample<R: Rng + ?Sized>(n: usize, count: usize, rng: &mut R) -> Vec<usize> {
    let mut selected = Vec::new();
    uniform_sample_into(n, count, rng, &mut selected);
    selected
}

/// Allocation-free variant of [`uniform_sample`]: `selected` doubles as the
/// partial Fisher–Yates pool, so its capacity is reused across calls.
///
/// # Panics
///
/// Panics if `count > n`.
pub fn uniform_sample_into<R: Rng + ?Sized>(
    n: usize,
    count: usize,
    rng: &mut R,
    selected: &mut Vec<usize>,
) {
    assert!(count <= n, "cannot choose {count} distinct items from {n}");
    // Partial Fisher-Yates over the reused pool.
    selected.clear();
    selected.extend(0..n);
    for i in 0..count {
        let j = rng.gen_range(i..n);
        selected.swap(i, j);
    }
    selected.truncate(count);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn systematic_sampling_matches_marginals() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let marginals = vec![0.9, 0.7, 0.4, 0.6, 0.4]; // sums to 3
        let trials = 40_000;
        let mut counts = vec![0usize; marginals.len()];
        for _ in 0..trials {
            let set = systematic_sample(&marginals, &mut rng);
            assert_eq!(set.len(), 3, "always exactly 3 nodes selected");
            // distinct
            let mut sorted = set.clone();
            sorted.dedup();
            assert_eq!(sorted.len(), set.len());
            for idx in set {
                counts[idx] += 1;
            }
        }
        for (i, &c) in counts.iter().enumerate() {
            let freq = c as f64 / trials as f64;
            assert!(
                (freq - marginals[i]).abs() < 0.02,
                "node {i}: empirical {freq} vs marginal {}",
                marginals[i]
            );
        }
    }

    #[test]
    fn integer_marginals_are_always_selected() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let marginals = vec![1.0, 0.0, 1.0];
        for _ in 0..100 {
            let set = systematic_sample(&marginals, &mut rng);
            assert_eq!(set, vec![0, 2]);
        }
    }

    #[test]
    fn zero_marginals_select_nothing() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        assert!(systematic_sample(&[0.0, 0.0], &mut rng).is_empty());
        assert!(systematic_sample(&[], &mut rng).is_empty());
    }

    #[test]
    fn uniform_sample_is_distinct_and_in_range() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        for _ in 0..200 {
            let s = uniform_sample(7, 4, &mut rng);
            assert_eq!(s.len(), 4);
            let mut sorted = s.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 4);
            assert!(s.iter().all(|&i| i < 7));
        }
    }

    #[test]
    fn uniform_sample_covers_all_items_over_time() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let mut seen = [false; 6];
        for _ in 0..500 {
            for i in uniform_sample(6, 2, &mut rng) {
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "distinct items")]
    fn oversampling_panics() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let _ = uniform_sample(3, 5, &mut rng);
    }

    #[test]
    #[should_panic(expected = "out of [0, 1]")]
    fn invalid_marginal_panics() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let _ = systematic_sample(&[1.5, 0.5], &mut rng);
    }
}
