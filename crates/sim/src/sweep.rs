//! Declarative parameter sweeps on a work-stealing worker pool.
//!
//! The paper's evaluation is a grid of sweeps — latency vs. cache size,
//! object size, load, placement, scheme — and every figure reproducer walks
//! such a grid. This module gives them one engine:
//!
//! * [`SweepGrid`] — the cartesian product of named axes. Each resulting
//!   [`SweepCell`] carries a seed **derived from its coordinates** (not from
//!   its position in any work queue), so adding an axis value or filtering
//!   cells never perturbs the randomness of the remaining cells.
//! * a **work-stealing pool** — `cells × replications` are flattened into one
//!   task set; each worker owns a deque and steals from its siblings when it
//!   runs dry, so one expensive cell (a long optimization, a byte-accurate
//!   replication) never idles the rest of the pool.
//! * [`SweepReport`] — per-cell rows folding replication samples into
//!   [`MeanCi`] summaries, serialized as deterministic JSON that is
//!   **bit-identical for any worker count**: results land in index-addressed
//!   slots and are folded in (cell, replication) order, and the report
//!   records no wall-clock times or thread counts.
//! * [`SweepTimings`] — the wall-clock *side-channel* (`run_timed`): per-cell
//!   wall seconds and an overall figure, kept strictly outside the report so
//!   slow cells are visible without breaking its determinism guarantee.
//!
//! ```
//! use sprout_sim::sweep::{Sample, SweepGrid};
//!
//! let grid = SweepGrid::named("demo", 7)
//!     .axis("cache", ["100", "200"])
//!     .axis("policy", ["functional", "lru"]);
//! let report = grid.run(4, |cell, _rep, seed| {
//!     let cache: f64 = cell.coord("cache").parse().unwrap();
//!     Sample::new().metric("latency_s", cache / 100.0 + (seed % 3) as f64)
//! });
//! assert_eq!(report.rows.len(), 4);
//! assert_eq!(report.to_json(), grid.run(1, |cell, _rep, seed| {
//!     let cache: f64 = cell.coord("cache").parse().unwrap();
//!     Sample::new().metric("latency_s", cache / 100.0 + (seed % 3) as f64)
//! }).to_json());
//! ```

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use serde::{Deserialize, Serialize};

use crate::engine::replication_seed;
use crate::replicate::MeanCi;

/// One named axis of a sweep grid and its value labels.
///
/// Labels are strings: they key the JSON rows and feed the coordinate-derived
/// cell seeds, while the task closure recovers typed values either by parsing
/// the label or by indexing its own typed table with [`SweepCell::idx`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Axis {
    /// Axis name (e.g. `"cache_chunks"`).
    pub name: String,
    /// Value labels, in sweep order.
    pub values: Vec<String>,
}

/// One cell of the cartesian product: a coordinate assignment plus the
/// replication count and deterministic seed attached to it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepCell {
    /// Row-major index of the cell in the full grid (stable even when a
    /// filtered subset of cells is run).
    pub index: usize,
    /// `(axis name, value label)` pairs, one per axis, in axis order.
    pub coords: Vec<(String, String)>,
    /// Per-axis value indices, parallel to `coords`.
    pub indices: Vec<usize>,
    /// Number of replications to run for this cell.
    pub replications: usize,
    /// The cell's base seed, derived from its coordinates.
    pub seed: u64,
}

impl SweepCell {
    /// The value index of `axis` for this cell.
    ///
    /// # Panics
    ///
    /// Panics if the grid has no axis of that name.
    pub fn idx(&self, axis: &str) -> usize {
        self.coords
            .iter()
            .position(|(name, _)| name == axis)
            .map(|i| self.indices[i])
            .unwrap_or_else(|| panic!("sweep grid has no axis named '{axis}'"))
    }

    /// The value label of `axis` for this cell.
    ///
    /// # Panics
    ///
    /// Panics if the grid has no axis of that name.
    pub fn coord(&self, axis: &str) -> &str {
        self.coords
            .iter()
            .find(|(name, _)| name == axis)
            .map(|(_, value)| value.as_str())
            .unwrap_or_else(|| panic!("sweep grid has no axis named '{axis}'"))
    }

    /// The seed of replication `r` of this cell.
    pub fn replication_seed(&self, r: usize) -> u64 {
        replication_seed(self.seed, r)
    }
}

/// What one `(cell, replication)` task measured. Built with the fluent
/// helpers; the fold requires every replication of a cell to report the same
/// metric/counter names in the same order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Sample {
    /// Scalar measurements, folded into [`MeanCi`] across replications.
    pub metrics: Vec<(String, f64)>,
    /// Event counts, summed across replications.
    pub counters: Vec<(String, u64)>,
    /// High-water marks, max-folded across replications.
    pub maxima: Vec<(String, u64)>,
    /// Per-cell series (traces, CDFs, per-slot counts); the fold keeps
    /// replication 0's series.
    pub series: Vec<(String, Vec<f64>)>,
}

impl Sample {
    /// Creates an empty sample.
    pub fn new() -> Self {
        Sample::default()
    }

    /// Adds a scalar metric.
    pub fn metric(mut self, name: impl Into<String>, value: f64) -> Self {
        self.metrics.push((name.into(), value));
        self
    }

    /// Adds an event counter.
    pub fn counter(mut self, name: impl Into<String>, value: u64) -> Self {
        self.counters.push((name.into(), value));
        self
    }

    /// Adds a high-water mark.
    pub fn maximum(mut self, name: impl Into<String>, value: u64) -> Self {
        self.maxima.push((name.into(), value));
        self
    }

    /// Adds a series.
    pub fn series(mut self, name: impl Into<String>, values: Vec<f64>) -> Self {
        self.series.push((name.into(), values));
        self
    }
}

/// One folded row of a [`SweepReport`], keyed by its cell coordinates.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRow {
    /// `(axis name, value label)` coordinates of the cell.
    pub coords: Vec<(String, String)>,
    /// Replications folded into this row.
    pub replications: usize,
    /// Scalar metrics with mean / std-dev / 95 % CI across replications.
    pub metrics: Vec<(String, MeanCi)>,
    /// Counters summed across replications.
    pub counters: Vec<(String, u64)>,
    /// High-water marks max-folded across replications.
    pub maxima: Vec<(String, u64)>,
    /// Replication 0's series.
    pub series: Vec<(String, Vec<f64>)>,
}

impl SweepRow {
    /// The folded metric of that name, if present.
    pub fn metric(&self, name: &str) -> Option<&MeanCi> {
        self.metrics.iter().find(|(n, _)| n == name).map(|(_, m)| m)
    }

    /// The counter of that name, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// The series of that name, if present.
    pub fn series(&self, name: &str) -> Option<&[f64]> {
        self.series
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_slice())
    }

    /// The value label of `axis` for this row.
    ///
    /// # Panics
    ///
    /// Panics if no axis of that name exists.
    pub fn coord(&self, axis: &str) -> &str {
        self.coords
            .iter()
            .find(|(name, _)| name == axis)
            .map(|(_, value)| value.as_str())
            .unwrap_or_else(|| panic!("row has no axis named '{axis}'"))
    }
}

/// The structured outcome of a sweep: one row per executed cell, in cell
/// order, plus the grid shape and free-form metadata/notes.
///
/// [`SweepReport::to_json`] is the artifact format consumed by CI; it
/// deliberately records nothing scheduling-dependent (no thread counts, no
/// wall-clock times), so the serialization is bit-identical for any worker
/// count.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// Sweep name (figure/table identifier).
    pub name: String,
    /// The grid axes.
    pub axes: Vec<Axis>,
    /// Free-form key/value metadata (system shape, scale, flags).
    pub meta: Vec<(String, String)>,
    /// Human-readable notes (paper claims, measured shapes).
    pub notes: Vec<String>,
    /// Folded rows, in cell order.
    pub rows: Vec<SweepRow>,
}

impl SweepReport {
    /// Appends a metadata entry.
    pub fn with_meta(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.meta.push((key.into(), value.into()));
        self
    }

    /// Appends a note.
    pub fn with_note(mut self, note: impl Into<String>) -> Self {
        self.notes.push(note.into());
        self
    }

    /// The first row whose coordinates contain every `(axis, label)` pair in
    /// `coords`.
    pub fn find_row(&self, coords: &[(&str, &str)]) -> Option<&SweepRow> {
        self.rows.iter().find(|row| {
            coords.iter().all(|&(axis, label)| {
                row.coords
                    .iter()
                    .any(|(name, value)| name == axis && value == label)
            })
        })
    }

    /// Serializes the report as deterministic JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024 + self.rows.len() * 256);
        out.push_str("{\n");
        out.push_str(&format!("  \"sweep\": {},\n", json_str(&self.name)));
        out.push_str("  \"meta\": {");
        for (i, (k, v)) in self.meta.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("{}: {}", json_str(k), json_str(v)));
        }
        out.push_str("},\n");
        out.push_str("  \"axes\": [");
        for (i, axis) in self.axes.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"name\": {}, \"values\": [",
                json_str(&axis.name)
            ));
            for (j, v) in axis.values.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&json_str(v));
            }
            out.push_str("]}");
        }
        out.push_str("],\n");
        out.push_str("  \"rows\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            out.push_str("    {\"cell\": {");
            for (j, (axis, value)) in row.coords.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("{}: {}", json_str(axis), json_str(value)));
            }
            out.push_str(&format!("}}, \"replications\": {}", row.replications));
            if !row.metrics.is_empty() {
                out.push_str(", \"metrics\": {");
                for (j, (name, m)) in row.metrics.iter().enumerate() {
                    if j > 0 {
                        out.push_str(", ");
                    }
                    out.push_str(&format!(
                        "{}: {{\"mean\": {}, \"std_dev\": {}, \"ci95\": {}}}",
                        json_str(name),
                        json_f64(m.mean),
                        json_f64(m.std_dev),
                        json_f64(m.ci95)
                    ));
                }
                out.push('}');
            }
            if !row.counters.is_empty() {
                out.push_str(", \"counters\": {");
                for (j, (name, v)) in row.counters.iter().enumerate() {
                    if j > 0 {
                        out.push_str(", ");
                    }
                    out.push_str(&format!("{}: {v}", json_str(name)));
                }
                out.push('}');
            }
            if !row.maxima.is_empty() {
                out.push_str(", \"maxima\": {");
                for (j, (name, v)) in row.maxima.iter().enumerate() {
                    if j > 0 {
                        out.push_str(", ");
                    }
                    out.push_str(&format!("{}: {v}", json_str(name)));
                }
                out.push('}');
            }
            if !row.series.is_empty() {
                out.push_str(", \"series\": {");
                for (j, (name, values)) in row.series.iter().enumerate() {
                    if j > 0 {
                        out.push_str(", ");
                    }
                    out.push_str(&format!("{}: [", json_str(name)));
                    for (k, v) in values.iter().enumerate() {
                        if k > 0 {
                            out.push_str(", ");
                        }
                        out.push_str(&json_f64(*v));
                    }
                    out.push(']');
                }
                out.push('}');
            }
            out.push('}');
            if i + 1 != self.rows.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ],\n");
        out.push_str("  \"notes\": [");
        for (i, note) in self.notes.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&json_str(note));
        }
        out.push_str("]\n}\n");
        out
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats a float for JSON. Rust's shortest-round-trip `Display` is
/// deterministic, so identical values always serialize identically;
/// non-finite values (invalid JSON numbers) become `null`.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Wall-clock timing of one executed cell: total seconds across its
/// replications and the slowest single replication.
#[derive(Debug, Clone, PartialEq)]
pub struct CellTiming {
    /// `(axis name, value label)` coordinates of the cell.
    pub coords: Vec<(String, String)>,
    /// Replications measured.
    pub replications: usize,
    /// Sum of replication wall times, in seconds.
    pub total_s: f64,
    /// Wall time of the slowest replication, in seconds.
    pub max_replication_s: f64,
}

/// The wall-clock side-channel of a sweep run.
///
/// [`SweepReport`] deliberately records nothing scheduling-dependent so its
/// JSON stays byte-identical across worker counts; per-cell wall time
/// therefore lives *here*, in a separate, **non-diffed** artifact (plus a
/// stderr summary), so slow cells are visible without perturbing the report.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepTimings {
    /// Sweep name (matches the report).
    pub name: String,
    /// Worker count the run was asked for.
    pub threads: usize,
    /// End-to-end wall time of the sweep, in seconds.
    pub wall_s: f64,
    /// Per-cell timings, in cell order.
    pub cells: Vec<CellTiming>,
}

impl SweepTimings {
    /// Cells sorted slowest-first by total wall time.
    pub fn slowest(&self) -> Vec<&CellTiming> {
        let mut cells: Vec<&CellTiming> = self.cells.iter().collect();
        cells.sort_by(|a, b| {
            b.total_s
                .partial_cmp(&a.total_s)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        cells
    }

    /// A short human-readable summary (for stderr): overall wall time and
    /// the `top` slowest cells.
    pub fn summary(&self, top: usize) -> String {
        let mut out = format!(
            "sweep '{}': {} cells in {:.2} s wall on {} thread{}",
            self.name,
            self.cells.len(),
            self.wall_s,
            self.threads,
            if self.threads == 1 { "" } else { "s" },
        );
        for cell in self.slowest().into_iter().take(top) {
            let coords = cell
                .coords
                .iter()
                .map(|(axis, value)| format!("{axis}={value}"))
                .collect::<Vec<_>>()
                .join(", ");
            out.push_str(&format!(
                "\n  {:>8.3} s  [{coords}] ({} rep{}, max {:.3} s)",
                cell.total_s,
                cell.replications,
                if cell.replications == 1 { "" } else { "s" },
                cell.max_replication_s,
            ));
        }
        out
    }

    /// Serializes the timings as JSON (same structural conventions as the
    /// report, but *not* deterministic — wall times differ run to run, which
    /// is why this artifact is never diffed).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.cells.len() * 128);
        out.push_str("{\n");
        out.push_str(&format!("  \"sweep\": {},\n", json_str(&self.name)));
        out.push_str(&format!("  \"threads\": {},\n", self.threads));
        out.push_str(&format!("  \"wall_s\": {},\n", json_f64(self.wall_s)));
        out.push_str("  \"cells\": [\n");
        for (i, cell) in self.cells.iter().enumerate() {
            out.push_str("    {\"cell\": {");
            for (j, (axis, value)) in cell.coords.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("{}: {}", json_str(axis), json_str(value)));
            }
            out.push_str(&format!(
                "}}, \"replications\": {}, \"total_s\": {}, \"max_replication_s\": {}}}",
                cell.replications,
                json_f64(cell.total_s),
                json_f64(cell.max_replication_s)
            ));
            if i + 1 != self.cells.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// The sweep was cancelled before every task ran; no report is produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepCancelled;

impl std::fmt::Display for SweepCancelled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sweep cancelled before all cells completed")
    }
}

impl std::error::Error for SweepCancelled {}

/// FNV-1a over the coordinate labels: ties a cell's seed to *what* it
/// measures instead of *where* it sits in the work queue.
fn coord_hash(coords: &[(String, String)]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash ^= 0xff; // separator so ("ab","c") != ("a","bc")
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for (axis, value) in coords {
        eat(axis.as_bytes());
        eat(value.as_bytes());
    }
    hash
}

/// A declarative sweep: named axes whose cartesian product is executed on a
/// work-stealing pool. See the [module docs](self) for the guarantees.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepGrid {
    name: String,
    base_seed: u64,
    replications: usize,
    axes: Vec<Axis>,
}

impl SweepGrid {
    /// Creates an empty grid (a single axis-less cell) with a base seed.
    pub fn named(name: impl Into<String>, base_seed: u64) -> Self {
        SweepGrid {
            name: name.into(),
            base_seed,
            replications: 1,
            axes: Vec::new(),
        }
    }

    /// Appends an axis.
    ///
    /// # Panics
    ///
    /// Panics on a duplicate axis name or an empty value list.
    pub fn axis<I, S>(mut self, name: impl Into<String>, values: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let name = name.into();
        assert!(
            self.axes.iter().all(|a| a.name != name),
            "duplicate sweep axis '{name}'"
        );
        let values: Vec<String> = values.into_iter().map(Into::into).collect();
        assert!(!values.is_empty(), "sweep axis '{name}' has no values");
        // Duplicate labels would collapse cell identity: coordinate-derived
        // seeds would collide and JSON rows would become indistinguishable.
        for (i, v) in values.iter().enumerate() {
            assert!(
                !values[..i].contains(v),
                "duplicate value '{v}' on sweep axis '{name}'"
            );
        }
        self.axes.push(Axis { name, values });
        self
    }

    /// Sets the default replication count per cell (default 1).
    pub fn replications(mut self, replications: usize) -> Self {
        assert!(replications > 0, "replications must be positive");
        self.replications = replications;
        self
    }

    /// The grid name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The axes, in declaration order.
    pub fn axes(&self) -> &[Axis] {
        &self.axes
    }

    /// Number of cells in the full cartesian product.
    pub fn len(&self) -> usize {
        self.axes.iter().map(|a| a.values.len()).product()
    }

    /// `true` when the grid has an axis with zero values — impossible by
    /// construction, so only a grid built with no axes at all is a single
    /// cell and never empty; kept for API completeness.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Materializes the cells of the cartesian product, row-major (the last
    /// axis varies fastest). Callers may filter the list or adjust per-cell
    /// `replications` before [`SweepGrid::run_cells`]; seeds stay attached to
    /// coordinates, so neither operation perturbs the surviving cells.
    pub fn cells(&self) -> Vec<SweepCell> {
        let total = self.len();
        let mut cells = Vec::with_capacity(total);
        for index in 0..total {
            let mut rem = index;
            let mut indices = vec![0usize; self.axes.len()];
            for (a, axis) in self.axes.iter().enumerate().rev() {
                indices[a] = rem % axis.values.len();
                rem /= axis.values.len();
            }
            let coords: Vec<(String, String)> = self
                .axes
                .iter()
                .zip(&indices)
                .map(|(axis, &i)| (axis.name.clone(), axis.values[i].clone()))
                .collect();
            let seed = crate::engine::mix_seed(self.base_seed, coord_hash(&coords));
            cells.push(SweepCell {
                index,
                coords,
                indices,
                replications: self.replications,
                seed,
            });
        }
        cells
    }

    /// Runs every cell of the grid across `threads` workers.
    ///
    /// `task(cell, r, seed)` produces replication `r`'s [`Sample`] for the
    /// cell, where `seed = cell.replication_seed(r)`. The report is identical
    /// for any `threads` value.
    pub fn run<F>(&self, threads: usize, task: F) -> SweepReport
    where
        F: Fn(&SweepCell, usize, u64) -> Sample + Sync,
    {
        self.run_cells(self.cells(), threads, task)
    }

    /// Like [`SweepGrid::run`], additionally returning the wall-clock
    /// [`SweepTimings`] side-channel (which never influences the report).
    pub fn run_timed<F>(&self, threads: usize, task: F) -> (SweepReport, SweepTimings)
    where
        F: Fn(&SweepCell, usize, u64) -> Sample + Sync,
    {
        self.run_cells_timed(self.cells(), threads, task)
    }

    /// Runs an explicit cell list (e.g. a filtered subset of
    /// [`SweepGrid::cells`], or cells with adjusted replication counts).
    pub fn run_cells<F>(&self, cells: Vec<SweepCell>, threads: usize, task: F) -> SweepReport
    where
        F: Fn(&SweepCell, usize, u64) -> Sample + Sync,
    {
        self.run_cells_timed(cells, threads, task).0
    }

    /// Like [`SweepGrid::run_cells`], additionally returning the wall-clock
    /// [`SweepTimings`] side-channel.
    pub fn run_cells_timed<F>(
        &self,
        cells: Vec<SweepCell>,
        threads: usize,
        task: F,
    ) -> (SweepReport, SweepTimings)
    where
        F: Fn(&SweepCell, usize, u64) -> Sample + Sync,
    {
        let never = AtomicBool::new(false);
        self.run_cells_instrumented(cells, threads, &never, task)
            .expect("an unset cancel token never cancels")
    }

    /// Like [`SweepGrid::run_cells`], but checks `cancel` between tasks:
    /// once it is `true`, workers stop claiming work and the call returns
    /// [`SweepCancelled`] instead of a (partial) report.
    pub fn run_cells_cancellable<F>(
        &self,
        cells: Vec<SweepCell>,
        threads: usize,
        cancel: &AtomicBool,
        task: F,
    ) -> Result<SweepReport, SweepCancelled>
    where
        F: Fn(&SweepCell, usize, u64) -> Sample + Sync,
    {
        self.run_cells_instrumented(cells, threads, cancel, task)
            .map(|(report, _)| report)
    }

    /// The instrumented core every run path funnels through: executes the
    /// task set on the work-stealing pool, folds the deterministic report
    /// and measures the wall-clock side-channel alongside it.
    fn run_cells_instrumented<F>(
        &self,
        cells: Vec<SweepCell>,
        threads: usize,
        cancel: &AtomicBool,
        task: F,
    ) -> Result<(SweepReport, SweepTimings), SweepCancelled>
    where
        F: Fn(&SweepCell, usize, u64) -> Sample + Sync,
    {
        let sweep_start = std::time::Instant::now();
        // Flatten cells × replications into one task set so a slow cell's
        // replications can spread over the pool.
        let tasks: Vec<(usize, usize)> = cells
            .iter()
            .enumerate()
            .flat_map(|(c, cell)| (0..cell.replications.max(1)).map(move |r| (c, r)))
            .collect();
        let slots: Vec<Mutex<Option<(Sample, f64)>>> =
            tasks.iter().map(|_| Mutex::new(None)).collect();

        let completed = run_stealing(tasks.len(), threads, cancel, |t| {
            let (c, r) = tasks[t];
            let cell = &cells[c];
            let task_start = std::time::Instant::now();
            let sample = task(cell, r, cell.replication_seed(r));
            let elapsed = task_start.elapsed().as_secs_f64();
            *slots[t].lock().expect("no panics while holding a slot") = Some((sample, elapsed));
        });
        if !completed {
            return Err(SweepCancelled);
        }

        // Fold in (cell, replication) order — scheduling-independent.
        let mut samples: Vec<Vec<Sample>> = cells.iter().map(|_| Vec::new()).collect();
        let mut timings: Vec<CellTiming> = cells
            .iter()
            .map(|cell| CellTiming {
                coords: cell.coords.clone(),
                replications: 0,
                total_s: 0.0,
                max_replication_s: 0.0,
            })
            .collect();
        for (t, slot) in slots.into_iter().enumerate() {
            let (sample, elapsed) = slot
                .into_inner()
                .expect("worker did not panic")
                .expect("every task index was claimed");
            samples[tasks[t].0].push(sample);
            let timing = &mut timings[tasks[t].0];
            timing.replications += 1;
            timing.total_s += elapsed;
            timing.max_replication_s = timing.max_replication_s.max(elapsed);
        }
        let rows = cells
            .iter()
            .zip(samples)
            .map(|(cell, reps)| fold_cell(cell, reps))
            .collect();
        let report = SweepReport {
            name: self.name.clone(),
            axes: self.axes.clone(),
            meta: Vec::new(),
            notes: Vec::new(),
            rows,
        };
        let timings = SweepTimings {
            name: self.name.clone(),
            threads: threads.max(1),
            wall_s: sweep_start.elapsed().as_secs_f64(),
            cells: timings,
        };
        Ok((report, timings))
    }
}

/// Folds one cell's replication samples into a row.
///
/// # Panics
///
/// Panics if replications of the same cell disagree on metric/counter names
/// (a task bug that would otherwise mis-align the fold).
fn fold_cell(cell: &SweepCell, reps: Vec<Sample>) -> SweepRow {
    let first = reps.first().cloned().unwrap_or_default();
    for (r, sample) in reps.iter().enumerate().skip(1) {
        let names = |v: &[(String, f64)]| v.iter().map(|(n, _)| n.clone()).collect::<Vec<_>>();
        assert_eq!(
            names(&first.metrics),
            names(&sample.metrics),
            "cell {:?}: replication {r} reports different metrics",
            cell.coords
        );
        let cnames = |v: &[(String, u64)]| v.iter().map(|(n, _)| n.clone()).collect::<Vec<_>>();
        assert_eq!(
            cnames(&first.counters),
            cnames(&sample.counters),
            "cell {:?}: replication {r} reports different counters",
            cell.coords
        );
        assert_eq!(
            cnames(&first.maxima),
            cnames(&sample.maxima),
            "cell {:?}: replication {r} reports different maxima",
            cell.coords
        );
    }
    let metrics = first
        .metrics
        .iter()
        .enumerate()
        .map(|(i, (name, _))| {
            let values: Vec<f64> = reps.iter().map(|s| s.metrics[i].1).collect();
            (name.clone(), MeanCi::from_values(&values))
        })
        .collect();
    let counters = first
        .counters
        .iter()
        .enumerate()
        .map(|(i, (name, _))| (name.clone(), reps.iter().map(|s| s.counters[i].1).sum()))
        .collect();
    let maxima = first
        .maxima
        .iter()
        .enumerate()
        .map(|(i, (name, _))| {
            (
                name.clone(),
                reps.iter().map(|s| s.maxima[i].1).max().unwrap_or(0),
            )
        })
        .collect();
    SweepRow {
        coords: cell.coords.clone(),
        replications: reps.len(),
        metrics,
        counters,
        maxima,
        series: first.series,
    }
}

/// Executes tasks `0..count` on `threads` workers with per-worker deques and
/// sibling stealing. Returns `false` if `cancel` became `true` before every
/// task ran.
fn run_stealing<F>(count: usize, threads: usize, cancel: &AtomicBool, run: F) -> bool
where
    F: Fn(usize) + Sync,
{
    if count == 0 {
        return !cancel.load(Ordering::SeqCst);
    }
    let workers = threads.max(1).min(count);
    // Round-robin initial distribution: contiguous (cell, replication) tasks
    // land on different workers, so same-cell work starts spread out.
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..workers)
        .map(|w| Mutex::new((w..count).step_by(workers).collect()))
        .collect();
    let run = &run;
    let queues = &queues;
    std::thread::scope(|scope| {
        for w in 0..workers {
            scope.spawn(move || loop {
                if cancel.load(Ordering::SeqCst) {
                    return;
                }
                // Own queue first (front: cache-friendly order)…
                let mut next = queues[w].lock().expect("queue lock").pop_front();
                // …then steal from a sibling's back.
                if next.is_none() {
                    for i in 1..workers {
                        let victim = (w + i) % workers;
                        next = queues[victim].lock().expect("queue lock").pop_back();
                        if next.is_some() {
                            break;
                        }
                    }
                }
                match next {
                    Some(t) => run(t),
                    None => return,
                }
            });
        }
    });
    !cancel.load(Ordering::SeqCst)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_grid() -> SweepGrid {
        SweepGrid::named("unit", 42)
            .axis("a", ["1", "2", "3"])
            .axis("b", ["x", "y"])
            .replications(3)
    }

    fn demo_task(cell: &SweepCell, rep: usize, seed: u64) -> Sample {
        Sample::new()
            .metric(
                "value",
                (cell.idx("a") * 10 + cell.idx("b")) as f64 + rep as f64,
            )
            .metric("seed_low", (seed % 97) as f64)
            .counter("count", 1 + rep as u64)
            .maximum("peak", (seed % 13) + rep as u64)
            .series("trace", vec![rep as f64, cell.index as f64])
    }

    #[test]
    fn cartesian_product_is_row_major_and_seeded_by_coordinates() {
        let grid = demo_grid();
        let cells = grid.cells();
        assert_eq!(cells.len(), 6);
        assert_eq!(cells[0].coords[0], ("a".into(), "1".into()));
        assert_eq!(cells[0].coords[1], ("b".into(), "x".into()));
        assert_eq!(cells[1].coords[1], ("b".into(), "y".into()));
        assert_eq!(cells[2].coords[0], ("a".into(), "2".into()));
        // Seeds are distinct and stable.
        let seeds: Vec<u64> = cells.iter().map(|c| c.seed).collect();
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), seeds.len(), "cell seeds must be distinct");
        assert_eq!(grid.cells()[3].seed, seeds[3]);
        // A cell's seed depends on its coordinates, not its position:
        // dropping cells does not change survivors' seeds.
        let filtered: Vec<SweepCell> = grid
            .cells()
            .into_iter()
            .filter(|c| c.coord("b") == "y")
            .collect();
        assert_eq!(filtered[0].seed, seeds[1]);
        assert_eq!(filtered[1].seed, seeds[3]);
    }

    #[test]
    fn report_is_bit_identical_across_worker_counts() {
        let grid = demo_grid();
        let reference = grid.run(1, demo_task).to_json();
        for threads in [2, 3, 4, 7, 16] {
            assert_eq!(
                grid.run(threads, demo_task).to_json(),
                reference,
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn fold_aggregates_metrics_counters_maxima_and_series() {
        let grid = demo_grid();
        let report = grid.run(4, demo_task);
        assert_eq!(report.rows.len(), 6);
        let row = report.find_row(&[("a", "2"), ("b", "y")]).unwrap();
        let m = row.metric("value").unwrap();
        assert_eq!(m.replications, 3);
        // values are base, base+1, base+2 -> mean = base + 1.
        assert!((m.mean - 12.0).abs() < 1e-12);
        assert_eq!(row.counter("count"), Some(1 + 2 + 3));
        // Series comes from replication 0.
        assert_eq!(row.series("trace").unwrap()[0], 0.0);
        assert_eq!(row.replications, 3);
    }

    #[test]
    fn filtered_cells_and_per_cell_replications_are_respected() {
        let grid = demo_grid();
        let mut cells: Vec<SweepCell> = grid
            .cells()
            .into_iter()
            .filter(|c| c.coord("a") != "3")
            .collect();
        cells[0].replications = 1;
        let report = grid.run_cells(cells, 2, demo_task);
        assert_eq!(report.rows.len(), 4);
        assert_eq!(report.rows[0].replications, 1);
        assert_eq!(report.rows[1].replications, 3);
        assert!(report.find_row(&[("a", "3")]).is_none());
    }

    #[test]
    fn timings_cover_every_cell_without_touching_the_report() {
        let grid = demo_grid();
        let (report, timings) = grid.run_timed(3, demo_task);
        // The side-channel must not perturb the deterministic report.
        assert_eq!(report.to_json(), grid.run(1, demo_task).to_json());
        assert_eq!(timings.cells.len(), report.rows.len());
        for (timing, row) in timings.cells.iter().zip(&report.rows) {
            assert_eq!(timing.coords, row.coords);
            assert_eq!(timing.replications, row.replications);
            assert!(timing.total_s >= timing.max_replication_s);
            assert!(timing.max_replication_s >= 0.0);
        }
        assert!(timings.wall_s >= 0.0);
        assert_eq!(timings.threads, 3);
        assert_eq!(timings.slowest().len(), 6);
        let json = timings.to_json();
        assert!(json.contains("\"wall_s\""));
        assert!(json.contains("\"total_s\""));
        assert!(json.ends_with("}\n"));
        let summary = timings.summary(2);
        assert!(summary.contains("6 cells"));
        assert_eq!(summary.lines().count(), 3, "header + top-2 cells");
    }

    #[test]
    fn empty_cell_list_yields_a_valid_empty_report() {
        let grid = demo_grid();
        let report = grid.run_cells(Vec::new(), 4, demo_task);
        assert!(report.rows.is_empty());
        let json = report.to_json();
        assert!(json.contains("\"rows\": [\n  ]"));
        assert!(json.ends_with("}\n"));
    }

    #[test]
    fn axisless_grid_is_a_single_cell() {
        let grid = SweepGrid::named("point", 1);
        assert_eq!(grid.len(), 1);
        let report = grid.run(1, |_, _, _| Sample::new().metric("m", 1.0));
        assert_eq!(report.rows.len(), 1);
        assert!(report.rows[0].coords.is_empty());
    }

    #[test]
    fn pre_set_cancel_token_cancels_without_running_tasks() {
        use std::sync::atomic::AtomicUsize;
        let grid = demo_grid();
        let cancel = AtomicBool::new(true);
        let ran = AtomicUsize::new(0);
        let result = grid.run_cells_cancellable(grid.cells(), 4, &cancel, |c, r, s| {
            ran.fetch_add(1, Ordering::SeqCst);
            demo_task(c, r, s)
        });
        assert_eq!(result, Err(SweepCancelled));
        assert_eq!(ran.load(Ordering::SeqCst), 0, "no task may start");
    }

    #[test]
    fn mid_run_cancellation_stops_claiming_tasks() {
        use std::sync::atomic::AtomicUsize;
        let grid = SweepGrid::named("cancel", 3).axis("i", (0..64).map(|i| i.to_string()));
        let cancel = AtomicBool::new(false);
        let ran = AtomicUsize::new(0);
        let result = grid.run_cells_cancellable(grid.cells(), 2, &cancel, |_, _, _| {
            // The third completed task trips the token; workers then stop
            // claiming and the sweep reports cancellation.
            if ran.fetch_add(1, Ordering::SeqCst) == 2 {
                cancel.store(true, Ordering::SeqCst);
            }
            Sample::new()
        });
        assert_eq!(result, Err(SweepCancelled));
        assert!(
            ran.load(Ordering::SeqCst) < 64,
            "cancellation must stop the sweep early"
        );
    }

    #[test]
    fn json_escapes_and_formats_deterministically() {
        let report = SweepReport {
            name: "quote\"and\\slash".into(),
            axes: vec![Axis {
                name: "x".into(),
                values: vec!["a\nb".into()],
            }],
            meta: vec![("k".into(), "v".into())],
            notes: vec!["tab\there".into()],
            rows: vec![SweepRow {
                coords: vec![("x".into(), "a\nb".into())],
                replications: 1,
                metrics: vec![("nan".into(), MeanCi::from_values(&[f64::NAN]))],
                counters: vec![("c".into(), 7)],
                maxima: vec![],
                series: vec![("s".into(), vec![1.0, 0.5, f64::INFINITY])],
            }],
        };
        let json = report.to_json();
        assert!(json.contains("quote\\\"and\\\\slash"));
        assert!(json.contains("a\\nb"));
        assert!(json.contains("tab\\there"));
        assert!(json.contains("\"mean\": null"), "NaN serializes as null");
        assert!(json.contains("[1, 0.5, null]"));
    }

    #[test]
    #[should_panic(expected = "duplicate sweep axis")]
    fn duplicate_axis_panics() {
        let _ = SweepGrid::named("dup", 0).axis("a", ["1"]).axis("a", ["2"]);
    }

    #[test]
    #[should_panic(expected = "duplicate value '1' on sweep axis 'a'")]
    fn duplicate_axis_value_panics() {
        let _ = SweepGrid::named("dup", 0).axis("a", ["1", "2", "1"]);
    }

    #[test]
    #[should_panic(expected = "replication 1 reports different metrics")]
    fn mismatched_metric_names_across_replications_panic() {
        let grid = SweepGrid::named("bad", 0).axis("a", ["1"]).replications(2);
        let _ = grid.run(1, |_, rep, _| {
            if rep == 0 {
                Sample::new().metric("m", 1.0)
            } else {
                Sample::new().metric("other", 1.0)
            }
        });
    }

    #[test]
    #[should_panic(expected = "no axis named")]
    fn unknown_axis_lookup_panics() {
        let grid = SweepGrid::named("g", 0).axis("a", ["1"]);
        let cells = grid.cells();
        let _ = cells[0].coord("nope");
    }
}
