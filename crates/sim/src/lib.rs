//! Discrete-event simulation of an erasure-coded storage cluster with
//! caching.
//!
//! The simulator realizes exactly the stochastic model analysed in §III–IV of
//! the paper: Poisson file-request arrivals, per-node FIFO queues with
//! general service-time distributions, and probabilistic scheduling of each
//! request's `k_i − d_i` chunk reads onto distinct storage nodes, with the
//! remaining `d_i` chunks served by the compute-server cache. It is used to
//!
//! * validate that the Lemma 1 bound really upper-bounds simulated latency,
//! * compare functional caching against exact caching, Ceph-style LRU
//!   replicated caching and no caching (Figs. 10 and 11), and
//! * reproduce the chunk-scheduling dynamics of Fig. 7.
//!
//! # Example
//!
//! ```
//! use sprout_queueing::dist::ServiceDistribution;
//! use sprout_sim::{CacheScheme, SimConfig, SimFile, Simulation};
//!
//! let nodes = vec![ServiceDistribution::exponential(0.5); 4];
//! let files = vec![SimFile::new(0.05, 2, vec![0, 1, 2, 3])];
//! let sim = Simulation::new(nodes, files, CacheScheme::NoCache, SimConfig::new(20_000.0, 7));
//! let report = sim.run();
//! assert!(report.overall.mean > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod config;
pub mod engine;
pub mod event;
pub mod invariants;
pub mod metrics;
pub mod policy;
pub mod replicate;
pub mod scenario;
pub mod scheduler;
pub mod shard;
pub mod sweep;

pub use backend::{AnalyticBackend, ChunkBackend, FinishedRequest};
pub use config::SimConfig;
pub use engine::{replication_seed, SimFile, SimReport, Simulation};
pub use invariants::{check_report, check_shard_identity, EngineBounds, InvariantViolation};
pub use metrics::{LatencySummary, SlotCounts};
pub use policy::CacheScheme;
pub use replicate::{run_replications, MeanCi, ReplicationSummary};
pub use scenario::{Scenario, ScenarioAction, ScenarioEvent};
pub use shard::{ShardPlan, ShardedEngine};
pub use sweep::{
    CellTiming, Sample, SweepCancelled, SweepCell, SweepGrid, SweepReport, SweepRow, SweepTimings,
};
