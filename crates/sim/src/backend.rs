//! Pluggable chunk-service backends for the simulation engine.
//!
//! The engine owns everything that decides *which* chunks serve a request —
//! streaming arrivals, cache planning, probabilistic scheduling, per-node
//! FIFO queues — while a [`ChunkBackend`] supplies what actually *happens*
//! when a node serves a chunk: how long the read takes, whether the node is
//! online, and (for byte-accurate backends) whether the gathered chunks
//! really reconstruct the object.
//!
//! Two implementations exist:
//!
//! * [`AnalyticBackend`] (here) — the original model: each node is a service
//!   distribution; chunks are abstract. This is the fast path used for the
//!   paper's latency experiments.
//! * `StoreBackend` (in the `sprout` facade crate) — drives the real
//!   `ErasureCodedStore`: actual coded bytes, degraded reads after node
//!   failures, cache contents, and a decode + verify on every completed
//!   request.
//!
//! Planning draws come from the engine's own RNG and service draws from the
//! backend's, so two backends given the same seed make **identical
//! chunk-source decisions** — the differential-testing hook the byte-accurate
//! backend exists for.
//!
//! [`AnalyticBackend`] keeps one service RNG **per node**, seeded from
//! `(seed, node)` only. A node's service-time stream therefore depends only
//! on that node's own sequence of chunk reads — never on what other nodes
//! serve — which is what lets the sharded engine run disjoint placement
//! components on separate event loops and still produce reports bit-identical
//! to the single-loop run (see [`crate::shard`]).

use rand::rngs::StdRng;
use rand::SeedableRng;
use sprout_queueing::dist::ServiceDistribution;

use crate::policy::CacheScheme;

/// What a completed request looked like to the engine, handed to the backend
/// for byte-level settlement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FinishedRequest<'a> {
    /// Index of the requested file.
    pub file: usize,
    /// Chunks served by the compute-server cache.
    pub cache_chunks: usize,
    /// Storage nodes that served one chunk each.
    pub storage_nodes: &'a [usize],
}

/// The service substrate behind the event loop.
pub trait ChunkBackend {
    /// Number of storage nodes.
    fn num_nodes(&self) -> usize;

    /// Whether `node` currently accepts chunk reads.
    fn is_online(&self, node: usize) -> bool;

    /// Marks a node failed (`false`) or recovered (`true`). Reads already
    /// queued on a failing node drain; the planner just stops selecting it.
    fn set_node_online(&mut self, node: usize, online: bool);

    /// Service time of one chunk read of `file` on `node` (seconds). Drawn
    /// from the backend's own RNG so planning decisions stay
    /// backend-independent.
    fn sample_service(&mut self, node: usize, file: usize) -> f64;

    /// Settles a completed request. Byte-accurate backends fetch the chunks
    /// the engine chose, decode and verify; the return value is `false` when
    /// reconstruction failed (counted in the report).
    fn finish_request(&mut self, request: FinishedRequest<'_>) -> bool {
        let _ = request;
        true
    }

    /// Latency of serving `chunks` cache chunks of `file`, or `None` to fall
    /// back to the engine's configured constant cache-read latency. Byte
    /// backends sample their cache device model (the SSD of Table V) here,
    /// from their own RNG — like [`ChunkBackend::sample_service`], this never
    /// influences the engine's planning decisions.
    fn sample_cache_read(&mut self, file: usize, chunks: usize) -> Option<f64> {
        let _ = (file, chunks);
        None
    }

    /// The engine's cache tier promoted `file` after a miss read (Ceph-style
    /// LRU). Byte backends mirror the decision by materializing the object's
    /// bytes in their own tier, so a later engine-declared hit always finds
    /// the chunks resident.
    fn tier_promote(&mut self, file: usize) {
        let _ = file;
    }

    /// The engine's cache tier evicted `file`. Byte backends drop the
    /// mirrored entry.
    fn tier_evict(&mut self, file: usize) {
        let _ = file;
    }

    /// Applies a new cache scheme mid-run (a scenario plan swap). Byte
    /// backends re-install cached chunks to match.
    fn apply_scheme(&mut self, scheme: &CacheScheme) {
        let _ = scheme;
    }
}

/// The analytic backend: nodes are service-time distributions, chunks are
/// abstract, reconstruction always succeeds.
#[derive(Debug, Clone)]
pub struct AnalyticBackend {
    dists: Vec<ServiceDistribution>,
    online: Vec<bool>,
    /// One decorrelated RNG stream per node, so a node's service draws are a
    /// function of its own read sequence alone (shard-decomposable).
    rngs: Vec<StdRng>,
}

impl AnalyticBackend {
    /// Creates a backend over per-node service distributions. `seed` feeds
    /// the per-node service-time RNG streams (the engine derives it from the
    /// run seed).
    pub fn new(dists: Vec<ServiceDistribution>, seed: u64) -> Self {
        let online = vec![true; dists.len()];
        let rngs = (0..dists.len())
            .map(|node| StdRng::seed_from_u64(crate::engine::service_seed(seed, node)))
            .collect();
        AnalyticBackend {
            dists,
            online,
            rngs,
        }
    }
}

impl ChunkBackend for AnalyticBackend {
    fn num_nodes(&self) -> usize {
        self.dists.len()
    }

    fn is_online(&self, node: usize) -> bool {
        self.online[node]
    }

    fn set_node_online(&mut self, node: usize, online: bool) {
        self.online[node] = online;
    }

    fn sample_service(&mut self, node: usize, _file: usize) -> f64 {
        self.dists[node].sample(&mut self.rngs[node])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analytic_backend_tracks_online_state() {
        let mut b = AnalyticBackend::new(vec![ServiceDistribution::exponential(1.0); 3], 1);
        assert_eq!(b.num_nodes(), 3);
        assert!(b.is_online(2));
        b.set_node_online(2, false);
        assert!(!b.is_online(2));
        b.set_node_online(2, true);
        assert!(b.is_online(2));
    }

    #[test]
    fn service_samples_are_positive_and_seed_deterministic() {
        let mut a = AnalyticBackend::new(vec![ServiceDistribution::exponential(0.5); 2], 9);
        let mut b = AnalyticBackend::new(vec![ServiceDistribution::exponential(0.5); 2], 9);
        for _ in 0..100 {
            let s = a.sample_service(0, 0);
            assert!(s > 0.0);
            assert_eq!(s, b.sample_service(0, 0));
        }
    }

    #[test]
    fn per_node_service_streams_are_independent() {
        // Interleaving reads on other nodes must not perturb a node's own
        // service-time stream — the property the sharded engine relies on.
        let dists = vec![ServiceDistribution::exponential(0.5); 3];
        let mut solo = AnalyticBackend::new(dists.clone(), 77);
        let mut mixed = AnalyticBackend::new(dists, 77);
        for i in 0..50 {
            if i % 2 == 0 {
                mixed.sample_service(1, 0);
                mixed.sample_service(2, 0);
            }
            assert_eq!(solo.sample_service(0, 0), mixed.sample_service(0, 0));
        }
    }

    #[test]
    fn default_finish_request_always_succeeds() {
        let mut b = AnalyticBackend::new(vec![ServiceDistribution::exponential(1.0)], 0);
        assert!(b.finish_request(FinishedRequest {
            file: 0,
            cache_chunks: 1,
            storage_nodes: &[0],
        }));
        b.apply_scheme(&CacheScheme::NoCache); // default no-op must not panic

        // Default tier hooks are no-ops and defer cache latency to the engine.
        assert_eq!(b.sample_cache_read(0, 2), None);
        b.tier_promote(0);
        b.tier_evict(0);
    }
}
