//! Latency statistics and chunk-source accounting.

use serde::{Deserialize, Serialize};

/// Summary statistics of a latency sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Number of completed (post-warm-up) requests.
    pub count: usize,
    /// Mean latency (seconds).
    pub mean: f64,
    /// Standard deviation (seconds).
    pub std_dev: f64,
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum observed latency.
    pub max: f64,
}

impl LatencySummary {
    /// Builds a summary from raw samples (empty input yields all zeros).
    pub fn from_samples(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return LatencySummary {
                count: 0,
                mean: 0.0,
                std_dev: 0.0,
                p50: 0.0,
                p95: 0.0,
                p99: 0.0,
                max: 0.0,
            };
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let n = sorted.len();
        let mean = sorted.iter().sum::<f64>() / n as f64;
        let var = sorted.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        let pct = |p: f64| -> f64 {
            let idx = ((n as f64 - 1.0) * p).round() as usize;
            sorted[idx.min(n - 1)]
        };
        LatencySummary {
            count: n,
            mean,
            std_dev: var.sqrt(),
            p50: pct(0.50),
            p95: pct(0.95),
            p99: pct(0.99),
            max: sorted[n - 1],
        }
    }
}

/// Per-time-slot counts of chunks served from the cache versus the storage
/// nodes (the quantity plotted in Fig. 7 of the paper).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SlotCounts {
    /// Slot length in seconds.
    pub slot_length: f64,
    /// Chunks served by the cache, per slot.
    pub cache_chunks: Vec<u64>,
    /// Chunks served by storage nodes, per slot.
    pub storage_chunks: Vec<u64>,
}

impl SlotCounts {
    /// Creates empty counters covering `horizon` seconds in slots of
    /// `slot_length` seconds.
    pub fn new(horizon: f64, slot_length: f64) -> Self {
        assert!(slot_length > 0.0, "slot length must be positive");
        let slots = (horizon / slot_length).ceil().max(1.0) as usize;
        SlotCounts {
            slot_length,
            cache_chunks: vec![0; slots],
            storage_chunks: vec![0; slots],
        }
    }

    /// Records chunks served at `time`.
    pub fn record(&mut self, time: f64, cache: u64, storage: u64) {
        let idx = ((time / self.slot_length) as usize).min(self.cache_chunks.len() - 1);
        self.cache_chunks[idx] += cache;
        self.storage_chunks[idx] += storage;
    }

    /// Fraction of all chunks that came from the cache.
    pub fn cache_fraction(&self) -> f64 {
        let cache: u64 = self.cache_chunks.iter().sum();
        let storage: u64 = self.storage_chunks.iter().sum();
        let total = cache + storage;
        if total == 0 {
            0.0
        } else {
            cache as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_samples() {
        let s = LatencySummary::from_samples(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.count, 5);
        assert!((s.mean - 3.0).abs() < 1e-12);
        assert!((s.p50 - 3.0).abs() < 1e-12);
        assert!((s.max - 5.0).abs() < 1e-12);
        assert!((s.std_dev - 2.0f64.sqrt()).abs() < 1e-9);
        assert!(s.p95 >= s.p50);
        assert!(s.p99 >= s.p95);
    }

    #[test]
    fn empty_summary_is_all_zero() {
        let s = LatencySummary::from_samples(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.max, 0.0);
    }

    #[test]
    fn percentiles_are_order_statistics() {
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = LatencySummary::from_samples(&samples);
        assert!((s.p95 - 95.0).abs() <= 1.0);
        assert!((s.p99 - 99.0).abs() <= 1.0);
    }

    #[test]
    fn slot_counts_accumulate_and_clamp() {
        let mut c = SlotCounts::new(100.0, 5.0);
        assert_eq!(c.cache_chunks.len(), 20);
        c.record(0.0, 1, 3);
        c.record(4.9, 1, 3);
        c.record(5.0, 0, 2);
        c.record(1000.0, 5, 5); // clamps to the last slot
        assert_eq!(c.cache_chunks[0], 2);
        assert_eq!(c.storage_chunks[0], 6);
        assert_eq!(c.storage_chunks[1], 2);
        assert_eq!(c.cache_chunks[19], 5);
        let frac = c.cache_fraction();
        assert!((frac - 7.0 / 20.0).abs() < 1e-12);
    }

    #[test]
    fn empty_slot_counts_have_zero_cache_fraction() {
        let c = SlotCounts::new(10.0, 5.0);
        assert_eq!(c.cache_fraction(), 0.0);
    }
}
