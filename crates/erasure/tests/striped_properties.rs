//! Differential property tests for striped (multi-threaded) coding and for
//! `encode_rows_into` edge cases.
//!
//! The striped paths must be **byte-identical** to the single-pass paths —
//! which are themselves proven byte-identical to the scalar reference in
//! `coding_properties.rs` — for:
//!
//! * every kernel (scalar, table, word, simd);
//! * arbitrary file lengths, including 0, lengths below `k`, and lengths
//!   whose chunk length is not a multiple of the 8-byte word or 32-byte
//!   SIMD block;
//! * stripe lengths from 1 byte (every stripe is a kernel tail) up to
//!   larger than the chunk (striping degenerates to a single pass);
//! * any worker-thread count.

use proptest::prelude::*;
use sprout_erasure::{Chunk, CodeParams, FunctionalCacheCodec, Kernel, ReedSolomon, StripeOpts};

fn sample_file(len: usize) -> Vec<u8> {
    (0..len).map(|i| (i * 131 + 7) as u8).collect()
}

proptest! {
    #[test]
    fn encode_striped_is_byte_identical(
        len in 0usize..2048,
        stripe_len in 1usize..300,
        threads in 1usize..5,
        kernel_idx in 0usize..Kernel::ALL.len(),
    ) {
        let kernel = Kernel::ALL[kernel_idx];
        let rs = ReedSolomon::with_kernel(CodeParams::new(7, 4).unwrap(), kernel).unwrap();
        let file = sample_file(len);
        let want = rs.encode(&file).unwrap();
        let got = rs.encode_striped(&file, StripeOpts::new(stripe_len, threads)).unwrap();
        prop_assert_eq!(got, want, "kernel {} stripe {} threads {}", kernel, stripe_len, threads);
    }

    #[test]
    fn decode_striped_is_byte_identical(
        len in 0usize..2048,
        stripe_len in 1usize..300,
        threads in 1usize..5,
        skip in 0usize..4,
        kernel_idx in 0usize..Kernel::ALL.len(),
    ) {
        let kernel = Kernel::ALL[kernel_idx];
        let rs = ReedSolomon::with_kernel(CodeParams::new(7, 4).unwrap(), kernel).unwrap();
        let file = sample_file(len);
        let encoded = rs.encode(&file).unwrap();
        // A sliding 4-subset that includes parity rows, so real GF work runs.
        let subset: Vec<Chunk> = encoded.chunks().iter().skip(skip).take(4).cloned().collect();
        let want = rs.decode(&subset, len).unwrap();
        let opts = StripeOpts::new(stripe_len, threads);
        let got = rs.decode_striped(&subset, len, opts).unwrap();
        prop_assert_eq!(&got, &want);
        prop_assert_eq!(&got, &file, "decode_striped must recover the file");
    }

    #[test]
    fn encode_rows_striped_into_matches_single_pass(
        chunk_len in 0usize..700,
        stripe_len in 1usize..130,
        threads in 1usize..5,
        kernel_idx in 0usize..Kernel::ALL.len(),
    ) {
        let kernel = Kernel::ALL[kernel_idx];
        let rs = ReedSolomon::with_kernel(CodeParams::new(7, 4).unwrap(), kernel).unwrap();
        let data: Vec<Vec<u8>> = (0..4)
            .map(|j| (0..chunk_len).map(|i| (i * 31 + j * 17 + 3) as u8).collect())
            .collect();
        let data_refs: Vec<&[u8]> = data.iter().map(Vec::as_slice).collect();
        let rows = vec![4usize, 6, 9];

        let mut want = vec![vec![0u8; chunk_len]; rows.len()];
        {
            let mut outs: Vec<&mut [u8]> = want.iter_mut().map(Vec::as_mut_slice).collect();
            rs.encode_rows_into(&data_refs, &rows, &mut outs);
        }
        // Dirty buffers: the striped variant must fully overwrite them.
        let mut got = vec![vec![0xEEu8; chunk_len]; rows.len()];
        {
            let mut outs: Vec<&mut [u8]> = got.iter_mut().map(Vec::as_mut_slice).collect();
            rs.encode_rows_striped_into(&data_refs, &rows, &mut outs, StripeOpts::new(stripe_len, threads));
        }
        prop_assert_eq!(got, want);
    }

    #[test]
    fn auto_striping_is_invisible_in_the_bytes(
        len in 0usize..4096,
        stripe_len in 1usize..600,
    ) {
        // A codec with automatic striping enabled must produce exactly the
        // bytes of one without, end to end (encode -> cache -> decode).
        let params = CodeParams::new(7, 4).unwrap();
        let plain = FunctionalCacheCodec::new(params).unwrap();
        let striped = FunctionalCacheCodec::new(params)
            .unwrap()
            .with_striping(Some(StripeOpts::new(stripe_len, 4)));
        let file = sample_file(len);
        let want = plain.encode(&file).unwrap();
        let got = striped.encode(&file).unwrap();
        prop_assert_eq!(&got, &want);
        prop_assert_eq!(
            striped.cache_chunks(&file, 2).unwrap(),
            plain.cache_chunks(&file, 2).unwrap()
        );
        let subset: Vec<Chunk> = got.chunks().iter().skip(3).take(4).cloned().collect();
        prop_assert_eq!(
            striped.decode(&subset, len).unwrap(),
            plain.decode(&subset, len).unwrap()
        );
    }
}

/// Satellite: `encode_rows_into` edge cases on every kernel — zero-length
/// objects, objects smaller than `k`, and deliberately unaligned chunk
/// lengths (neither 8-byte word nor 16/32-byte SIMD multiples).
#[test]
fn encode_rows_into_edge_cases_on_every_kernel() {
    // Chunk lengths straddling the word (8) and SIMD block (16/32) sizes.
    let edge_chunk_lens = [0usize, 1, 2, 3, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 65];
    for kernel in Kernel::ALL {
        let rs = ReedSolomon::with_kernel(CodeParams::new(7, 4).unwrap(), kernel).unwrap();
        let reference =
            ReedSolomon::with_kernel(CodeParams::new(7, 4).unwrap(), Kernel::Scalar).unwrap();
        for &chunk_len in &edge_chunk_lens {
            let data: Vec<Vec<u8>> = (0..4)
                .map(|j| {
                    (0..chunk_len)
                        .map(|i| (i * 37 + j * 11 + 5) as u8)
                        .collect()
                })
                .collect();
            let data_refs: Vec<&[u8]> = data.iter().map(Vec::as_slice).collect();
            let rows: Vec<usize> = vec![0, 4, 5, 6, 8, 10];
            let mut want = vec![vec![0u8; chunk_len]; rows.len()];
            {
                let mut outs: Vec<&mut [u8]> = want.iter_mut().map(Vec::as_mut_slice).collect();
                reference.encode_rows_into(&data_refs, &rows, &mut outs);
            }
            let mut got = vec![vec![0xA5u8; chunk_len]; rows.len()];
            {
                let mut outs: Vec<&mut [u8]> = got.iter_mut().map(Vec::as_mut_slice).collect();
                rs.encode_rows_into(&data_refs, &rows, &mut outs);
            }
            assert_eq!(got, want, "kernel {kernel} chunk_len {chunk_len}");
        }
    }
}

/// Satellite: whole-file encode of zero-length and smaller-than-`k` objects
/// on every kernel, striped and not.
#[test]
fn tiny_objects_round_trip_on_every_kernel() {
    for kernel in Kernel::ALL {
        let rs = ReedSolomon::with_kernel(CodeParams::new(7, 4).unwrap(), kernel).unwrap();
        // len < k means chunk_len 1 with padding; len 0 means empty chunks.
        for len in [0usize, 1, 2, 3] {
            let file = sample_file(len);
            for encoded in [
                rs.encode(&file).unwrap(),
                rs.encode_striped(&file, StripeOpts::new(3, 4)).unwrap(),
            ] {
                assert_eq!(encoded.original_len(), len, "kernel {kernel} len {len}");
                let subset: Vec<Chunk> = encoded.chunks()[3..7].to_vec();
                assert_eq!(rs.decode(&subset, len).unwrap(), file);
                assert_eq!(
                    rs.decode_striped(&subset, len, StripeOpts::new(2, 3))
                        .unwrap(),
                    file
                );
            }
        }
    }
}

/// Striped decode must hit the same decode-matrix memo as the single-pass
/// path (one miss, then hits — the elimination is never re-run per stripe).
#[test]
fn striped_decode_shares_the_matrix_memo() {
    let rs = ReedSolomon::new(CodeParams::new(7, 4).unwrap()).unwrap();
    let file = sample_file(4096);
    let encoded = rs.encode(&file).unwrap();
    let subset: Vec<Chunk> = encoded.chunks()[2..6].to_vec();
    let opts = StripeOpts::new(256, 4);
    for _ in 0..3 {
        assert_eq!(rs.decode_striped(&subset, file.len(), opts).unwrap(), file);
    }
    let (hits, misses) = rs.decode_memo_stats();
    assert_eq!((hits, misses), (2, 1));
}
