//! Property-based tests for the erasure-coding invariants that functional
//! caching depends on.

use proptest::prelude::*;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use sprout_erasure::{Chunk, CodeParams, FunctionalCacheCodec, Kernel, ReedSolomon};

/// Strategy producing valid (n, k) pairs small enough for exhaustive checks.
fn params() -> impl Strategy<Value = (usize, usize)> {
    (1usize..=6).prop_flat_map(|k| (k..=k + 5, Just(k)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn round_trip_from_random_k_subset(
        (n, k) in params(),
        file in proptest::collection::vec(any::<u8>(), 0..300),
        seed in any::<u64>(),
    ) {
        let rs = ReedSolomon::new(CodeParams::new(n, k).unwrap()).unwrap();
        let encoded = rs.encode(&file).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut chunks: Vec<Chunk> = encoded.chunks().to_vec();
        chunks.shuffle(&mut rng);
        chunks.truncate(k);
        prop_assert_eq!(rs.decode(&chunks, file.len()).unwrap(), file);
    }

    #[test]
    fn functional_cache_plus_storage_subset_decodes(
        (n, k) in params(),
        d in 0usize..=6,
        file in proptest::collection::vec(any::<u8>(), 1..300),
        seed in any::<u64>(),
    ) {
        let d = d.min(k);
        let codec = FunctionalCacheCodec::new(CodeParams::new(n, k).unwrap()).unwrap();
        let stored = codec.encode(&file).unwrap();
        let cached = codec.cache_chunks(&file, d).unwrap();
        prop_assert_eq!(cached.len(), d);

        // take the d cache chunks and a random set of k - d storage chunks
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut storage: Vec<Chunk> = stored.chunks().to_vec();
        storage.shuffle(&mut rng);
        let mut have = cached;
        have.extend(storage.into_iter().take(k - d));
        prop_assert_eq!(codec.decode(&have, file.len()).unwrap(), file);
    }

    #[test]
    fn verify_accepts_encoded_chunks((n, k) in params(), file in proptest::collection::vec(any::<u8>(), 1..200)) {
        let rs = ReedSolomon::new(CodeParams::new(n, k).unwrap()).unwrap();
        let encoded = rs.encode(&file).unwrap();
        prop_assert!(rs.verify(encoded.chunks()).unwrap());
    }

    #[test]
    fn corrupting_one_chunk_is_detected_by_verify(
        (n, k) in params(),
        file in proptest::collection::vec(any::<u8>(), 8..200),
        byte in any::<u8>(),
    ) {
        prop_assume!(n > k); // with n == k there is no redundancy to detect corruption
        prop_assume!(byte != 0);
        let rs = ReedSolomon::new(CodeParams::new(n, k).unwrap()).unwrap();
        let encoded = rs.encode(&file).unwrap();
        let mut chunks = encoded.chunks().to_vec();
        let mut payload = chunks[n - 1].data.to_vec();
        payload[0] ^= byte;
        chunks[n - 1] = Chunk::new(chunks[n - 1].id, payload);
        prop_assert!(!rs.verify(&chunks).unwrap());
    }

    #[test]
    fn public_results_are_kernel_independent(
        (n, k) in params(),
        d in 0usize..=6,
        file in proptest::collection::vec(any::<u8>(), 0..300),
        seed in any::<u64>(),
    ) {
        // encode / decode / cache_chunks must be byte-identical across every
        // slice kernel (the word and table kernels are differentially tested
        // against the scalar reference end to end, not just per-slice).
        let d = d.min(k);
        let reference = FunctionalCacheCodec::with_kernel(
            CodeParams::new(n, k).unwrap(),
            Kernel::Scalar,
        ).unwrap();
        let want_encoded = reference.encode(&file).unwrap();
        let want_cached = reference.cache_chunks(&file, d).unwrap();

        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut have: Vec<Chunk> = want_cached.clone();
        let mut storage: Vec<Chunk> = want_encoded.chunks().to_vec();
        storage.shuffle(&mut rng);
        have.extend(storage.iter().take(k - d).cloned());
        let want_decoded = reference.decode(&have, file.len()).unwrap();
        prop_assert_eq!(&want_decoded, &file);

        for kernel in [Kernel::Table, Kernel::Word] {
            let codec = FunctionalCacheCodec::with_kernel(
                CodeParams::new(n, k).unwrap(),
                kernel,
            ).unwrap();
            prop_assert_eq!(codec.encode(&file).unwrap(), want_encoded.clone());
            prop_assert_eq!(codec.cache_chunks(&file, d).unwrap(), want_cached.clone());
            prop_assert_eq!(codec.decode(&have, file.len()).unwrap(), want_decoded.clone());
        }
    }

    #[test]
    fn cache_chunk_payloads_differ_from_storage_chunks(
        file in proptest::collection::vec(any::<u8>(), 32..200),
    ) {
        // Functional cache chunks are *functions* of the data, not copies of
        // stored chunks; for a systematic (7,4) code the cache rows are
        // distinct generator rows so payloads differ from every storage chunk
        // (except for degenerate all-equal data, excluded by prop_assume).
        prop_assume!(file.windows(2).any(|w| w[0] != w[1]));
        let codec = FunctionalCacheCodec::new(CodeParams::new(7, 4).unwrap()).unwrap();
        let stored = codec.encode(&file).unwrap();
        let cached = codec.cache_chunks(&file, 4).unwrap();
        for c in &cached {
            for s in stored.chunks() {
                prop_assert_ne!(&c.data, &s.data);
            }
        }
    }
}
