//! Reed–Solomon MDS erasure codes and *functional cache* chunk construction.
//!
//! This crate implements the coding layer of the Sprout system:
//!
//! * [`CodeParams`] — validated `(n, k)` code parameters.
//! * [`ReedSolomon`] — a systematic `(n, k)` MDS code built from an
//!   `(n + k, k)` generator, so that up to `k` additional *functional cache*
//!   chunks can be produced without changing the chunks already stored on the
//!   storage nodes (exactly the construction described in §III of the paper).
//! * [`FunctionalCacheCodec`] — produces the `d` cached chunks for a file and
//!   decodes a file from any `k` chunks drawn from storage *and* cache.
//! * [`stripe`] — splitting a file (byte buffer) into `k` equal-size data
//!   chunks with padding, and re-assembling it.
//!
//! # Example: the paper's (6, 5) illustration
//!
//! ```
//! use sprout_erasure::{CodeParams, FunctionalCacheCodec};
//!
//! // A file using a (6, 5) MDS code, with a cache that holds d = 2 chunks.
//! let params = CodeParams::new(6, 5).unwrap();
//! let codec = FunctionalCacheCodec::new(params).unwrap();
//! let file = b"hello functional caching world!".to_vec();
//!
//! let encoded = codec.encode(&file).unwrap();
//! let cached = codec.cache_chunks(&file, 2).unwrap();
//!
//! // Any 3 storage chunks + the 2 cache chunks recover the file.
//! let mut available: Vec<_> = cached.into_iter().collect();
//! available.extend(encoded.chunks().iter().take(3).cloned());
//! let recovered = codec.decode(&available, file.len()).unwrap();
//! assert_eq!(recovered, file);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chunk;
pub mod code;
pub mod error;
pub mod functional;
pub mod stripe;
pub mod striped;

pub use chunk::{Chunk, ChunkId, ChunkSource};
pub use code::{CodeParams, EncodedFile, ReedSolomon};
pub use error::CodingError;
pub use functional::FunctionalCacheCodec;
pub use striped::StripeOpts;
// Re-exported so coding callers can pick a slice kernel without a direct
// `sprout-gf` dependency.
pub use sprout_gf::Kernel;
