//! Chunk types shared by the coding, cluster and simulation layers.

use bytes::Bytes;
use std::fmt;

/// Where a chunk lives / was served from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ChunkSource {
    /// The chunk is one of the `n` chunks stored on storage nodes.
    Storage,
    /// The chunk is a functional (or exact) chunk held in a compute-server cache.
    Cache,
}

impl fmt::Display for ChunkSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChunkSource::Storage => write!(f, "storage"),
            ChunkSource::Cache => write!(f, "cache"),
        }
    }
}

/// Identifier of a coded chunk within a file's extended `(n + k, k)` code.
///
/// Indices `0..n` are storage chunks; indices `n..n+k` are reserved for
/// functional cache chunks. The index selects the generator row that produced
/// the chunk, which is all the decoder needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ChunkId {
    /// Row of the extended generator matrix that produced this chunk.
    pub index: usize,
    /// Whether the chunk is a storage chunk or a cache chunk.
    pub source: ChunkSource,
}

impl ChunkId {
    /// Creates a storage-chunk identifier.
    pub fn storage(index: usize) -> Self {
        ChunkId {
            index,
            source: ChunkSource::Storage,
        }
    }

    /// Creates a cache-chunk identifier.
    pub fn cache(index: usize) -> Self {
        ChunkId {
            index,
            source: ChunkSource::Cache,
        }
    }
}

impl fmt::Display for ChunkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.source, self.index)
    }
}

/// A coded chunk: generator-row index plus payload bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Chunk {
    /// Identity of the chunk (generator row and source).
    pub id: ChunkId,
    /// Chunk payload.
    pub data: Bytes,
}

impl Chunk {
    /// Creates a new chunk.
    pub fn new(id: ChunkId, data: impl Into<Bytes>) -> Self {
        Chunk {
            id,
            data: data.into(),
        }
    }

    /// Chunk payload length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_id_constructors() {
        let s = ChunkId::storage(3);
        assert_eq!(s.index, 3);
        assert_eq!(s.source, ChunkSource::Storage);
        let c = ChunkId::cache(9);
        assert_eq!(c.source, ChunkSource::Cache);
        assert_eq!(format!("{s}"), "storage#3");
        assert_eq!(format!("{c}"), "cache#9");
    }

    #[test]
    fn chunk_len_and_empty() {
        let c = Chunk::new(ChunkId::storage(0), vec![1u8, 2, 3]);
        assert_eq!(c.len(), 3);
        assert!(!c.is_empty());
        let e = Chunk::new(ChunkId::cache(1), Vec::<u8>::new());
        assert!(e.is_empty());
    }

    #[test]
    fn chunk_source_ordering_and_display() {
        assert!(ChunkSource::Storage < ChunkSource::Cache);
        assert_eq!(ChunkSource::Storage.to_string(), "storage");
        assert_eq!(ChunkSource::Cache.to_string(), "cache");
    }
}
