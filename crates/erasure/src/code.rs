//! Systematic `(n, k)` Reed–Solomon codes built from an extended
//! `(n + k, k)` MDS generator.
//!
//! Following §III of the paper, the generator has `n + k` rows so that the
//! `n` storage chunks use rows `0..n` and up to `k` *functional cache* chunks
//! can later be produced from rows `n..n + k` without touching the stored
//! chunks. Any `k` distinct rows of the generator are linearly independent,
//! so any `k` chunks — from storage, cache, or a mix — reconstruct the file.

use bytes::Bytes;
use sprout_gf::{builders, Gf256, Matrix};

use crate::chunk::{Chunk, ChunkId, ChunkSource};
use crate::error::CodingError;
use crate::stripe;

/// Validated `(n, k)` erasure-code parameters.
///
/// `n` is the number of chunks stored on storage nodes and `k` the number of
/// data chunks required to reconstruct a file. The extended generator used
/// internally has `n + k` rows, so `n + k` must not exceed 255.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CodeParams {
    n: usize,
    k: usize,
}

impl CodeParams {
    /// Creates validated code parameters.
    ///
    /// # Errors
    ///
    /// Returns [`CodingError::InvalidParams`] if `k == 0`, `n < k`, or
    /// `n + k > 255`.
    pub fn new(n: usize, k: usize) -> Result<Self, CodingError> {
        if k == 0 {
            return Err(CodingError::InvalidParams {
                n,
                k,
                reason: "k must be at least 1",
            });
        }
        if n < k {
            return Err(CodingError::InvalidParams {
                n,
                k,
                reason: "n must be at least k",
            });
        }
        if n + k > 255 {
            return Err(CodingError::InvalidParams {
                n,
                k,
                reason: "n + k must not exceed 255 for GF(2^8)",
            });
        }
        Ok(CodeParams { n, k })
    }

    /// Number of chunks stored on storage nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of data chunks needed to reconstruct a file.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Storage redundancy factor `n / k`.
    pub fn redundancy(&self) -> f64 {
        self.n as f64 / self.k as f64
    }

    /// Total number of rows in the extended generator (`n + k`).
    #[inline]
    pub fn extended_rows(&self) -> usize {
        self.n + self.k
    }
}

impl std::fmt::Display for CodeParams {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}, {})", self.n, self.k)
    }
}

/// The result of encoding a file: the `n` storage chunks plus the metadata
/// needed to decode (original length and per-chunk length).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodedFile {
    chunks: Vec<Chunk>,
    original_len: usize,
    chunk_len: usize,
}

impl EncodedFile {
    /// The `n` storage chunks.
    pub fn chunks(&self) -> &[Chunk] {
        &self.chunks
    }

    /// Consumes the encoded file and returns its chunks.
    pub fn into_chunks(self) -> Vec<Chunk> {
        self.chunks
    }

    /// Original (pre-padding) file length in bytes.
    pub fn original_len(&self) -> usize {
        self.original_len
    }

    /// Length of each chunk in bytes.
    pub fn chunk_len(&self) -> usize {
        self.chunk_len
    }
}

/// A systematic `(n, k)` Reed–Solomon MDS code with an extended generator
/// that reserves `k` extra rows for functional cache chunks.
///
/// # Example
///
/// ```
/// use sprout_erasure::{CodeParams, ReedSolomon};
///
/// let rs = ReedSolomon::new(CodeParams::new(7, 4)?)?;
/// let file: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
/// let encoded = rs.encode(&file)?;
///
/// // Reconstruct from an arbitrary subset of 4 chunks.
/// let subset: Vec<_> = encoded.chunks().iter().skip(2).take(4).cloned().collect();
/// assert_eq!(rs.decode(&subset, file.len())?, file);
/// # Ok::<(), sprout_erasure::CodingError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ReedSolomon {
    params: CodeParams,
    /// Extended `(n + k) × k` systematic generator matrix.
    generator: Matrix,
}

impl ReedSolomon {
    /// Builds the code for the given parameters.
    ///
    /// # Errors
    ///
    /// Currently construction cannot fail for validated [`CodeParams`], but
    /// the `Result` is kept so that alternative generator constructions
    /// (e.g. user-supplied matrices) can report errors uniformly.
    pub fn new(params: CodeParams) -> Result<Self, CodingError> {
        let generator = builders::systematic_mds(params.extended_rows(), params.k());
        Ok(ReedSolomon { params, generator })
    }

    /// The code parameters.
    pub fn params(&self) -> CodeParams {
        self.params
    }

    /// The extended `(n + k) × k` generator matrix.
    pub fn generator(&self) -> &Matrix {
        &self.generator
    }

    /// Encodes a file into its `n` storage chunks.
    ///
    /// # Errors
    ///
    /// This operation does not currently fail; the `Result` mirrors
    /// [`ReedSolomon::decode`] for API symmetry.
    pub fn encode(&self, file: &[u8]) -> Result<EncodedFile, CodingError> {
        let k = self.params.k();
        let (data_chunks, chunk_len) = stripe::split(file, k);
        let rows: Vec<usize> = (0..self.params.n()).collect();
        let payloads = self.encode_rows(&data_chunks, &rows);
        let chunks = rows
            .iter()
            .zip(payloads)
            .map(|(&row, payload)| Chunk::new(ChunkId::storage(row), payload))
            .collect();
        Ok(EncodedFile {
            chunks,
            original_len: file.len(),
            chunk_len,
        })
    }

    /// Encodes the listed generator rows against already-split data chunks.
    ///
    /// This is the primitive used both for storage chunks (rows `0..n`) and
    /// functional cache chunks (rows `n..n+d`).
    ///
    /// # Panics
    ///
    /// Panics if `data_chunks.len() != k`, the chunks have unequal lengths,
    /// or a row index exceeds `n + k`.
    pub fn encode_rows(&self, data_chunks: &[Vec<u8>], rows: &[usize]) -> Vec<Vec<u8>> {
        let k = self.params.k();
        assert_eq!(data_chunks.len(), k, "expected exactly k data chunks");
        let chunk_len = data_chunks.first().map_or(0, Vec::len);
        assert!(
            data_chunks.iter().all(|c| c.len() == chunk_len),
            "all data chunks must have the same length"
        );
        rows.iter()
            .map(|&row| {
                assert!(
                    row < self.params.extended_rows(),
                    "generator row {row} out of range"
                );
                let mut out = vec![0u8; chunk_len];
                for (j, data) in data_chunks.iter().enumerate() {
                    let coeff = self.generator.get(row, j);
                    Gf256::mul_acc_slice(coeff, data, &mut out);
                }
                out
            })
            .collect()
    }

    /// Decodes the original file from any `k` distinct chunks.
    ///
    /// Chunks may come from storage rows, cache rows, or a mix; only `k`
    /// distinct generator rows are required. Extra chunks beyond `k` are
    /// ignored (the first `k` distinct rows are used).
    ///
    /// # Errors
    ///
    /// * [`CodingError::NotEnoughChunks`] if fewer than `k` distinct rows are present.
    /// * [`CodingError::InvalidChunkIndex`] if a row index is out of range.
    /// * [`CodingError::ChunkSizeMismatch`] if payload lengths differ.
    /// * [`CodingError::InvalidFileLength`] if `original_len` exceeds `k * chunk_len`.
    pub fn decode(&self, chunks: &[Chunk], original_len: usize) -> Result<Vec<u8>, CodingError> {
        let k = self.params.k();
        let max = self.params.extended_rows();

        // Collect the first k distinct rows.
        let mut selected: Vec<&Chunk> = Vec::with_capacity(k);
        let mut seen = std::collections::HashSet::new();
        for chunk in chunks {
            if chunk.id.index >= max {
                return Err(CodingError::InvalidChunkIndex {
                    index: chunk.id.index,
                    max,
                });
            }
            if !seen.insert(chunk.id.index) {
                // A duplicate row is legal input if we already have it; only
                // flag it as an error when it prevents reaching k rows.
                continue;
            }
            selected.push(chunk);
            if selected.len() == k {
                break;
            }
        }
        if selected.len() < k {
            return Err(CodingError::NotEnoughChunks {
                have: selected.len(),
                need: k,
            });
        }

        let chunk_len = selected[0].len();
        for chunk in &selected {
            if chunk.len() != chunk_len {
                return Err(CodingError::ChunkSizeMismatch {
                    expected: chunk_len,
                    found: chunk.len(),
                });
            }
        }
        if original_len > k * chunk_len {
            return Err(CodingError::InvalidFileLength {
                requested: original_len,
                available: k * chunk_len,
            });
        }

        // Build and invert the k x k decoding matrix.
        let rows: Vec<usize> = selected.iter().map(|c| c.id.index).collect();
        let sub = self.generator.select_rows(&rows);
        let inv = sub
            .inverted()
            .map_err(|_| CodingError::SingularDecodeMatrix)?;

        // data_chunk[i] = sum_j inv[i][j] * selected[j]
        let mut data_chunks = vec![vec![0u8; chunk_len]; k];
        for (i, data) in data_chunks.iter_mut().enumerate() {
            for (j, chunk) in selected.iter().enumerate() {
                let coeff = inv.get(i, j);
                Gf256::mul_acc_slice(coeff, &chunk.data, data);
            }
        }
        Ok(stripe::join(&data_chunks, original_len))
    }

    /// Produces a single coded chunk for the given generator row from a raw file.
    ///
    /// Convenience wrapper used by repair and cache-population paths.
    pub fn encode_row_from_file(&self, file: &[u8], row: usize) -> Chunk {
        let (data_chunks, _) = stripe::split(file, self.params.k());
        let payload = self.encode_rows(&data_chunks, &[row]).remove(0);
        let source = if row < self.params.n() {
            ChunkSource::Storage
        } else {
            ChunkSource::Cache
        };
        Chunk::new(ChunkId { index: row, source }, Bytes::from(payload))
    }

    /// Verifies that a set of chunks is consistent with a single codeword,
    /// i.e. decoding from one `k`-subset and re-encoding reproduces all the
    /// supplied chunks.
    ///
    /// # Errors
    ///
    /// Propagates decode errors; returns `Ok(false)` when the chunks are
    /// inconsistent.
    pub fn verify(&self, chunks: &[Chunk]) -> Result<bool, CodingError> {
        if chunks.is_empty() {
            return Ok(true);
        }
        let chunk_len = chunks[0].len();
        let file = self.decode(chunks, self.params.k() * chunk_len)?;
        let (data_chunks, _) = stripe::split(&file, self.params.k());
        for chunk in chunks {
            let expect = self.encode_rows(&data_chunks, &[chunk.id.index]).remove(0);
            if expect != chunk.data.as_ref() {
                return Ok(false);
            }
        }
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_file(len: usize) -> Vec<u8> {
        (0..len).map(|i| (i * 131 + 7) as u8).collect()
    }

    #[test]
    fn params_validation() {
        assert!(CodeParams::new(7, 4).is_ok());
        assert!(CodeParams::new(4, 4).is_ok());
        assert!(matches!(
            CodeParams::new(3, 4),
            Err(CodingError::InvalidParams { .. })
        ));
        assert!(matches!(
            CodeParams::new(5, 0),
            Err(CodingError::InvalidParams { .. })
        ));
        assert!(matches!(
            CodeParams::new(200, 100),
            Err(CodingError::InvalidParams { .. })
        ));
        let p = CodeParams::new(7, 4).unwrap();
        assert_eq!(p.n(), 7);
        assert_eq!(p.k(), 4);
        assert_eq!(p.extended_rows(), 11);
        assert!((p.redundancy() - 1.75).abs() < 1e-12);
        assert_eq!(p.to_string(), "(7, 4)");
    }

    #[test]
    fn encode_produces_systematic_prefix() {
        let rs = ReedSolomon::new(CodeParams::new(6, 5).unwrap()).unwrap();
        let file = sample_file(50);
        let encoded = rs.encode(&file).unwrap();
        assert_eq!(encoded.chunks().len(), 6);
        let (data_chunks, clen) = stripe::split(&file, 5);
        assert_eq!(encoded.chunk_len(), clen);
        // first k chunks are the data chunks themselves (systematic code)
        for (i, data_chunk) in data_chunks.iter().enumerate() {
            assert_eq!(encoded.chunks()[i].data.as_ref(), &data_chunk[..]);
        }
    }

    #[test]
    fn decode_from_any_k_subset() {
        let rs = ReedSolomon::new(CodeParams::new(7, 4).unwrap()).unwrap();
        let file = sample_file(123);
        let encoded = rs.encode(&file).unwrap();
        // every 4-subset of the 7 storage chunks decodes
        let idx: Vec<usize> = (0..7).collect();
        for a in 0..7 {
            for b in a + 1..7 {
                for c in b + 1..7 {
                    for d in c + 1..7 {
                        let subset: Vec<Chunk> = [a, b, c, d]
                            .iter()
                            .map(|&i| encoded.chunks()[idx[i]].clone())
                            .collect();
                        assert_eq!(rs.decode(&subset, file.len()).unwrap(), file);
                    }
                }
            }
        }
    }

    #[test]
    fn decode_with_fewer_chunks_fails() {
        let rs = ReedSolomon::new(CodeParams::new(7, 4).unwrap()).unwrap();
        let file = sample_file(64);
        let encoded = rs.encode(&file).unwrap();
        let subset: Vec<Chunk> = encoded.chunks()[..3].to_vec();
        assert_eq!(
            rs.decode(&subset, file.len()).unwrap_err(),
            CodingError::NotEnoughChunks { have: 3, need: 4 }
        );
    }

    #[test]
    fn duplicate_rows_do_not_count_twice() {
        let rs = ReedSolomon::new(CodeParams::new(7, 4).unwrap()).unwrap();
        let file = sample_file(64);
        let encoded = rs.encode(&file).unwrap();
        let mut subset: Vec<Chunk> = encoded.chunks()[..3].to_vec();
        subset.push(encoded.chunks()[0].clone());
        assert!(matches!(
            rs.decode(&subset, file.len()),
            Err(CodingError::NotEnoughChunks { have: 3, need: 4 })
        ));
        subset.push(encoded.chunks()[5].clone());
        assert_eq!(rs.decode(&subset, file.len()).unwrap(), file);
    }

    #[test]
    fn invalid_chunk_index_is_rejected() {
        let rs = ReedSolomon::new(CodeParams::new(7, 4).unwrap()).unwrap();
        let file = sample_file(16);
        let encoded = rs.encode(&file).unwrap();
        let mut subset: Vec<Chunk> = encoded.chunks()[..4].to_vec();
        subset[0] = Chunk::new(ChunkId::storage(99), subset[0].data.clone());
        assert!(matches!(
            rs.decode(&subset, file.len()),
            Err(CodingError::InvalidChunkIndex { index: 99, .. })
        ));
    }

    #[test]
    fn chunk_size_mismatch_is_rejected() {
        let rs = ReedSolomon::new(CodeParams::new(7, 4).unwrap()).unwrap();
        let file = sample_file(40);
        let encoded = rs.encode(&file).unwrap();
        let mut subset: Vec<Chunk> = encoded.chunks()[..4].to_vec();
        subset[2] = Chunk::new(subset[2].id, vec![0u8; 3]);
        assert!(matches!(
            rs.decode(&subset, file.len()),
            Err(CodingError::ChunkSizeMismatch { .. })
        ));
    }

    #[test]
    fn invalid_file_length_is_rejected() {
        let rs = ReedSolomon::new(CodeParams::new(6, 3).unwrap()).unwrap();
        let file = sample_file(30);
        let encoded = rs.encode(&file).unwrap();
        let subset: Vec<Chunk> = encoded.chunks()[..3].to_vec();
        assert!(matches!(
            rs.decode(&subset, 10_000),
            Err(CodingError::InvalidFileLength { .. })
        ));
    }

    #[test]
    fn empty_file_round_trips() {
        let rs = ReedSolomon::new(CodeParams::new(5, 3).unwrap()).unwrap();
        let encoded = rs.encode(&[]).unwrap();
        assert_eq!(encoded.original_len(), 0);
        let subset: Vec<Chunk> = encoded.chunks()[2..5].to_vec();
        assert!(rs.decode(&subset, 0).unwrap().is_empty());
    }

    #[test]
    fn verify_accepts_consistent_and_rejects_corrupted() {
        let rs = ReedSolomon::new(CodeParams::new(7, 4).unwrap()).unwrap();
        let file = sample_file(97);
        let encoded = rs.encode(&file).unwrap();
        assert!(rs.verify(encoded.chunks()).unwrap());
        let mut corrupted = encoded.chunks().to_vec();
        let mut bytes = corrupted[6].data.to_vec();
        bytes[0] ^= 0xFF;
        corrupted[6] = Chunk::new(corrupted[6].id, bytes);
        assert!(!rs.verify(&corrupted).unwrap());
        assert!(rs.verify(&[]).unwrap());
    }

    #[test]
    fn encode_row_from_file_matches_encode() {
        let rs = ReedSolomon::new(CodeParams::new(7, 4).unwrap()).unwrap();
        let file = sample_file(77);
        let encoded = rs.encode(&file).unwrap();
        for row in 0..7 {
            let chunk = rs.encode_row_from_file(&file, row);
            assert_eq!(chunk.data, encoded.chunks()[row].data);
            assert_eq!(chunk.id.source, ChunkSource::Storage);
        }
        let cache_chunk = rs.encode_row_from_file(&file, 8);
        assert_eq!(cache_chunk.id.source, ChunkSource::Cache);
    }

    #[test]
    fn into_chunks_moves_out() {
        let rs = ReedSolomon::new(CodeParams::new(5, 2).unwrap()).unwrap();
        let encoded = rs.encode(&sample_file(10)).unwrap();
        assert_eq!(encoded.clone().into_chunks().len(), 5);
    }
}
