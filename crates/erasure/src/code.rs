//! Systematic `(n, k)` Reed–Solomon codes built from an extended
//! `(n + k, k)` MDS generator.
//!
//! Following §III of the paper, the generator has `n + k` rows so that the
//! `n` storage chunks use rows `0..n` and up to `k` *functional cache* chunks
//! can later be produced from rows `n..n + k` without touching the stored
//! chunks. Any `k` distinct rows of the generator are linearly independent,
//! so any `k` chunks — from storage, cache, or a mix — reconstruct the file.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use bytes::Bytes;
use sprout_gf::{builders, kernel, Kernel, Matrix};

use crate::chunk::{Chunk, ChunkId, ChunkSource};
use crate::error::CodingError;
use crate::stripe;
use crate::striped::{self, StripeOpts};

/// Validated `(n, k)` erasure-code parameters.
///
/// `n` is the number of chunks stored on storage nodes and `k` the number of
/// data chunks required to reconstruct a file. The extended generator used
/// internally has `n + k` rows, so `n + k` must not exceed 255.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CodeParams {
    n: usize,
    k: usize,
}

impl CodeParams {
    /// Creates validated code parameters.
    ///
    /// # Errors
    ///
    /// Returns [`CodingError::InvalidParams`] if `k == 0`, `n < k`, or
    /// `n + k > 255`.
    pub fn new(n: usize, k: usize) -> Result<Self, CodingError> {
        if k == 0 {
            return Err(CodingError::InvalidParams {
                n,
                k,
                reason: "k must be at least 1",
            });
        }
        if n < k {
            return Err(CodingError::InvalidParams {
                n,
                k,
                reason: "n must be at least k",
            });
        }
        if n + k > 255 {
            return Err(CodingError::InvalidParams {
                n,
                k,
                reason: "n + k must not exceed 255 for GF(2^8)",
            });
        }
        Ok(CodeParams { n, k })
    }

    /// Number of chunks stored on storage nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of data chunks needed to reconstruct a file.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Storage redundancy factor `n / k`.
    pub fn redundancy(&self) -> f64 {
        self.n as f64 / self.k as f64
    }

    /// Total number of rows in the extended generator (`n + k`).
    #[inline]
    pub fn extended_rows(&self) -> usize {
        self.n + self.k
    }
}

impl std::fmt::Display for CodeParams {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}, {})", self.n, self.k)
    }
}

/// The result of encoding a file: the `n` storage chunks plus the metadata
/// needed to decode (original length and per-chunk length).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodedFile {
    chunks: Vec<Chunk>,
    original_len: usize,
    chunk_len: usize,
}

impl EncodedFile {
    /// The `n` storage chunks.
    pub fn chunks(&self) -> &[Chunk] {
        &self.chunks
    }

    /// Consumes the encoded file and returns its chunks.
    pub fn into_chunks(self) -> Vec<Chunk> {
        self.chunks
    }

    /// Original (pre-padding) file length in bytes.
    pub fn original_len(&self) -> usize {
        self.original_len
    }

    /// Length of each chunk in bytes.
    pub fn chunk_len(&self) -> usize {
        self.chunk_len
    }
}

/// A systematic `(n, k)` Reed–Solomon MDS code with an extended generator
/// that reserves `k` extra rows for functional cache chunks.
///
/// # Example
///
/// ```
/// use sprout_erasure::{CodeParams, ReedSolomon};
///
/// let rs = ReedSolomon::new(CodeParams::new(7, 4)?)?;
/// let file: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
/// let encoded = rs.encode(&file)?;
///
/// // Reconstruct from an arbitrary subset of 4 chunks.
/// let subset: Vec<_> = encoded.chunks().iter().skip(2).take(4).cloned().collect();
/// assert_eq!(rs.decode(&subset, file.len())?, file);
/// # Ok::<(), sprout_erasure::CodingError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ReedSolomon {
    params: CodeParams,
    /// Extended `(n + k) × k` systematic generator matrix.
    generator: Matrix,
    /// Slice kernel used for all bulk GF(2^8) work.
    kernel: Kernel,
    /// When set, `encode`/`decode`/`encode_rows` automatically stripe large
    /// objects across a scoped thread pool (see [`StripeOpts`]). `None`
    /// keeps every operation a single pass on the calling thread.
    striping: Option<StripeOpts>,
    /// Memo of inverted decode matrices, keyed by the sorted row subset.
    ///
    /// Shared (via `Arc`) between clones of the code, so a codec cloned into
    /// several components still amortizes Gaussian eliminations.
    decode_memo: Arc<Mutex<InverseMemo>>,
}

/// Bounded LRU memo mapping a sorted row subset to the inverse of the
/// corresponding generator sub-matrix.
///
/// Real request streams decode the same cache/storage row mixes over and
/// over (the scheduler only has `n + d choose k` subsets to pick from, and
/// heavily skews toward the fastest nodes), so the O(k³) elimination is
/// almost always a cache hit after warm-up.
#[derive(Debug, Default)]
struct InverseMemo {
    entries: HashMap<Vec<usize>, MemoEntry>,
    clock: u64,
    hits: u64,
    misses: u64,
}

#[derive(Debug)]
struct MemoEntry {
    inverse: Arc<Matrix>,
    last_used: u64,
}

/// Maximum number of inverted matrices kept per code.
const DECODE_MEMO_CAP: usize = 64;

impl InverseMemo {
    fn get(&mut self, rows: &[usize]) -> Option<Arc<Matrix>> {
        self.clock += 1;
        let clock = self.clock;
        match self.entries.get_mut(rows) {
            Some(entry) => {
                entry.last_used = clock;
                self.hits += 1;
                Some(Arc::clone(&entry.inverse))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    fn insert(&mut self, rows: Vec<usize>, inverse: Arc<Matrix>) {
        if self.entries.len() >= DECODE_MEMO_CAP {
            // Evict the least recently used subset (linear scan: the memo is
            // small and eviction is rare).
            if let Some(victim) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                self.entries.remove(&victim);
            }
        }
        let clock = self.clock;
        self.entries.insert(
            rows,
            MemoEntry {
                inverse,
                last_used: clock,
            },
        );
    }
}

impl ReedSolomon {
    /// Builds the code for the given parameters, using the default kernel.
    ///
    /// # Errors
    ///
    /// Currently construction cannot fail for validated [`CodeParams`], but
    /// the `Result` is kept so that alternative generator constructions
    /// (e.g. user-supplied matrices) can report errors uniformly.
    pub fn new(params: CodeParams) -> Result<Self, CodingError> {
        Self::with_kernel(params, Kernel::default())
    }

    /// Builds the code with an explicit slice [`Kernel`] (used by the
    /// differential tests and kernel-vs-kernel benchmarks).
    ///
    /// # Errors
    ///
    /// See [`ReedSolomon::new`].
    pub fn with_kernel(params: CodeParams, kernel: Kernel) -> Result<Self, CodingError> {
        let generator = builders::systematic_mds(params.extended_rows(), params.k());
        Ok(ReedSolomon {
            params,
            generator,
            kernel,
            striping: None,
            decode_memo: Arc::new(Mutex::new(InverseMemo::default())),
        })
    }

    /// Enables (or disables, with `None`) automatic striped coding: with
    /// options set, [`ReedSolomon::encode`], [`ReedSolomon::decode`] and
    /// [`ReedSolomon::encode_rows`] fan multi-stripe objects out over a
    /// scoped thread pool. Results are byte-identical either way; only
    /// throughput changes.
    #[must_use]
    pub fn with_striping(mut self, striping: Option<StripeOpts>) -> Self {
        self.set_striping(striping);
        self
    }

    /// Switches automatic striping. See [`ReedSolomon::with_striping`].
    pub fn set_striping(&mut self, striping: Option<StripeOpts>) {
        self.striping = striping;
    }

    /// The automatic striping options, if enabled.
    pub fn striping(&self) -> Option<StripeOpts> {
        self.striping
    }

    /// The code parameters.
    pub fn params(&self) -> CodeParams {
        self.params
    }

    /// The slice kernel used for bulk GF(2^8) work.
    pub fn kernel(&self) -> Kernel {
        self.kernel
    }

    /// Switches the slice kernel. Results are unaffected — every kernel is
    /// byte-identical — only throughput changes.
    pub fn set_kernel(&mut self, kernel: Kernel) {
        self.kernel = kernel;
    }

    /// Number of inverted decode matrices currently memoized.
    pub fn memoized_decode_matrices(&self) -> usize {
        self.decode_memo
            .lock()
            .expect("memo poisoned")
            .entries
            .len()
    }

    /// `(hits, misses)` counters of the decode-matrix memo.
    pub fn decode_memo_stats(&self) -> (u64, u64) {
        let memo = self.decode_memo.lock().expect("memo poisoned");
        (memo.hits, memo.misses)
    }

    /// The extended `(n + k) × k` generator matrix.
    pub fn generator(&self) -> &Matrix {
        &self.generator
    }

    /// Encodes a file into its `n` storage chunks.
    ///
    /// The systematic prefix is produced without any GF arithmetic: the
    /// first `k` payloads are the split data chunks themselves, moved (not
    /// copied) into their [`Chunk`]s. Only the `n - k` parity rows run
    /// through the multiply kernel.
    ///
    /// # Errors
    ///
    /// This operation does not currently fail; the `Result` mirrors
    /// [`ReedSolomon::decode`] for API symmetry.
    pub fn encode(&self, file: &[u8]) -> Result<EncodedFile, CodingError> {
        self.encode_impl(file, self.striping)
    }

    /// Encodes a file with explicitly striped, multi-threaded parity
    /// computation (regardless of the code's automatic-striping setting).
    ///
    /// The object's chunk length is partitioned into stripes of
    /// `opts.stripe_len` bytes and the parity rows of each stripe are
    /// encoded concurrently on a scoped thread pool writing disjoint
    /// sub-slices of the final chunk buffers — no per-stripe allocation and
    /// no reassembly copy. The result is byte-identical to
    /// [`ReedSolomon::encode`].
    ///
    /// # Errors
    ///
    /// See [`ReedSolomon::encode`].
    pub fn encode_striped(
        &self,
        file: &[u8],
        opts: StripeOpts,
    ) -> Result<EncodedFile, CodingError> {
        self.encode_impl(file, Some(opts))
    }

    fn encode_impl(
        &self,
        file: &[u8],
        striping: Option<StripeOpts>,
    ) -> Result<EncodedFile, CodingError> {
        let k = self.params.k();
        let n = self.params.n();
        let (data_chunks, chunk_len) = stripe::split(file, k);
        let data_refs: Vec<&[u8]> = data_chunks.iter().map(Vec::as_slice).collect();

        // Parity rows first (they read every data chunk) ...
        let parity_rows: Vec<usize> = (k..n).collect();
        let mut parity: Vec<Vec<u8>> = parity_rows.iter().map(|_| vec![0u8; chunk_len]).collect();
        {
            let mut outs: Vec<&mut [u8]> = parity.iter_mut().map(Vec::as_mut_slice).collect();
            match striping {
                Some(opts) => {
                    self.encode_rows_striped_into(&data_refs, &parity_rows, &mut outs, opts);
                }
                None => self.encode_rows_into(&data_refs, &parity_rows, &mut outs),
            }
        }

        // ... then the data chunks are moved into the systematic prefix.
        let mut chunks = Vec::with_capacity(n);
        for (row, data) in data_chunks.into_iter().enumerate() {
            chunks.push(Chunk::new(ChunkId::storage(row), data));
        }
        for (&row, payload) in parity_rows.iter().zip(parity) {
            chunks.push(Chunk::new(ChunkId::storage(row), payload));
        }
        Ok(EncodedFile {
            chunks,
            original_len: file.len(),
            chunk_len,
        })
    }

    /// Encodes the listed generator rows against already-split data chunks.
    ///
    /// This is the primitive used both for storage chunks (rows `0..n`) and
    /// functional cache chunks (rows `n..n+d`). Allocates one payload per
    /// row; the zero-copy variant is [`ReedSolomon::encode_rows_into`].
    ///
    /// # Panics
    ///
    /// Panics if `data_chunks.len() != k`, the chunks have unequal lengths,
    /// or a row index exceeds `n + k`.
    pub fn encode_rows(&self, data_chunks: &[Vec<u8>], rows: &[usize]) -> Vec<Vec<u8>> {
        let chunk_len = data_chunks.first().map_or(0, Vec::len);
        let data_refs: Vec<&[u8]> = data_chunks.iter().map(Vec::as_slice).collect();
        let mut payloads: Vec<Vec<u8>> = rows.iter().map(|_| vec![0u8; chunk_len]).collect();
        let mut outs: Vec<&mut [u8]> = payloads.iter_mut().map(Vec::as_mut_slice).collect();
        match self.striping {
            Some(opts) => self.encode_rows_striped_into(&data_refs, rows, &mut outs, opts),
            None => self.encode_rows_into(&data_refs, rows, &mut outs),
        }
        payloads
    }

    /// Encodes the listed generator rows into caller-provided output
    /// buffers, allocating nothing.
    ///
    /// Each output buffer is fully overwritten (callers do not need to zero
    /// it). Per-coefficient multiplication tables are the process-wide lazy
    /// tables from [`sprout_gf::MulTable`], so a stripe of calls with the
    /// same generator rows reuses them with no per-call setup.
    ///
    /// # Panics
    ///
    /// Panics if `data_chunks.len() != k`, the data chunks have unequal
    /// lengths, `outputs.len() != rows.len()`, an output buffer's length
    /// differs from the chunk length, or a row index exceeds `n + k`.
    pub fn encode_rows_into(
        &self,
        data_chunks: &[&[u8]],
        rows: &[usize],
        outputs: &mut [&mut [u8]],
    ) {
        let k = self.params.k();
        assert_eq!(data_chunks.len(), k, "expected exactly k data chunks");
        let chunk_len = data_chunks.first().map_or(0, |c| c.len());
        assert!(
            data_chunks.iter().all(|c| c.len() == chunk_len),
            "all data chunks must have the same length"
        );
        assert_eq!(
            outputs.len(),
            rows.len(),
            "expected one output buffer per row"
        );
        for (&row, out) in rows.iter().zip(outputs.iter_mut()) {
            assert!(
                row < self.params.extended_rows(),
                "generator row {row} out of range"
            );
            assert_eq!(
                out.len(),
                chunk_len,
                "output buffer length must equal the chunk length"
            );
            for (j, data) in data_chunks.iter().enumerate() {
                let coeff = self.generator.get(row, j);
                if j == 0 {
                    // Overwrite on the first source: skips reading the
                    // (possibly uninitialized-for-our-purposes) buffer.
                    kernel::mul_slice(self.kernel, coeff, data, out);
                } else {
                    kernel::mul_acc_slice(self.kernel, coeff, data, out);
                }
            }
        }
    }

    /// The striped, multi-threaded variant of
    /// [`ReedSolomon::encode_rows_into`]: the chunk length is partitioned
    /// into `opts.stripe_len`-byte stripes, and each stripe's slice of every
    /// output row is encoded concurrently on a scoped thread pool.
    ///
    /// Stripes are disjoint byte ranges of caller-provided buffers, so
    /// nothing is allocated per stripe and the result is byte-identical to
    /// the single-pass variant for any thread count. Objects that produce at
    /// most one stripe (or `opts` resolving to one worker) run inline.
    ///
    /// # Panics
    ///
    /// As [`ReedSolomon::encode_rows_into`].
    pub fn encode_rows_striped_into(
        &self,
        data_chunks: &[&[u8]],
        rows: &[usize],
        outputs: &mut [&mut [u8]],
        opts: StripeOpts,
    ) {
        let chunk_len = data_chunks.first().map_or(0, |c| c.len());
        let ranges = stripe::stripe_ranges(chunk_len, opts.stripe_len);
        let workers = opts.effective_threads().min(ranges.len()).max(1);
        if workers == 1 {
            self.encode_rows_into(data_chunks, rows, outputs);
            return;
        }
        // Same contract checks as the single-pass variant (it is not called
        // here, so they must run up front — before buffers are carved).
        assert_eq!(
            data_chunks.len(),
            self.params.k(),
            "expected exactly k data chunks"
        );
        assert!(
            data_chunks.iter().all(|c| c.len() == chunk_len),
            "all data chunks must have the same length"
        );
        assert_eq!(
            outputs.len(),
            rows.len(),
            "expected one output buffer per row"
        );
        for (&row, out) in rows.iter().zip(outputs.iter()) {
            assert!(
                row < self.params.extended_rows(),
                "generator row {row} out of range"
            );
            assert_eq!(
                out.len(),
                chunk_len,
                "output buffer length must equal the chunk length"
            );
        }
        let tasks = striped::carve(outputs, &ranges);
        striped::run_tasks(tasks, workers, |range, outs| {
            for (&row, out) in rows.iter().zip(outs.iter_mut()) {
                for (j, data) in data_chunks.iter().enumerate() {
                    let coeff = self.generator.get(row, j);
                    let src = &data[range.clone()];
                    if j == 0 {
                        kernel::mul_slice(self.kernel, coeff, src, out);
                    } else {
                        kernel::mul_acc_slice(self.kernel, coeff, src, out);
                    }
                }
            }
        });
    }

    /// Decodes the original file from any `k` distinct chunks.
    ///
    /// Chunks may come from storage rows, cache rows, or a mix; only `k`
    /// distinct generator rows are required. Extra chunks beyond `k` are
    /// ignored (the first `k` distinct rows are used).
    ///
    /// # Errors
    ///
    /// * [`CodingError::NotEnoughChunks`] if fewer than `k` distinct rows are present.
    /// * [`CodingError::InvalidChunkIndex`] if a row index is out of range.
    /// * [`CodingError::ChunkSizeMismatch`] if payload lengths differ.
    /// * [`CodingError::InvalidFileLength`] if `original_len` exceeds `k * chunk_len`.
    pub fn decode(&self, chunks: &[Chunk], original_len: usize) -> Result<Vec<u8>, CodingError> {
        self.decode_impl(chunks, original_len, self.striping)
    }

    /// Decodes with explicitly striped, multi-threaded reconstruction
    /// (regardless of the code's automatic-striping setting).
    ///
    /// The inverse decode matrix is computed (or memo-served) once; the
    /// chunk length is then partitioned into `opts.stripe_len`-byte stripes
    /// reconstructed concurrently into disjoint sub-slices of the flat
    /// output buffer. Byte-identical to [`ReedSolomon::decode`].
    ///
    /// # Errors
    ///
    /// See [`ReedSolomon::decode`].
    pub fn decode_striped(
        &self,
        chunks: &[Chunk],
        original_len: usize,
        opts: StripeOpts,
    ) -> Result<Vec<u8>, CodingError> {
        self.decode_impl(chunks, original_len, Some(opts))
    }

    fn decode_impl(
        &self,
        chunks: &[Chunk],
        original_len: usize,
        striping: Option<StripeOpts>,
    ) -> Result<Vec<u8>, CodingError> {
        let k = self.params.k();
        let max = self.params.extended_rows();

        // Collect the first k distinct rows.
        let mut selected: Vec<&Chunk> = Vec::with_capacity(k);
        let mut seen = std::collections::HashSet::new();
        for chunk in chunks {
            if chunk.id.index >= max {
                return Err(CodingError::InvalidChunkIndex {
                    index: chunk.id.index,
                    max,
                });
            }
            if !seen.insert(chunk.id.index) {
                // A duplicate row is legal input if we already have it; only
                // flag it as an error when it prevents reaching k rows.
                continue;
            }
            selected.push(chunk);
            if selected.len() == k {
                break;
            }
        }
        if selected.len() < k {
            return Err(CodingError::NotEnoughChunks {
                have: selected.len(),
                need: k,
            });
        }

        let chunk_len = selected[0].len();
        for chunk in &selected {
            if chunk.len() != chunk_len {
                return Err(CodingError::ChunkSizeMismatch {
                    expected: chunk_len,
                    found: chunk.len(),
                });
            }
        }
        if original_len > k * chunk_len {
            return Err(CodingError::InvalidFileLength {
                requested: original_len,
                available: k * chunk_len,
            });
        }

        // Sorting the selected chunks by row makes the decode matrix a pure
        // function of the row *subset* (memo key) — and leaves the decoded
        // bytes unchanged, since permuting the equation system permutes the
        // inverse's columns identically.
        selected.sort_by_key(|c| c.id.index);
        let rows: Vec<usize> = selected.iter().map(|c| c.id.index).collect();
        let inv = self.decode_matrix(&rows)?;

        // data_chunk[i] = sum_j inv[i][j] * selected[j], written directly
        // into one flat output buffer (chunk i occupies bytes
        // i*chunk_len..(i+1)*chunk_len of the decoded file), so no per-chunk
        // buffers or join copy are needed.
        let mut flat = vec![0u8; k * chunk_len];
        let ranges = striping
            .map(|opts| stripe::stripe_ranges(chunk_len, opts.stripe_len))
            .unwrap_or_default();
        let workers = striping.map_or(1, |opts| opts.effective_threads().min(ranges.len()).max(1));
        if workers > 1 {
            // Striped: carve each logical data chunk of the flat buffer
            // along the stripe ranges and reconstruct stripes concurrently.
            let mut data_slices: Vec<&mut [u8]> = flat.chunks_mut(chunk_len).collect();
            let tasks = striped::carve(&mut data_slices, &ranges);
            striped::run_tasks(tasks, workers, |range, outs| {
                for (i, data) in outs.iter_mut().enumerate() {
                    for (j, chunk) in selected.iter().enumerate() {
                        let coeff = inv.get(i, j);
                        let src = &chunk.data[range.clone()];
                        if j == 0 {
                            kernel::mul_slice(self.kernel, coeff, src, data);
                        } else {
                            kernel::mul_acc_slice(self.kernel, coeff, src, data);
                        }
                    }
                }
            });
        } else {
            for (i, data) in flat.chunks_mut(chunk_len.max(1)).enumerate() {
                for (j, chunk) in selected.iter().enumerate() {
                    let coeff = inv.get(i, j);
                    if j == 0 {
                        kernel::mul_slice(self.kernel, coeff, &chunk.data, data);
                    } else {
                        kernel::mul_acc_slice(self.kernel, coeff, &chunk.data, data);
                    }
                }
            }
        }
        flat.truncate(original_len);
        Ok(flat)
    }

    /// The inverse of the generator sub-matrix for a sorted row subset,
    /// served from the LRU memo when the same mix of cache/storage rows has
    /// been decoded before.
    fn decode_matrix(&self, rows: &[usize]) -> Result<Arc<Matrix>, CodingError> {
        if let Some(inverse) = self.decode_memo.lock().expect("memo poisoned").get(rows) {
            return Ok(inverse);
        }
        // Miss: run the O(k³) elimination *outside* the lock so concurrent
        // decodes (and memo hits) are never serialized behind it. A racing
        // decode of the same subset may recompute the inverse; that is
        // harmless — the result is deterministic and insert is last-wins.
        let sub = self.generator.select_rows(rows);
        let inverse = Arc::new(
            sub.inverted()
                .map_err(|_| CodingError::SingularDecodeMatrix)?,
        );
        self.decode_memo
            .lock()
            .expect("memo poisoned")
            .insert(rows.to_vec(), Arc::clone(&inverse));
        Ok(inverse)
    }

    /// Produces a single coded chunk for the given generator row from a raw file.
    ///
    /// Convenience wrapper used by repair and cache-population paths.
    pub fn encode_row_from_file(&self, file: &[u8], row: usize) -> Chunk {
        let (data_chunks, _) = stripe::split(file, self.params.k());
        let payload = self.encode_rows(&data_chunks, &[row]).remove(0);
        let source = if row < self.params.n() {
            ChunkSource::Storage
        } else {
            ChunkSource::Cache
        };
        Chunk::new(ChunkId { index: row, source }, Bytes::from(payload))
    }

    /// Verifies that a set of chunks is consistent with a single codeword,
    /// i.e. decoding from one `k`-subset and re-encoding reproduces all the
    /// supplied chunks.
    ///
    /// # Errors
    ///
    /// Propagates decode errors; returns `Ok(false)` when the chunks are
    /// inconsistent.
    pub fn verify(&self, chunks: &[Chunk]) -> Result<bool, CodingError> {
        if chunks.is_empty() {
            return Ok(true);
        }
        let chunk_len = chunks[0].len();
        let file = self.decode(chunks, self.params.k() * chunk_len)?;
        let (data_chunks, _) = stripe::split(&file, self.params.k());
        for chunk in chunks {
            let expect = self.encode_rows(&data_chunks, &[chunk.id.index]).remove(0);
            if expect != chunk.data.as_ref() {
                return Ok(false);
            }
        }
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_file(len: usize) -> Vec<u8> {
        (0..len).map(|i| (i * 131 + 7) as u8).collect()
    }

    #[test]
    fn params_validation() {
        assert!(CodeParams::new(7, 4).is_ok());
        assert!(CodeParams::new(4, 4).is_ok());
        assert!(matches!(
            CodeParams::new(3, 4),
            Err(CodingError::InvalidParams { .. })
        ));
        assert!(matches!(
            CodeParams::new(5, 0),
            Err(CodingError::InvalidParams { .. })
        ));
        assert!(matches!(
            CodeParams::new(200, 100),
            Err(CodingError::InvalidParams { .. })
        ));
        let p = CodeParams::new(7, 4).unwrap();
        assert_eq!(p.n(), 7);
        assert_eq!(p.k(), 4);
        assert_eq!(p.extended_rows(), 11);
        assert!((p.redundancy() - 1.75).abs() < 1e-12);
        assert_eq!(p.to_string(), "(7, 4)");
    }

    #[test]
    fn encode_produces_systematic_prefix() {
        let rs = ReedSolomon::new(CodeParams::new(6, 5).unwrap()).unwrap();
        let file = sample_file(50);
        let encoded = rs.encode(&file).unwrap();
        assert_eq!(encoded.chunks().len(), 6);
        let (data_chunks, clen) = stripe::split(&file, 5);
        assert_eq!(encoded.chunk_len(), clen);
        // first k chunks are the data chunks themselves (systematic code)
        for (i, data_chunk) in data_chunks.iter().enumerate() {
            assert_eq!(encoded.chunks()[i].data.as_ref(), &data_chunk[..]);
        }
    }

    #[test]
    fn decode_from_any_k_subset() {
        let rs = ReedSolomon::new(CodeParams::new(7, 4).unwrap()).unwrap();
        let file = sample_file(123);
        let encoded = rs.encode(&file).unwrap();
        // every 4-subset of the 7 storage chunks decodes
        let idx: Vec<usize> = (0..7).collect();
        for a in 0..7 {
            for b in a + 1..7 {
                for c in b + 1..7 {
                    for d in c + 1..7 {
                        let subset: Vec<Chunk> = [a, b, c, d]
                            .iter()
                            .map(|&i| encoded.chunks()[idx[i]].clone())
                            .collect();
                        assert_eq!(rs.decode(&subset, file.len()).unwrap(), file);
                    }
                }
            }
        }
    }

    #[test]
    fn decode_with_fewer_chunks_fails() {
        let rs = ReedSolomon::new(CodeParams::new(7, 4).unwrap()).unwrap();
        let file = sample_file(64);
        let encoded = rs.encode(&file).unwrap();
        let subset: Vec<Chunk> = encoded.chunks()[..3].to_vec();
        assert_eq!(
            rs.decode(&subset, file.len()).unwrap_err(),
            CodingError::NotEnoughChunks { have: 3, need: 4 }
        );
    }

    #[test]
    fn duplicate_rows_do_not_count_twice() {
        let rs = ReedSolomon::new(CodeParams::new(7, 4).unwrap()).unwrap();
        let file = sample_file(64);
        let encoded = rs.encode(&file).unwrap();
        let mut subset: Vec<Chunk> = encoded.chunks()[..3].to_vec();
        subset.push(encoded.chunks()[0].clone());
        assert!(matches!(
            rs.decode(&subset, file.len()),
            Err(CodingError::NotEnoughChunks { have: 3, need: 4 })
        ));
        subset.push(encoded.chunks()[5].clone());
        assert_eq!(rs.decode(&subset, file.len()).unwrap(), file);
    }

    #[test]
    fn invalid_chunk_index_is_rejected() {
        let rs = ReedSolomon::new(CodeParams::new(7, 4).unwrap()).unwrap();
        let file = sample_file(16);
        let encoded = rs.encode(&file).unwrap();
        let mut subset: Vec<Chunk> = encoded.chunks()[..4].to_vec();
        subset[0] = Chunk::new(ChunkId::storage(99), subset[0].data.clone());
        assert!(matches!(
            rs.decode(&subset, file.len()),
            Err(CodingError::InvalidChunkIndex { index: 99, .. })
        ));
    }

    #[test]
    fn chunk_size_mismatch_is_rejected() {
        let rs = ReedSolomon::new(CodeParams::new(7, 4).unwrap()).unwrap();
        let file = sample_file(40);
        let encoded = rs.encode(&file).unwrap();
        let mut subset: Vec<Chunk> = encoded.chunks()[..4].to_vec();
        subset[2] = Chunk::new(subset[2].id, vec![0u8; 3]);
        assert!(matches!(
            rs.decode(&subset, file.len()),
            Err(CodingError::ChunkSizeMismatch { .. })
        ));
    }

    #[test]
    fn invalid_file_length_is_rejected() {
        let rs = ReedSolomon::new(CodeParams::new(6, 3).unwrap()).unwrap();
        let file = sample_file(30);
        let encoded = rs.encode(&file).unwrap();
        let subset: Vec<Chunk> = encoded.chunks()[..3].to_vec();
        assert!(matches!(
            rs.decode(&subset, 10_000),
            Err(CodingError::InvalidFileLength { .. })
        ));
    }

    #[test]
    fn empty_file_round_trips() {
        let rs = ReedSolomon::new(CodeParams::new(5, 3).unwrap()).unwrap();
        let encoded = rs.encode(&[]).unwrap();
        assert_eq!(encoded.original_len(), 0);
        let subset: Vec<Chunk> = encoded.chunks()[2..5].to_vec();
        assert!(rs.decode(&subset, 0).unwrap().is_empty());
    }

    #[test]
    fn verify_accepts_consistent_and_rejects_corrupted() {
        let rs = ReedSolomon::new(CodeParams::new(7, 4).unwrap()).unwrap();
        let file = sample_file(97);
        let encoded = rs.encode(&file).unwrap();
        assert!(rs.verify(encoded.chunks()).unwrap());
        let mut corrupted = encoded.chunks().to_vec();
        let mut bytes = corrupted[6].data.to_vec();
        bytes[0] ^= 0xFF;
        corrupted[6] = Chunk::new(corrupted[6].id, bytes);
        assert!(!rs.verify(&corrupted).unwrap());
        assert!(rs.verify(&[]).unwrap());
    }

    #[test]
    fn encode_row_from_file_matches_encode() {
        let rs = ReedSolomon::new(CodeParams::new(7, 4).unwrap()).unwrap();
        let file = sample_file(77);
        let encoded = rs.encode(&file).unwrap();
        for row in 0..7 {
            let chunk = rs.encode_row_from_file(&file, row);
            assert_eq!(chunk.data, encoded.chunks()[row].data);
            assert_eq!(chunk.id.source, ChunkSource::Storage);
        }
        let cache_chunk = rs.encode_row_from_file(&file, 8);
        assert_eq!(cache_chunk.id.source, ChunkSource::Cache);
    }

    #[test]
    fn decode_memo_caches_row_subsets() {
        let rs = ReedSolomon::new(CodeParams::new(7, 4).unwrap()).unwrap();
        let file = sample_file(64);
        let encoded = rs.encode(&file).unwrap();
        let subset: Vec<Chunk> = encoded.chunks()[1..5].to_vec();
        assert_eq!(rs.memoized_decode_matrices(), 0);
        for _ in 0..5 {
            assert_eq!(rs.decode(&subset, file.len()).unwrap(), file);
        }
        assert_eq!(rs.memoized_decode_matrices(), 1);
        let (hits, misses) = rs.decode_memo_stats();
        assert_eq!((hits, misses), (4, 1));
        // Chunk order does not create a new entry: the key is the sorted set.
        let mut shuffled = subset.clone();
        shuffled.reverse();
        assert_eq!(rs.decode(&shuffled, file.len()).unwrap(), file);
        assert_eq!(rs.memoized_decode_matrices(), 1);
        // A different subset adds a second entry.
        let other: Vec<Chunk> = encoded.chunks()[3..7].to_vec();
        assert_eq!(rs.decode(&other, file.len()).unwrap(), file);
        assert_eq!(rs.memoized_decode_matrices(), 2);
        // Clones share the memo.
        let clone = rs.clone();
        assert_eq!(clone.memoized_decode_matrices(), 2);
    }

    #[test]
    fn decode_memo_is_bounded() {
        // (16, 2): plenty of 2-subsets to overflow the 64-entry memo.
        let rs = ReedSolomon::new(CodeParams::new(16, 2).unwrap()).unwrap();
        let file = sample_file(32);
        let encoded = rs.encode(&file).unwrap();
        for a in 0..16 {
            for b in a + 1..16 {
                let subset = vec![encoded.chunks()[a].clone(), encoded.chunks()[b].clone()];
                assert_eq!(rs.decode(&subset, file.len()).unwrap(), file);
            }
        }
        assert!(rs.memoized_decode_matrices() <= 64);
    }

    #[test]
    fn every_kernel_produces_identical_chunks_and_decodes() {
        let file = sample_file(1000 + 13); // unaligned tail
        let reference =
            ReedSolomon::with_kernel(CodeParams::new(7, 4).unwrap(), sprout_gf::Kernel::Scalar)
                .unwrap();
        let want = reference.encode(&file).unwrap();
        for kernel in sprout_gf::Kernel::ALL {
            let rs = ReedSolomon::with_kernel(CodeParams::new(7, 4).unwrap(), kernel).unwrap();
            assert_eq!(rs.kernel(), kernel);
            let got = rs.encode(&file).unwrap();
            assert_eq!(got, want, "encode must be byte-identical for {kernel}");
            let subset: Vec<Chunk> = got.chunks()[2..6].to_vec();
            assert_eq!(rs.decode(&subset, file.len()).unwrap(), file);
        }
    }

    #[test]
    fn encode_rows_into_matches_encode_rows() {
        let rs = ReedSolomon::new(CodeParams::new(7, 4).unwrap()).unwrap();
        let file = sample_file(301);
        let (data_chunks, chunk_len) = stripe::split(&file, 4);
        let rows = vec![0usize, 3, 6, 9];
        let want = rs.encode_rows(&data_chunks, &rows);
        let data_refs: Vec<&[u8]> = data_chunks.iter().map(Vec::as_slice).collect();
        // Dirty buffers: encode_rows_into must fully overwrite them.
        let mut bufs = vec![vec![0xEEu8; chunk_len]; rows.len()];
        let mut outs: Vec<&mut [u8]> = bufs.iter_mut().map(Vec::as_mut_slice).collect();
        rs.encode_rows_into(&data_refs, &rows, &mut outs);
        assert_eq!(bufs, want);
    }

    #[test]
    #[should_panic(expected = "one output buffer per row")]
    fn encode_rows_into_requires_matching_outputs() {
        let rs = ReedSolomon::new(CodeParams::new(5, 2).unwrap()).unwrap();
        let data = [vec![1u8, 2], vec![3u8, 4]];
        let data_refs: Vec<&[u8]> = data.iter().map(Vec::as_slice).collect();
        let mut buf = vec![0u8; 2];
        let mut outs: Vec<&mut [u8]> = vec![&mut buf];
        rs.encode_rows_into(&data_refs, &[0, 1], &mut outs);
    }

    #[test]
    fn into_chunks_moves_out() {
        let rs = ReedSolomon::new(CodeParams::new(5, 2).unwrap()).unwrap();
        let encoded = rs.encode(&sample_file(10)).unwrap();
        assert_eq!(encoded.clone().into_chunks().len(), 5);
    }
}
