//! Functional-cache chunk construction.
//!
//! Under *functional caching* (§III of the paper), a compute server caches
//! `d ≤ k` **new** coded chunks of file `i` such that the `n` chunks on the
//! storage nodes together with the `d` cached chunks form an `(n + d, k)` MDS
//! code. A read then only needs `k − d` chunks from the storage nodes — any
//! `k − d` of all `n`, not `k − d` of a reduced set as with exact caching.
//!
//! The [`FunctionalCacheCodec`] wraps a [`ReedSolomon`] code whose generator
//! already has `n + k` rows; cache chunks simply use rows `n..n + d`.

use sprout_gf::Kernel;

use crate::chunk::{Chunk, ChunkId};
use crate::code::{CodeParams, EncodedFile, ReedSolomon};
use crate::error::CodingError;
use crate::stripe;
use crate::striped::StripeOpts;

/// Encoder/decoder for files stored with an `(n, k)` code plus up to `k`
/// functional cache chunks.
///
/// # Example
///
/// ```
/// use sprout_erasure::{CodeParams, FunctionalCacheCodec};
///
/// let codec = FunctionalCacheCodec::new(CodeParams::new(7, 4)?)?;
/// let file: Vec<u8> = (0u8..200).collect();
/// let stored = codec.encode(&file)?;
/// let cached = codec.cache_chunks(&file, 2)?;
///
/// // Read path: 2 cache chunks + any 2 of the 7 storage chunks.
/// let mut have = cached;
/// have.push(stored.chunks()[6].clone());
/// have.push(stored.chunks()[0].clone());
/// assert_eq!(codec.decode(&have, file.len())?, file);
/// # Ok::<(), sprout_erasure::CodingError>(())
/// ```
#[derive(Debug, Clone)]
pub struct FunctionalCacheCodec {
    code: ReedSolomon,
}

impl FunctionalCacheCodec {
    /// Creates a codec for the given `(n, k)` parameters.
    ///
    /// # Errors
    ///
    /// Propagates [`CodingError::InvalidParams`] from code construction.
    pub fn new(params: CodeParams) -> Result<Self, CodingError> {
        Ok(FunctionalCacheCodec {
            code: ReedSolomon::new(params)?,
        })
    }

    /// Creates a codec with an explicit slice [`Kernel`] (results are
    /// byte-identical across kernels; only throughput changes).
    ///
    /// # Errors
    ///
    /// Propagates [`CodingError::InvalidParams`] from code construction.
    pub fn with_kernel(params: CodeParams, kernel: Kernel) -> Result<Self, CodingError> {
        Ok(FunctionalCacheCodec {
            code: ReedSolomon::with_kernel(params, kernel)?,
        })
    }

    /// The slice kernel used for bulk GF(2^8) work.
    pub fn kernel(&self) -> Kernel {
        self.code.kernel()
    }

    /// Switches the slice kernel.
    pub fn set_kernel(&mut self, kernel: Kernel) {
        self.code.set_kernel(kernel);
    }

    /// Enables (or disables, with `None`) automatic striped coding of large
    /// objects. See [`ReedSolomon::with_striping`].
    #[must_use]
    pub fn with_striping(mut self, striping: Option<StripeOpts>) -> Self {
        self.set_striping(striping);
        self
    }

    /// Switches automatic striping. See [`ReedSolomon::set_striping`].
    pub fn set_striping(&mut self, striping: Option<StripeOpts>) {
        self.code.set_striping(striping);
    }

    /// The automatic striping options, if enabled.
    pub fn striping(&self) -> Option<StripeOpts> {
        self.code.striping()
    }

    /// Encodes a file with explicitly striped, multi-threaded parity
    /// computation. See [`ReedSolomon::encode_striped`].
    ///
    /// # Errors
    ///
    /// Propagates errors from [`ReedSolomon::encode_striped`].
    pub fn encode_striped(
        &self,
        file: &[u8],
        opts: StripeOpts,
    ) -> Result<EncodedFile, CodingError> {
        self.code.encode_striped(file, opts)
    }

    /// Decodes with explicitly striped, multi-threaded reconstruction. See
    /// [`ReedSolomon::decode_striped`].
    ///
    /// # Errors
    ///
    /// Propagates errors from [`ReedSolomon::decode_striped`].
    pub fn decode_striped(
        &self,
        chunks: &[Chunk],
        original_len: usize,
        opts: StripeOpts,
    ) -> Result<Vec<u8>, CodingError> {
        self.code.decode_striped(chunks, original_len, opts)
    }

    /// Wraps an existing Reed–Solomon code.
    pub fn from_code(code: ReedSolomon) -> Self {
        FunctionalCacheCodec { code }
    }

    /// The code parameters.
    pub fn params(&self) -> CodeParams {
        self.code.params()
    }

    /// Access to the underlying Reed–Solomon code.
    pub fn code(&self) -> &ReedSolomon {
        &self.code
    }

    /// Encodes a file into its `n` storage chunks.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`ReedSolomon::encode`].
    pub fn encode(&self, file: &[u8]) -> Result<EncodedFile, CodingError> {
        self.code.encode(file)
    }

    /// Produces `d` functional cache chunks for a file.
    ///
    /// The chunks use generator rows `n..n + d`, so together with the storage
    /// chunks they form an `(n + d, k)` MDS code.
    ///
    /// # Errors
    ///
    /// Returns [`CodingError::TooManyCacheChunks`] if `d > k`.
    pub fn cache_chunks(&self, file: &[u8], d: usize) -> Result<Vec<Chunk>, CodingError> {
        let params = self.code.params();
        if d > params.k() {
            return Err(CodingError::TooManyCacheChunks {
                requested: d,
                max: params.k(),
            });
        }
        let (data_chunks, _) = stripe::split(file, params.k());
        let rows: Vec<usize> = (params.n()..params.n() + d).collect();
        let payloads = self.code.encode_rows(&data_chunks, &rows);
        Ok(rows
            .into_iter()
            .zip(payloads)
            .map(|(row, payload)| Chunk::new(ChunkId::cache(row), payload))
            .collect())
    }

    /// Produces functional cache chunks from already-available storage chunks
    /// (any `k` of them), without access to the original file.
    ///
    /// This is the "update on the fly when a file request is processed" path
    /// of §III: when a file is first read in a new time bin, the chunks just
    /// gathered are re-encoded into the cache rows.
    ///
    /// # Errors
    ///
    /// Propagates decode errors, and [`CodingError::TooManyCacheChunks`] if
    /// `d > k`.
    pub fn cache_chunks_from_chunks(
        &self,
        available: &[Chunk],
        d: usize,
    ) -> Result<Vec<Chunk>, CodingError> {
        let params = self.code.params();
        if d > params.k() {
            return Err(CodingError::TooManyCacheChunks {
                requested: d,
                max: params.k(),
            });
        }
        let chunk_len = available.first().map_or(0, Chunk::len);
        let file = self.code.decode(available, params.k() * chunk_len)?;
        self.cache_chunks(&file, d)
    }

    /// Decodes a file from any `k` distinct chunks (storage and/or cache).
    ///
    /// # Errors
    ///
    /// Propagates errors from [`ReedSolomon::decode`].
    pub fn decode(&self, chunks: &[Chunk], original_len: usize) -> Result<Vec<u8>, CodingError> {
        self.code.decode(chunks, original_len)
    }

    /// Number of storage chunks a read must fetch when `d` chunks are cached.
    ///
    /// This is `max(k - d, 0)`; with `d = k` the file is served entirely from
    /// the cache.
    pub fn storage_chunks_needed(&self, d: usize) -> usize {
        self.code.params().k().saturating_sub(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::ChunkSource;

    fn sample_file(len: usize) -> Vec<u8> {
        (0..len).map(|i| (i * 17 + 3) as u8).collect()
    }

    #[test]
    fn paper_illustration_6_5_code() {
        // The (6,5) example of Fig. 2: 2 cache chunks + any 3 of the 6
        // storage chunks recover the file.
        let codec = FunctionalCacheCodec::new(CodeParams::new(6, 5).unwrap()).unwrap();
        let file = sample_file(100);
        let stored = codec.encode(&file).unwrap();
        let cached = codec.cache_chunks(&file, 2).unwrap();
        assert_eq!(cached.len(), 2);
        assert!(cached.iter().all(|c| c.id.source == ChunkSource::Cache));

        for a in 0..6 {
            for b in a + 1..6 {
                for c in b + 1..6 {
                    let mut have = cached.clone();
                    have.push(stored.chunks()[a].clone());
                    have.push(stored.chunks()[b].clone());
                    have.push(stored.chunks()[c].clone());
                    assert_eq!(codec.decode(&have, file.len()).unwrap(), file);
                }
            }
        }
    }

    #[test]
    fn full_cache_serves_file_without_storage() {
        let codec = FunctionalCacheCodec::new(CodeParams::new(7, 4).unwrap()).unwrap();
        let file = sample_file(257);
        let cached = codec.cache_chunks(&file, 4).unwrap();
        assert_eq!(codec.storage_chunks_needed(4), 0);
        assert_eq!(codec.decode(&cached, file.len()).unwrap(), file);
    }

    #[test]
    fn storage_chunks_needed_decreases_with_d() {
        let codec = FunctionalCacheCodec::new(CodeParams::new(7, 4).unwrap()).unwrap();
        assert_eq!(codec.storage_chunks_needed(0), 4);
        assert_eq!(codec.storage_chunks_needed(1), 3);
        assert_eq!(codec.storage_chunks_needed(4), 0);
        assert_eq!(codec.storage_chunks_needed(9), 0);
    }

    #[test]
    fn too_many_cache_chunks_is_rejected() {
        let codec = FunctionalCacheCodec::new(CodeParams::new(7, 4).unwrap()).unwrap();
        assert!(matches!(
            codec.cache_chunks(&sample_file(10), 5),
            Err(CodingError::TooManyCacheChunks {
                requested: 5,
                max: 4
            })
        ));
    }

    #[test]
    fn cache_chunks_from_storage_chunks_match_direct_construction() {
        let codec = FunctionalCacheCodec::new(CodeParams::new(7, 4).unwrap()).unwrap();
        let file = sample_file(333);
        let stored = codec.encode(&file).unwrap();
        let direct = codec.cache_chunks(&file, 3).unwrap();
        // Rebuild from a non-systematic subset of storage chunks.
        let subset: Vec<Chunk> = stored.chunks()[3..7].to_vec();
        let rebuilt = codec.cache_chunks_from_chunks(&subset, 3).unwrap();
        assert_eq!(direct, rebuilt);
    }

    #[test]
    fn mixed_cache_and_storage_chunks_form_mds_code() {
        // Every subset of size k drawn from the n + d chunks decodes.
        let codec = FunctionalCacheCodec::new(CodeParams::new(6, 4).unwrap()).unwrap();
        let file = sample_file(64);
        let stored = codec.encode(&file).unwrap();
        let cached = codec.cache_chunks(&file, 2).unwrap();
        let mut all: Vec<Chunk> = stored.chunks().to_vec();
        all.extend(cached);
        let total = all.len(); // 8
        let k = 4;
        let mut combo: Vec<usize> = (0..k).collect();
        loop {
            let subset: Vec<Chunk> = combo.iter().map(|&i| all[i].clone()).collect();
            assert_eq!(codec.decode(&subset, file.len()).unwrap(), file);
            let mut i = k;
            loop {
                if i == 0 {
                    return;
                }
                i -= 1;
                if combo[i] != i + total - k {
                    combo[i] += 1;
                    for j in i + 1..k {
                        combo[j] = combo[j - 1] + 1;
                    }
                    break;
                }
            }
        }
    }

    #[test]
    fn from_code_preserves_generator() {
        let rs = ReedSolomon::new(CodeParams::new(5, 3).unwrap()).unwrap();
        let gen = rs.generator().clone();
        let codec = FunctionalCacheCodec::from_code(rs);
        assert_eq!(codec.code().generator(), &gen);
        assert_eq!(codec.params().n(), 5);
    }

    #[test]
    fn zero_cache_chunks_is_empty() {
        let codec = FunctionalCacheCodec::new(CodeParams::new(7, 4).unwrap()).unwrap();
        assert!(codec.cache_chunks(&sample_file(10), 0).unwrap().is_empty());
    }
}
