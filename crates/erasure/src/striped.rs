//! Multi-threaded striped execution of slice-parallel coding work.
//!
//! Reed–Solomon encode and decode are byte-wise independent: output byte
//! `i` of every coded chunk depends only on byte `i` of each input chunk.
//! Large-object coding is therefore embarrassingly parallel along the chunk
//! length — the same stripe-per-block layout production object stores use.
//! This module provides the shared machinery:
//!
//! * [`StripeOpts`] — stripe length and worker-thread budget;
//! * [`carve`] — chops a set of output buffers into per-stripe sets of
//!   disjoint `&mut` sub-slices (no copying, no allocation per byte);
//! * [`run_tasks`] — executes the per-stripe closures on a scoped thread
//!   pool ([`std::thread::scope`]), workers taking contiguous stripe
//!   batches.
//!
//! Determinism is structural: stripes are disjoint byte ranges written in
//! place, so the result is identical for any worker count or scheduling
//! order — "reassembly" is the identity. The differential property tests in
//! `tests/striped_properties.rs` prove striped outputs byte-identical to
//! the single-pass paths.

use serde::{Deserialize, Serialize};
use std::ops::Range;

/// Options for striped (multi-threaded) encode/decode of large objects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StripeOpts {
    /// Bytes of each chunk processed per stripe task. Smaller stripes give
    /// better load balance; larger stripes amortize dispatch. The default
    /// (64 KiB) keeps a stripe's working set (k + parity buffers) inside L2.
    pub stripe_len: usize,
    /// Maximum worker threads; `0` means [`std::thread::available_parallelism`].
    /// Coding never spawns more workers than there are stripes, and a
    /// single-stripe or single-thread call runs inline with no pool at all.
    pub threads: usize,
}

impl Default for StripeOpts {
    fn default() -> Self {
        StripeOpts {
            stripe_len: 64 * 1024,
            threads: 0,
        }
    }
}

impl StripeOpts {
    /// Creates options with an explicit stripe length and thread budget.
    ///
    /// # Panics
    ///
    /// Panics if `stripe_len == 0`.
    pub fn new(stripe_len: usize, threads: usize) -> Self {
        assert!(stripe_len > 0, "stripe length must be positive");
        StripeOpts {
            stripe_len,
            threads,
        }
    }

    /// The resolved worker budget: `threads`, or the machine's available
    /// parallelism when `threads == 0`.
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        }
    }
}

/// One stripe's work item: the byte range it covers (relative to the chunk
/// length) and the matching sub-slice of every output buffer.
pub(crate) struct StripeTask<'a> {
    /// Byte range of the chunk this task covers.
    pub range: Range<usize>,
    /// `outputs[i][range]` for every output buffer, as disjoint `&mut`s.
    pub outs: Vec<&'a mut [u8]>,
}

/// Splits every output buffer along `ranges`, producing one [`StripeTask`]
/// per range whose `outs[i]` is `outputs[i][range]`.
///
/// The ranges must be consecutive and start at 0 (as produced by
/// [`crate::stripe::stripe_ranges`]); each buffer must be at least as long
/// as the last range's end.
///
/// # Panics
///
/// Panics if a buffer is too short for the ranges.
pub(crate) fn carve<'a>(
    outputs: &'a mut [&mut [u8]],
    ranges: &[Range<usize>],
) -> Vec<StripeTask<'a>> {
    let mut rest: Vec<&'a mut [u8]> = outputs.iter_mut().map(|o| &mut **o).collect();
    let mut tasks = Vec::with_capacity(ranges.len());
    for range in ranges {
        let mut outs = Vec::with_capacity(rest.len());
        for slot in rest.iter_mut() {
            let taken = std::mem::take(slot);
            let (head, tail) = taken.split_at_mut(range.len());
            outs.push(head);
            *slot = tail;
        }
        tasks.push(StripeTask {
            range: range.clone(),
            outs,
        });
    }
    tasks
}

/// Runs `work(range, outs)` for every task, fanned out over at most
/// `workers` scoped threads (contiguous stripe batches per worker).
///
/// With one worker or at most one task everything runs inline on the
/// calling thread — the hot small-object path never pays a spawn.
pub(crate) fn run_tasks<F>(tasks: Vec<StripeTask<'_>>, workers: usize, work: F)
where
    F: Fn(&Range<usize>, &mut [&mut [u8]]) + Sync,
{
    let workers = workers.min(tasks.len()).max(1);
    if workers == 1 {
        for mut task in tasks {
            work(&task.range, &mut task.outs);
        }
        return;
    }
    let per_worker = tasks.len().div_ceil(workers);
    let work = &work;
    std::thread::scope(|scope| {
        let mut iter = tasks.into_iter();
        loop {
            let batch: Vec<StripeTask<'_>> = iter.by_ref().take(per_worker).collect();
            if batch.is_empty() {
                break;
            }
            scope.spawn(move || {
                for mut task in batch {
                    work(&task.range, &mut task.outs);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stripe::stripe_ranges;

    #[test]
    fn default_opts_are_sane() {
        let opts = StripeOpts::default();
        assert_eq!(opts.stripe_len, 64 * 1024);
        assert!(opts.effective_threads() >= 1);
        assert_eq!(StripeOpts::new(8, 3).effective_threads(), 3);
    }

    #[test]
    #[should_panic(expected = "stripe length must be positive")]
    fn zero_stripe_len_panics() {
        let _ = StripeOpts::new(0, 1);
    }

    #[test]
    fn carve_produces_disjoint_full_coverage() {
        let mut a = vec![0u8; 10];
        let mut b = vec![0u8; 10];
        let mut outs: Vec<&mut [u8]> = vec![&mut a, &mut b];
        let ranges = stripe_ranges(10, 4);
        let tasks = carve(&mut outs, &ranges);
        assert_eq!(tasks.len(), 3);
        for (task, want) in tasks.iter().zip([0..4, 4..8, 8..10]) {
            assert_eq!(task.range, want);
            assert_eq!(task.outs.len(), 2);
            assert!(task.outs.iter().all(|o| o.len() == task.range.len()));
        }
    }

    #[test]
    fn run_tasks_writes_every_byte_for_any_worker_count() {
        for workers in [1usize, 2, 3, 8] {
            let mut buf = vec![0u8; 100];
            let mut outs: Vec<&mut [u8]> = vec![&mut buf];
            let ranges = stripe_ranges(100, 7);
            let tasks = carve(&mut outs, &ranges);
            run_tasks(tasks, workers, |range, outs| {
                for (i, byte) in outs[0].iter_mut().enumerate() {
                    *byte = (range.start + i) as u8;
                }
            });
            let want: Vec<u8> = (0..100u8).collect();
            assert_eq!(buf, want, "workers={workers}");
        }
    }

    #[test]
    fn empty_task_set_is_a_no_op() {
        run_tasks(Vec::new(), 4, |_, _| panic!("no tasks to run"));
    }
}
