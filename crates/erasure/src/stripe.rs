//! Splitting files into fixed-size data chunks (stripes) and re-assembling
//! them.
//!
//! The paper assumes each file is partitioned into `k` fixed-size chunks
//! before encoding (§III). Files whose length is not a multiple of `k` are
//! zero-padded; the original length is carried separately so the padding can
//! be stripped after decoding.

/// Splits `data` into exactly `k` equal-length chunks, zero-padding the tail.
///
/// Returns the chunk payloads and the per-chunk length. An empty file yields
/// `k` empty chunks.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn split(data: &[u8], k: usize) -> (Vec<Vec<u8>>, usize) {
    assert!(k > 0, "cannot split a file into zero chunks");
    let chunk_len = data.len().div_ceil(k);
    let mut chunks = Vec::with_capacity(k);
    for i in 0..k {
        let start = (i * chunk_len).min(data.len());
        let end = ((i + 1) * chunk_len).min(data.len());
        let mut chunk = data[start..end].to_vec();
        chunk.resize(chunk_len, 0);
        chunks.push(chunk);
    }
    (chunks, chunk_len)
}

/// Re-assembles the original file from its `k` data chunks.
///
/// `original_len` is the pre-padding file length; bytes beyond it are
/// discarded.
///
/// # Panics
///
/// Panics if `original_len` exceeds the total bytes available in `chunks`.
pub fn join(chunks: &[Vec<u8>], original_len: usize) -> Vec<u8> {
    let total: usize = chunks.iter().map(Vec::len).sum();
    assert!(
        original_len <= total,
        "original length {original_len} exceeds available {total} bytes"
    );
    let mut out = Vec::with_capacity(original_len);
    for chunk in chunks {
        if out.len() >= original_len {
            break;
        }
        let take = (original_len - out.len()).min(chunk.len());
        out.extend_from_slice(&chunk[..take]);
    }
    out
}

/// Returns the chunk size (in bytes) for a file of `file_len` bytes split
/// into `k` chunks, matching [`split`].
pub fn chunk_len(file_len: usize, k: usize) -> usize {
    assert!(k > 0, "cannot split a file into zero chunks");
    file_len.div_ceil(k)
}

/// Partitions `0..chunk_len` into consecutive stripes of at most
/// `stripe_len` bytes (the last stripe may be shorter).
///
/// Because every GF(2^8) slice operation is byte-wise independent, encoding
/// or decoding each stripe range separately is byte-identical to one pass
/// over the whole chunk — this is the partition the multi-threaded striped
/// coding paths fan out over. `chunk_len == 0` yields no stripes.
///
/// # Panics
///
/// Panics if `stripe_len == 0`.
pub fn stripe_ranges(chunk_len: usize, stripe_len: usize) -> Vec<std::ops::Range<usize>> {
    assert!(stripe_len > 0, "stripe length must be positive");
    let mut ranges = Vec::with_capacity(chunk_len.div_ceil(stripe_len.max(1)));
    let mut start = 0;
    while start < chunk_len {
        let end = (start + stripe_len).min(chunk_len);
        ranges.push(start..end);
        start = end;
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_and_join_round_trip() {
        for len in [0usize, 1, 4, 5, 19, 100, 101] {
            for k in [1usize, 2, 4, 5, 7] {
                let data: Vec<u8> = (0..len).map(|i| (i * 31 % 251) as u8).collect();
                let (chunks, clen) = split(&data, k);
                assert_eq!(chunks.len(), k);
                assert!(chunks.iter().all(|c| c.len() == clen));
                assert_eq!(clen, chunk_len(len, k));
                let joined = join(&chunks, len);
                assert_eq!(joined, data, "len={len} k={k}");
            }
        }
    }

    #[test]
    fn empty_file_produces_empty_chunks() {
        let (chunks, clen) = split(&[], 4);
        assert_eq!(clen, 0);
        assert!(chunks.iter().all(Vec::is_empty));
        assert!(join(&chunks, 0).is_empty());
    }

    #[test]
    fn padding_is_zero() {
        let data = vec![0xFFu8; 5];
        let (chunks, clen) = split(&data, 4);
        assert_eq!(clen, 2);
        // 8 bytes total, last 3 are padding zeros
        let flat: Vec<u8> = chunks.concat();
        assert_eq!(&flat[..5], &data[..]);
        assert!(flat[5..].iter().all(|&b| b == 0));
    }

    #[test]
    fn stripe_ranges_cover_exactly_once() {
        for chunk_len in [0usize, 1, 7, 8, 9, 100, 257] {
            for stripe_len in [1usize, 3, 8, 64, 1000] {
                let ranges = stripe_ranges(chunk_len, stripe_len);
                let mut cursor = 0;
                for r in &ranges {
                    assert_eq!(r.start, cursor, "gapless, len={chunk_len} s={stripe_len}");
                    assert!(r.len() <= stripe_len && !r.is_empty());
                    cursor = r.end;
                }
                assert_eq!(cursor, chunk_len, "full coverage");
                if chunk_len == 0 {
                    assert!(ranges.is_empty());
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "stripe length must be positive")]
    fn stripe_ranges_with_zero_stripe_panics() {
        let _ = stripe_ranges(10, 0);
    }

    #[test]
    #[should_panic(expected = "zero chunks")]
    fn split_with_zero_k_panics() {
        let _ = split(&[1, 2, 3], 0);
    }

    #[test]
    #[should_panic(expected = "exceeds available")]
    fn join_with_bad_length_panics() {
        let (chunks, _) = split(&[1, 2, 3, 4], 2);
        let _ = join(&chunks, 100);
    }
}
