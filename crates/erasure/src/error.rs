//! Error type for the erasure-coding layer.

use std::fmt;

/// Errors returned by encode/decode operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodingError {
    /// The `(n, k)` parameters are invalid (e.g. `k == 0`, `n < k`, or the
    /// total number of chunks exceeds what GF(2^8) supports).
    InvalidParams {
        /// Total number of storage chunks requested.
        n: usize,
        /// Number of data chunks requested.
        k: usize,
        /// Human-readable reason.
        reason: &'static str,
    },
    /// Fewer than `k` distinct chunks were supplied to a decode operation.
    NotEnoughChunks {
        /// Number of distinct chunks supplied.
        have: usize,
        /// Number of chunks required (`k`).
        need: usize,
    },
    /// Two supplied chunks carry the same chunk index.
    DuplicateChunk(usize),
    /// A chunk index is outside the valid range for this code.
    InvalidChunkIndex {
        /// The offending index.
        index: usize,
        /// Number of rows in the extended generator (`n + k`).
        max: usize,
    },
    /// Supplied chunks do not all have the same length.
    ChunkSizeMismatch {
        /// Expected chunk length in bytes.
        expected: usize,
        /// Observed chunk length in bytes.
        found: usize,
    },
    /// The requested number of cache chunks exceeds `k`.
    TooManyCacheChunks {
        /// Requested number of cache chunks.
        requested: usize,
        /// Maximum allowed (`k`).
        max: usize,
    },
    /// The selected decoding sub-matrix was singular. This cannot happen for
    /// distinct chunk indices of an MDS generator and indicates corruption.
    SingularDecodeMatrix,
    /// The original file length recorded is larger than the decoded payload.
    InvalidFileLength {
        /// Requested file length.
        requested: usize,
        /// Available decoded bytes.
        available: usize,
    },
}

impl fmt::Display for CodingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodingError::InvalidParams { n, k, reason } => {
                write!(f, "invalid code parameters ({n}, {k}): {reason}")
            }
            CodingError::NotEnoughChunks { have, need } => {
                write!(f, "not enough chunks to decode: have {have}, need {need}")
            }
            CodingError::DuplicateChunk(idx) => {
                write!(f, "duplicate chunk index {idx} supplied to decoder")
            }
            CodingError::InvalidChunkIndex { index, max } => {
                write!(f, "chunk index {index} out of range (max {max})")
            }
            CodingError::ChunkSizeMismatch { expected, found } => {
                write!(f, "chunk size mismatch: expected {expected}, found {found}")
            }
            CodingError::TooManyCacheChunks { requested, max } => {
                write!(
                    f,
                    "requested {requested} cache chunks but the code supports at most {max}"
                )
            }
            CodingError::SingularDecodeMatrix => {
                write!(f, "decode matrix is singular (corrupted chunk metadata)")
            }
            CodingError::InvalidFileLength {
                requested,
                available,
            } => write!(
                f,
                "file length {requested} exceeds decoded payload of {available} bytes"
            ),
        }
    }
}

impl std::error::Error for CodingError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_meaningful() {
        let cases: Vec<(CodingError, &str)> = vec![
            (
                CodingError::InvalidParams {
                    n: 3,
                    k: 5,
                    reason: "n < k",
                },
                "invalid code parameters",
            ),
            (
                CodingError::NotEnoughChunks { have: 2, need: 4 },
                "not enough chunks",
            ),
            (CodingError::DuplicateChunk(7), "duplicate chunk"),
            (
                CodingError::InvalidChunkIndex { index: 12, max: 11 },
                "out of range",
            ),
            (
                CodingError::ChunkSizeMismatch {
                    expected: 8,
                    found: 9,
                },
                "size mismatch",
            ),
            (
                CodingError::TooManyCacheChunks {
                    requested: 6,
                    max: 4,
                },
                "cache chunks",
            ),
            (CodingError::SingularDecodeMatrix, "singular"),
            (
                CodingError::InvalidFileLength {
                    requested: 100,
                    available: 50,
                },
                "exceeds decoded payload",
            ),
        ];
        for (err, needle) in cases {
            assert!(
                err.to_string().contains(needle),
                "{err} should contain {needle}"
            );
        }
    }
}
