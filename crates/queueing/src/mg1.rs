//! M/G/1 queue-delay moments (Eqs. (3) and (4) of the paper).
//!
//! Node `j` serves chunk requests from an infinite FIFO queue. Under
//! probabilistic scheduling the aggregate chunk-arrival process at node `j`
//! is Poisson with rate `Λ_j`, so the waiting-plus-service time `Q_j` of a
//! chunk request follows M/G/1 dynamics. The Pollaczek–Khinchine transform
//! gives its mean and variance in terms of the first three service-time
//! moments:
//!
//! ```text
//! E[Q_j]   = 1/µ_j + Λ_j Γ_j² / (2 (1 − ρ_j))
//! Var[Q_j] = σ_j² + Λ_j Γ̂_j³ / (3 (1 − ρ_j)) + Λ_j² Γ_j⁴ / (4 (1 − ρ_j)²)
//! ```
//!
//! with `ρ_j = Λ_j / µ_j`. The derivative helpers are used by the optimizer's
//! analytic gradient of the latency objective with respect to the scheduling
//! probabilities.

use serde::{Deserialize, Serialize};

use crate::dist::ServiceMoments;
use crate::stability::StabilityError;

/// Mean and variance of the queueing delay `Q_j` at one node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueueDelayMoments {
    /// `E[Q_j]` — expected waiting plus service time of a chunk request.
    pub mean: f64,
    /// `Var[Q_j]` — variance of the chunk delay.
    pub variance: f64,
}

/// Computes the M/G/1 queue-delay moments for a node.
///
/// `arrival_rate` is the aggregate chunk-arrival rate `Λ_j` at the node and
/// `service` the service-time moments of the node.
///
/// # Errors
///
/// Returns [`StabilityError`] if `ρ = Λ / µ ≥ 1` (the queue is unstable and
/// the moments diverge). The reported node index is 0 because this function
/// analyses a single node; callers embedding it in a cluster remap the index.
pub fn queue_delay_moments(
    arrival_rate: f64,
    service: &ServiceMoments,
) -> Result<QueueDelayMoments, StabilityError> {
    assert!(arrival_rate >= 0.0, "arrival rate must be non-negative");
    let mu = service.rate();
    let rho = arrival_rate / mu;
    if rho >= 1.0 {
        return Err(StabilityError {
            node: 0,
            utilization: rho,
        });
    }
    let gamma2 = service.second;
    let gamma3 = service.third;
    let sigma2 = service.variance();
    let one_minus_rho = 1.0 - rho;
    let mean = service.mean + arrival_rate * gamma2 / (2.0 * one_minus_rho);
    let variance = sigma2
        + arrival_rate * gamma3 / (3.0 * one_minus_rho)
        + arrival_rate * arrival_rate * gamma2 * gamma2 / (4.0 * one_minus_rho * one_minus_rho);
    Ok(QueueDelayMoments { mean, variance })
}

/// Derivative of `E[Q_j]` with respect to the node arrival rate `Λ_j`.
///
/// `d E[Q] / dΛ = Γ² / (2 (1 − ρ)²)`.
pub fn mean_delay_derivative(arrival_rate: f64, service: &ServiceMoments) -> f64 {
    let rho = arrival_rate * service.mean;
    let one_minus_rho = (1.0 - rho).max(f64::MIN_POSITIVE);
    service.second / (2.0 * one_minus_rho * one_minus_rho)
}

/// Derivative of `Var[Q_j]` with respect to the node arrival rate `Λ_j`.
///
/// `d Var[Q] / dΛ = Γ̂³ / (3 (1 − ρ)²) + Λ Γ⁴ / (2 (1 − ρ)³)`.
pub fn variance_delay_derivative(arrival_rate: f64, service: &ServiceMoments) -> f64 {
    let rho = arrival_rate * service.mean;
    let one_minus_rho = (1.0 - rho).max(f64::MIN_POSITIVE);
    service.third / (3.0 * one_minus_rho * one_minus_rho)
        + arrival_rate * service.second * service.second
            / (2.0 * one_minus_rho * one_minus_rho * one_minus_rho)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::ServiceDistribution;

    #[test]
    fn zero_load_reduces_to_service_time() {
        let s = ServiceDistribution::exponential(0.1).moments();
        let q = queue_delay_moments(0.0, &s).unwrap();
        assert!((q.mean - 10.0).abs() < 1e-12);
        assert!((q.variance - 100.0).abs() < 1e-9);
    }

    #[test]
    fn mm1_sojourn_time_matches_closed_form() {
        // For M/M/1 the mean sojourn (wait in queue + service) is
        // 1/µ + ρ/(µ(1-ρ)) = 1/(µ - λ) ... but note E[Q] as defined in the
        // paper is waiting-in-queue-plus-service, i.e. the sojourn time.
        let mu = 0.2;
        let lambda = 0.1;
        let s = ServiceDistribution::exponential(mu).moments();
        let q = queue_delay_moments(lambda, &s).unwrap();
        let expect = 1.0 / (mu - lambda);
        assert!(
            (q.mean - expect).abs() < 1e-9,
            "got {} want {expect}",
            q.mean
        );
    }

    #[test]
    fn md1_has_smaller_mean_delay_than_mm1() {
        let mu = 0.2;
        let lambda = 0.12;
        let exp = ServiceDistribution::exponential(mu).moments();
        let det = ServiceDistribution::deterministic(1.0 / mu).moments();
        let q_exp = queue_delay_moments(lambda, &exp).unwrap();
        let q_det = queue_delay_moments(lambda, &det).unwrap();
        assert!(q_det.mean < q_exp.mean);
        assert!(q_det.variance < q_exp.variance);
    }

    #[test]
    fn moments_increase_with_load() {
        let s = ServiceDistribution::exponential(0.1).moments();
        let mut prev = queue_delay_moments(0.0, &s).unwrap();
        for i in 1..9 {
            let lambda = i as f64 * 0.01;
            let q = queue_delay_moments(lambda, &s).unwrap();
            assert!(q.mean > prev.mean);
            assert!(q.variance > prev.variance);
            prev = q;
        }
    }

    #[test]
    fn overload_is_an_error() {
        let s = ServiceDistribution::exponential(0.1).moments();
        assert!(queue_delay_moments(0.1, &s).is_err());
        assert!(queue_delay_moments(0.5, &s).is_err());
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let s = ServiceDistribution::gamma(2.0, 5.0).moments();
        let h = 1e-7;
        for &lambda in &[0.0, 0.01, 0.05, 0.08] {
            let base = queue_delay_moments(lambda, &s).unwrap();
            let bumped = queue_delay_moments(lambda + h, &s).unwrap();
            let d_mean = (bumped.mean - base.mean) / h;
            let d_var = (bumped.variance - base.variance) / h;
            let a_mean = mean_delay_derivative(lambda, &s);
            let a_var = variance_delay_derivative(lambda, &s);
            assert!(
                (d_mean - a_mean).abs() / a_mean.max(1.0) < 1e-3,
                "lambda={lambda}: {d_mean} vs {a_mean}"
            );
            assert!(
                (d_var - a_var).abs() / a_var.max(1.0) < 1e-3,
                "lambda={lambda}: {d_var} vs {a_var}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_arrival_rate_panics() {
        let s = ServiceDistribution::exponential(1.0).moments();
        let _ = queue_delay_moments(-0.1, &s);
    }
}
