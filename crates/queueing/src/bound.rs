//! The order-statistic upper bound on per-file latency (Lemma 1).
//!
//! Under probabilistic scheduling, a file-`i` request is forwarded to a
//! random set `A_i` of storage nodes where node `j` is chosen with
//! probability `π_{i,j}`; the file latency is the maximum of the chunk
//! delays `Q_j` over `j ∈ A_i`. Lemma 1 upper-bounds its expectation by
//!
//! ```text
//! U_i = min_{z ≥ 0}  z + Σ_j (π_{i,j} / 2) [ (E[Q_j] − z)
//!                        + sqrt((E[Q_j] − z)² + Var[Q_j]) ]
//! ```
//!
//! The bound is jointly convex in `z` and `π`, which is what makes the cache
//! optimization of §IV tractable.

use serde::{Deserialize, Serialize};

use crate::mg1::QueueDelayMoments;

/// One node's contribution to a file's scheduling decision: the probability
/// `π_{i,j}` that the node serves a chunk of the file, together with the
/// node's queue-delay moments.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SchedulingTerm {
    /// Probability `π_{i,j} ∈ [0, 1]` that node `j` is selected for file `i`.
    pub probability: f64,
    /// Queue-delay moments of the node.
    pub delay: QueueDelayMoments,
}

/// Result of minimizing the Lemma 1 bound over the auxiliary variable.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyBound {
    /// The latency upper bound `U_i`.
    pub latency: f64,
    /// The minimizing auxiliary variable `z_i ≥ 0`.
    pub z: f64,
}

/// Evaluates the Lemma 1 bound at a fixed auxiliary variable `z`.
///
/// Terms with zero probability contribute nothing; an empty term list (a file
/// served entirely from the cache) yields `z` itself, so minimizing over
/// `z ≥ 0` gives zero latency, matching the paper's treatment of fully-cached
/// files.
pub fn latency_bound_given_z(z: f64, terms: &[SchedulingTerm]) -> f64 {
    let mut total = z;
    for term in terms {
        if term.probability <= 0.0 {
            continue;
        }
        let x = term.delay.mean - z;
        total += term.probability / 2.0 * (x + (x * x + term.delay.variance).sqrt());
    }
    total
}

/// Derivative of the bound with respect to `z` (the bound is convex in `z`,
/// so this derivative is non-decreasing).
pub fn bound_derivative_z(z: f64, terms: &[SchedulingTerm]) -> f64 {
    let mut d = 1.0;
    for term in terms {
        if term.probability <= 0.0 {
            continue;
        }
        let x = term.delay.mean - z;
        let denom = (x * x + term.delay.variance).sqrt();
        let ratio = if denom > 0.0 { x / denom } else { 0.0 };
        d += term.probability / 2.0 * (-1.0 - ratio);
    }
    d
}

/// Finds the minimizing `z ≥ 0` of the Lemma 1 bound by bisection on the
/// (monotone) derivative.
pub fn optimal_z(terms: &[SchedulingTerm]) -> f64 {
    // If the derivative is already non-negative at z = 0, the constraint
    // z >= 0 is active.
    if bound_derivative_z(0.0, terms) >= 0.0 {
        return 0.0;
    }
    // Bracket the root: the derivative tends to 1 as z -> infinity.
    let mut lo = 0.0;
    let mut hi = terms
        .iter()
        .map(|t| t.delay.mean + t.delay.variance.sqrt())
        .fold(1.0, f64::max);
    while bound_derivative_z(hi, terms) < 0.0 {
        hi *= 2.0;
        if hi > 1e18 {
            break;
        }
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if bound_derivative_z(mid, terms) < 0.0 {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi - lo < 1e-12 * hi.max(1.0) {
            break;
        }
    }
    0.5 * (lo + hi)
}

/// Minimizes the Lemma 1 bound over `z ≥ 0` and returns both the bound and
/// the minimizer.
pub fn file_latency_bound(terms: &[SchedulingTerm]) -> LatencyBound {
    let z = optimal_z(terms);
    LatencyBound {
        latency: latency_bound_given_z(z, terms),
        z,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::ServiceDistribution;
    use crate::mg1::queue_delay_moments;

    fn term(prob: f64, mean: f64, variance: f64) -> SchedulingTerm {
        SchedulingTerm {
            probability: prob,
            delay: QueueDelayMoments { mean, variance },
        }
    }

    #[test]
    fn empty_terms_give_zero_latency() {
        let b = file_latency_bound(&[]);
        assert_eq!(b.latency, 0.0);
        assert_eq!(b.z, 0.0);
    }

    #[test]
    fn single_deterministic_node_bound_is_tight() {
        // One node selected with probability 1 and zero delay variance: the
        // latency is exactly the node's mean delay and the bound achieves it.
        let b = file_latency_bound(&[term(1.0, 5.0, 0.0)]);
        assert!((b.latency - 5.0).abs() < 1e-9, "bound {}", b.latency);
    }

    #[test]
    fn bound_dominates_weighted_mean_delay() {
        // E[max over A] >= sum_j pi_j E[Q_j] / |A| style sanity: the bound
        // must be at least the largest single-node mean times its selection
        // probability share, and at least the mean of each always-selected node.
        let terms = [term(1.0, 10.0, 25.0), term(1.0, 20.0, 100.0)];
        let b = file_latency_bound(&terms);
        assert!(b.latency >= 20.0);
    }

    #[test]
    fn bound_increases_with_variance() {
        let low = file_latency_bound(&[term(1.0, 10.0, 1.0), term(1.0, 12.0, 1.0)]);
        let high = file_latency_bound(&[term(1.0, 10.0, 100.0), term(1.0, 12.0, 100.0)]);
        assert!(high.latency > low.latency);
    }

    #[test]
    fn bound_increases_with_probability() {
        let small = file_latency_bound(&[term(1.0, 10.0, 4.0), term(0.2, 30.0, 4.0)]);
        let large = file_latency_bound(&[term(1.0, 10.0, 4.0), term(0.9, 30.0, 4.0)]);
        assert!(large.latency > small.latency);
    }

    #[test]
    fn zero_probability_terms_are_ignored() {
        let a = file_latency_bound(&[term(1.0, 10.0, 4.0)]);
        let b = file_latency_bound(&[term(1.0, 10.0, 4.0), term(0.0, 1000.0, 1e6)]);
        assert!((a.latency - b.latency).abs() < 1e-12);
    }

    #[test]
    fn optimal_z_is_a_stationary_point_or_zero() {
        let terms = [
            term(0.7, 15.0, 30.0),
            term(0.9, 22.0, 60.0),
            term(0.4, 8.0, 10.0),
        ];
        let z = optimal_z(&terms);
        assert!(z >= 0.0);
        if z > 0.0 {
            assert!(bound_derivative_z(z, &terms).abs() < 1e-6);
        }
        // z should (weakly) beat a grid of alternatives
        let best = latency_bound_given_z(z, &terms);
        for i in 0..400 {
            let alt = i as f64 * 0.25;
            assert!(best <= latency_bound_given_z(alt, &terms) + 1e-9);
        }
    }

    #[test]
    fn sub_one_total_probability_clamps_z_to_zero() {
        // When sum pi <= 1 the derivative is non-negative at z = 0 only if
        // the delay terms are small enough; with a single small-probability
        // term the minimizer is z = 0.
        let terms = [term(0.3, 5.0, 1.0)];
        assert_eq!(optimal_z(&terms), 0.0);
    }

    #[test]
    fn bound_exceeds_simulated_max_of_independent_delays() {
        // Monte-Carlo check of Lemma 1 with independent exponential delays
        // (independence is the worst case the bound must dominate).
        use rand::Rng;
        use rand::SeedableRng;
        let mu = [0.2, 0.15, 0.1];
        let lambda = 0.05;
        let moments: Vec<_> = mu
            .iter()
            .map(|&m| {
                queue_delay_moments(lambda, &ServiceDistribution::exponential(m).moments()).unwrap()
            })
            .collect();
        let terms: Vec<_> = moments
            .iter()
            .map(|&q| SchedulingTerm {
                probability: 1.0,
                delay: q,
            })
            .collect();
        let bound = file_latency_bound(&terms).latency;

        // The true E[max] for exponential sojourn approximations: sample
        // exponentials with the matching means (a crude but adequate check
        // that the bound is not violated by a plausible dependency-free
        // realisation).
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut acc = 0.0;
        for _ in 0..n {
            let mut max = 0.0f64;
            for q in &moments {
                let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                let sample = -u.ln() * q.mean;
                max = max.max(sample);
            }
            acc += max;
        }
        let emp = acc / n as f64;
        assert!(
            bound >= emp * 0.98,
            "bound {bound} should not be far below the empirical mean max {emp}"
        );
    }
}
