//! Queueing-theoretic latency analysis for erasure-coded storage.
//!
//! This crate implements the analytical machinery of §IV of the Sprout paper:
//!
//! * [`dist`] — chunk service-time distributions with their first three
//!   moments (`E[X] = 1/µ`, `E[X²] = Γ²`, `E[X³] = Γ̂³`) and sampling support
//!   for the discrete-event simulator.
//! * [`mg1`] — M/G/1 queue-delay moments under Poisson chunk arrivals
//!   (Eqs. (3) and (4) of the paper, derived from the Pollaczek–Khinchine
//!   transform), together with their derivatives with respect to the node
//!   arrival rate `Λ_j`, which the optimizer's gradient needs.
//! * [`bound`] — the order-statistic upper bound on per-file latency
//!   (Lemma 1): the bound evaluated at a given auxiliary variable `z`, its
//!   closed-form sub-gradient, and the minimization over `z ≥ 0`.
//! * [`stability`] — queue-stability checks (`ρ_j < 1`).
//!
//! # Example
//!
//! ```
//! use sprout_queueing::dist::ServiceDistribution;
//! use sprout_queueing::mg1::queue_delay_moments;
//! use sprout_queueing::bound::{file_latency_bound, SchedulingTerm};
//!
//! // Two storage nodes with exponential service, one loaded more than the other.
//! let fast = ServiceDistribution::exponential(0.1).moments();
//! let slow = ServiceDistribution::exponential(0.06).moments();
//! let q_fast = queue_delay_moments(0.02, &fast)?;
//! let q_slow = queue_delay_moments(0.02, &slow)?;
//!
//! // A file that reads one chunk from each node with probability 1.
//! let terms = vec![
//!     SchedulingTerm { probability: 1.0, delay: q_fast },
//!     SchedulingTerm { probability: 1.0, delay: q_slow },
//! ];
//! let bound = file_latency_bound(&terms);
//! assert!(bound.latency >= q_slow.mean);
//! # Ok::<(), sprout_queueing::stability::StabilityError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bound;
pub mod dist;
pub mod mg1;
pub mod stability;

pub use bound::{file_latency_bound, latency_bound_given_z, LatencyBound, SchedulingTerm};
pub use dist::{ServiceDistribution, ServiceMoments};
pub use mg1::{queue_delay_moments, QueueDelayMoments};
pub use stability::StabilityError;
