//! Chunk service-time distributions.
//!
//! The latency bound of Lemma 1 only needs the first three moments of the
//! per-chunk service time at each node; the discrete-event simulator
//! additionally needs to sample from the distribution. Both capabilities live
//! here.
//!
//! The paper measures mean and variance of chunk service times on its Ceph
//! testbed (Table IV for HDD-backed OSDs, Table V for the SSD cache) and
//! feeds the fitted moments into the optimizer. [`ServiceDistribution::from_mean_variance`]
//! reproduces that workflow by fitting a Gamma distribution, which has a
//! closed-form third moment.

use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// First three raw moments of a service-time distribution.
///
/// The notation follows the paper: `mean = 1/µ`, `second = Γ²`,
/// `third = Γ̂³`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServiceMoments {
    /// `E[X]`, the mean service time (seconds).
    pub mean: f64,
    /// `E[X²]`, the second raw moment.
    pub second: f64,
    /// `E[X³]`, the third raw moment.
    pub third: f64,
}

impl ServiceMoments {
    /// Creates a moments triple.
    ///
    /// # Panics
    ///
    /// Panics if the moments are not positive and consistent
    /// (`second ≥ mean²` is required for a valid distribution).
    pub fn new(mean: f64, second: f64, third: f64) -> Self {
        assert!(mean > 0.0, "mean service time must be positive");
        assert!(
            second >= mean * mean * (1.0 - 1e-12),
            "second moment must be at least mean^2"
        );
        assert!(third > 0.0, "third moment must be positive");
        ServiceMoments {
            mean,
            second,
            third,
        }
    }

    /// Service rate `µ = 1 / E[X]`.
    pub fn rate(&self) -> f64 {
        1.0 / self.mean
    }

    /// Variance `σ² = E[X²] − E[X]²`.
    pub fn variance(&self) -> f64 {
        (self.second - self.mean * self.mean).max(0.0)
    }

    /// Squared coefficient of variation `σ² / E[X]²`.
    pub fn scv(&self) -> f64 {
        self.variance() / (self.mean * self.mean)
    }
}

/// A chunk service-time distribution with analytic moments and sampling.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ServiceDistribution {
    /// Exponential with the given rate (mean `1/rate`).
    Exponential {
        /// Service rate `µ` (per second).
        rate: f64,
    },
    /// Deterministic (constant) service time.
    Deterministic {
        /// The constant service time.
        value: f64,
    },
    /// Uniform on `[low, high]`.
    Uniform {
        /// Lower endpoint.
        low: f64,
        /// Upper endpoint.
        high: f64,
    },
    /// A constant shift plus an exponential tail; a common model for disk
    /// reads (positioning time + transfer time).
    ShiftedExponential {
        /// Constant part of the service time.
        shift: f64,
        /// Rate of the exponential part.
        rate: f64,
    },
    /// Gamma distribution with the given shape and scale.
    Gamma {
        /// Shape parameter `α`.
        shape: f64,
        /// Scale parameter `θ`.
        scale: f64,
    },
    /// Pareto (Lomax-style, with finite moments only for `shape > 3`).
    Pareto {
        /// Scale (minimum value) `x_m`.
        scale: f64,
        /// Tail index `α`; the first three moments require `α > 3`.
        shape: f64,
    },
}

impl ServiceDistribution {
    /// Exponential distribution with the given rate.
    ///
    /// # Panics
    ///
    /// Panics if `rate <= 0`.
    pub fn exponential(rate: f64) -> Self {
        assert!(rate > 0.0, "rate must be positive");
        ServiceDistribution::Exponential { rate }
    }

    /// Deterministic service time.
    ///
    /// # Panics
    ///
    /// Panics if `value <= 0`.
    pub fn deterministic(value: f64) -> Self {
        assert!(value > 0.0, "service time must be positive");
        ServiceDistribution::Deterministic { value }
    }

    /// Uniform service time on `[low, high]`.
    ///
    /// # Panics
    ///
    /// Panics if `low < 0` or `high <= low`.
    pub fn uniform(low: f64, high: f64) -> Self {
        assert!(low >= 0.0 && high > low, "require 0 <= low < high");
        ServiceDistribution::Uniform { low, high }
    }

    /// Shifted-exponential service time.
    ///
    /// # Panics
    ///
    /// Panics if `shift < 0` or `rate <= 0`.
    pub fn shifted_exponential(shift: f64, rate: f64) -> Self {
        assert!(
            shift >= 0.0 && rate > 0.0,
            "require shift >= 0 and rate > 0"
        );
        ServiceDistribution::ShiftedExponential { shift, rate }
    }

    /// Gamma service time with the given shape and scale.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is non-positive.
    pub fn gamma(shape: f64, scale: f64) -> Self {
        assert!(
            shape > 0.0 && scale > 0.0,
            "gamma parameters must be positive"
        );
        ServiceDistribution::Gamma { shape, scale }
    }

    /// Pareto service time.
    ///
    /// # Panics
    ///
    /// Panics if `scale <= 0` or `shape <= 3` (the third moment would be
    /// infinite, and Lemma 1 needs it).
    pub fn pareto(scale: f64, shape: f64) -> Self {
        assert!(scale > 0.0, "scale must be positive");
        assert!(
            shape > 3.0,
            "pareto shape must exceed 3 for finite third moment"
        );
        ServiceDistribution::Pareto { scale, shape }
    }

    /// Fits a Gamma distribution to a measured mean and variance.
    ///
    /// This mirrors the paper's prototype, which measures per-chunk mean and
    /// variance on the testbed (Table IV) and needs a third moment to
    /// evaluate the bound.
    ///
    /// # Panics
    ///
    /// Panics if `mean <= 0` or `variance <= 0`.
    pub fn from_mean_variance(mean: f64, variance: f64) -> Self {
        assert!(mean > 0.0, "mean must be positive");
        assert!(variance > 0.0, "variance must be positive");
        let shape = mean * mean / variance;
        let scale = variance / mean;
        ServiceDistribution::Gamma { shape, scale }
    }

    /// Mean service time.
    pub fn mean(&self) -> f64 {
        self.moments().mean
    }

    /// Service rate `µ = 1 / mean`.
    pub fn rate(&self) -> f64 {
        1.0 / self.mean()
    }

    /// First three raw moments of the distribution.
    pub fn moments(&self) -> ServiceMoments {
        match *self {
            ServiceDistribution::Exponential { rate } => {
                let m = 1.0 / rate;
                ServiceMoments {
                    mean: m,
                    second: 2.0 * m * m,
                    third: 6.0 * m * m * m,
                }
            }
            ServiceDistribution::Deterministic { value } => ServiceMoments {
                mean: value,
                second: value * value,
                third: value * value * value,
            },
            ServiceDistribution::Uniform { low, high } => {
                let m1 = (low + high) / 2.0;
                let m2 = (high.powi(3) - low.powi(3)) / (3.0 * (high - low));
                let m3 = (high.powi(4) - low.powi(4)) / (4.0 * (high - low));
                ServiceMoments {
                    mean: m1,
                    second: m2,
                    third: m3,
                }
            }
            ServiceDistribution::ShiftedExponential { shift, rate } => {
                // X = s + E where E ~ Exp(rate)
                let e1 = 1.0 / rate;
                let e2 = 2.0 / (rate * rate);
                let e3 = 6.0 / (rate * rate * rate);
                ServiceMoments {
                    mean: shift + e1,
                    second: shift * shift + 2.0 * shift * e1 + e2,
                    third: shift.powi(3) + 3.0 * shift * shift * e1 + 3.0 * shift * e2 + e3,
                }
            }
            ServiceDistribution::Gamma { shape, scale } => ServiceMoments {
                mean: shape * scale,
                second: scale * scale * shape * (shape + 1.0),
                third: scale.powi(3) * shape * (shape + 1.0) * (shape + 2.0),
            },
            ServiceDistribution::Pareto { scale, shape } => {
                let m = |p: f64| shape * scale.powf(p) / (shape - p);
                ServiceMoments {
                    mean: m(1.0),
                    second: m(2.0),
                    third: m(3.0),
                }
            }
        }
    }

    /// Draws one service time.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match *self {
            ServiceDistribution::Exponential { rate } => sample_exponential(rng, rate),
            ServiceDistribution::Deterministic { value } => value,
            ServiceDistribution::Uniform { low, high } => rng.gen_range(low..high),
            ServiceDistribution::ShiftedExponential { shift, rate } => {
                shift + sample_exponential(rng, rate)
            }
            ServiceDistribution::Gamma { shape, scale } => sample_gamma(rng, shape, scale),
            ServiceDistribution::Pareto { scale, shape } => {
                let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                scale / u.powf(1.0 / shape)
            }
        }
    }
}

impl fmt::Display for ServiceDistribution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ServiceDistribution::Exponential { rate } => write!(f, "Exp(rate={rate})"),
            ServiceDistribution::Deterministic { value } => write!(f, "Det({value})"),
            ServiceDistribution::Uniform { low, high } => write!(f, "Uniform[{low}, {high}]"),
            ServiceDistribution::ShiftedExponential { shift, rate } => {
                write!(f, "ShiftedExp(shift={shift}, rate={rate})")
            }
            ServiceDistribution::Gamma { shape, scale } => {
                write!(f, "Gamma(shape={shape}, scale={scale})")
            }
            ServiceDistribution::Pareto { scale, shape } => {
                write!(f, "Pareto(scale={scale}, shape={shape})")
            }
        }
    }
}

fn sample_exponential<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    -u.ln() / rate
}

/// Marsaglia–Tsang gamma sampling (with the boosting trick for `shape < 1`).
fn sample_gamma<R: Rng + ?Sized>(rng: &mut R, shape: f64, scale: f64) -> f64 {
    if shape < 1.0 {
        // boost: Gamma(a) = Gamma(a+1) * U^{1/a}
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        return sample_gamma(rng, shape + 1.0, scale) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        // standard normal via Box-Muller
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let x = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
            return d * v * scale;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn check_moments_by_sampling(dist: ServiceDistribution, tol: f64) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let n = 200_000;
        let mut s1 = 0.0;
        let mut s2 = 0.0;
        for _ in 0..n {
            let x = dist.sample(&mut rng);
            assert!(x >= 0.0, "service times must be non-negative");
            s1 += x;
            s2 += x * x;
        }
        let m = dist.moments();
        let emp1 = s1 / n as f64;
        let emp2 = s2 / n as f64;
        assert!(
            (emp1 - m.mean).abs() / m.mean < tol,
            "{dist}: empirical mean {emp1} vs analytic {}",
            m.mean
        );
        assert!(
            (emp2 - m.second).abs() / m.second < 3.0 * tol,
            "{dist}: empirical 2nd moment {emp2} vs analytic {}",
            m.second
        );
    }

    #[test]
    fn exponential_moments() {
        let d = ServiceDistribution::exponential(0.1);
        let m = d.moments();
        assert!((m.mean - 10.0).abs() < 1e-12);
        assert!((m.second - 200.0).abs() < 1e-9);
        assert!((m.third - 6000.0).abs() < 1e-6);
        assert!((m.variance() - 100.0).abs() < 1e-9);
        assert!((m.scv() - 1.0).abs() < 1e-9);
        assert!((d.rate() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn deterministic_moments_have_zero_variance() {
        let d = ServiceDistribution::deterministic(4.0);
        let m = d.moments();
        assert_eq!(m.mean, 4.0);
        assert_eq!(m.second, 16.0);
        assert_eq!(m.third, 64.0);
        assert!(m.variance() < 1e-12);
    }

    #[test]
    fn uniform_moments() {
        let d = ServiceDistribution::uniform(2.0, 6.0);
        let m = d.moments();
        assert!((m.mean - 4.0).abs() < 1e-12);
        // var = (b-a)^2/12 = 16/12
        assert!((m.variance() - 16.0 / 12.0).abs() < 1e-9);
    }

    #[test]
    fn shifted_exponential_moments() {
        let d = ServiceDistribution::shifted_exponential(1.0, 0.5);
        let m = d.moments();
        assert!((m.mean - 3.0).abs() < 1e-12);
        // var equals the exponential part's variance, 1/rate^2 = 4
        assert!((m.variance() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn gamma_moments_and_fit() {
        let d = ServiceDistribution::from_mean_variance(147.8, 389.0);
        let m = d.moments();
        assert!((m.mean - 147.8).abs() < 1e-9);
        assert!((m.variance() - 389.0).abs() < 1e-6);
        assert!(m.third > 0.0);
    }

    #[test]
    fn pareto_moments_are_finite_for_large_shape() {
        let d = ServiceDistribution::pareto(1.0, 4.0);
        let m = d.moments();
        assert!((m.mean - 4.0 / 3.0).abs() < 1e-12);
        assert!(m.second.is_finite() && m.third.is_finite());
    }

    #[test]
    fn sampling_matches_analytic_moments() {
        check_moments_by_sampling(ServiceDistribution::exponential(0.25), 0.02);
        check_moments_by_sampling(ServiceDistribution::deterministic(3.0), 0.001);
        check_moments_by_sampling(ServiceDistribution::uniform(1.0, 9.0), 0.02);
        check_moments_by_sampling(ServiceDistribution::shifted_exponential(2.0, 1.0), 0.02);
        check_moments_by_sampling(ServiceDistribution::gamma(2.5, 3.0), 0.03);
        check_moments_by_sampling(ServiceDistribution::gamma(0.5, 1.0), 0.03);
        check_moments_by_sampling(ServiceDistribution::pareto(1.0, 5.0), 0.03);
    }

    #[test]
    fn display_names() {
        assert!(ServiceDistribution::exponential(1.0)
            .to_string()
            .contains("Exp"));
        assert!(ServiceDistribution::deterministic(1.0)
            .to_string()
            .contains("Det"));
        assert!(ServiceDistribution::uniform(0.0, 1.0)
            .to_string()
            .contains("Uniform"));
        assert!(ServiceDistribution::gamma(1.0, 1.0)
            .to_string()
            .contains("Gamma"));
        assert!(ServiceDistribution::pareto(1.0, 4.0)
            .to_string()
            .contains("Pareto"));
        assert!(ServiceDistribution::shifted_exponential(1.0, 1.0)
            .to_string()
            .contains("ShiftedExp"));
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn invalid_exponential_rate_panics() {
        let _ = ServiceDistribution::exponential(0.0);
    }

    #[test]
    #[should_panic(expected = "shape must exceed 3")]
    fn pareto_with_infinite_third_moment_panics() {
        let _ = ServiceDistribution::pareto(1.0, 2.5);
    }

    #[test]
    #[should_panic(expected = "second moment")]
    fn inconsistent_moments_panic() {
        let _ = ServiceMoments::new(10.0, 50.0, 1000.0);
    }

    #[test]
    fn moments_constructor_accepts_valid_input() {
        let m = ServiceMoments::new(2.0, 5.0, 20.0);
        assert!((m.variance() - 1.0).abs() < 1e-12);
        assert!((m.rate() - 0.5).abs() < 1e-12);
    }
}
