//! Queue-stability checks.
//!
//! Under probabilistic scheduling, chunk requests arrive at node `j` as a
//! Poisson process with rate `Λ_j = Σ_i λ_i π_{i,j}`. The M/G/1 queue at node
//! `j` is stable only when the utilization `ρ_j = Λ_j / µ_j` is strictly
//! below one; otherwise queueing delay (and the latency bound) diverges.

use std::fmt;

/// Error raised when a node would be overloaded (`ρ_j ≥ 1`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StabilityError {
    /// Index of the overloaded node.
    pub node: usize,
    /// The offending utilization `ρ = Λ / µ`.
    pub utilization: f64,
}

impl fmt::Display for StabilityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "node {} is unstable: utilization {:.4} >= 1",
            self.node, self.utilization
        )
    }
}

impl std::error::Error for StabilityError {}

/// Computes per-node utilizations `ρ_j = Λ_j / µ_j`.
///
/// # Panics
///
/// Panics if the two slices have different lengths or a service rate is not
/// positive.
pub fn utilizations(node_arrival_rates: &[f64], service_rates: &[f64]) -> Vec<f64> {
    assert_eq!(
        node_arrival_rates.len(),
        service_rates.len(),
        "arrival and service rate vectors must have the same length"
    );
    node_arrival_rates
        .iter()
        .zip(service_rates)
        .map(|(&lambda, &mu)| {
            assert!(mu > 0.0, "service rates must be positive");
            lambda / mu
        })
        .collect()
}

/// Verifies that every node is stable, returning the first violation.
///
/// # Errors
///
/// Returns a [`StabilityError`] naming the first node with `ρ_j ≥ 1`.
pub fn check_stability(
    node_arrival_rates: &[f64],
    service_rates: &[f64],
) -> Result<(), StabilityError> {
    for (node, rho) in utilizations(node_arrival_rates, service_rates)
        .into_iter()
        .enumerate()
    {
        if rho >= 1.0 {
            return Err(StabilityError {
                node,
                utilization: rho,
            });
        }
    }
    Ok(())
}

/// Largest utilization across nodes (the system bottleneck).
pub fn bottleneck_utilization(node_arrival_rates: &[f64], service_rates: &[f64]) -> f64 {
    utilizations(node_arrival_rates, service_rates)
        .into_iter()
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_system_passes() {
        assert!(check_stability(&[0.05, 0.08], &[0.1, 0.1]).is_ok());
    }

    #[test]
    fn unstable_node_is_reported() {
        let err = check_stability(&[0.05, 0.12], &[0.1, 0.1]).unwrap_err();
        assert_eq!(err.node, 1);
        assert!(err.utilization >= 1.0);
        assert!(err.to_string().contains("node 1"));
    }

    #[test]
    fn exactly_critical_load_is_unstable() {
        assert!(check_stability(&[0.1], &[0.1]).is_err());
    }

    #[test]
    fn utilization_and_bottleneck() {
        let rho = utilizations(&[0.02, 0.06], &[0.1, 0.1]);
        assert!((rho[0] - 0.2).abs() < 1e-12);
        assert!((rho[1] - 0.6).abs() < 1e-12);
        assert!((bottleneck_utilization(&[0.02, 0.06], &[0.1, 0.1]) - 0.6).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "same length")]
    fn mismatched_lengths_panic() {
        let _ = utilizations(&[0.1], &[0.1, 0.2]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_service_rate_panics() {
        let _ = utilizations(&[0.1], &[0.0]);
    }
}
