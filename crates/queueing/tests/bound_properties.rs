//! Property-based tests for the M/G/1 moments and the Lemma 1 bound.

use proptest::prelude::*;
use sprout_queueing::bound::{
    bound_derivative_z, file_latency_bound, latency_bound_given_z, SchedulingTerm,
};
use sprout_queueing::dist::ServiceDistribution;
use sprout_queueing::mg1::{
    mean_delay_derivative, queue_delay_moments, variance_delay_derivative, QueueDelayMoments,
};

fn service_dist() -> impl Strategy<Value = ServiceDistribution> {
    prop_oneof![
        (0.05f64..2.0).prop_map(ServiceDistribution::exponential),
        (0.1f64..20.0).prop_map(ServiceDistribution::deterministic),
        (0.1f64..5.0, 0.1f64..5.0).prop_map(|(a, b)| ServiceDistribution::uniform(a, a + b)),
        (0.2f64..5.0, 0.2f64..5.0)
            .prop_map(|(shape, scale)| ServiceDistribution::gamma(shape, scale)),
        (0.1f64..3.0, 0.05f64..2.0)
            .prop_map(|(shift, rate)| ServiceDistribution::shifted_exponential(shift, rate)),
    ]
}

fn term() -> impl Strategy<Value = SchedulingTerm> {
    (0.0f64..=1.0, 0.1f64..100.0, 0.0f64..500.0).prop_map(|(p, mean, variance)| SchedulingTerm {
        probability: p,
        delay: QueueDelayMoments { mean, variance },
    })
}

proptest! {
    #[test]
    fn queue_moments_are_monotone_in_load(dist in service_dist(), frac1 in 0.01f64..0.9, frac2 in 0.01f64..0.9) {
        let m = dist.moments();
        let mu = m.rate();
        let (lo, hi) = if frac1 <= frac2 { (frac1, frac2) } else { (frac2, frac1) };
        let q_lo = queue_delay_moments(lo * mu, &m).unwrap();
        let q_hi = queue_delay_moments(hi * mu, &m).unwrap();
        prop_assert!(q_hi.mean >= q_lo.mean - 1e-12);
        prop_assert!(q_hi.variance >= q_lo.variance - 1e-12);
        // The sojourn time is always at least the bare service time.
        prop_assert!(q_lo.mean >= m.mean - 1e-12);
    }

    #[test]
    fn queue_moment_derivatives_are_nonnegative(dist in service_dist(), frac in 0.0f64..0.95) {
        let m = dist.moments();
        let lambda = frac * m.rate();
        prop_assert!(mean_delay_derivative(lambda, &m) >= 0.0);
        prop_assert!(variance_delay_derivative(lambda, &m) >= 0.0);
    }

    #[test]
    fn overload_always_errors(dist in service_dist(), extra in 1.0f64..5.0) {
        let m = dist.moments();
        prop_assert!(queue_delay_moments(extra * m.rate(), &m).is_err());
    }

    #[test]
    fn bound_is_convex_in_z(terms in proptest::collection::vec(term(), 1..6), z1 in 0.0f64..200.0, z2 in 0.0f64..200.0) {
        let mid = 0.5 * (z1 + z2);
        let lhs = latency_bound_given_z(mid, &terms);
        let rhs = 0.5 * latency_bound_given_z(z1, &terms) + 0.5 * latency_bound_given_z(z2, &terms);
        prop_assert!(lhs <= rhs + 1e-9);
    }

    #[test]
    fn optimal_z_minimizes_over_a_grid(terms in proptest::collection::vec(term(), 1..6)) {
        let best = file_latency_bound(&terms);
        prop_assert!(best.z >= 0.0);
        for i in 0..200 {
            let z = i as f64 * 0.75;
            prop_assert!(best.latency <= latency_bound_given_z(z, &terms) + 1e-7);
        }
    }

    #[test]
    fn bound_derivative_is_nondecreasing(terms in proptest::collection::vec(term(), 1..6), z1 in 0.0f64..100.0, dz in 0.0f64..100.0) {
        prop_assert!(bound_derivative_z(z1 + dz, &terms) >= bound_derivative_z(z1, &terms) - 1e-9);
    }

    #[test]
    fn bound_dominates_every_individual_mean_times_probability(terms in proptest::collection::vec(term(), 1..6)) {
        // With pi_j = 1 the node is always in the selected set, so the file
        // latency (a maximum including that node) is at least E[Q_j]; the
        // bound must respect that.
        let bound = file_latency_bound(&terms).latency;
        for t in &terms {
            if t.probability >= 1.0 - 1e-12 {
                prop_assert!(bound >= t.delay.mean - 1e-9);
            }
        }
        prop_assert!(bound >= 0.0);
    }
}
