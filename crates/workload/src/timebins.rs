//! Time-binned arrival-rate schedules.
//!
//! The paper assumes time-scale separation: service time is divided into
//! bins, with stationary arrival rates inside each bin and a fresh cache
//! optimization at the start of every bin (§III). [`RateSchedule`] captures
//! such a schedule, and [`table_i_schedule`] reproduces the 3-bin, 10-file
//! scenario of Table I used for the cache-evolution experiment (Fig. 5).

use serde::{Deserialize, Serialize};

use crate::arrivals::RateProfile;

/// One time bin: a duration and the per-file arrival rates that hold in it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeBin {
    /// Length of the bin in seconds.
    pub duration: f64,
    /// Per-file arrival rates (requests per second).
    pub rates: Vec<f64>,
}

impl TimeBin {
    /// Creates a time bin.
    ///
    /// # Panics
    ///
    /// Panics if the duration is not positive or any rate is negative.
    pub fn new(duration: f64, rates: Vec<f64>) -> Self {
        assert!(duration > 0.0, "bin duration must be positive");
        assert!(
            rates.iter().all(|&r| r >= 0.0),
            "rates must be non-negative"
        );
        TimeBin { duration, rates }
    }

    /// Aggregate arrival rate in the bin.
    pub fn total_rate(&self) -> f64 {
        self.rates.iter().sum()
    }

    /// The same bin with every rate multiplied by `factor` (relative
    /// popularity is preserved; used to recreate realistic contention from
    /// the paper's small published rates).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "rate scale factor must be finite and non-negative"
        );
        TimeBin::new(
            self.duration,
            self.rates.iter().map(|r| r * factor).collect(),
        )
    }
}

/// A sequence of time bins over a common file population.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct RateSchedule {
    bins: Vec<TimeBin>,
}

impl RateSchedule {
    /// Creates a schedule from bins.
    ///
    /// # Panics
    ///
    /// Panics if bins disagree on the number of files.
    pub fn new(bins: Vec<TimeBin>) -> Self {
        if let Some(first) = bins.first() {
            assert!(
                bins.iter().all(|b| b.rates.len() == first.rates.len()),
                "all bins must cover the same number of files"
            );
        }
        RateSchedule { bins }
    }

    /// The bins, in order.
    pub fn bins(&self) -> &[TimeBin] {
        &self.bins
    }

    /// Number of bins.
    pub fn len(&self) -> usize {
        self.bins.len()
    }

    /// Returns `true` if the schedule has no bins.
    pub fn is_empty(&self) -> bool {
        self.bins.is_empty()
    }

    /// Number of files covered by the schedule (0 if empty).
    pub fn num_files(&self) -> usize {
        self.bins.first().map_or(0, |b| b.rates.len())
    }

    /// Total duration across bins.
    pub fn total_duration(&self) -> f64 {
        self.bins.iter().map(|b| b.duration).sum()
    }

    /// The bin active at absolute time `t`, if any.
    pub fn bin_at(&self, t: f64) -> Option<(usize, &TimeBin)> {
        let mut offset = 0.0;
        for (i, bin) in self.bins.iter().enumerate() {
            if t < offset + bin.duration {
                return Some((i, bin));
            }
            offset += bin.duration;
        }
        None
    }

    /// Shape suitable for [`crate::arrivals::PoissonArrivals::generate_piecewise`].
    pub fn as_piecewise(&self) -> Vec<(f64, Vec<f64>)> {
        self.bins
            .iter()
            .map(|b| (b.duration, b.rates.clone()))
            .collect()
    }

    /// The piecewise-constant [`RateProfile`] of one file across the bins
    /// (for streaming arrival generation; zero rate beyond the last bin).
    ///
    /// # Panics
    ///
    /// Panics if `file` is out of range.
    pub fn file_profile(&self, file: usize) -> RateProfile {
        assert!(
            file < self.num_files(),
            "file {file} out of range for a {}-file schedule",
            self.num_files()
        );
        let segments: Vec<(f64, f64)> = self
            .bins
            .iter()
            .map(|b| (b.duration, b.rates[file]))
            .collect();
        RateProfile::piecewise(&segments)
    }

    /// Per-file streaming profiles for every file in the schedule.
    pub fn file_profiles(&self) -> Vec<RateProfile> {
        (0..self.num_files())
            .map(|f| self.file_profile(f))
            .collect()
    }

    /// The same schedule with every rate multiplied by `factor`
    /// (see [`TimeBin::scaled`]).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn scaled(&self, factor: f64) -> Self {
        RateSchedule::new(self.bins.iter().map(|b| b.scaled(factor)).collect())
    }

    /// The schedule's first `bins` bins (all of them when `bins` exceeds the
    /// length) — the prefix a sweep cell re-runs to reach one bin with the
    /// warm-start chain intact.
    pub fn truncated(&self, bins: usize) -> Self {
        RateSchedule::new(self.bins.iter().take(bins).cloned().collect())
    }
}

/// The Table I scenario: 10 files, 3 time bins, with the arrival-rate
/// increases/decreases marked in the paper. `bin_duration` is the length of
/// each bin in seconds (the paper's experiment uses 100 s bins).
pub fn table_i_schedule(bin_duration: f64) -> RateSchedule {
    let bin1 = vec![
        0.000156, 0.000156, 0.000125, 0.000167, 0.000104, 0.000156, 0.000156, 0.000125, 0.000167,
        0.000104,
    ];
    let bin2 = vec![
        0.000156, 0.000156, 0.000125, 0.000125, 0.000125, 0.000156, 0.000156, 0.000125, 0.000125,
        0.000125,
    ];
    let bin3 = vec![
        0.000125, 0.00025, 0.000125, 0.000167, 0.000104, 0.000125, 0.00025, 0.000125, 0.000167,
        0.000104,
    ];
    RateSchedule::new(vec![
        TimeBin::new(bin_duration, bin1),
        TimeBin::new(bin_duration, bin2),
        TimeBin::new(bin_duration, bin3),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_i_matches_paper_structure() {
        let s = table_i_schedule(100.0);
        assert_eq!(s.len(), 3);
        assert_eq!(s.num_files(), 10);
        assert!((s.total_duration() - 300.0).abs() < 1e-12);
        // Bin 2: file 4 (index 3) decreased, file 5 (index 4) increased.
        assert!(s.bins()[1].rates[3] < s.bins()[0].rates[3]);
        assert!(s.bins()[1].rates[4] > s.bins()[0].rates[4]);
        // Bin 3: file 2 (index 1) increased to 0.00025, file 1 decreased.
        assert!(s.bins()[2].rates[1] > s.bins()[1].rates[1]);
        assert!(s.bins()[2].rates[0] < s.bins()[1].rates[0]);
    }

    #[test]
    fn bin_lookup_by_time() {
        let s = table_i_schedule(100.0);
        assert_eq!(s.bin_at(0.0).unwrap().0, 0);
        assert_eq!(s.bin_at(99.9).unwrap().0, 0);
        assert_eq!(s.bin_at(100.0).unwrap().0, 1);
        assert_eq!(s.bin_at(250.0).unwrap().0, 2);
        assert!(s.bin_at(300.0).is_none());
    }

    #[test]
    fn scaling_preserves_structure_and_truncation_keeps_prefixes() {
        let s = table_i_schedule(100.0);
        let scaled = s.scaled(60.0);
        assert_eq!(scaled.len(), 3);
        assert!((scaled.bins()[0].rates[0] - 60.0 * s.bins()[0].rates[0]).abs() < 1e-15);
        assert!((scaled.bins()[2].duration - 100.0).abs() < 1e-12);
        // Relative popularity within a bin is unchanged.
        let ratio = s.bins()[0].rates[3] / s.bins()[0].rates[4];
        let scaled_ratio = scaled.bins()[0].rates[3] / scaled.bins()[0].rates[4];
        assert!((ratio - scaled_ratio).abs() < 1e-12);
        let two = s.truncated(2);
        assert_eq!(two.len(), 2);
        assert_eq!(two.bins(), &s.bins()[..2]);
        assert_eq!(s.truncated(9).len(), 3);
        assert!(s.truncated(0).is_empty());
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_scale_panics() {
        let _ = table_i_schedule(10.0).scaled(-1.0);
    }

    #[test]
    fn piecewise_shape() {
        let s = table_i_schedule(50.0);
        let p = s.as_piecewise();
        assert_eq!(p.len(), 3);
        assert_eq!(p[0].1.len(), 10);
        assert!((p[0].0 - 50.0).abs() < 1e-12);
    }

    #[test]
    fn empty_schedule() {
        let s = RateSchedule::default();
        assert!(s.is_empty());
        assert_eq!(s.num_files(), 0);
        assert!(s.bin_at(0.0).is_none());
    }

    #[test]
    #[should_panic(expected = "same number of files")]
    fn inconsistent_bins_panic() {
        let _ = RateSchedule::new(vec![
            TimeBin::new(1.0, vec![0.1]),
            TimeBin::new(1.0, vec![0.1, 0.2]),
        ]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_duration_panics() {
        let _ = TimeBin::new(0.0, vec![0.1]);
    }

    #[test]
    fn total_rate() {
        let b = TimeBin::new(10.0, vec![0.1, 0.2, 0.3]);
        assert!((b.total_rate() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn file_profiles_mirror_the_bins() {
        let s = table_i_schedule(100.0);
        let profiles = s.file_profiles();
        assert_eq!(profiles.len(), 10);
        for (f, p) in profiles.iter().enumerate() {
            for (b, bin) in s.bins().iter().enumerate() {
                let t = 100.0 * b as f64 + 50.0;
                assert_eq!(p.rate_at(t), bin.rates[f]);
            }
            assert_eq!(p.rate_at(300.0), 0.0, "rate is zero past the schedule");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn profile_for_missing_file_panics() {
        let _ = table_i_schedule(10.0).file_profile(10);
    }
}
