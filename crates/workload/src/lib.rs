//! Workload modeling for the Sprout experiments.
//!
//! The paper drives both its simulations and its Ceph prototype with
//! synthetic workloads characterised by per-file Poisson request arrivals
//! whose rates change between *time bins* (§III). This crate provides:
//!
//! * [`spec`] — file-population descriptions: per-file sizes, erasure-code
//!   parameters and arrival rates, including the exact rate groups used by
//!   the paper's simulation section and the object-size mix of Table III.
//! * [`arrivals`] — homogeneous and non-homogeneous Poisson arrival
//!   generation, producing request traces.
//! * [`timebins`] — time-binned rate schedules (e.g. the three-bin scenario
//!   of Table I) and helpers to iterate over bins.
//! * [`estimator`] — the sliding-window arrival-rate estimator with
//!   change-point detection that triggers new time bins.
//! * [`zipf`] — Zipf popularity distributions for skewed-access scenarios.
//!
//! # Example
//!
//! ```
//! use sprout_workload::arrivals::PoissonArrivals;
//! use sprout_workload::spec::paper_simulation_rates;
//!
//! let rates = paper_simulation_rates(1000);
//! assert_eq!(rates.len(), 1000);
//! // aggregate arrival rate of the paper's simulation: ~0.1416 req/s
//! let total: f64 = rates.iter().sum();
//! assert!((total - 0.1416).abs() < 1e-3);
//!
//! let mut gen = PoissonArrivals::new(42);
//! let trace = gen.generate(&rates, 1000.0);
//! assert!(!trace.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrivals;
pub mod estimator;
pub mod spec;
pub mod timebins;
pub mod trace;
pub mod zipf;

pub use arrivals::{ArrivalStream, PoissonArrivals, RateProfile, Request};
pub use estimator::SlidingWindowEstimator;
pub use spec::{FileSpec, ObjectSizeClass, WorkloadSpec};
pub use timebins::{RateSchedule, TimeBin};
pub use trace::{binned_rate_profiles, parse_trace_csv, TraceError, TraceEvent};
pub use zipf::ZipfPopularity;
