//! Sliding-window arrival-rate estimation with change detection.
//!
//! The paper assumes a rate monitoring/prediction oracle — "a simple
//! sliding-window-based method, which continuously measures the average
//! request arrival and introduces a new time bin if the arrival rates vary
//! sufficiently" (§III, §V-B). This module implements that method: per-file
//! request counts over a sliding window give rate estimates, and a relative
//! change beyond a threshold on any file triggers a new time bin.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Sliding-window estimator of per-file arrival rates.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SlidingWindowEstimator {
    window: f64,
    threshold: f64,
    num_files: usize,
    /// (time, file) of requests inside the window, oldest first.
    events: VecDeque<(f64, usize)>,
    /// Rates at the last time-bin boundary, used for change detection.
    baseline: Vec<f64>,
    now: f64,
}

impl SlidingWindowEstimator {
    /// Creates an estimator.
    ///
    /// * `num_files` — number of files tracked.
    /// * `window` — window length in seconds.
    /// * `threshold` — relative rate change (e.g. `0.5` for 50 %) on any file
    ///   that triggers a new time bin.
    ///
    /// # Panics
    ///
    /// Panics if `window <= 0` or `threshold <= 0`.
    pub fn new(num_files: usize, window: f64, threshold: f64) -> Self {
        assert!(window > 0.0, "window must be positive");
        assert!(threshold > 0.0, "threshold must be positive");
        SlidingWindowEstimator {
            window,
            threshold,
            num_files,
            events: VecDeque::new(),
            baseline: vec![0.0; num_files],
            now: 0.0,
        }
    }

    /// Records a request for `file` at absolute time `time` (non-decreasing).
    ///
    /// Returns `true` if the estimated rates have drifted far enough from the
    /// baseline that a new time bin (and a re-optimization) should start; the
    /// baseline is then reset to the current estimates.
    ///
    /// # Panics
    ///
    /// Panics if `file` is out of range or `time` moves backwards.
    pub fn observe(&mut self, time: f64, file: usize) -> bool {
        assert!(file < self.num_files, "file index out of range");
        assert!(time >= self.now, "time must be non-decreasing");
        self.now = time;
        self.events.push_back((time, file));
        self.evict();
        if self.drifted() {
            self.baseline = self.rates();
            true
        } else {
            false
        }
    }

    /// Advances the clock without recording a request (e.g. on idle periods).
    pub fn advance_to(&mut self, time: f64) {
        assert!(time >= self.now, "time must be non-decreasing");
        self.now = time;
        self.evict();
    }

    /// Current per-file rate estimates (requests per second over the window).
    pub fn rates(&self) -> Vec<f64> {
        let mut counts = vec![0usize; self.num_files];
        for &(_, file) in &self.events {
            counts[file] += 1;
        }
        let effective_window = self.window.min(self.now.max(f64::MIN_POSITIVE));
        counts
            .into_iter()
            .map(|c| c as f64 / effective_window)
            .collect()
    }

    /// Sets the baseline rates explicitly (e.g. to the rates the current
    /// cache plan was optimized for).
    pub fn set_baseline(&mut self, baseline: Vec<f64>) {
        assert_eq!(baseline.len(), self.num_files, "baseline length mismatch");
        self.baseline = baseline;
    }

    fn evict(&mut self) {
        let cutoff = self.now - self.window;
        while let Some(&(t, _)) = self.events.front() {
            if t < cutoff {
                self.events.pop_front();
            } else {
                break;
            }
        }
    }

    fn drifted(&self) -> bool {
        let rates = self.rates();
        rates.iter().zip(&self.baseline).any(|(&cur, &base)| {
            let denom = base.max(1.0 / self.window);
            (cur - base).abs() / denom > self.threshold
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_reflect_window_counts() {
        let mut est = SlidingWindowEstimator::new(2, 10.0, 1000.0);
        for i in 0..10 {
            est.observe(i as f64, 0);
        }
        est.advance_to(10.0);
        let rates = est.rates();
        assert!((rates[0] - 1.0).abs() < 0.11, "rate {rates:?}");
        assert_eq!(rates[1], 0.0);
    }

    #[test]
    fn old_events_fall_out_of_the_window() {
        let mut est = SlidingWindowEstimator::new(1, 5.0, 1000.0);
        est.observe(0.0, 0);
        est.observe(1.0, 0);
        est.advance_to(20.0);
        assert_eq!(est.rates()[0], 0.0);
    }

    #[test]
    fn drift_triggers_new_time_bin() {
        let mut est = SlidingWindowEstimator::new(1, 10.0, 0.5);
        // establish a baseline of ~0.5 req/s
        let mut triggered = false;
        for i in 0..20 {
            triggered |= est.observe(i as f64 * 2.0, 0);
        }
        est.set_baseline(est.rates());
        // now a burst at 5 req/s should trigger
        let mut fired = false;
        for i in 0..50 {
            if est.observe(40.0 + i as f64 * 0.2, 0) {
                fired = true;
                break;
            }
        }
        assert!(fired, "burst should trigger a new time bin");
        let _ = triggered;
    }

    #[test]
    fn steady_rate_does_not_trigger() {
        let mut est = SlidingWindowEstimator::new(1, 50.0, 0.8);
        let mut warmup = 0;
        let mut fired_after_warmup = false;
        for i in 0..500 {
            let fired = est.observe(i as f64, 0);
            if i < 100 {
                warmup += usize::from(fired);
            } else {
                fired_after_warmup |= fired;
            }
        }
        let _ = warmup; // transitions during warm-up are acceptable
        assert!(
            !fired_after_warmup,
            "steady traffic must not retrigger bins"
        );
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn time_going_backwards_panics() {
        let mut est = SlidingWindowEstimator::new(1, 10.0, 0.5);
        est.observe(5.0, 0);
        est.observe(1.0, 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn unknown_file_panics() {
        let mut est = SlidingWindowEstimator::new(1, 10.0, 0.5);
        est.observe(0.0, 3);
    }
}
