//! Poisson request-arrival generation.
//!
//! File-access requests are modeled as independent Poisson processes, one per
//! file (§III). The generator below superposes them into a single
//! time-ordered request trace, which both the discrete-event simulator and
//! the cluster substrate replay.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One file-access request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Arrival time in seconds from the start of the trace.
    pub time: f64,
    /// Index of the requested file.
    pub file: usize,
}

/// Generator of Poisson request traces.
#[derive(Debug, Clone)]
pub struct PoissonArrivals {
    rng: StdRng,
}

impl PoissonArrivals {
    /// Creates a generator with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        PoissonArrivals {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Generates a time-ordered trace over `[0, horizon)` seconds where file
    /// `i` is requested according to a Poisson process of rate `rates[i]`.
    pub fn generate(&mut self, rates: &[f64], horizon: f64) -> Vec<Request> {
        assert!(horizon >= 0.0, "horizon must be non-negative");
        let mut trace = Vec::new();
        for (file, &rate) in rates.iter().enumerate() {
            assert!(rate >= 0.0, "arrival rates must be non-negative");
            if rate == 0.0 {
                continue;
            }
            let mut t = 0.0;
            loop {
                t += self.sample_exp(rate);
                if t >= horizon {
                    break;
                }
                trace.push(Request { time: t, file });
            }
        }
        trace.sort_by(|a, b| a.time.partial_cmp(&b.time).unwrap());
        trace
    }

    /// Generates a trace for a piecewise-constant (non-homogeneous) rate
    /// schedule: `bins[b]` gives `(bin_length_seconds, per-file rates)`.
    /// Arrival times are absolute (bins are concatenated).
    pub fn generate_piecewise(&mut self, bins: &[(f64, Vec<f64>)]) -> Vec<Request> {
        let mut trace = Vec::new();
        let mut offset = 0.0;
        for (length, rates) in bins {
            let mut part = self.generate(rates, *length);
            for req in &mut part {
                req.time += offset;
            }
            trace.extend(part);
            offset += length;
        }
        trace
    }

    fn sample_exp(&mut self, rate: f64) -> f64 {
        let u: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        -u.ln() / rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_is_time_ordered_and_within_horizon() {
        let mut gen = PoissonArrivals::new(1);
        let trace = gen.generate(&[0.5, 0.2, 0.0], 200.0);
        assert!(!trace.is_empty());
        for w in trace.windows(2) {
            assert!(w[0].time <= w[1].time);
        }
        assert!(trace.iter().all(|r| r.time < 200.0 && r.file < 2));
    }

    #[test]
    fn empirical_rate_matches_specification() {
        let mut gen = PoissonArrivals::new(7);
        let horizon = 50_000.0;
        let rates = [0.02, 0.05];
        let trace = gen.generate(&rates, horizon);
        for (file, &rate) in rates.iter().enumerate() {
            let count = trace.iter().filter(|r| r.file == file).count();
            let empirical = count as f64 / horizon;
            assert!(
                (empirical - rate).abs() / rate < 0.05,
                "file {file}: empirical {empirical} vs {rate}"
            );
        }
    }

    #[test]
    fn zero_rates_produce_empty_trace() {
        let mut gen = PoissonArrivals::new(3);
        assert!(gen.generate(&[0.0, 0.0], 1000.0).is_empty());
        assert!(gen.generate(&[1.0], 0.0).is_empty());
    }

    #[test]
    fn deterministic_for_equal_seeds() {
        let a = PoissonArrivals::new(99).generate(&[0.1, 0.3], 500.0);
        let b = PoissonArrivals::new(99).generate(&[0.1, 0.3], 500.0);
        assert_eq!(a, b);
        let c = PoissonArrivals::new(100).generate(&[0.1, 0.3], 500.0);
        assert_ne!(a, c);
    }

    #[test]
    fn piecewise_trace_concatenates_bins() {
        let mut gen = PoissonArrivals::new(11);
        let bins = vec![(100.0, vec![0.5, 0.0]), (100.0, vec![0.0, 0.5])];
        let trace = gen.generate_piecewise(&bins);
        for r in &trace {
            if r.time < 100.0 {
                assert_eq!(r.file, 0);
            } else {
                assert_eq!(r.file, 1);
                assert!(r.time < 200.0);
            }
        }
        for w in trace.windows(2) {
            assert!(w[0].time <= w[1].time);
        }
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_rate_panics() {
        let mut gen = PoissonArrivals::new(1);
        let _ = gen.generate(&[-0.1], 10.0);
    }
}
