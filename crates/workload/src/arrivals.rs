//! Poisson request-arrival generation.
//!
//! File-access requests are modeled as independent Poisson processes, one per
//! file (§III). The generator below superposes them into a single
//! time-ordered request trace, which both the discrete-event simulator and
//! the cluster substrate replay.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One file-access request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Arrival time in seconds from the start of the trace.
    pub time: f64,
    /// Index of the requested file.
    pub file: usize,
}

/// Generator of Poisson request traces.
#[derive(Debug, Clone)]
pub struct PoissonArrivals {
    rng: StdRng,
}

impl PoissonArrivals {
    /// Creates a generator with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        PoissonArrivals {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Generates a time-ordered trace over `[0, horizon)` seconds where file
    /// `i` is requested according to a Poisson process of rate `rates[i]`.
    pub fn generate(&mut self, rates: &[f64], horizon: f64) -> Vec<Request> {
        assert!(horizon >= 0.0, "horizon must be non-negative");
        let mut trace = Vec::new();
        for (file, &rate) in rates.iter().enumerate() {
            assert!(rate >= 0.0, "arrival rates must be non-negative");
            if rate == 0.0 {
                continue;
            }
            let mut t = 0.0;
            loop {
                t += self.sample_exp(rate);
                if t >= horizon {
                    break;
                }
                trace.push(Request { time: t, file });
            }
        }
        trace.sort_by(|a, b| a.time.partial_cmp(&b.time).unwrap());
        trace
    }

    /// Generates a trace for a piecewise-constant (non-homogeneous) rate
    /// schedule: `bins[b]` gives `(bin_length_seconds, per-file rates)`.
    /// Arrival times are absolute (bins are concatenated).
    pub fn generate_piecewise(&mut self, bins: &[(f64, Vec<f64>)]) -> Vec<Request> {
        let mut trace = Vec::new();
        let mut offset = 0.0;
        for (length, rates) in bins {
            let mut part = self.generate(rates, *length);
            for req in &mut part {
                req.time += offset;
            }
            trace.extend(part);
            offset += length;
        }
        trace
    }

    fn sample_exp(&mut self, rate: f64) -> f64 {
        let u: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        -u.ln() / rate
    }
}

/// The arrival rate of one file as a function of time: either constant, or
/// piecewise-constant over a sequence of time segments (the shape produced by
/// [`crate::timebins::RateSchedule`]). Beyond the last segment of a piecewise
/// profile the rate is zero.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RateProfile {
    /// A single rate holding forever.
    Constant(f64),
    /// Piecewise-constant rates: `rates[s]` holds on `[ends[s-1], ends[s])`
    /// (with `ends[-1] = 0`); the rate is zero from `ends.last()` onwards.
    Piecewise {
        /// Absolute end time of each segment, strictly increasing.
        ends: Vec<f64>,
        /// Rate in force during each segment; same length as `ends`.
        rates: Vec<f64>,
    },
}

impl RateProfile {
    /// Creates a constant-rate profile.
    ///
    /// # Panics
    ///
    /// Panics if the rate is negative or NaN.
    pub fn constant(rate: f64) -> Self {
        assert!(rate >= 0.0, "arrival rate must be non-negative");
        RateProfile::Constant(rate)
    }

    /// Creates a piecewise profile from `(duration, rate)` segments.
    ///
    /// # Panics
    ///
    /// Panics if any duration is not positive or any rate is negative.
    pub fn piecewise(segments: &[(f64, f64)]) -> Self {
        let mut ends = Vec::with_capacity(segments.len());
        let mut rates = Vec::with_capacity(segments.len());
        let mut t = 0.0;
        for &(duration, rate) in segments {
            assert!(duration > 0.0, "segment duration must be positive");
            assert!(rate >= 0.0, "arrival rate must be non-negative");
            t += duration;
            ends.push(t);
            rates.push(rate);
        }
        RateProfile::Piecewise { ends, rates }
    }

    /// The rate in force at absolute time `t`, together with the end of the
    /// current constant-rate segment (`f64::INFINITY` for the final one).
    pub fn segment_at(&self, t: f64) -> (f64, f64) {
        match self {
            RateProfile::Constant(rate) => (*rate, f64::INFINITY),
            RateProfile::Piecewise { ends, rates } => {
                for (&end, &rate) in ends.iter().zip(rates) {
                    if t < end {
                        return (rate, end);
                    }
                }
                (0.0, f64::INFINITY)
            }
        }
    }

    /// The rate in force at absolute time `t`.
    pub fn rate_at(&self, t: f64) -> f64 {
        self.segment_at(t).0
    }
}

/// A lazily-sampled Poisson arrival process for a single file.
///
/// Unlike [`PoissonArrivals::generate`], which materializes a whole trace up
/// front (O(total requests) memory), an `ArrivalStream` produces one arrival
/// at a time: the simulator keeps exactly one pending arrival event per file,
/// so event-heap residency is O(files) regardless of the horizon.
///
/// Non-homogeneous (piecewise-constant) rates are sampled exactly: a unit
/// exponential is spent across segments, so no thinning loop and no bias at
/// segment boundaries.
#[derive(Debug, Clone)]
pub struct ArrivalStream {
    profile: RateProfile,
    rng: StdRng,
}

impl ArrivalStream {
    /// Creates a stream with a deterministic seed.
    pub fn new(profile: RateProfile, seed: u64) -> Self {
        ArrivalStream {
            profile,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The current rate profile.
    pub fn profile(&self) -> &RateProfile {
        &self.profile
    }

    /// Replaces the profile with a constant rate from now on — any remaining
    /// piecewise segments are discarded (a dynamic rate shift supersedes the
    /// static schedule). By Poisson memorylessness the caller can simply
    /// discard the previously scheduled arrival and draw a fresh one with
    /// [`ArrivalStream::next_arrival`].
    pub fn set_rate(&mut self, rate: f64) {
        assert!(rate >= 0.0, "arrival rate must be non-negative");
        self.profile = RateProfile::Constant(rate);
    }

    /// Draws the next arrival strictly after `now`, or `None` if it would
    /// land at or beyond `horizon` (or the profile has no rate left).
    pub fn next_arrival(&mut self, now: f64, horizon: f64) -> Option<f64> {
        let mut t = now;
        // One unit-exponential "budget" spent across rate segments.
        let u: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        let mut e = -u.ln();
        loop {
            if t >= horizon {
                return None;
            }
            let (rate, end) = self.profile.segment_at(t);
            if rate <= 0.0 {
                if end.is_infinite() {
                    return None;
                }
                t = end;
                continue;
            }
            let dt = e / rate;
            if t + dt < end {
                t += dt;
                return (t < horizon).then_some(t);
            }
            if end.is_infinite() || end >= horizon {
                return None;
            }
            e -= (end - t) * rate;
            t = end;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_is_time_ordered_and_within_horizon() {
        let mut gen = PoissonArrivals::new(1);
        let trace = gen.generate(&[0.5, 0.2, 0.0], 200.0);
        assert!(!trace.is_empty());
        for w in trace.windows(2) {
            assert!(w[0].time <= w[1].time);
        }
        assert!(trace.iter().all(|r| r.time < 200.0 && r.file < 2));
    }

    #[test]
    fn empirical_rate_matches_specification() {
        let mut gen = PoissonArrivals::new(7);
        let horizon = 50_000.0;
        let rates = [0.02, 0.05];
        let trace = gen.generate(&rates, horizon);
        for (file, &rate) in rates.iter().enumerate() {
            let count = trace.iter().filter(|r| r.file == file).count();
            let empirical = count as f64 / horizon;
            assert!(
                (empirical - rate).abs() / rate < 0.05,
                "file {file}: empirical {empirical} vs {rate}"
            );
        }
    }

    #[test]
    fn zero_rates_produce_empty_trace() {
        let mut gen = PoissonArrivals::new(3);
        assert!(gen.generate(&[0.0, 0.0], 1000.0).is_empty());
        assert!(gen.generate(&[1.0], 0.0).is_empty());
    }

    #[test]
    fn deterministic_for_equal_seeds() {
        let a = PoissonArrivals::new(99).generate(&[0.1, 0.3], 500.0);
        let b = PoissonArrivals::new(99).generate(&[0.1, 0.3], 500.0);
        assert_eq!(a, b);
        let c = PoissonArrivals::new(100).generate(&[0.1, 0.3], 500.0);
        assert_ne!(a, c);
    }

    #[test]
    fn piecewise_trace_concatenates_bins() {
        let mut gen = PoissonArrivals::new(11);
        let bins = vec![(100.0, vec![0.5, 0.0]), (100.0, vec![0.0, 0.5])];
        let trace = gen.generate_piecewise(&bins);
        for r in &trace {
            if r.time < 100.0 {
                assert_eq!(r.file, 0);
            } else {
                assert_eq!(r.file, 1);
                assert!(r.time < 200.0);
            }
        }
        for w in trace.windows(2) {
            assert!(w[0].time <= w[1].time);
        }
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_rate_panics() {
        let mut gen = PoissonArrivals::new(1);
        let _ = gen.generate(&[-0.1], 10.0);
    }

    #[test]
    fn rate_profile_segments() {
        let c = RateProfile::constant(0.3);
        assert_eq!(c.segment_at(1e9), (0.3, f64::INFINITY));
        let p = RateProfile::piecewise(&[(10.0, 0.5), (20.0, 0.0), (5.0, 2.0)]);
        assert_eq!(p.segment_at(0.0), (0.5, 10.0));
        assert_eq!(p.segment_at(9.99), (0.5, 10.0));
        assert_eq!(p.segment_at(10.0), (0.0, 30.0));
        assert_eq!(p.segment_at(30.0), (2.0, 35.0));
        assert_eq!(p.rate_at(35.0), 0.0);
        assert_eq!(p.segment_at(100.0), (0.0, f64::INFINITY));
    }

    #[test]
    fn stream_is_increasing_within_horizon_and_deterministic() {
        let mut a = ArrivalStream::new(RateProfile::constant(0.8), 42);
        let mut b = ArrivalStream::new(RateProfile::constant(0.8), 42);
        let mut t = 0.0;
        let mut count = 0usize;
        while let Some(next) = a.next_arrival(t, 500.0) {
            assert!(next > t && next < 500.0);
            assert_eq!(b.next_arrival(t, 500.0), Some(next));
            t = next;
            count += 1;
        }
        // Empirical rate within 15 % of nominal over 500 s.
        let empirical = count as f64 / 500.0;
        assert!(
            (empirical - 0.8).abs() / 0.8 < 0.15,
            "empirical {empirical}"
        );
    }

    #[test]
    fn stream_matches_piecewise_rate_per_segment() {
        let profile = RateProfile::piecewise(&[(2_000.0, 1.0), (2_000.0, 0.0), (2_000.0, 3.0)]);
        let mut s = ArrivalStream::new(profile, 7);
        let (mut low, mut mid, mut high) = (0usize, 0usize, 0usize);
        let mut t = 0.0;
        while let Some(next) = s.next_arrival(t, 6_000.0) {
            match next {
                x if x < 2_000.0 => low += 1,
                x if x < 4_000.0 => mid += 1,
                _ => high += 1,
            }
            t = next;
        }
        assert_eq!(mid, 0, "zero-rate segment must produce no arrivals");
        let low_rate = low as f64 / 2_000.0;
        let high_rate = high as f64 / 2_000.0;
        assert!((low_rate - 1.0).abs() < 0.1, "low {low_rate}");
        assert!((high_rate - 3.0).abs() < 0.3, "high {high_rate}");
    }

    #[test]
    fn zero_rate_stream_terminates() {
        let mut s = ArrivalStream::new(RateProfile::constant(0.0), 1);
        assert_eq!(s.next_arrival(0.0, 1e12), None);
        let mut s = ArrivalStream::new(RateProfile::piecewise(&[(10.0, 0.0)]), 1);
        assert_eq!(s.next_arrival(0.0, 1e12), None);
    }

    #[test]
    fn set_rate_restarts_the_process() {
        let mut s = ArrivalStream::new(RateProfile::constant(0.0), 3);
        assert_eq!(s.next_arrival(0.0, 1e6), None);
        s.set_rate(5.0);
        let t = s.next_arrival(100.0, 1e6).unwrap();
        assert!(t > 100.0);
    }
}
