//! CSV trace-driven arrival replay.
//!
//! Production traces (like the 24-hour one behind the paper's Table III)
//! arrive as flat request logs: one `(timestamp, object)` record per
//! request. This module parses that shape from CSV text and folds it into
//! per-file [`RateProfile`]s by counting requests in fixed-width time bins —
//! the same piecewise-constant shape the time-bin machinery and scenario
//! compiler already consume, so a trace can drive a simulation through the
//! ordinary `SetRates` path.
//!
//! The format is deliberately minimal: two comma-separated columns
//! `time_s,file`, optional spaces, `#` comment lines, and an optional header
//! row (any first line whose fields do not parse as numbers). Every parse
//! failure is a typed [`TraceError`] carrying the 1-based line number — a
//! malformed trace must never panic the loader.

use crate::arrivals::RateProfile;
use std::fmt;

/// One request record of a trace: a file (object) requested at a time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Arrival time in seconds from the start of the trace.
    pub at: f64,
    /// Index of the requested file.
    pub file: usize,
}

/// A typed error from trace parsing or binning.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceError {
    /// A line failed to parse; carries the 1-based line number.
    Parse {
        /// 1-based line number of the offending record.
        line: usize,
        /// What was wrong with it.
        message: String,
    },
    /// The trace parsed but cannot be binned as requested.
    Invalid(String),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Parse { line, message } => {
                write!(f, "trace parse error at line {line}: {message}")
            }
            TraceError::Invalid(message) => write!(f, "invalid trace: {message}"),
        }
    }
}

impl std::error::Error for TraceError {}

/// Parses a `time_s,file` CSV trace.
///
/// Blank lines and `#` comments are skipped; a single header row is allowed
/// as the first non-blank record. Times must be finite and non-negative.
/// Records need not be time-sorted (production logs often interleave
/// front-end shards); the returned events preserve file order per timestamp
/// by sorting stably on time.
///
/// # Errors
///
/// Returns [`TraceError::Parse`] with the offending 1-based line for wrong
/// column counts, non-numeric fields past the header, or invalid times.
pub fn parse_trace_csv(text: &str) -> Result<Vec<TraceEvent>, TraceError> {
    let mut events = Vec::new();
    let mut saw_record = false;
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = trimmed.split(',').map(str::trim).collect();
        if fields.len() != 2 {
            return Err(TraceError::Parse {
                line,
                message: format!("expected 2 comma-separated fields, found {}", fields.len()),
            });
        }
        let parsed_at = fields[0].parse::<f64>();
        let parsed_file = fields[1].parse::<usize>();
        match (parsed_at, parsed_file) {
            (Ok(at), Ok(file)) => {
                if !at.is_finite() || at < 0.0 {
                    return Err(TraceError::Parse {
                        line,
                        message: format!("time {at} is not finite and non-negative"),
                    });
                }
                saw_record = true;
                events.push(TraceEvent { at, file });
            }
            _ if !saw_record => {
                // A non-numeric first record is a header row.
                saw_record = true;
            }
            _ => {
                return Err(TraceError::Parse {
                    line,
                    message: format!("non-numeric fields '{}', '{}'", fields[0], fields[1]),
                });
            }
        }
    }
    events.sort_by(|a, b| a.at.partial_cmp(&b.at).expect("times checked finite"));
    Ok(events)
}

/// Folds a trace into per-file piecewise-constant [`RateProfile`]s: the rate
/// of file `f` during bin `b` is its request count in `[b·len, (b+1)·len)`
/// divided by the bin length. The number of bins covers the last event; a
/// file with no requests gets a constant zero profile.
///
/// # Errors
///
/// Returns [`TraceError::Invalid`] if `num_files == 0` or `bin_seconds` is
/// not positive-finite, and [`TraceError::Invalid`] naming the offending
/// event if one references a file index `>= num_files`.
pub fn binned_rate_profiles(
    events: &[TraceEvent],
    num_files: usize,
    bin_seconds: f64,
) -> Result<Vec<RateProfile>, TraceError> {
    if num_files == 0 {
        return Err(TraceError::Invalid("num_files must be positive".into()));
    }
    if !bin_seconds.is_finite() || bin_seconds <= 0.0 {
        return Err(TraceError::Invalid(format!(
            "bin length {bin_seconds} must be positive and finite"
        )));
    }
    let horizon = events.iter().fold(0.0_f64, |acc, e| acc.max(e.at));
    let bins = ((horizon / bin_seconds).floor() as usize) + 1;
    let mut counts = vec![vec![0u64; bins]; num_files];
    for event in events {
        if event.file >= num_files {
            return Err(TraceError::Invalid(format!(
                "event at t={} references file {} but the population has {num_files}",
                event.at, event.file
            )));
        }
        let bin = ((event.at / bin_seconds).floor() as usize).min(bins - 1);
        counts[event.file][bin] += 1;
    }
    Ok(counts
        .into_iter()
        .map(|per_bin| {
            if per_bin.iter().all(|&c| c == 0) {
                return RateProfile::constant(0.0);
            }
            let segments: Vec<(f64, f64)> = per_bin
                .iter()
                .map(|&c| (bin_seconds, c as f64 / bin_seconds))
                .collect();
            RateProfile::piecewise(&segments)
        })
        .collect())
}

/// The per-file rate vector in force at the start of each bin, derived from
/// the binned profiles — the bridge from a trace to scenario `SetRates`
/// events. Returns `(bin_start_time, rates)` pairs for bins `1..` (bin 0 is
/// the system's initial rates, not an event).
pub fn rate_schedule_events(profiles: &[RateProfile], bin_seconds: f64) -> Vec<(f64, Vec<f64>)> {
    let bins = profiles
        .iter()
        .map(|p| match p {
            RateProfile::Constant(_) => 1,
            RateProfile::Piecewise { ends, .. } => ends.len(),
        })
        .max()
        .unwrap_or(1);
    (1..bins)
        .map(|b| {
            let t = b as f64 * bin_seconds;
            let rates = profiles.iter().map(|p| p.rate_at(t)).collect();
            (t, rates)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const TRACE: &str = "\
# a tiny two-file trace
time_s,file
0.5, 0
1.5,0
2.5,1
 3.5 , 0
";

    #[test]
    fn parses_comments_header_and_spaces() {
        let events = parse_trace_csv(TRACE).unwrap();
        assert_eq!(events.len(), 4);
        assert_eq!(events[0], TraceEvent { at: 0.5, file: 0 });
        assert_eq!(events[2], TraceEvent { at: 2.5, file: 1 });
    }

    #[test]
    fn unsorted_input_is_sorted_stably() {
        let events = parse_trace_csv("3.0,1\n1.0,0\n2.0,2\n").unwrap();
        let order: Vec<usize> = events.iter().map(|e| e.file).collect();
        assert_eq!(order, vec![0, 2, 1]);
    }

    #[test]
    fn malformed_lines_are_typed_errors_with_line_numbers() {
        let missing = parse_trace_csv("0.5,0\n1.5\n");
        assert!(
            matches!(missing, Err(TraceError::Parse { line: 2, .. })),
            "{missing:?}"
        );
        let nonnum = parse_trace_csv("0.5,0\nabc,def\n");
        assert!(matches!(nonnum, Err(TraceError::Parse { line: 2, .. })));
        let negative = parse_trace_csv("-1.0,0\n");
        assert!(matches!(negative, Err(TraceError::Parse { line: 1, .. })));
        let nan = parse_trace_csv("NaN,0\n");
        assert!(matches!(nan, Err(TraceError::Parse { line: 1, .. })));
    }

    #[test]
    fn binning_counts_requests_per_file() {
        let events = parse_trace_csv(TRACE).unwrap();
        let profiles = binned_rate_profiles(&events, 2, 2.0).unwrap();
        // File 0: bins [0,2) -> 2 requests, [2,4) -> 1 request.
        assert!((profiles[0].rate_at(1.0) - 1.0).abs() < 1e-12);
        assert!((profiles[0].rate_at(3.0) - 0.5).abs() < 1e-12);
        // File 1: one request in bin [2,4).
        assert!((profiles[1].rate_at(1.0) - 0.0).abs() < 1e-12);
        assert!((profiles[1].rate_at(3.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn binning_rejects_bad_parameters_and_indices() {
        let events = parse_trace_csv(TRACE).unwrap();
        assert!(binned_rate_profiles(&events, 0, 2.0).is_err());
        assert!(binned_rate_profiles(&events, 2, 0.0).is_err());
        assert!(binned_rate_profiles(&events, 2, f64::NAN).is_err());
        assert!(matches!(
            binned_rate_profiles(&events, 1, 2.0),
            Err(TraceError::Invalid(_))
        ));
    }

    #[test]
    fn schedule_events_start_at_the_second_bin() {
        let events = parse_trace_csv(TRACE).unwrap();
        let profiles = binned_rate_profiles(&events, 2, 2.0).unwrap();
        let schedule = rate_schedule_events(&profiles, 2.0);
        assert_eq!(schedule.len(), 1);
        let (t, rates) = &schedule[0];
        assert!((t - 2.0).abs() < 1e-12);
        assert!((rates[0] - 0.5).abs() < 1e-12);
        assert!((rates[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn files_with_no_requests_get_zero_profiles() {
        let profiles = binned_rate_profiles(&[TraceEvent { at: 1.0, file: 0 }], 3, 2.0).unwrap();
        assert_eq!(profiles[1], RateProfile::Constant(0.0));
        assert_eq!(profiles[2], RateProfile::Constant(0.0));
    }
}
