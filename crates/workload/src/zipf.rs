//! Zipf popularity distributions.
//!
//! The paper motivates caching with the classic 80/20 skew of video
//! workloads ("20 % of the video content is accessed 80 % of the time").
//! A Zipf law over file ranks is the standard way to generate such skewed
//! popularity, and is used by the example applications and some benches.

use serde::{Deserialize, Serialize};

/// A Zipf popularity law over `n` files with exponent `s`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ZipfPopularity {
    exponent: f64,
    weights: Vec<f64>,
}

impl ZipfPopularity {
    /// Creates a Zipf law over `num_files` ranks with the given exponent.
    ///
    /// # Panics
    ///
    /// Panics if `num_files == 0` or the exponent is negative.
    pub fn new(num_files: usize, exponent: f64) -> Self {
        assert!(num_files > 0, "need at least one file");
        assert!(exponent >= 0.0, "exponent must be non-negative");
        let weights: Vec<f64> = (1..=num_files)
            .map(|rank| 1.0 / (rank as f64).powf(exponent))
            .collect();
        ZipfPopularity { exponent, weights }
    }

    /// The exponent `s`.
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// Probability that a request targets the file of the given rank
    /// (0 = most popular).
    pub fn probability(&self, rank: usize) -> f64 {
        let total: f64 = self.weights.iter().sum();
        self.weights.get(rank).map_or(0.0, |w| w / total)
    }

    /// Splits an aggregate arrival rate into per-file rates according to the
    /// popularity law (rank 0 receives the largest share).
    pub fn arrival_rates(&self, aggregate_rate: f64) -> Vec<f64> {
        assert!(aggregate_rate >= 0.0, "aggregate rate must be non-negative");
        let total: f64 = self.weights.iter().sum();
        self.weights
            .iter()
            .map(|w| aggregate_rate * w / total)
            .collect()
    }

    /// Fraction of requests captured by the `top` most popular files.
    pub fn head_mass(&self, top: usize) -> f64 {
        let total: f64 = self.weights.iter().sum();
        self.weights.iter().take(top).sum::<f64>() / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probabilities_sum_to_one_and_decrease() {
        let z = ZipfPopularity::new(100, 1.0);
        let sum: f64 = (0..100).map(|r| z.probability(r)).sum();
        assert!((sum - 1.0).abs() < 1e-9);
        for r in 1..100 {
            assert!(z.probability(r) <= z.probability(r - 1));
        }
        assert_eq!(z.probability(1000), 0.0);
    }

    #[test]
    fn zero_exponent_is_uniform() {
        let z = ZipfPopularity::new(10, 0.0);
        for r in 0..10 {
            assert!((z.probability(r) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn skew_concentrates_mass_in_the_head() {
        let uniform = ZipfPopularity::new(100, 0.0);
        let skewed = ZipfPopularity::new(100, 1.2);
        assert!(skewed.head_mass(20) > uniform.head_mass(20));
        assert!(
            skewed.head_mass(20) > 0.6,
            "Zipf(1.2) head should capture most traffic"
        );
        assert!((skewed.exponent() - 1.2).abs() < 1e-12);
    }

    #[test]
    fn arrival_rates_preserve_aggregate() {
        let z = ZipfPopularity::new(50, 0.8);
        let rates = z.arrival_rates(2.0);
        assert_eq!(rates.len(), 50);
        let sum: f64 = rates.iter().sum();
        assert!((sum - 2.0).abs() < 1e-9);
        assert!(rates[0] > rates[49]);
    }

    #[test]
    #[should_panic(expected = "at least one file")]
    fn empty_population_panics() {
        let _ = ZipfPopularity::new(0, 1.0);
    }
}
