//! File-population and workload specifications, including the exact numbers
//! used in the paper's evaluation.

use serde::{Deserialize, Serialize};

/// Bytes per megabyte (the paper uses decimal MB for object sizes).
pub const MB: u64 = 1_000_000;
/// Bytes per gigabyte.
pub const GB: u64 = 1_000 * MB;

/// A single file (object) in the storage system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FileSpec {
    /// File size in bytes.
    pub size_bytes: u64,
    /// Number of data chunks `k`.
    pub k: usize,
    /// Number of coded chunks stored on storage nodes `n`.
    pub n: usize,
    /// Request arrival rate (requests per second) in the current time bin.
    pub arrival_rate: f64,
}

impl FileSpec {
    /// Creates a file spec.
    pub fn new(size_bytes: u64, n: usize, k: usize, arrival_rate: f64) -> Self {
        FileSpec {
            size_bytes,
            k,
            n,
            arrival_rate,
        }
    }

    /// Chunk size in bytes (`ceil(size / k)`).
    pub fn chunk_bytes(&self) -> u64 {
        self.size_bytes.div_ceil(self.k as u64)
    }
}

/// A population of files plus the cache capacity, i.e. everything the
/// optimizer needs besides node service statistics and placement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// The files in the system.
    pub files: Vec<FileSpec>,
    /// Cache capacity in chunks.
    pub cache_chunks: usize,
}

impl WorkloadSpec {
    /// Creates a workload spec.
    pub fn new(files: Vec<FileSpec>, cache_chunks: usize) -> Self {
        WorkloadSpec {
            files,
            cache_chunks,
        }
    }

    /// Aggregate arrival rate over all files.
    pub fn total_arrival_rate(&self) -> f64 {
        self.files.iter().map(|f| f.arrival_rate).sum()
    }

    /// Per-file arrival rates.
    pub fn arrival_rates(&self) -> Vec<f64> {
        self.files.iter().map(|f| f.arrival_rate).collect()
    }
}

/// The per-file arrival rates of the paper's simulation setup (§V-A):
/// groups of five files cycle through the rates
/// `{0.000156, 0.000156, 0.000125, 0.000167, 0.000104}` requests/second,
/// giving an aggregate of ≈0.1416 req/s for 1000 files.
pub fn paper_simulation_rates(num_files: usize) -> Vec<f64> {
    const GROUP: [f64; 5] = [0.000156, 0.000156, 0.000125, 0.000167, 0.000104];
    (0..num_files).map(|i| GROUP[i % GROUP.len()]).collect()
}

/// The heterogeneous service rates (1/mean service time, per second) of the
/// paper's 12 storage servers, taken from its §V-A measurement-based setup.
///
/// The paper lists eleven values for "the 12 storage servers"; the published
/// list is `{0.1, 0.1, 0.1, 0.0909, 0.0909, 0.0667, 0.0667, 0.0769, 0.0769,
/// 0.0588, 0.0588}` and we complete the twelfth server by repeating the last
/// value, preserving the mix of fast and slow servers.
pub fn paper_server_service_rates() -> Vec<f64> {
    vec![
        0.1, 0.1, 0.1, 0.0909, 0.0909, 0.0667, 0.0667, 0.0769, 0.0769, 0.0588, 0.0588, 0.0588,
    ]
}

/// An object-size class of the paper's 24-hour production workload
/// (Table III) with its average per-object request arrival rate.
///
/// Serializable for reports, but not deserializable: the `&'static str`
/// label only exists for the fixed paper table, never as file input.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ObjectSizeClass {
    /// Object size in bytes.
    pub size_bytes: u64,
    /// Average request arrival rate per object (requests per second).
    pub arrival_rate: f64,
    /// Human-readable label ("4MB", "1GB", …).
    pub label: &'static str,
}

/// Table III of the paper: the five most popular object sizes of the
/// production trace and their average per-object arrival rates.
pub fn table_iii_object_classes() -> Vec<ObjectSizeClass> {
    vec![
        ObjectSizeClass {
            size_bytes: 4 * MB,
            arrival_rate: 0.000_298_68,
            label: "4MB",
        },
        ObjectSizeClass {
            size_bytes: 16 * MB,
            arrival_rate: 0.000_108_24,
            label: "16MB",
        },
        ObjectSizeClass {
            size_bytes: 64 * MB,
            arrival_rate: 0.000_518_52,
            label: "64MB",
        },
        ObjectSizeClass {
            size_bytes: 256 * MB,
            arrival_rate: 0.000_007_8,
            label: "256MB",
        },
        ObjectSizeClass {
            size_bytes: GB,
            arrival_rate: 0.000_002_4,
            label: "1GB",
        },
    ]
}

/// Measured chunk service-time statistics from the paper's Ceph testbed
/// (Table IV): mean and variance of the read service time (milliseconds) at
/// an HDD-backed OSD for each chunk size.
pub fn table_iv_hdd_service_ms() -> Vec<(u64, f64, f64)> {
    vec![
        (MB, 6.6696, 0.0963),
        (4 * MB, 35.88, 2.6925),
        (16 * MB, 147.8462, 388.9872),
        (64 * MB, 355.08, 1256.61),
        (256 * MB, 6758.06, 554_180.0),
    ]
}

/// Measured chunk read latency from the SSD cache (Table V), milliseconds.
pub fn table_v_ssd_latency_ms() -> Vec<(u64, f64)> {
    vec![
        (MB, 1.866_19),
        (4 * MB, 7.356_39),
        (16 * MB, 30.4927),
        (64 * MB, 97.0968),
        (256 * MB, 349.133),
    ]
}

/// Builds a uniform file population: `num_files` files of `size_bytes` each,
/// using an `(n, k)` code, with the paper's grouped arrival rates.
pub fn uniform_population(num_files: usize, size_bytes: u64, n: usize, k: usize) -> Vec<FileSpec> {
    paper_simulation_rates(num_files)
        .into_iter()
        .map(|rate| FileSpec::new(size_bytes, n, k, rate))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_rates_aggregate_to_quoted_total() {
        let rates = paper_simulation_rates(1000);
        let total: f64 = rates.iter().sum();
        // The paper quotes an aggregate arrival rate of 0.1416 /s.
        assert!((total - 0.1416).abs() < 1e-3, "total = {total}");
    }

    #[test]
    fn server_rates_have_twelve_entries() {
        let rates = paper_server_service_rates();
        assert_eq!(rates.len(), 12);
        assert!(rates.iter().all(|&r| r > 0.05 && r <= 0.1));
    }

    #[test]
    fn table_iii_has_five_classes_in_increasing_size() {
        let classes = table_iii_object_classes();
        assert_eq!(classes.len(), 5);
        for w in classes.windows(2) {
            assert!(w[0].size_bytes < w[1].size_bytes);
        }
        assert_eq!(classes[0].label, "4MB");
        assert_eq!(classes[4].size_bytes, GB);
    }

    #[test]
    fn table_iv_and_v_cover_same_chunk_sizes() {
        let hdd = table_iv_hdd_service_ms();
        let ssd = table_v_ssd_latency_ms();
        assert_eq!(hdd.len(), ssd.len());
        for ((s1, mean_hdd, _), (s2, lat_ssd)) in hdd.iter().zip(&ssd) {
            assert_eq!(s1, s2);
            // SSD cache reads are much faster than HDD reads at every size.
            assert!(lat_ssd < mean_hdd);
        }
    }

    #[test]
    fn file_spec_chunk_size() {
        let f = FileSpec::new(100 * MB, 7, 4, 0.001);
        assert_eq!(f.chunk_bytes(), 25 * MB);
        let odd = FileSpec::new(10, 3, 3, 0.0);
        assert_eq!(odd.chunk_bytes(), 4);
    }

    #[test]
    fn uniform_population_and_workload_spec() {
        let files = uniform_population(10, 100 * MB, 7, 4);
        assert_eq!(files.len(), 10);
        assert!(files.iter().all(|f| f.n == 7 && f.k == 4));
        let spec = WorkloadSpec::new(files, 500);
        assert_eq!(spec.arrival_rates().len(), 10);
        assert!(spec.total_arrival_rate() > 0.0);
        assert_eq!(spec.cache_chunks, 500);
    }
}
