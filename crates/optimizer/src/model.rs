//! The storage-system model the optimizer works against.

use serde::{Deserialize, Serialize};
use sprout_queueing::dist::ServiceMoments;

use crate::error::OptimizerError;

/// Per-file parameters: arrival rate, number of data chunks `k_i`, and the
/// set of storage nodes `S_i` holding its `n_i` coded chunks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FileModel {
    /// Request arrival rate `λ_i` (requests per second) in the current time bin.
    pub arrival_rate: f64,
    /// Number of data chunks `k_i` needed to reconstruct the file.
    pub k: usize,
    /// Storage nodes hosting the file's `n_i = |S_i|` coded chunks.
    pub placement: Vec<usize>,
}

impl FileModel {
    /// Creates a file model.
    pub fn new(arrival_rate: f64, k: usize, placement: Vec<usize>) -> Self {
        FileModel {
            arrival_rate,
            k,
            placement,
        }
    }

    /// Number of coded chunks stored for this file (`n_i`).
    pub fn n(&self) -> usize {
        self.placement.len()
    }
}

/// The full system model for one time bin: per-node service-time moments and
/// per-file arrival rates, code parameters and placement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StorageModel {
    nodes: Vec<ServiceMoments>,
    files: Vec<FileModel>,
}

impl StorageModel {
    /// Validates and creates a model.
    ///
    /// # Errors
    ///
    /// Returns [`OptimizerError::InvalidModel`] if
    /// * there are no nodes or no files,
    /// * a file references a node index out of range or lists a node twice,
    /// * a file has `k = 0` or fewer hosting nodes than `k`,
    /// * an arrival rate is negative or not finite.
    pub fn new(nodes: Vec<ServiceMoments>, files: Vec<FileModel>) -> Result<Self, OptimizerError> {
        if nodes.is_empty() {
            return Err(OptimizerError::InvalidModel("no storage nodes".into()));
        }
        if files.is_empty() {
            return Err(OptimizerError::InvalidModel("no files".into()));
        }
        for (i, file) in files.iter().enumerate() {
            if !(file.arrival_rate.is_finite() && file.arrival_rate >= 0.0) {
                return Err(OptimizerError::InvalidModel(format!(
                    "file {i} has invalid arrival rate {}",
                    file.arrival_rate
                )));
            }
            if file.k == 0 {
                return Err(OptimizerError::InvalidModel(format!("file {i} has k = 0")));
            }
            if file.placement.len() < file.k {
                return Err(OptimizerError::InvalidModel(format!(
                    "file {i} is placed on {} nodes but needs k = {}",
                    file.placement.len(),
                    file.k
                )));
            }
            let mut seen = std::collections::HashSet::new();
            for &node in &file.placement {
                if node >= nodes.len() {
                    return Err(OptimizerError::InvalidModel(format!(
                        "file {i} references node {node} but only {} nodes exist",
                        nodes.len()
                    )));
                }
                if !seen.insert(node) {
                    return Err(OptimizerError::InvalidModel(format!(
                        "file {i} lists node {node} twice"
                    )));
                }
            }
        }
        Ok(StorageModel { nodes, files })
    }

    /// Per-node service-time moments.
    pub fn nodes(&self) -> &[ServiceMoments] {
        &self.nodes
    }

    /// Per-file models.
    pub fn files(&self) -> &[FileModel] {
        &self.files
    }

    /// Number of storage nodes `m`.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of files `r`.
    pub fn num_files(&self) -> usize {
        self.files.len()
    }

    /// Aggregate arrival rate `λ̂ = Σ_i λ_i`.
    pub fn total_arrival_rate(&self) -> f64 {
        self.files.iter().map(|f| f.arrival_rate).sum()
    }

    /// Maximum number of chunks the cache could ever usefully hold
    /// (`Σ_i k_i`).
    pub fn max_useful_cache(&self) -> usize {
        self.files.iter().map(|f| f.k).sum()
    }

    /// Replaces all arrival rates, e.g. when a new time bin begins.
    ///
    /// # Errors
    ///
    /// Returns [`OptimizerError::InvalidModel`] if the length differs from
    /// the number of files or a rate is invalid.
    pub fn with_arrival_rates(&self, rates: &[f64]) -> Result<Self, OptimizerError> {
        if rates.len() != self.files.len() {
            return Err(OptimizerError::InvalidModel(format!(
                "expected {} arrival rates, got {}",
                self.files.len(),
                rates.len()
            )));
        }
        let files = self
            .files
            .iter()
            .zip(rates)
            .map(|(f, &r)| FileModel {
                arrival_rate: r,
                ..f.clone()
            })
            .collect();
        StorageModel::new(self.nodes.clone(), files)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sprout_queueing::dist::ServiceDistribution;

    fn moments(rate: f64) -> ServiceMoments {
        ServiceDistribution::exponential(rate).moments()
    }

    #[test]
    fn valid_model_builds() {
        let m = StorageModel::new(
            vec![moments(0.1), moments(0.2), moments(0.3)],
            vec![FileModel::new(0.01, 2, vec![0, 1, 2])],
        )
        .unwrap();
        assert_eq!(m.num_nodes(), 3);
        assert_eq!(m.num_files(), 1);
        assert_eq!(m.files()[0].n(), 3);
        assert!((m.total_arrival_rate() - 0.01).abs() < 1e-15);
        assert_eq!(m.max_useful_cache(), 2);
    }

    #[test]
    fn rejects_empty_nodes_and_files() {
        assert!(StorageModel::new(vec![], vec![FileModel::new(0.1, 1, vec![0])]).is_err());
        assert!(StorageModel::new(vec![moments(0.1)], vec![]).is_err());
    }

    #[test]
    fn rejects_bad_placement() {
        // node out of range
        assert!(
            StorageModel::new(vec![moments(0.1)], vec![FileModel::new(0.1, 1, vec![3])]).is_err()
        );
        // duplicate node
        assert!(StorageModel::new(
            vec![moments(0.1), moments(0.1)],
            vec![FileModel::new(0.1, 1, vec![0, 0])]
        )
        .is_err());
        // fewer nodes than k
        assert!(StorageModel::new(
            vec![moments(0.1), moments(0.1)],
            vec![FileModel::new(0.1, 3, vec![0, 1])]
        )
        .is_err());
        // k == 0
        assert!(
            StorageModel::new(vec![moments(0.1)], vec![FileModel::new(0.1, 0, vec![0])]).is_err()
        );
    }

    #[test]
    fn rejects_bad_arrival_rates() {
        assert!(
            StorageModel::new(vec![moments(0.1)], vec![FileModel::new(-1.0, 1, vec![0])]).is_err()
        );
        assert!(StorageModel::new(
            vec![moments(0.1)],
            vec![FileModel::new(f64::NAN, 1, vec![0])]
        )
        .is_err());
    }

    #[test]
    fn with_arrival_rates_replaces_rates() {
        let m = StorageModel::new(
            vec![moments(0.1), moments(0.2)],
            vec![
                FileModel::new(0.01, 1, vec![0, 1]),
                FileModel::new(0.02, 1, vec![1]),
            ],
        )
        .unwrap();
        let m2 = m.with_arrival_rates(&[0.05, 0.06]).unwrap();
        assert!((m2.total_arrival_rate() - 0.11).abs() < 1e-12);
        assert!(m.with_arrival_rates(&[0.05]).is_err());
    }
}
