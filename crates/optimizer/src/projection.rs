//! Exact Euclidean projections onto the constraint polytope of Prob Π.
//!
//! The feasible set is, per file `i`,
//!
//! ```text
//! π_{i,j} ∈ [0, 1],   π_{i,j} = 0 for j ∉ S_i,   K_{L,i} ≤ Σ_j π_{i,j} ≤ K_{U,i}
//! ```
//!
//! coupled across files by the cache-capacity constraint
//!
//! ```text
//! Σ_i (k_i − Σ_j π_{i,j}) ≤ C      ⇔      Σ_{i,j} π_{i,j} ≥ Σ_i k_i − C.
//! ```
//!
//! The per-file set is a box intersected with a sum band; its Euclidean
//! projection has the classic water-filling form `clamp(y_j − τ, 0, 1)` with
//! a scalar `τ` found by bisection. The coupling constraint is handled by a
//! non-negative multiplier `ν` on the aggregate lower bound (projecting
//! `y + ν` per file), again found by bisection because the projected
//! aggregate sum is monotone in `ν`. Both projections are exact (to the
//! requested numeric tolerance), which replaces the commercial solver
//! (MOSEK) used by the paper's prototype.

/// Numeric tolerance used by the bisection searches.
const TOL: f64 = 1e-10;

/// Projects `y` onto `{x : x ∈ [0,1]^n, lo ≤ Σ x ≤ hi}`.
///
/// # Panics
///
/// Panics if `lo > hi + ε`, `lo > n` (infeasible), or `hi < 0`.
pub fn project_box_sum_band(y: &[f64], lo: f64, hi: f64) -> Vec<f64> {
    let n = y.len() as f64;
    assert!(lo <= hi + 1e-9, "lower bound {lo} exceeds upper bound {hi}");
    assert!(
        lo <= n + 1e-9,
        "sum lower bound {lo} infeasible for {n} variables"
    );
    assert!(hi >= -1e-9, "sum upper bound {hi} must be non-negative");
    let lo = lo.clamp(0.0, n);
    let hi = hi.clamp(0.0, n);

    let clamp_sum = |tau: f64| -> f64 { y.iter().map(|&v| (v - tau).clamp(0.0, 1.0)).sum() };

    let free_sum = clamp_sum(0.0);
    let tau = if free_sum > hi {
        // Need to push the sum down: find tau > 0 with clamp_sum(tau) = hi.
        bisect_decreasing(clamp_sum, hi, 0.0, max_shift(y))
    } else if free_sum < lo {
        // Need to lift the sum: find tau < 0 with clamp_sum(tau) = lo.
        bisect_decreasing(clamp_sum, lo, -max_shift_neg(y), 0.0)
    } else {
        0.0
    };
    y.iter().map(|&v| (v - tau).clamp(0.0, 1.0)).collect()
}

fn max_shift(y: &[f64]) -> f64 {
    y.iter().cloned().fold(0.0, f64::max) + 1.0
}

fn max_shift_neg(y: &[f64]) -> f64 {
    1.0 - y.iter().cloned().fold(0.0, f64::min) + 1.0
}

/// Finds `tau` in `[lo_tau, hi_tau]` with `f(tau) = target`, assuming `f` is
/// non-increasing in `tau`.
fn bisect_decreasing<F: Fn(f64) -> f64>(
    f: F,
    target: f64,
    mut lo_tau: f64,
    mut hi_tau: f64,
) -> f64 {
    for _ in 0..200 {
        let mid = 0.5 * (lo_tau + hi_tau);
        if f(mid) > target {
            lo_tau = mid;
        } else {
            hi_tau = mid;
        }
        if hi_tau - lo_tau < TOL {
            break;
        }
    }
    0.5 * (lo_tau + hi_tau)
}

/// Per-file constraint description used by [`project_joint`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FileBand {
    /// Lower bound `K_{L,i}` on `Σ_j π_{i,j}`.
    pub lo: f64,
    /// Upper bound `K_{U,i}` on `Σ_j π_{i,j}`.
    pub hi: f64,
}

/// Projects per-file vectors onto the joint feasible set
/// `{π : π_i ∈ Box_i ∩ Band_i ∀i, Σ_i Σ_j π_{i,j} ≥ aggregate_lo}`.
///
/// `points[i]` holds the (unconstrained) values of file `i` restricted to its
/// placement set `S_i`; the result has the same shape.
///
/// # Panics
///
/// Panics if the aggregate lower bound exceeds the sum of per-file upper
/// bounds (the constraint set would be empty) or if `bands.len()` differs
/// from `points.len()`.
pub fn project_joint(points: &[Vec<f64>], bands: &[FileBand], aggregate_lo: f64) -> Vec<Vec<f64>> {
    assert_eq!(points.len(), bands.len(), "one band per file is required");
    let max_total: f64 = bands
        .iter()
        .zip(points)
        .map(|(b, p)| b.hi.min(p.len() as f64))
        .sum();
    assert!(
        aggregate_lo <= max_total + 1e-6,
        "aggregate lower bound {aggregate_lo} exceeds maximum feasible total {max_total}"
    );

    let project_all = |nu: f64| -> Vec<Vec<f64>> {
        points
            .iter()
            .zip(bands)
            .map(|(p, b)| {
                let shifted: Vec<f64> = p.iter().map(|&v| v + nu).collect();
                project_box_sum_band(&shifted, b.lo, b.hi)
            })
            .collect()
    };
    let total = |proj: &[Vec<f64>]| -> f64 { proj.iter().map(|p| p.iter().sum::<f64>()).sum() };

    let at_zero = project_all(0.0);
    if total(&at_zero) >= aggregate_lo - 1e-9 {
        return at_zero;
    }

    // The aggregate sum of the projection is non-decreasing in nu; find the
    // smallest nu >= 0 meeting the lower bound.
    let mut lo_nu = 0.0;
    let mut hi_nu = 1.0;
    while total(&project_all(hi_nu)) < aggregate_lo - 1e-9 {
        hi_nu *= 2.0;
        if hi_nu > 1e12 {
            break;
        }
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo_nu + hi_nu);
        if total(&project_all(mid)) < aggregate_lo {
            lo_nu = mid;
        } else {
            hi_nu = mid;
        }
        if hi_nu - lo_nu < TOL {
            break;
        }
    }
    project_all(hi_nu)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_feasible(x: &[f64], lo: f64, hi: f64) {
        let sum: f64 = x.iter().sum();
        assert!(sum >= lo - 1e-6, "sum {sum} below {lo}");
        assert!(sum <= hi + 1e-6, "sum {sum} above {hi}");
        for &v in x {
            assert!(
                (-1e-9..=1.0 + 1e-9).contains(&v),
                "coordinate {v} out of box"
            );
        }
    }

    #[test]
    fn projection_of_feasible_point_is_identity() {
        let y = vec![0.2, 0.5, 0.9];
        let p = project_box_sum_band(&y, 1.0, 2.0);
        for (a, b) in y.iter().zip(&p) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn projection_reduces_sum_to_upper_bound() {
        let y = vec![1.0, 1.0, 1.0, 1.0];
        let p = project_box_sum_band(&y, 0.0, 2.5);
        assert_feasible(&p, 0.0, 2.5);
        let sum: f64 = p.iter().sum();
        assert!((sum - 2.5).abs() < 1e-6);
        // symmetric input stays symmetric
        for w in p.windows(2) {
            assert!((w[0] - w[1]).abs() < 1e-9);
        }
    }

    #[test]
    fn projection_raises_sum_to_lower_bound() {
        let y = vec![0.0, 0.1, 0.0];
        let p = project_box_sum_band(&y, 2.0, 3.0);
        assert_feasible(&p, 2.0, 3.0);
        let sum: f64 = p.iter().sum();
        assert!((sum - 2.0).abs() < 1e-6);
    }

    #[test]
    fn projection_clamps_negative_and_large_coordinates() {
        let y = vec![-3.0, 5.0, 0.4];
        let p = project_box_sum_band(&y, 0.0, 3.0);
        assert_feasible(&p, 0.0, 3.0);
        assert!(p[0] <= p[2] && p[2] <= p[1], "order preserved: {p:?}");
    }

    #[test]
    fn projection_is_closest_point_on_a_grid() {
        // brute-force optimality check in 2-D
        let y = vec![0.9, 0.8];
        let p = project_box_sum_band(&y, 0.0, 1.0);
        let dist = |a: &[f64]| -> f64 {
            a.iter()
                .zip(&y)
                .map(|(x, yy)| (x - yy).powi(2))
                .sum::<f64>()
        };
        let best = dist(&p);
        let steps = 101;
        for i in 0..steps {
            for j in 0..steps {
                let cand = [i as f64 / 100.0, j as f64 / 100.0];
                if cand[0] + cand[1] <= 1.0 + 1e-12 {
                    assert!(best <= dist(&cand) + 1e-6, "{cand:?} closer than {p:?}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "exceeds upper bound")]
    fn inverted_band_panics() {
        let _ = project_box_sum_band(&[0.5], 2.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "infeasible")]
    fn unreachable_lower_bound_panics() {
        let _ = project_box_sum_band(&[0.5, 0.5], 3.0, 4.0);
    }

    #[test]
    fn joint_projection_without_coupling_matches_per_file() {
        let points = vec![vec![0.6, 0.7], vec![0.1, 0.2, 0.3]];
        let bands = vec![FileBand { lo: 0.0, hi: 1.0 }, FileBand { lo: 0.0, hi: 3.0 }];
        let joint = project_joint(&points, &bands, 0.0);
        let separate: Vec<Vec<f64>> = points
            .iter()
            .zip(&bands)
            .map(|(p, b)| project_box_sum_band(p, b.lo, b.hi))
            .collect();
        for (a, b) in joint.iter().flatten().zip(separate.iter().flatten()) {
            assert!((a - b).abs() < 1e-8);
        }
    }

    #[test]
    fn joint_projection_meets_aggregate_lower_bound() {
        // Cache smaller than total demand: aggregate sum must rise to the bound.
        let points = vec![vec![0.0, 0.0, 0.0], vec![0.0, 0.0, 0.0]];
        let bands = vec![FileBand { lo: 0.0, hi: 2.0 }, FileBand { lo: 0.0, hi: 2.0 }];
        let aggregate_lo = 3.0; // sum k_i - C = 4 - 1
        let joint = project_joint(&points, &bands, aggregate_lo);
        let total: f64 = joint.iter().flatten().sum();
        assert!((total - 3.0).abs() < 1e-5, "total {total}");
        for (row, band) in joint.iter().zip(&bands) {
            assert_feasible(row, band.lo, band.hi);
        }
    }

    #[test]
    fn joint_projection_respects_per_file_upper_bounds() {
        let points = vec![vec![0.9, 0.9, 0.9], vec![0.0, 0.0]];
        let bands = vec![FileBand { lo: 0.0, hi: 1.0 }, FileBand { lo: 0.0, hi: 2.0 }];
        let joint = project_joint(&points, &bands, 2.5);
        let sum0: f64 = joint[0].iter().sum();
        let sum1: f64 = joint[1].iter().sum();
        assert!(sum0 <= 1.0 + 1e-6);
        assert!(sum0 + sum1 >= 2.5 - 1e-5);
    }

    #[test]
    #[should_panic(expected = "exceeds maximum feasible total")]
    fn impossible_aggregate_bound_panics() {
        let points = vec![vec![0.0, 0.0]];
        let bands = vec![FileBand { lo: 0.0, hi: 1.0 }];
        let _ = project_joint(&points, &bands, 5.0);
    }
}
