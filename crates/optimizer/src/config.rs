//! Optimizer configuration.

use serde::{Deserialize, Serialize};

/// How the integer constraint on `d_i` is restored after each relaxed
/// Prob Π solve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RoundingStrategy {
    /// Pin one file per inner iteration — the file whose `Σ_j π_{i,j}` has
    /// the largest fractional part (the literal Algorithm 1 inner loop,
    /// `O(r)` convex solves).
    OneAtATime,
    /// Pin a fixed fraction of the still-fractional files per inner
    /// iteration (the paper's `O(log r)` refinement). The fraction is
    /// clamped to `(0, 1]`.
    Fraction(f64),
}

impl RoundingStrategy {
    /// Number of files to pin given `fractional` files still unrounded.
    pub fn batch_size(&self, fractional: usize) -> usize {
        match *self {
            RoundingStrategy::OneAtATime => 1.min(fractional),
            RoundingStrategy::Fraction(f) => {
                let f = f.clamp(1e-6, 1.0);
                ((fractional as f64 * f).ceil() as usize).clamp(1, fractional)
            }
        }
    }
}

/// Tunable parameters of [`crate::optimize`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OptimizerConfig {
    /// Outer-loop convergence threshold `ε` on the objective decrease
    /// (seconds of latency). The paper uses 0.01.
    pub tolerance: f64,
    /// Maximum number of outer (alternating) iterations.
    pub max_outer_iterations: usize,
    /// Maximum number of projected-gradient iterations per Prob Π solve.
    pub max_gradient_iterations: usize,
    /// Relative objective improvement below which a Prob Π solve stops early.
    pub gradient_tolerance: f64,
    /// Initial step size for projected gradient descent (scaled by
    /// backtracking line search).
    pub initial_step: f64,
    /// Rounding strategy for the integer constraint.
    pub rounding: RoundingStrategy,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig {
            tolerance: 0.01,
            max_outer_iterations: 50,
            max_gradient_iterations: 120,
            gradient_tolerance: 1e-6,
            initial_step: 1.0,
            rounding: RoundingStrategy::Fraction(0.3),
        }
    }
}

impl OptimizerConfig {
    /// A configuration tuned for speed over precision, useful in tests and
    /// large parameter sweeps.
    pub fn fast() -> Self {
        OptimizerConfig {
            tolerance: 0.05,
            max_outer_iterations: 15,
            max_gradient_iterations: 40,
            gradient_tolerance: 1e-4,
            initial_step: 1.0,
            rounding: RoundingStrategy::Fraction(0.5),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_tolerance() {
        let c = OptimizerConfig::default();
        assert!((c.tolerance - 0.01).abs() < 1e-12);
        assert!(c.max_outer_iterations >= 20);
    }

    #[test]
    fn batch_sizes() {
        assert_eq!(RoundingStrategy::OneAtATime.batch_size(10), 1);
        assert_eq!(RoundingStrategy::OneAtATime.batch_size(0), 0);
        assert_eq!(RoundingStrategy::Fraction(0.3).batch_size(10), 3);
        assert_eq!(RoundingStrategy::Fraction(0.3).batch_size(1), 1);
        assert_eq!(RoundingStrategy::Fraction(2.0).batch_size(4), 4);
        assert_eq!(RoundingStrategy::Fraction(0.0).batch_size(4), 1);
    }

    #[test]
    fn fast_config_is_cheaper() {
        let fast = OptimizerConfig::fast();
        let default = OptimizerConfig::default();
        assert!(fast.max_gradient_iterations < default.max_gradient_iterations);
    }
}
