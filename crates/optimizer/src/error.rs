//! Errors produced by model validation and the optimizer.

use std::fmt;

/// Errors returned by [`crate::StorageModel`] construction and
/// [`crate::optimize`].
#[derive(Debug, Clone, PartialEq)]
pub enum OptimizerError {
    /// The model is malformed (empty, inconsistent indices, bad rates…).
    InvalidModel(String),
    /// No feasible scheduling exists: even with every allowed chunk cached,
    /// some node must be loaded at or above its service rate.
    UnstableSystem {
        /// The node that remains overloaded.
        node: usize,
        /// Its utilization at the initial (most spread-out) scheduling.
        utilization: f64,
    },
    /// The requested cache capacity cannot be met: files cannot place more
    /// than `Σ_i k_i` chunks in the cache, and a zero-capacity cache is the
    /// minimum, so this only occurs for internal inconsistencies.
    InfeasibleCache(String),
}

impl fmt::Display for OptimizerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptimizerError::InvalidModel(msg) => write!(f, "invalid storage model: {msg}"),
            OptimizerError::UnstableSystem { node, utilization } => write!(
                f,
                "system is unstable: node {node} has utilization {utilization:.4} >= 1 even at the initial scheduling"
            ),
            OptimizerError::InfeasibleCache(msg) => write!(f, "infeasible cache constraint: {msg}"),
        }
    }
}

impl std::error::Error for OptimizerError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(OptimizerError::InvalidModel("empty".into())
            .to_string()
            .contains("invalid storage model"));
        assert!(OptimizerError::UnstableSystem {
            node: 3,
            utilization: 1.25
        }
        .to_string()
        .contains("node 3"));
        assert!(OptimizerError::InfeasibleCache("x".into())
            .to_string()
            .contains("infeasible"));
    }
}
