//! Optimizer output types.

use serde::{Deserialize, Serialize};

/// Objective values recorded while the algorithm runs; used to reproduce the
/// paper's convergence plot (Fig. 3).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ConvergenceTrace {
    /// Objective value after each outer (alternating-minimization) iteration,
    /// including the initial value at index 0.
    pub outer_objectives: Vec<f64>,
    /// Total number of inner rounding rounds across all outer iterations.
    pub rounding_rounds: usize,
    /// Total number of projected-gradient iterations performed.
    pub gradient_iterations: usize,
}

impl ConvergenceTrace {
    /// Number of outer iterations actually performed.
    pub fn outer_iterations(&self) -> usize {
        self.outer_objectives.len().saturating_sub(1)
    }

    /// Final objective value (the weighted mean latency bound, seconds).
    pub fn final_objective(&self) -> f64 {
        *self.outer_objectives.last().unwrap_or(&f64::INFINITY)
    }
}

/// The optimized cache placement and request-scheduling policy for one time
/// bin.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CachePlan {
    /// Number of functional chunks of each file to hold in the cache (`d_i`).
    pub cached_chunks: Vec<usize>,
    /// Scheduling probabilities `π_{i,j}` (rows indexed by file, columns by
    /// node; zero outside each file's placement set).
    pub scheduling: Vec<Vec<f64>>,
    /// Optimal auxiliary variables `z_i` of the Lemma 1 bound.
    pub z: Vec<f64>,
    /// The achieved weighted mean latency bound (seconds).
    pub objective: f64,
    /// Per-file latency bounds `U_i` (seconds).
    pub per_file_latency: Vec<f64>,
    /// Convergence history.
    pub trace: ConvergenceTrace,
}

impl CachePlan {
    /// Total number of cache chunks used by the plan.
    pub fn cache_chunks_used(&self) -> usize {
        self.cached_chunks.iter().sum()
    }

    /// Expected number of storage-node chunk reads per file-`i` request
    /// (`Σ_j π_{i,j} = k_i − d_i`).
    pub fn storage_reads(&self, file: usize) -> f64 {
        self.scheduling[file].iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_counts_iterations() {
        let t = ConvergenceTrace {
            outer_objectives: vec![10.0, 7.0, 6.5],
            rounding_rounds: 4,
            gradient_iterations: 100,
        };
        assert_eq!(t.outer_iterations(), 2);
        assert!((t.final_objective() - 6.5).abs() < 1e-12);
        assert_eq!(ConvergenceTrace::default().outer_iterations(), 0);
        assert!(ConvergenceTrace::default().final_objective().is_infinite());
    }

    #[test]
    fn plan_accessors() {
        let plan = CachePlan {
            cached_chunks: vec![2, 0, 1],
            scheduling: vec![
                vec![0.5, 0.5, 1.0],
                vec![1.0, 1.0, 1.0],
                vec![0.0, 1.0, 1.0],
            ],
            z: vec![0.0; 3],
            objective: 5.0,
            per_file_latency: vec![4.0, 6.0, 5.0],
            trace: ConvergenceTrace::default(),
        };
        assert_eq!(plan.cache_chunks_used(), 3);
        assert!((plan.storage_reads(0) - 2.0).abs() < 1e-12);
        assert!((plan.storage_reads(1) - 3.0).abs() < 1e-12);
    }
}
