//! Cache-content optimization for erasure-coded storage with functional
//! caching (§IV of the Sprout paper).
//!
//! Given a [`StorageModel`] (per-node service-time moments, per-file arrival
//! rates, erasure-code parameters and chunk placement) and a cache capacity
//! `C` (in chunks), the optimizer decides
//!
//! * `d_i` — how many functional chunks of file `i` to keep in the cache, and
//! * `π_{i,j}` — the probability that a file-`i` request reads a chunk from
//!   storage node `j`,
//!
//! to minimize the arrival-rate-weighted mean latency bound of Lemma 1,
//! subject to `Σ_i d_i ≤ C`, `Σ_j π_{i,j} = k_i − d_i`, `π_{i,j} ∈ [0, 1]`,
//! `π_{i,j} = 0` for nodes not hosting file `i`, and integer `d_i`.
//!
//! The solution method follows Algorithm 1 of the paper:
//!
//! 1. **Prob Z** — for fixed `π`, the auxiliary variables `z_i` separate per
//!    file and each 1-D convex problem is solved exactly (bisection on the
//!    monotone derivative, clamped at zero).
//! 2. **Prob Π** — for fixed `z`, minimize over `π` with the integer
//!    constraint relaxed, by projected gradient descent with an exact
//!    Euclidean projection onto the constraint polytope.
//! 3. **Rounding** — iteratively pin `Σ_j π_{i,j}` to an integer for the
//!    file(s) with the largest fractional part and re-solve, until every
//!    `d_i` is an integer.
//! 4. Repeat 1–3 until the objective improves by less than a tolerance.
//!
//! # Example
//!
//! ```
//! use sprout_optimizer::{FileModel, Optimizer, OptimizerConfig, StorageModel};
//! use sprout_queueing::dist::ServiceDistribution;
//!
//! // Four nodes, two files with a (3, 2) code each.
//! let nodes = vec![
//!     ServiceDistribution::exponential(1.0).moments(),
//!     ServiceDistribution::exponential(0.8).moments(),
//!     ServiceDistribution::exponential(0.5).moments(),
//!     ServiceDistribution::exponential(0.4).moments(),
//! ];
//! let files = vec![
//!     FileModel::new(0.05, 2, vec![0, 1, 2]),
//!     FileModel::new(0.20, 2, vec![1, 2, 3]),
//! ];
//! let model = StorageModel::new(nodes, files)?;
//! let plan = Optimizer::new(OptimizerConfig::default()).run(&model, 1)?;
//! assert_eq!(plan.cached_chunks.iter().sum::<usize>(), 1);
//! # Ok::<(), sprout_optimizer::OptimizerError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algorithm1;
pub mod config;
pub mod error;
pub mod model;
pub mod objective;
pub mod prob_pi;
pub mod prob_z;
pub mod projection;
pub mod solution;

pub use algorithm1::Optimizer;
#[allow(deprecated)]
pub use algorithm1::{optimize, optimize_from};
pub use config::{OptimizerConfig, RoundingStrategy};
pub use error::OptimizerError;
pub use model::{FileModel, StorageModel};
pub use objective::ObjectiveBreakdown;
pub use solution::{CachePlan, ConvergenceTrace};
