//! Prob Z: optimizing the auxiliary variables `z_i` for fixed scheduling `π`.
//!
//! For fixed `π` the objective of Eq. (6) separates across files, and each
//! per-file term is exactly the Lemma 1 bound as a function of `z_i`. The
//! per-file problems are 1-D and convex, so rather than running the gradient
//! descent suggested in the paper we solve each of them exactly by bisection
//! on the monotone derivative (clamping at `z_i ≥ 0`), which is both faster
//! and free of step-size tuning.

use sprout_queueing::bound::{optimal_z, SchedulingTerm};
use sprout_queueing::mg1::QueueDelayMoments;
use sprout_queueing::stability::StabilityError;

use crate::model::StorageModel;
use crate::objective::{node_arrival_rates, node_delay_moments};

/// Builds the Lemma 1 scheduling terms for one file given node delay moments.
pub(crate) fn file_terms(
    model: &StorageModel,
    delays: &[QueueDelayMoments],
    pi_row: &[f64],
    file: usize,
) -> Vec<SchedulingTerm> {
    model.files()[file]
        .placement
        .iter()
        .map(|&j| SchedulingTerm {
            probability: pi_row[j],
            delay: delays[j],
        })
        .collect()
}

/// Solves Prob Z exactly: returns the optimal `z_i ≥ 0` for every file given
/// the current scheduling `π`.
///
/// # Errors
///
/// Returns [`StabilityError`] if the scheduling overloads a node.
pub fn solve(model: &StorageModel, pi: &[Vec<f64>]) -> Result<Vec<f64>, StabilityError> {
    let rates = node_arrival_rates(model, pi);
    let delays = node_delay_moments(model, &rates)?;
    Ok((0..model.num_files())
        .map(|i| optimal_z(&file_terms(model, &delays, &pi[i], i)))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::FileModel;
    use crate::objective::evaluate;
    use sprout_queueing::dist::ServiceDistribution;

    fn model() -> StorageModel {
        let nodes = vec![
            ServiceDistribution::exponential(0.5).moments(),
            ServiceDistribution::exponential(0.3).moments(),
            ServiceDistribution::exponential(0.2).moments(),
            ServiceDistribution::exponential(0.1).moments(),
        ];
        let files = vec![
            FileModel::new(0.02, 3, vec![0, 1, 2, 3]),
            FileModel::new(0.05, 2, vec![1, 2, 3]),
        ];
        StorageModel::new(nodes, files).unwrap()
    }

    fn pi(model: &StorageModel) -> Vec<Vec<f64>> {
        model
            .files()
            .iter()
            .map(|f| {
                let mut row = vec![0.0; model.num_nodes()];
                for &j in &f.placement {
                    row[j] = f.k as f64 / f.placement.len() as f64;
                }
                row
            })
            .collect()
    }

    #[test]
    fn prob_z_solution_is_nonnegative_and_optimal() {
        let model = model();
        let pi = pi(&model);
        let z = solve(&model, &pi).unwrap();
        assert_eq!(z.len(), 2);
        assert!(z.iter().all(|&v| v >= 0.0));

        // No perturbation of any z_i should decrease the objective.
        let base = evaluate(&model, &pi, &z).unwrap().total;
        for i in 0..z.len() {
            for delta in [-1.0, -0.1, 0.1, 1.0] {
                let mut alt = z.clone();
                alt[i] = (alt[i] + delta).max(0.0);
                let f = evaluate(&model, &pi, &alt).unwrap().total;
                assert!(
                    base <= f + 1e-9,
                    "perturbing z[{i}] by {delta} improved objective"
                );
            }
        }
    }

    #[test]
    fn prob_z_detects_instability() {
        let nodes = vec![ServiceDistribution::exponential(0.01).moments()];
        let files = vec![FileModel::new(0.5, 1, vec![0])];
        let model = StorageModel::new(nodes, files).unwrap();
        let pi = vec![vec![1.0]];
        assert!(solve(&model, &pi).is_err());
    }
}
