//! Prob Π: optimizing the scheduling probabilities `π` for fixed `z`.
//!
//! The relaxed problem (integer constraint dropped) is convex in `π` with a
//! polytope constraint set, and is solved by projected gradient descent with
//! a backtracking line search. The projection is the exact Euclidean
//! projection of [`crate::projection::project_joint`], which enforces the
//! per-file boxes `π_{i,j} ∈ [0, 1]`, the per-file sum bands
//! `K_{L,i} ≤ Σ_j π_{i,j} ≤ K_{U,i}`, and the cache-capacity coupling
//! `Σ_{i,j} π_{i,j} ≥ Σ_i k_i − C`.

use crate::config::OptimizerConfig;
use crate::error::OptimizerError;
use crate::model::StorageModel;
use crate::objective::{evaluate, gradient_pi};
use crate::projection::{project_joint, FileBand};

/// Result of one Prob Π solve.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbPiOutcome {
    /// The optimized scheduling probabilities (dense `r × m`).
    pub pi: Vec<Vec<f64>>,
    /// Objective value at the returned point.
    pub objective: f64,
    /// Number of projected-gradient iterations performed.
    pub iterations: usize,
}

/// Restricts a dense `r × m` matrix to each file's placement set.
fn restrict(model: &StorageModel, pi: &[Vec<f64>]) -> Vec<Vec<f64>> {
    model
        .files()
        .iter()
        .zip(pi)
        .map(|(f, row)| f.placement.iter().map(|&j| row[j]).collect())
        .collect()
}

/// Expands per-file restricted vectors back to a dense `r × m` matrix.
fn expand(model: &StorageModel, restricted: &[Vec<f64>]) -> Vec<Vec<f64>> {
    model
        .files()
        .iter()
        .zip(restricted)
        .map(|(f, vals)| {
            let mut row = vec![0.0; model.num_nodes()];
            for (&j, &v) in f.placement.iter().zip(vals) {
                row[j] = v;
            }
            row
        })
        .collect()
}

/// Projects a dense candidate onto the feasible set.
pub(crate) fn project(
    model: &StorageModel,
    pi: &[Vec<f64>],
    bands: &[FileBand],
    cache_capacity: usize,
) -> Vec<Vec<f64>> {
    let restricted = restrict(model, pi);
    let aggregate_lo = (model.max_useful_cache() as f64 - cache_capacity as f64).max(0.0);
    let projected = project_joint(&restricted, bands, aggregate_lo);
    expand(model, &projected)
}

/// Evaluates the objective, mapping instability to `+∞` so that the line
/// search simply rejects such steps.
fn objective_or_infinity(model: &StorageModel, pi: &[Vec<f64>], z: &[f64]) -> f64 {
    match evaluate(model, pi, z) {
        Ok(b) => b.total,
        Err(_) => f64::INFINITY,
    }
}

/// Solves the relaxed Prob Π by projected gradient descent.
///
/// `initial_pi` must lie in (or near) the feasible set; it is projected once
/// before the first iteration.
///
/// # Errors
///
/// Returns [`OptimizerError::UnstableSystem`] if even the projected initial
/// point overloads a node — in that case no feasible stable scheduling was
/// found from this starting point.
pub fn solve(
    model: &StorageModel,
    z: &[f64],
    initial_pi: &[Vec<f64>],
    bands: &[FileBand],
    cache_capacity: usize,
    config: &OptimizerConfig,
) -> Result<ProbPiOutcome, OptimizerError> {
    let mut pi = project(model, initial_pi, bands, cache_capacity);
    let mut current = match evaluate(model, &pi, z) {
        Ok(b) => b.total,
        Err(e) => {
            return Err(OptimizerError::UnstableSystem {
                node: e.node,
                utilization: e.utilization,
            })
        }
    };

    let mut step = config.initial_step;
    let mut iterations = 0;
    for _ in 0..config.max_gradient_iterations {
        iterations += 1;
        let grad = gradient_pi(model, &pi, z).map_err(|e| OptimizerError::UnstableSystem {
            node: e.node,
            utilization: e.utilization,
        })?;

        // Backtracking line search along the projection arc.
        let mut improved = false;
        let mut local_step = step;
        for _ in 0..40 {
            let candidate_raw: Vec<Vec<f64>> = pi
                .iter()
                .zip(&grad)
                .map(|(row, g)| {
                    row.iter()
                        .zip(g)
                        .map(|(&p, &gv)| p - local_step * gv)
                        .collect()
                })
                .collect();
            let candidate = project(model, &candidate_raw, bands, cache_capacity);
            let value = objective_or_infinity(model, &candidate, z);
            if value < current - 1e-15 {
                // Accept; gently grow the step for the next iteration.
                let improvement = current - value;
                pi = candidate;
                current = value;
                step = (local_step * 1.5).min(1e6);
                improved = true;
                if improvement < config.gradient_tolerance * current.abs().max(1e-9) {
                    return Ok(ProbPiOutcome {
                        pi,
                        objective: current,
                        iterations,
                    });
                }
                break;
            }
            local_step *= 0.5;
            if local_step < 1e-14 {
                break;
            }
        }
        if !improved {
            break;
        }
    }

    Ok(ProbPiOutcome {
        pi,
        objective: current,
        iterations,
    })
}

/// Builds a feasible, load-spreading starting point: each file splits its
/// `k_i` storage reads uniformly across its placement set (no caching).
pub fn uniform_initial_pi(model: &StorageModel) -> Vec<Vec<f64>> {
    model
        .files()
        .iter()
        .map(|f| {
            let mut row = vec![0.0; model.num_nodes()];
            let p = f.k as f64 / f.placement.len() as f64;
            for &j in &f.placement {
                row[j] = p;
            }
            row
        })
        .collect()
}

/// Default per-file sum bands before any rounding: `0 ≤ Σ_j π_{i,j} ≤ k_i`.
pub fn initial_bands(model: &StorageModel) -> Vec<FileBand> {
    model
        .files()
        .iter()
        .map(|f| FileBand {
            lo: 0.0,
            hi: f.k as f64,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::FileModel;
    use sprout_queueing::dist::ServiceDistribution;

    fn model() -> StorageModel {
        let nodes = vec![
            ServiceDistribution::exponential(1.0).moments(),
            ServiceDistribution::exponential(0.6).moments(),
            ServiceDistribution::exponential(0.3).moments(),
            ServiceDistribution::exponential(0.15).moments(),
        ];
        let files = vec![
            FileModel::new(0.03, 2, vec![0, 1, 2, 3]),
            FileModel::new(0.06, 2, vec![0, 1, 2, 3]),
        ];
        StorageModel::new(nodes, files).unwrap()
    }

    #[test]
    fn uniform_initial_point_is_feasible() {
        let m = model();
        let pi = uniform_initial_pi(&m);
        for (f, row) in m.files().iter().zip(&pi) {
            let sum: f64 = row.iter().sum();
            assert!((sum - f.k as f64).abs() < 1e-12);
            assert!(row.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn solve_reduces_objective_and_stays_feasible() {
        let m = model();
        let pi0 = uniform_initial_pi(&m);
        let bands = initial_bands(&m);
        let z = vec![0.0; m.num_files()];
        let before = evaluate(&m, &pi0, &z).unwrap().total;
        let out = solve(&m, &z, &pi0, &bands, 2, &OptimizerConfig::default()).unwrap();
        assert!(out.objective <= before + 1e-9);
        // feasibility: per-file sums within [0, k], coupling satisfied
        let mut total = 0.0;
        for (f, row) in m.files().iter().zip(&out.pi) {
            let sum: f64 = row.iter().sum();
            assert!(sum <= f.k as f64 + 1e-6);
            assert!(sum >= -1e-9);
            assert!(row.iter().all(|&p| (-1e-9..=1.0 + 1e-9).contains(&p)));
            total += sum;
        }
        let aggregate_lo = (m.max_useful_cache() as f64 - 2.0).max(0.0);
        assert!(total >= aggregate_lo - 1e-5);
    }

    #[test]
    fn zero_cache_forces_full_storage_reads() {
        let m = model();
        let pi0 = uniform_initial_pi(&m);
        let bands = initial_bands(&m);
        let z = vec![0.0; m.num_files()];
        let out = solve(&m, &z, &pi0, &bands, 0, &OptimizerConfig::default()).unwrap();
        let total: f64 = out.pi.iter().flatten().sum();
        assert!(
            (total - m.max_useful_cache() as f64).abs() < 1e-5,
            "with no cache every chunk must come from storage, total = {total}"
        );
    }

    #[test]
    fn prefers_unloading_slow_nodes() {
        // With ample cache, the optimizer should route less traffic to the
        // slowest node than to the fastest one.
        let m = model();
        let pi0 = uniform_initial_pi(&m);
        let bands = initial_bands(&m);
        let z = vec![0.0; m.num_files()];
        let out = solve(&m, &z, &pi0, &bands, 2, &OptimizerConfig::default()).unwrap();
        let rates = crate::objective::node_arrival_rates(&m, &out.pi);
        assert!(
            rates[3] <= rates[0] + 1e-9,
            "slowest node should not carry more load: {rates:?}"
        );
    }

    #[test]
    fn unstable_initial_point_is_an_error() {
        let nodes = vec![ServiceDistribution::exponential(0.01).moments()];
        let files = vec![FileModel::new(1.0, 1, vec![0])];
        let m = StorageModel::new(nodes, files).unwrap();
        let pi0 = uniform_initial_pi(&m);
        let bands = initial_bands(&m);
        let err = solve(&m, &[0.0], &pi0, &bands, 0, &OptimizerConfig::default()).unwrap_err();
        assert!(matches!(
            err,
            OptimizerError::UnstableSystem { node: 0, .. }
        ));
    }
}
