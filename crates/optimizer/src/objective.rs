//! The weighted mean-latency objective of Eq. (6) and its analytic gradient.
//!
//! For scheduling probabilities `π` (an `r × m` matrix, zero outside each
//! file's placement set) and auxiliary variables `z`, the objective is
//!
//! ```text
//! F(π, z) = Σ_i (λ_i / λ̂) z_i
//!         + Σ_i Σ_j (λ_i π_{i,j} / 2 λ̂) [ X_{i,j} + sqrt(X_{i,j}² + Y_j) ]
//! X_{i,j} = E[Q_j] − z_i,     Y_j = Var[Q_j]
//! ```
//!
//! where the queue moments depend on the node arrival rates
//! `Λ_j = Σ_i λ_i π_{i,j}` through the M/G/1 formulas of Eqs. (3)–(4).

use sprout_queueing::mg1::{
    mean_delay_derivative, queue_delay_moments, variance_delay_derivative, QueueDelayMoments,
};
use sprout_queueing::stability::StabilityError;

use crate::model::StorageModel;

/// Detailed result of evaluating the objective at a point.
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectiveBreakdown {
    /// The weighted mean latency bound (the value of Eq. (6)).
    pub total: f64,
    /// Per-file latency bounds `U_i` evaluated at the supplied `z_i`.
    pub per_file: Vec<f64>,
    /// Per-node chunk arrival rates `Λ_j`.
    pub node_arrival_rates: Vec<f64>,
    /// Per-node queue-delay moments.
    pub node_delays: Vec<QueueDelayMoments>,
}

/// Computes the per-node chunk arrival rates `Λ_j = Σ_i λ_i π_{i,j}`.
pub fn node_arrival_rates(model: &StorageModel, pi: &[Vec<f64>]) -> Vec<f64> {
    let mut rates = vec![0.0; model.num_nodes()];
    for (file, row) in model.files().iter().zip(pi) {
        for &j in &file.placement {
            rates[j] += file.arrival_rate * row[j];
        }
    }
    rates
}

/// Computes the per-node queue-delay moments for the given scheduling.
///
/// # Errors
///
/// Returns [`StabilityError`] (with the node index filled in) if any node's
/// utilization reaches one.
pub fn node_delay_moments(
    model: &StorageModel,
    node_rates: &[f64],
) -> Result<Vec<QueueDelayMoments>, StabilityError> {
    node_rates
        .iter()
        .zip(model.nodes())
        .enumerate()
        .map(|(j, (&lambda, service))| {
            queue_delay_moments(lambda, service).map_err(|e| StabilityError { node: j, ..e })
        })
        .collect()
}

/// Evaluates the objective and per-file bounds at `(π, z)`.
///
/// # Errors
///
/// Returns [`StabilityError`] if the scheduling overloads a node.
///
/// # Panics
///
/// Panics if `pi` or `z` have shapes inconsistent with the model.
pub fn evaluate(
    model: &StorageModel,
    pi: &[Vec<f64>],
    z: &[f64],
) -> Result<ObjectiveBreakdown, StabilityError> {
    assert_eq!(pi.len(), model.num_files(), "pi must have one row per file");
    assert_eq!(z.len(), model.num_files(), "z must have one entry per file");
    let node_rates = node_arrival_rates(model, pi);
    let delays = node_delay_moments(model, &node_rates)?;
    let total_rate = model.total_arrival_rate();

    let mut per_file = Vec::with_capacity(model.num_files());
    let mut total = 0.0;
    for (i, (file, row)) in model.files().iter().zip(pi).enumerate() {
        let mut u_i = z[i];
        for &j in &file.placement {
            let p = row[j];
            if p <= 0.0 {
                continue;
            }
            let x = delays[j].mean - z[i];
            u_i += p / 2.0 * (x + (x * x + delays[j].variance).sqrt());
        }
        per_file.push(u_i);
        if total_rate > 0.0 {
            total += file.arrival_rate / total_rate * u_i;
        }
    }
    Ok(ObjectiveBreakdown {
        total,
        per_file,
        node_arrival_rates: node_rates,
        node_delays: delays,
    })
}

/// Analytic gradient of the objective with respect to `π`, evaluated at
/// `(π, z)`. Entries outside a file's placement set are zero.
///
/// # Errors
///
/// Returns [`StabilityError`] if the scheduling overloads a node.
///
/// # Panics
///
/// Panics if the shapes are inconsistent with the model.
pub fn gradient_pi(
    model: &StorageModel,
    pi: &[Vec<f64>],
    z: &[f64],
) -> Result<Vec<Vec<f64>>, StabilityError> {
    assert_eq!(pi.len(), model.num_files(), "pi must have one row per file");
    assert_eq!(z.len(), model.num_files(), "z must have one entry per file");
    let node_rates = node_arrival_rates(model, pi);
    let delays = node_delay_moments(model, &node_rates)?;
    let total_rate = model.total_arrival_rate().max(f64::MIN_POSITIVE);
    let m = model.num_nodes();

    // dE[Q_j]/dΛ_j and dVar[Q_j]/dΛ_j
    let d_mean: Vec<f64> = node_rates
        .iter()
        .zip(model.nodes())
        .map(|(&l, s)| mean_delay_derivative(l, s))
        .collect();
    let d_var: Vec<f64> = node_rates
        .iter()
        .zip(model.nodes())
        .map(|(&l, s)| variance_delay_derivative(l, s))
        .collect();

    // Per-node aggregate sensitivity:
    // S_j = Σ_i (λ_i π_{i,j} / 2λ̂) [ dE_j + (X_{i,j} dE_j + dV_j / 2) / sqrt(X_{i,j}² + Y_j) ]
    let mut node_sensitivity = vec![0.0; m];
    for (i, (file, row)) in model.files().iter().zip(pi).enumerate() {
        for &j in &file.placement {
            let p = row[j];
            if p <= 0.0 {
                continue;
            }
            let x = delays[j].mean - z[i];
            let root = (x * x + delays[j].variance).sqrt().max(f64::MIN_POSITIVE);
            node_sensitivity[j] += file.arrival_rate * p / (2.0 * total_rate)
                * (d_mean[j] + (x * d_mean[j] + 0.5 * d_var[j]) / root);
        }
    }

    let mut grad = vec![vec![0.0; m]; model.num_files()];
    for (i, file) in model.files().iter().enumerate() {
        for &j in &file.placement {
            let x = delays[j].mean - z[i];
            let root = (x * x + delays[j].variance).sqrt();
            let direct = file.arrival_rate / (2.0 * total_rate) * (x + root);
            grad[i][j] = direct + file.arrival_rate * node_sensitivity[j];
        }
    }
    Ok(grad)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::FileModel;
    use sprout_queueing::dist::ServiceDistribution;

    fn two_file_model() -> StorageModel {
        let nodes = vec![
            ServiceDistribution::exponential(1.0).moments(),
            ServiceDistribution::exponential(0.5).moments(),
            ServiceDistribution::exponential(0.25).moments(),
        ];
        let files = vec![
            FileModel::new(0.05, 2, vec![0, 1, 2]),
            FileModel::new(0.10, 2, vec![0, 1, 2]),
        ];
        StorageModel::new(nodes, files).unwrap()
    }

    fn uniform_pi(model: &StorageModel) -> Vec<Vec<f64>> {
        model
            .files()
            .iter()
            .map(|f| {
                let mut row = vec![0.0; model.num_nodes()];
                for &j in &f.placement {
                    row[j] = f.k as f64 / f.placement.len() as f64;
                }
                row
            })
            .collect()
    }

    #[test]
    fn node_rates_sum_weighted_probabilities() {
        let model = two_file_model();
        let pi = uniform_pi(&model);
        let rates = node_arrival_rates(&model, &pi);
        let expect = 0.05 * 2.0 / 3.0 + 0.10 * 2.0 / 3.0;
        for r in rates {
            assert!((r - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn objective_is_weighted_average_of_per_file_bounds() {
        let model = two_file_model();
        let pi = uniform_pi(&model);
        let z = vec![0.0, 0.0];
        let b = evaluate(&model, &pi, &z).unwrap();
        let expect = (0.05 * b.per_file[0] + 0.10 * b.per_file[1]) / 0.15;
        assert!((b.total - expect).abs() < 1e-12);
        assert!(b.per_file.iter().all(|&u| u > 0.0));
    }

    #[test]
    fn caching_more_reduces_objective() {
        // Reducing file 2's storage reads (more cache chunks) lowers latency.
        let model = two_file_model();
        let full = uniform_pi(&model);
        let mut cached = full.clone();
        for v in cached[1].iter_mut() {
            *v *= 0.5; // sum drops from 2 to 1, i.e. one chunk cached
        }
        let z = vec![0.0, 0.0];
        let f_full = evaluate(&model, &full, &z).unwrap().total;
        let f_cached = evaluate(&model, &cached, &z).unwrap().total;
        assert!(f_cached < f_full);
    }

    #[test]
    fn overload_is_detected_with_node_index() {
        let model = two_file_model();
        let mut pi = uniform_pi(&model);
        // Push everything to node 2 (rate 0.25) with probability 1 and crank
        // arrival rates up by scaling pi is not possible (pi <= 1), so build an
        // overloaded model instead.
        let nodes = model.nodes().to_vec();
        let files = vec![
            FileModel::new(0.4, 2, vec![0, 1, 2]),
            FileModel::new(0.4, 2, vec![0, 1, 2]),
        ];
        let hot = StorageModel::new(nodes, files).unwrap();
        pi[0] = vec![1.0, 0.0, 1.0];
        pi[1] = vec![1.0, 1.0, 0.0];
        // node 0 load = 0.8 < 1.0 ok; make it worse:
        pi[1] = vec![1.0, 0.0, 1.0];
        // node 0: 0.8, node 2: 0.8 > 0.25 -> unstable at node 2
        let err = evaluate(&hot, &pi, &[0.0, 0.0]).unwrap_err();
        assert_eq!(err.node, 2);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let model = two_file_model();
        let pi = uniform_pi(&model);
        let z = vec![1.0, 2.0];
        let grad = gradient_pi(&model, &pi, &z).unwrap();
        let base = evaluate(&model, &pi, &z).unwrap().total;
        let h = 1e-6;
        for i in 0..model.num_files() {
            for &j in &model.files()[i].placement {
                let mut bumped = pi.clone();
                bumped[i][j] += h;
                let f = evaluate(&model, &bumped, &z).unwrap().total;
                let fd = (f - base) / h;
                assert!(
                    (fd - grad[i][j]).abs() < 1e-4 * fd.abs().max(1.0),
                    "file {i} node {j}: fd {fd} vs analytic {}",
                    grad[i][j]
                );
            }
        }
    }

    #[test]
    fn gradient_is_zero_outside_placement() {
        let nodes = vec![
            ServiceDistribution::exponential(1.0).moments(),
            ServiceDistribution::exponential(1.0).moments(),
            ServiceDistribution::exponential(1.0).moments(),
        ];
        let files = vec![FileModel::new(0.1, 1, vec![0, 1])];
        let model = StorageModel::new(nodes, files).unwrap();
        let pi = vec![vec![0.5, 0.5, 0.0]];
        let grad = gradient_pi(&model, &pi, &[0.0]).unwrap();
        assert_eq!(grad[0][2], 0.0);
    }
}
