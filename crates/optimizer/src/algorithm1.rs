//! Algorithm 1: alternating minimization over `z` and `π` with iterative
//! integer rounding of the cache allocation.

use crate::config::OptimizerConfig;
use crate::error::OptimizerError;
use crate::model::StorageModel;
use crate::objective::evaluate;
use crate::prob_pi::{self, initial_bands, uniform_initial_pi};
use crate::prob_z;
use crate::projection::FileBand;
use crate::solution::{CachePlan, ConvergenceTrace};

/// Fractional parts below this threshold are treated as integers.
const INTEGER_TOL: f64 = 1e-6;

fn to_unstable(e: sprout_queueing::stability::StabilityError) -> OptimizerError {
    OptimizerError::UnstableSystem {
        node: e.node,
        utilization: e.utilization,
    }
}

/// Config-first entry point to Algorithm 1.
///
/// Carries the [`OptimizerConfig`] and an optional warm start, so call sites
/// configure once and run against any number of models:
///
/// ```
/// use sprout_optimizer::{FileModel, Optimizer, OptimizerConfig, StorageModel};
/// use sprout_queueing::dist::ServiceDistribution;
///
/// let nodes = vec![
///     ServiceDistribution::exponential(1.0).moments(),
///     ServiceDistribution::exponential(0.8).moments(),
///     ServiceDistribution::exponential(0.5).moments(),
/// ];
/// let files = vec![FileModel::new(0.05, 2, vec![0, 1, 2])];
/// let model = StorageModel::new(nodes, files)?;
/// let optimizer = Optimizer::new(OptimizerConfig::default());
/// let cold = optimizer.run(&model, 1)?;
/// let warm = optimizer.warm_start(&cold).run(&model, 2)?;
/// assert!(warm.objective <= cold.objective + 1e-9);
/// # Ok::<(), sprout_optimizer::OptimizerError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Optimizer {
    config: OptimizerConfig,
    initial_pi: Option<Vec<Vec<f64>>>,
}

impl Optimizer {
    /// Creates an optimizer with the given configuration and no warm start.
    pub fn new(config: OptimizerConfig) -> Self {
        Optimizer {
            config,
            initial_pi: None,
        }
    }

    /// The configuration this optimizer runs with.
    pub fn config(&self) -> &OptimizerConfig {
        &self.config
    }

    /// Warm-starts from a previous plan's scheduling probabilities (the paper
    /// warm-starts across cache sizes in its convergence experiment).
    #[must_use]
    pub fn warm_start(mut self, plan: &CachePlan) -> Self {
        self.initial_pi = Some(plan.scheduling.clone());
        self
    }

    /// Warm-starts from raw scheduling probabilities.
    #[must_use]
    pub fn warm_start_pi(mut self, initial_pi: Vec<Vec<f64>>) -> Self {
        self.initial_pi = Some(initial_pi);
        self
    }

    /// Runs Algorithm 1 on `model` with a cache of `cache_capacity` chunks.
    ///
    /// Values larger than `Σ_i k_i` are silently clamped (a bigger cache
    /// cannot help further). Starts from the warm-start point if one was set,
    /// otherwise from the default no-cache, uniform-scheduling point.
    ///
    /// # Errors
    ///
    /// * [`OptimizerError::UnstableSystem`] if no stable scheduling exists
    ///   even with the cache fully utilized.
    /// * [`OptimizerError::InvalidModel`] is never produced here (the model
    ///   was validated at construction) but is part of the shared error type.
    pub fn run(
        &self,
        model: &StorageModel,
        cache_capacity: usize,
    ) -> Result<CachePlan, OptimizerError> {
        match &self.initial_pi {
            Some(pi) => run_from(model, cache_capacity, &self.config, pi),
            None => run_from(
                model,
                cache_capacity,
                &self.config,
                &uniform_initial_pi(model),
            ),
        }
    }
}

/// Runs Algorithm 1 starting from the default (no-cache, uniform-scheduling)
/// initial point.
///
/// # Errors
///
/// See [`Optimizer::run`].
#[deprecated(note = "use Optimizer::new(config).run(model, cache_capacity)")]
pub fn optimize(
    model: &StorageModel,
    cache_capacity: usize,
    config: &OptimizerConfig,
) -> Result<CachePlan, OptimizerError> {
    run_from(model, cache_capacity, config, &uniform_initial_pi(model))
}

/// Runs Algorithm 1 from a caller-supplied starting point.
///
/// # Errors
///
/// See [`Optimizer::run`].
#[deprecated(note = "use Optimizer::new(config).warm_start_pi(pi).run(model, cache_capacity)")]
pub fn optimize_from(
    model: &StorageModel,
    cache_capacity: usize,
    config: &OptimizerConfig,
    initial_pi: &[Vec<f64>],
) -> Result<CachePlan, OptimizerError> {
    run_from(model, cache_capacity, config, initial_pi)
}

/// The shared implementation behind [`Optimizer::run`] and the deprecated
/// free functions.
fn run_from(
    model: &StorageModel,
    cache_capacity: usize,
    config: &OptimizerConfig,
    initial_pi: &[Vec<f64>],
) -> Result<CachePlan, OptimizerError> {
    let cache_capacity = cache_capacity.min(model.max_useful_cache());
    let mut trace = ConvergenceTrace::default();

    // Start from the supplied point projected onto the zero-rounding bands.
    let mut pi = prob_pi::project(model, initial_pi, &initial_bands(model), cache_capacity);
    let mut z = prob_z::solve(model, &pi).map_err(to_unstable)?;
    let mut best_objective = evaluate(model, &pi, &z).map_err(to_unstable)?.total;
    trace.outer_objectives.push(best_objective);
    let mut best_pi = pi.clone();
    let mut best_z = z.clone();

    for _ in 0..config.max_outer_iterations {
        // --- Prob Z: exact per-file minimization of the auxiliary variables.
        z = prob_z::solve(model, &pi).map_err(to_unstable)?;

        // --- Inner loop: relaxed Prob Pi + iterative rounding.
        let mut bands = initial_bands(model);
        let mut rounds = 0usize;
        loop {
            rounds += 1;
            let outcome = prob_pi::solve(model, &z, &pi, &bands, cache_capacity, config)?;
            trace.gradient_iterations += outcome.iterations;
            pi = outcome.pi;

            let fractional = fractional_files(model, &pi, &bands);
            if fractional.is_empty() {
                break;
            }
            let batch = config.rounding.batch_size(fractional.len());
            for &(i, sum) in fractional.iter().take(batch) {
                let target = sum.ceil().min(model.files()[i].k as f64);
                bands[i] = FileBand {
                    lo: target,
                    hi: target,
                };
            }
            if rounds > model.num_files() + 2 {
                // Safety net: should never trigger, every round pins at least one file.
                break;
            }
        }
        trace.rounding_rounds += rounds;

        // --- Outer convergence check on the (integer-feasible) objective.
        let z_now = prob_z::solve(model, &pi).map_err(to_unstable)?;
        let objective = evaluate(model, &pi, &z_now).map_err(to_unstable)?.total;
        trace.outer_objectives.push(objective);
        let improvement = best_objective - objective;
        if objective < best_objective {
            best_objective = objective;
            best_pi = pi.clone();
            best_z = z_now.clone();
        }
        if improvement.abs() < config.tolerance {
            break;
        }
    }

    Ok(finalize(model, best_pi, best_z, best_objective, trace))
}

/// Files whose storage-read total is still fractional, sorted by descending
/// fractional part (the rounding order of Algorithm 1). Files already pinned
/// (`lo == hi`) are skipped.
fn fractional_files(
    model: &StorageModel,
    pi: &[Vec<f64>],
    bands: &[FileBand],
) -> Vec<(usize, f64)> {
    let mut out: Vec<(usize, f64, f64)> = Vec::new();
    for i in 0..model.num_files() {
        if (bands[i].hi - bands[i].lo).abs() < 1e-12 {
            continue;
        }
        let sum: f64 = pi[i].iter().sum();
        let distance_to_integer = (sum - sum.round()).abs();
        if distance_to_integer > INTEGER_TOL {
            out.push((i, sum, sum - sum.floor()));
        }
    }
    out.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap_or(std::cmp::Ordering::Equal));
    out.into_iter().map(|(i, sum, _)| (i, sum)).collect()
}

/// Converts the final fractional-free solution into a [`CachePlan`].
fn finalize(
    model: &StorageModel,
    pi: Vec<Vec<f64>>,
    z: Vec<f64>,
    objective: f64,
    trace: ConvergenceTrace,
) -> CachePlan {
    let cached_chunks: Vec<usize> = model
        .files()
        .iter()
        .zip(&pi)
        .map(|(f, row)| {
            let reads: f64 = row.iter().sum();
            let d = f.k as f64 - reads;
            d.round().max(0.0) as usize
        })
        .collect();
    let per_file_latency = evaluate(model, &pi, &z)
        .map(|b| b.per_file)
        .unwrap_or_else(|_| vec![f64::INFINITY; model.num_files()]);
    CachePlan {
        cached_chunks,
        scheduling: pi,
        z,
        objective,
        per_file_latency,
        trace,
    }
}

#[cfg(test)]
mod tests {
    // The deprecated free functions stay under test as shims over the same
    // implementation the `Optimizer` entry point uses.
    #![allow(deprecated)]

    use super::*;
    use crate::model::FileModel;
    use sprout_queueing::dist::ServiceDistribution;

    /// A small instance resembling the paper's setup: heterogeneous nodes,
    /// (7, 4)-like codes shrunk to (4, 2) for test speed.
    fn model(num_files: usize, rate_scale: f64) -> StorageModel {
        let service_rates = [0.1, 0.1, 0.09, 0.09, 0.067, 0.067];
        let nodes = service_rates
            .iter()
            .map(|&mu| ServiceDistribution::exponential(mu).moments())
            .collect();
        let files = (0..num_files)
            .map(|i| {
                let placement: Vec<usize> = (0..4).map(|j| (i + j) % 6).collect();
                let rate = rate_scale * (1.0 + (i % 5) as f64 * 0.2);
                FileModel::new(rate, 2, placement)
            })
            .collect();
        StorageModel::new(nodes, files).unwrap()
    }

    #[test]
    fn cache_capacity_is_respected_and_fully_used_when_beneficial() {
        let m = model(6, 0.02);
        for capacity in [0usize, 1, 3, 6, 12] {
            let plan = optimize(&m, capacity, &OptimizerConfig::default()).unwrap();
            let used = plan.cache_chunks_used();
            assert!(used <= capacity, "capacity {capacity}: used {used}");
            // every cached chunk count is within [0, k_i]
            for (d, f) in plan.cached_chunks.iter().zip(m.files()) {
                assert!(*d <= f.k);
            }
            if capacity > 0 && capacity <= m.max_useful_cache() {
                assert!(
                    used > 0,
                    "a non-trivial cache should be used (capacity {capacity})"
                );
            }
        }
    }

    #[test]
    fn latency_decreases_with_cache_size() {
        let m = model(8, 0.012);
        let mut prev = f64::INFINITY;
        for capacity in [0usize, 2, 4, 8, 16] {
            let plan = optimize(&m, capacity, &OptimizerConfig::default()).unwrap();
            assert!(
                plan.objective <= prev + 0.05,
                "latency should not increase materially with more cache: {prev} -> {}",
                plan.objective
            );
            prev = prev.min(plan.objective);
        }
    }

    #[test]
    fn full_cache_gives_zero_latency() {
        let m = model(4, 0.02);
        let plan = optimize(&m, m.max_useful_cache(), &OptimizerConfig::default()).unwrap();
        assert!(
            plan.objective < 1e-6,
            "all chunks cached should give ~0 latency, got {}",
            plan.objective
        );
        for (d, f) in plan.cached_chunks.iter().zip(m.files()) {
            assert_eq!(*d, f.k);
        }
    }

    #[test]
    fn scheduling_is_consistent_with_cache_allocation() {
        let m = model(6, 0.02);
        let plan = optimize(&m, 5, &OptimizerConfig::default()).unwrap();
        for (i, f) in m.files().iter().enumerate() {
            let reads = plan.storage_reads(i);
            let expected = f.k as f64 - plan.cached_chunks[i] as f64;
            assert!(
                (reads - expected).abs() < 1e-3,
                "file {i}: reads {reads} vs k - d = {expected}"
            );
            for (j, &p) in plan.scheduling[i].iter().enumerate() {
                if !f.placement.contains(&j) {
                    assert_eq!(p, 0.0, "file {i} must not read from node {j}");
                }
                assert!((-1e-9..=1.0 + 1e-9).contains(&p));
            }
        }
    }

    #[test]
    fn converges_within_twenty_iterations() {
        // The paper reports convergence within 20 outer iterations at
        // tolerance 0.01 for its 1000-file instance; our smaller instances
        // must certainly meet that.
        let m = model(10, 0.01);
        let plan = optimize(&m, 8, &OptimizerConfig::default()).unwrap();
        assert!(
            plan.trace.outer_iterations() <= 20,
            "took {} iterations",
            plan.trace.outer_iterations()
        );
        // objective history is non-increasing up to the tolerance
        for w in plan.trace.outer_objectives.windows(2) {
            assert!(w[1] <= w[0] + 0.011, "objective increased: {w:?}");
        }
    }

    #[test]
    fn higher_arrival_rate_files_get_cached_first() {
        // Two files on identical placements, one with a much higher rate: the
        // hot file should receive at least as many cache chunks.
        let nodes = (0..4)
            .map(|_| ServiceDistribution::exponential(0.1).moments())
            .collect();
        let files = vec![
            FileModel::new(0.001, 2, vec![0, 1, 2, 3]),
            FileModel::new(0.03, 2, vec![0, 1, 2, 3]),
        ];
        let m = StorageModel::new(nodes, files).unwrap();
        let plan = optimize(&m, 2, &OptimizerConfig::default()).unwrap();
        assert!(
            plan.cached_chunks[1] >= plan.cached_chunks[0],
            "hot file should be cached at least as much: {:?}",
            plan.cached_chunks
        );
        assert!(plan.cached_chunks[1] >= 1);
    }

    #[test]
    fn optimizer_entry_point_matches_the_free_functions_exactly() {
        let m = model(8, 0.012);
        let config = OptimizerConfig::default();
        let optimizer = Optimizer::new(config);
        let cold = optimizer.run(&m, 6).unwrap();
        let legacy = optimize(&m, 6, &config).unwrap();
        assert_eq!(cold.cached_chunks, legacy.cached_chunks);
        assert_eq!(cold.scheduling, legacy.scheduling);
        assert_eq!(cold.objective, legacy.objective);
        let warm = optimizer.clone().warm_start(&cold).run(&m, 6).unwrap();
        let legacy_warm = optimize_from(&m, 6, &config, &cold.scheduling).unwrap();
        assert_eq!(warm.scheduling, legacy_warm.scheduling);
        assert_eq!(warm.objective, legacy_warm.objective);
    }

    #[test]
    fn warm_start_matches_or_beats_cold_start() {
        let m = model(8, 0.012);
        let cold = optimize(&m, 6, &OptimizerConfig::default()).unwrap();
        let warm = optimize_from(&m, 6, &OptimizerConfig::default(), &cold.scheduling).unwrap();
        assert!(warm.objective <= cold.objective + 0.02);
    }

    #[test]
    fn unstable_model_is_reported() {
        let nodes = vec![
            ServiceDistribution::exponential(0.001).moments(),
            ServiceDistribution::exponential(0.001).moments(),
        ];
        let files = vec![FileModel::new(1.0, 2, vec![0, 1])];
        let m = StorageModel::new(nodes, files).unwrap();
        // Even with full caching allowed the initial (no-cache) point is
        // unstable; the optimizer reports the bottleneck.
        let err = optimize(&m, 0, &OptimizerConfig::default()).unwrap_err();
        assert!(matches!(err, OptimizerError::UnstableSystem { .. }));
    }

    #[test]
    fn one_at_a_time_rounding_matches_fraction_rounding_quality() {
        let m = model(6, 0.02);
        let cfg = OptimizerConfig {
            rounding: crate::config::RoundingStrategy::OneAtATime,
            ..OptimizerConfig::default()
        };
        let one = optimize(&m, 4, &cfg).unwrap();
        let frac = optimize(&m, 4, &OptimizerConfig::default()).unwrap();
        assert!((one.objective - frac.objective).abs() < 0.5);
        assert!(one.cache_chunks_used() <= 4);
    }
}
