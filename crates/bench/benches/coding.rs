//! Criterion micro-benchmarks for the coding layer: Reed–Solomon encoding,
//! decoding from mixed cache/storage chunk sets, and functional cache-chunk
//! construction (the per-request computational overhead the paper calls
//! "very minimal").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sprout::erasure::{CodeParams, FunctionalCacheCodec};

fn coding_benches(c: &mut Criterion) {
    let sizes = [64 * 1024usize, 1024 * 1024];
    let codec = FunctionalCacheCodec::new(CodeParams::new(7, 4).unwrap()).unwrap();

    let mut group = c.benchmark_group("rs_encode_7_4");
    for &size in &sizes {
        let data: Vec<u8> = (0..size).map(|i| i as u8).collect();
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, data| {
            b.iter(|| codec.encode(data).unwrap());
        });
    }
    group.finish();

    let mut group = c.benchmark_group("functional_cache_chunks_7_4_d2");
    for &size in &sizes {
        let data: Vec<u8> = (0..size).map(|i| (i * 7) as u8).collect();
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, data| {
            b.iter(|| codec.cache_chunks(data, 2).unwrap());
        });
    }
    group.finish();

    let mut group = c.benchmark_group("decode_from_cache_plus_storage");
    for &size in &sizes {
        let data: Vec<u8> = (0..size).map(|i| (i * 13) as u8).collect();
        let stored = codec.encode(&data).unwrap();
        let cached = codec.cache_chunks(&data, 2).unwrap();
        let mut have = cached;
        have.push(stored.chunks()[5].clone());
        have.push(stored.chunks()[6].clone());
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &have, |b, have| {
            b.iter(|| codec.decode(have, size).unwrap());
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = coding_benches
}
criterion_main!(benches);
