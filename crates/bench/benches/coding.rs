//! Criterion micro-benchmarks for the coding layer: Reed–Solomon encoding,
//! decoding from mixed cache/storage chunk sets, and functional cache-chunk
//! construction (the per-request computational overhead the paper calls
//! "very minimal").
//!
//! Every group runs once per slice kernel (`scalar` is the seed's log/exp
//! reference; `table`, `word` and `simd` are the fast rungs), so the ids
//! read `rs_encode_7_4/word/1048576` and kernel-vs-kernel speedups can be
//! read straight off one run. A striped-encode group benches the
//! multi-threaded path at 1/2/4 workers. `cargo run -p sprout-bench --bin
//! bench_coding` produces the same measurements as machine-readable
//! `BENCH_coding.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sprout::erasure::{Chunk, CodeParams, FunctionalCacheCodec, Kernel, StripeOpts};
use sprout::gf::{kernel, Gf256};

const SIZES: [usize; 2] = [64 * 1024, 1024 * 1024];

fn codec_with(kernel: Kernel) -> FunctionalCacheCodec {
    FunctionalCacheCodec::with_kernel(CodeParams::new(7, 4).unwrap(), kernel).unwrap()
}

/// Raw slice-kernel throughput: one multiply–accumulate pass.
fn mul_acc_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("gf_mul_acc");
    for &size in &SIZES {
        let src: Vec<u8> = (0..size).map(|i| (i * 31 + 7) as u8).collect();
        let mut dst = vec![0u8; size];
        group.throughput(Throughput::Bytes(size as u64));
        for k in Kernel::ALL {
            group.bench_with_input(BenchmarkId::new(k.name(), size), &src, |b, src| {
                b.iter(|| kernel::mul_acc_slice(k, Gf256::new(0x8E), src, &mut dst));
            });
        }
    }
    group.finish();
}

fn coding_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("rs_encode_7_4");
    for &size in &SIZES {
        let data: Vec<u8> = (0..size).map(|i| i as u8).collect();
        group.throughput(Throughput::Bytes(size as u64));
        for k in Kernel::ALL {
            let codec = codec_with(k);
            group.bench_with_input(BenchmarkId::new(k.name(), size), &data, |b, data| {
                b.iter(|| codec.encode(data).unwrap());
            });
        }
    }
    group.finish();

    let mut group = c.benchmark_group("functional_cache_chunks_7_4_d2");
    for &size in &SIZES {
        let data: Vec<u8> = (0..size).map(|i| (i * 7) as u8).collect();
        group.throughput(Throughput::Bytes(size as u64));
        for k in Kernel::ALL {
            let codec = codec_with(k);
            group.bench_with_input(BenchmarkId::new(k.name(), size), &data, |b, data| {
                b.iter(|| codec.cache_chunks(data, 2).unwrap());
            });
        }
    }
    group.finish();

    // Striped multi-threaded encoding, auto kernel: 8 MiB objects split into
    // 64 KiB stripes (32 per chunk), so worker count is the variable.
    let mut group = c.benchmark_group("rs_encode_striped_7_4_8mib");
    let size = 8 * 1024 * 1024;
    let data: Vec<u8> = (0..size).map(|i| (i * 11 + 5) as u8).collect();
    group.throughput(Throughput::Bytes(size as u64));
    for workers in [1usize, 2, 4] {
        let codec = codec_with(Kernel::auto());
        let opts = StripeOpts::new(64 * 1024, workers);
        group.bench_with_input(BenchmarkId::new("workers", workers), &data, |b, data| {
            b.iter(|| codec.encode_striped(data, opts).unwrap());
        });
    }
    group.finish();

    let mut group = c.benchmark_group("decode_from_cache_plus_storage");
    for &size in &SIZES {
        let data: Vec<u8> = (0..size).map(|i| (i * 13) as u8).collect();
        group.throughput(Throughput::Bytes(size as u64));
        for k in Kernel::ALL {
            let codec = codec_with(k);
            let stored = codec.encode(&data).unwrap();
            let cached = codec.cache_chunks(&data, 2).unwrap();
            let mut have: Vec<Chunk> = cached;
            have.push(stored.chunks()[5].clone());
            have.push(stored.chunks()[6].clone());
            group.bench_with_input(BenchmarkId::new(k.name(), size), &have, |b, have| {
                b.iter(|| codec.decode(have, size).unwrap());
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = mul_acc_benches, coding_benches
}
criterion_main!(benches);
