//! Ablation benchmarks for the design choices called out in DESIGN.md §6:
//!
//! * caching policy (functional vs exact vs LRU vs none) — measured as the
//!   simulated mean latency each policy achieves on the same workload, with
//!   the simulation run inside the benchmark so `cargo bench` both times the
//!   pipeline and prints the latency ablation;
//! * scheduling rule (optimized probabilistic vs load-oblivious uniform);
//! * integer-rounding strategy (one file at a time vs fractional batches).

use criterion::{criterion_group, criterion_main, Criterion};
use sprout::optimizer::{OptimizerConfig, RoundingStrategy};
use sprout::sim::policy::SchedulingRule;
use sprout::sim::{CacheScheme, SimConfig};
use sprout::{CachePolicyChoice, SproutSystem, SystemSpec};

fn system() -> SproutSystem {
    let spec = SystemSpec::builder()
        .node_service_rates(&[0.55, 0.55, 0.45, 0.45, 0.35, 0.35])
        .uniform_files(12, 2, 4, 0.045)
        .cache_capacity_chunks(8)
        .seed(77)
        .build()
        .unwrap();
    SproutSystem::new(spec).unwrap()
}

fn ablation_policies(c: &mut Criterion) {
    let system = system();
    let plan = system.optimize().unwrap();
    let horizon = 20_000.0;

    // Print the latency ablation once so the bench output doubles as a table.
    let cmp = system.compare_policies(&plan, horizon, 5);
    println!("# ablation_policies: simulated mean latency (s)");
    println!("#   functional = {:.3}", cmp.functional.overall.mean);
    println!("#   exact      = {:.3}", cmp.exact.overall.mean);
    println!("#   lru        = {:.3}", cmp.lru.overall.mean);
    println!("#   no cache   = {:.3}", cmp.no_cache.overall.mean);

    let mut group = c.benchmark_group("ablation_policies");
    group.sample_size(10);
    for (name, policy) in [
        ("functional", CachePolicyChoice::Functional),
        ("exact", CachePolicyChoice::Exact),
        ("lru", CachePolicyChoice::LruReplicated),
        ("no_cache", CachePolicyChoice::NoCache),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let plan_ref = matches!(
                    policy,
                    CachePolicyChoice::Functional | CachePolicyChoice::Exact
                )
                .then_some(&plan);
                system.simulate(policy, plan_ref, 5_000.0, 3)
            });
        });
    }
    group.finish();
}

fn ablation_scheduling(c: &mut Criterion) {
    let system = system();
    let plan = system.optimize().unwrap();
    let config = SimConfig::new(20_000.0, 9);

    let probabilistic =
        system.simulate_with_config(CachePolicyChoice::Functional, Some(&plan), config);
    // Re-run with the load-oblivious rule by constructing the scheme manually.
    let scheme = CacheScheme::Functional {
        cached_chunks: plan.cached_chunks.clone(),
        scheduling: plan.scheduling.clone(),
        rule: SchedulingRule::Uniform,
    };
    let uniform = {
        let files: Vec<sprout::sim::SimFile> = system
            .spec()
            .files
            .iter()
            .zip(system.placements())
            .map(|(f, p)| sprout::sim::SimFile::new(f.arrival_rate, f.k, p.clone()))
            .collect();
        sprout::sim::Simulation::new(system.spec().node_services.clone(), files, scheme, config)
            .run()
    };
    println!(
        "# ablation_scheduling: probabilistic = {:.3} s, uniform = {:.3} s",
        probabilistic.overall.mean, uniform.overall.mean
    );

    let mut group = c.benchmark_group("ablation_scheduling");
    group.sample_size(10);
    group.bench_function("probabilistic", |b| {
        b.iter(|| system.simulate(CachePolicyChoice::Functional, Some(&plan), 5_000.0, 3));
    });
    group.finish();
}

fn ablation_rounding(c: &mut Criterion) {
    let system = system();
    let mut group = c.benchmark_group("ablation_rounding");
    group.sample_size(10);
    for (name, strategy) in [
        ("one_at_a_time", RoundingStrategy::OneAtATime),
        ("fraction_30pct", RoundingStrategy::Fraction(0.3)),
        ("fraction_100pct", RoundingStrategy::Fraction(1.0)),
    ] {
        let config = OptimizerConfig {
            rounding: strategy,
            ..OptimizerConfig::default()
        };
        let plan = system.optimize_with(&config).unwrap();
        println!(
            "# ablation_rounding: {name} -> objective {:.4} s, {} rounding rounds",
            plan.objective, plan.trace.rounding_rounds
        );
        group.bench_function(name, |b| {
            b.iter(|| system.optimize_with(&config).unwrap());
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = ablation_policies, ablation_scheduling, ablation_rounding
}
criterion_main!(benches);
