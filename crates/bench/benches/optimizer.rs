//! Criterion benchmarks for the cache-placement optimizer: how long one
//! Algorithm 1 run takes as the file population grows, and the cost of a
//! single objective/gradient evaluation (the inner-loop primitive).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sprout::optimizer::{objective, FileModel, Optimizer, OptimizerConfig, StorageModel};
use sprout::queueing::dist::ServiceDistribution;

fn build_model(files: usize) -> StorageModel {
    let rates = sprout::workload::spec::paper_server_service_rates();
    let nodes: Vec<_> = rates
        .iter()
        .map(|&mu| ServiceDistribution::exponential(mu).moments())
        .collect();
    let per_file_rates = sprout::workload::spec::paper_simulation_rates(files);
    let scale = 1000.0 / files as f64;
    let models = per_file_rates
        .iter()
        .enumerate()
        .map(|(i, &r)| {
            let placement: Vec<usize> = (0..7).map(|j| (i * 5 + j) % 12).collect();
            FileModel::new(r * scale, 4, placement)
        })
        .collect();
    StorageModel::new(nodes, models).unwrap()
}

fn optimizer_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithm1_full_run");
    group.sample_size(10);
    for &files in &[20usize, 50, 100] {
        let model = build_model(files);
        let cache = files; // one chunk per file on average
        group.bench_with_input(BenchmarkId::from_parameter(files), &model, |b, model| {
            b.iter(|| {
                Optimizer::new(OptimizerConfig::fast())
                    .run(model, cache)
                    .unwrap()
            });
        });
    }
    group.finish();

    let mut group = c.benchmark_group("objective_and_gradient_eval");
    for &files in &[100usize, 500, 1000] {
        let model = build_model(files);
        let pi: Vec<Vec<f64>> = model
            .files()
            .iter()
            .map(|f| {
                let mut row = vec![0.0; model.num_nodes()];
                for &j in &f.placement {
                    row[j] = f.k as f64 / f.placement.len() as f64;
                }
                row
            })
            .collect();
        let z = vec![0.0; files];
        group.bench_with_input(
            BenchmarkId::from_parameter(files),
            &(model, pi, z),
            |b, (model, pi, z)| {
                b.iter(|| {
                    let f = objective::evaluate(model, pi, z).unwrap().total;
                    let g = objective::gradient_pi(model, pi, z).unwrap();
                    (f, g)
                });
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = optimizer_benches
}
criterion_main!(benches);
