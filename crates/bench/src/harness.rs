//! The shared CLI + artifact harness of the figure/table reproducers.
//!
//! Every binary under `src/bin` is one [`SweepGrid`] (or
//! [`SimSweep`](sprout::SimSweep)) plus a cell task; this module supplies the
//! parts they share:
//!
//! * [`FigureCli`] — the common flags `--quick`, `--threads N`, `--shards N`,
//!   `--out PATH` (plus the `SPROUT_SCALE=paper` environment switch the suite
//!   has always honoured).
//! * [`emit`] — writes the [`SweepReport`] JSON artifact and prints a
//!   human-readable table of the same rows to stdout.
//!
//! The JSON artifact is the machine-readable record CI uploads and diffs; it
//! contains nothing scheduling-dependent, so running the same figure with
//! different `--threads` or `--shards` values must produce byte-identical
//! files.

use sprout::sim::sweep::{SweepReport, SweepTimings};

/// Parsed common command-line flags of a figure binary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FigureCli {
    /// `--quick`: shrink horizons/replications to CI smoke scale (artifact
    /// shape is unchanged).
    pub quick: bool,
    /// `--threads N`: worker count for the sweep pool (results never depend
    /// on it). `None` when not given; see [`FigureCli::threads_or`].
    pub threads: Option<usize>,
    /// `--shards N`: event loops each simulation replication is sharded onto
    /// (results never depend on it either — the sharded engine's determinism
    /// contract). `None` when not given; see [`FigureCli::shards_or`].
    pub shards: Option<usize>,
    /// `--out PATH`: where to write the JSON artifact. `None` means the
    /// figure's default (`FIG_*.json` / `TAB_*.json` / `BENCH_*.json`).
    pub out: Option<String>,
}

impl FigureCli {
    /// Parses the current process arguments.
    ///
    /// # Panics
    ///
    /// Panics (with a usage message) on an unknown flag or a malformed
    /// `--threads` value, so a typo'd invocation cannot silently run the
    /// wrong experiment.
    pub fn parse() -> Self {
        Self::from_args(std::env::args().skip(1))
    }

    /// Like [`FigureCli::parse`], but bins with bin-specific value flags
    /// (e.g. `bench_serving --workers 4`) list them in `extra_value_flags`;
    /// each occurrence consumes one value and is returned as a
    /// `(flag, value)` pair instead of panicking as unknown.
    ///
    /// # Panics
    ///
    /// See [`FigureCli::parse`]; a listed extra flag missing its value also
    /// panics.
    pub fn parse_with_extras(extra_value_flags: &[&str]) -> (Self, Vec<(String, String)>) {
        Self::from_args_with_extras(std::env::args().skip(1), extra_value_flags)
    }

    /// Testable core of [`FigureCli::parse_with_extras`].
    ///
    /// # Panics
    ///
    /// See [`FigureCli::parse_with_extras`].
    pub fn from_args_with_extras(
        args: impl IntoIterator<Item = String>,
        extra_value_flags: &[&str],
    ) -> (Self, Vec<(String, String)>) {
        let mut extras = Vec::new();
        let mut plain = Vec::new();
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            if extra_value_flags.contains(&arg.as_str()) {
                let value = args
                    .next()
                    .unwrap_or_else(|| panic!("{arg} requires a value"));
                extras.push((arg, value));
            } else {
                plain.push(arg);
            }
        }
        (Self::from_args(plain), extras)
    }

    /// Parses an explicit argument list (testable core of [`FigureCli::parse`]).
    ///
    /// # Panics
    ///
    /// See [`FigureCli::parse`].
    pub fn from_args(args: impl IntoIterator<Item = String>) -> Self {
        let mut cli = FigureCli {
            quick: false,
            threads: None,
            shards: None,
            out: None,
        };
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--quick" => cli.quick = true,
                "--threads" => {
                    let value = args
                        .next()
                        .unwrap_or_else(|| panic!("--threads requires a value"));
                    let threads: usize = value
                        .parse()
                        .unwrap_or_else(|_| panic!("--threads expects a number, got '{value}'"));
                    assert!(threads > 0, "--threads must be at least 1");
                    cli.threads = Some(threads);
                }
                "--shards" => {
                    let value = args
                        .next()
                        .unwrap_or_else(|| panic!("--shards requires a value"));
                    let shards: usize = value
                        .parse()
                        .unwrap_or_else(|_| panic!("--shards expects a number, got '{value}'"));
                    assert!(shards > 0, "--shards must be at least 1");
                    cli.shards = Some(shards);
                }
                "--out" => {
                    cli.out = Some(
                        args.next()
                            .unwrap_or_else(|| panic!("--out requires a path")),
                    );
                }
                other => panic!(
                    "unknown argument '{other}' (supported: --quick, --threads N, --shards N, --out PATH)"
                ),
            }
        }
        cli
    }

    /// The worker count to use: the `--threads` flag, or `default` when the
    /// flag is absent. Timing-sensitive benchmarks pass 1; simulation sweeps
    /// pass [`FigureCli::available_threads`].
    pub fn threads_or(&self, default: usize) -> usize {
        self.threads.unwrap_or(default).max(1)
    }

    /// The shard count to use: the `--shards` flag, or `default` when the
    /// flag is absent. Passed to `SimSweep::shards` / `SimConfig::with_shards`
    /// by the simulation bins; artifacts are shard-count-invariant.
    pub fn shards_or(&self, default: usize) -> usize {
        self.shards.unwrap_or(default).max(1)
    }

    /// The machine's available parallelism (the default for simulation and
    /// optimization sweeps, whose results are thread-count-invariant).
    pub fn available_threads() -> usize {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    }

    /// The artifact path: the `--out` flag or the figure's default.
    pub fn out_or<'a>(&'a self, default: &'a str) -> &'a str {
        self.out.as_deref().unwrap_or(default)
    }
}

/// Writes the report's JSON artifact to `out_path` and prints the rows as a
/// tab-separated table (axes, then metric means) with the notes as trailing
/// `#` comment lines — the format the original reproducers printed, now
/// derived from the same structured report CI consumes.
///
/// # Panics
///
/// Panics if the artifact cannot be written.
pub fn emit(report: &SweepReport, out_path: &str) {
    std::fs::write(out_path, report.to_json())
        .unwrap_or_else(|e| panic!("failed to write {out_path}: {e}"));

    println!("# {}", report.name);
    for (key, value) in &report.meta {
        println!("# {key}: {value}");
    }
    if let Some(first) = report.rows.first() {
        // Metric columns are the first-seen-ordered union across rows (rows
        // may differ, e.g. only functional-policy cells carry the analytic
        // bound), and every row prints by column name so the table stays
        // rectangular — absent metrics print as "-".
        let mut metric_columns: Vec<String> = Vec::new();
        for row in &report.rows {
            for (name, _) in &row.metrics {
                if !metric_columns.contains(name) {
                    metric_columns.push(name.clone());
                }
            }
        }
        let mut columns: Vec<String> = first.coords.iter().map(|(axis, _)| axis.clone()).collect();
        columns.extend(metric_columns.iter().cloned());
        println!("{}", columns.join("\t"));
        for row in &report.rows {
            let mut fields: Vec<String> =
                row.coords.iter().map(|(_, value)| value.clone()).collect();
            fields.extend(metric_columns.iter().map(|name| {
                row.metric(name)
                    .map_or_else(|| "-".to_string(), |m| format!("{:.6}", m.mean))
            }));
            println!("{}", fields.join("\t"));
        }
    }
    for note in &report.notes {
        println!("# {note}");
    }
    eprintln!("wrote {out_path}");
}

/// The side-channel artifact path for a figure artifact: `FIG_10.json` →
/// `FIG_10.timing.json`. Timing artifacts are never committed or diffed
/// (wall times differ run to run); CI uploads them next to the figure JSONs
/// so slow cells stay visible.
pub fn timing_path(out_path: &str) -> String {
    match out_path.strip_suffix(".json") {
        Some(stem) => format!("{stem}.timing.json"),
        None => format!("{out_path}.timing.json"),
    }
}

/// Like [`emit`], but also writes the wall-clock [`SweepTimings`]
/// side-channel next to the artifact (see [`timing_path`]) and prints a
/// slowest-cells summary to stderr.
///
/// # Panics
///
/// Panics if either artifact cannot be written.
pub fn emit_with_timings(report: &SweepReport, timings: &SweepTimings, out_path: &str) {
    emit(report, out_path);
    let timing_out = timing_path(out_path);
    std::fs::write(&timing_out, timings.to_json())
        .unwrap_or_else(|e| panic!("failed to write {timing_out}: {e}"));
    eprintln!("{}", timings.summary(5));
    eprintln!("wrote {timing_out}");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> impl Iterator<Item = String> + use<> {
        list.iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .into_iter()
    }

    #[test]
    fn parses_the_common_flags() {
        let cli = FigureCli::from_args(args(&[]));
        assert_eq!(
            cli,
            FigureCli {
                quick: false,
                threads: None,
                shards: None,
                out: None
            }
        );
        let cli = FigureCli::from_args(args(&[
            "--quick",
            "--threads",
            "4",
            "--shards",
            "2",
            "--out",
            "x.json",
        ]));
        assert!(cli.quick);
        assert_eq!(cli.threads, Some(4));
        assert_eq!(cli.shards, Some(2));
        assert_eq!(cli.out.as_deref(), Some("x.json"));
        assert_eq!(cli.threads_or(8), 4);
        assert_eq!(cli.shards_or(1), 2);
        assert_eq!(cli.out_or("default.json"), "x.json");
        let cli = FigureCli::from_args(args(&["--quick"]));
        assert_eq!(cli.threads_or(8), 8);
        assert_eq!(cli.shards_or(1), 1);
        assert_eq!(cli.out_or("default.json"), "default.json");
    }

    #[test]
    #[should_panic(expected = "unknown argument")]
    fn unknown_flag_panics() {
        let _ = FigureCli::from_args(args(&["--qick"]));
    }

    #[test]
    fn extra_value_flags_are_split_out() {
        let (cli, extras) = FigureCli::from_args_with_extras(
            args(&["--quick", "--workers", "4", "--out", "x.json"]),
            &["--workers"],
        );
        assert!(cli.quick);
        assert_eq!(cli.out.as_deref(), Some("x.json"));
        assert_eq!(extras, vec![("--workers".to_string(), "4".to_string())]);
    }

    #[test]
    #[should_panic(expected = "--workers requires a value")]
    fn extra_flag_without_value_panics() {
        let _ = FigureCli::from_args_with_extras(args(&["--workers"]), &["--workers"]);
    }

    #[test]
    #[should_panic(expected = "expects a number")]
    fn malformed_threads_panics() {
        let _ = FigureCli::from_args(args(&["--threads", "many"]));
    }

    #[test]
    fn emit_writes_the_artifact_and_prints_rows() {
        use sprout::sim::sweep::{Sample, SweepGrid};
        let grid = SweepGrid::named("emit_test", 1).axis("x", ["a", "b"]);
        let report = grid
            .run(1, |cell, _, _| {
                Sample::new().metric("value", cell.idx("x") as f64)
            })
            .with_note("a note");
        let dir = std::env::temp_dir().join("sprout_harness_emit_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("report.json");
        emit(&report, path.to_str().unwrap());
        let written = std::fs::read_to_string(&path).unwrap();
        assert_eq!(written, report.to_json());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn timing_paths_derive_from_the_artifact_path() {
        assert_eq!(timing_path("FIG_10.json"), "FIG_10.timing.json");
        assert_eq!(timing_path("out/custom"), "out/custom.timing.json");
    }

    #[test]
    fn emit_with_timings_writes_the_side_channel() {
        use sprout::sim::sweep::{Sample, SweepGrid};
        let grid = SweepGrid::named("emit_timed_test", 1).axis("x", ["a", "b"]);
        let (report, timings) = grid.run_timed(2, |cell, _, _| {
            Sample::new().metric("value", cell.idx("x") as f64)
        });
        let dir = std::env::temp_dir().join("sprout_harness_emit_timed_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("report.json");
        emit_with_timings(&report, &timings, path.to_str().unwrap());
        let timing_json = std::fs::read_to_string(dir.join("report.timing.json")).unwrap();
        assert_eq!(timing_json, timings.to_json());
        assert!(timing_json.contains("\"wall_s\""));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
