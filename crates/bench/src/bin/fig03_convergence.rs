//! Fig. 3 — Convergence of Algorithm 1 for different cache sizes.
//!
//! The paper runs its cache optimizer on 1000 files (100 MB, (7,4) code, 12
//! heterogeneous servers) for cache sizes C = 100..700 chunks of 25 MB,
//! warm-starting each size from the previous one, and plots the objective
//! (average latency bound) per iteration. It converges within 20 iterations
//! at tolerance 0.01.
//!
//! Output: one line per (cache size, iteration) with the objective value.

use sprout_bench::{experiment_config, header, paper_system, scale_cache};

fn main() {
    header(
        "Fig. 3: convergence of the proposed algorithm (objective = mean latency bound, seconds)",
        &["cache_chunks_paper", "iteration", "latency_bound_s"],
    );
    let paper_sizes = [100usize, 200, 300, 400, 500, 600, 700];
    let config = experiment_config();
    let mut previous = None;
    let mut max_iterations = 0usize;
    for &paper_c in &paper_sizes {
        let system = paper_system(scale_cache(paper_c));
        let plan = match &previous {
            Some(prev) => system.optimize_warm(&config, prev),
            None => system.optimize_with(&config),
        }
        .expect("the paper's simulation setup is stable");
        for (iter, objective) in plan.trace.outer_objectives.iter().enumerate() {
            println!("{paper_c}\t{iter}\t{objective:.4}");
        }
        max_iterations = max_iterations.max(plan.trace.outer_iterations());
        previous = Some(plan);
    }
    println!("# paper claim: convergence within 20 iterations (tolerance 0.01)");
    println!("# measured   : worst case {max_iterations} iterations");
}
