//! Fig. 3 — Convergence of Algorithm 1 for different cache sizes.
//!
//! The paper runs its cache optimizer on 1000 files (100 MB, (7,4) code, 12
//! heterogeneous servers) for cache sizes C = 100..700 chunks of 25 MB and
//! plots the objective (average latency bound) per iteration; it converges
//! within 20 iterations at tolerance 0.01.
//!
//! One sweep cell per cache size, each optimizing cold from the default
//! start (cells are independent, so the whole axis runs in parallel; the
//! paper's warm-start-across-sizes protocol is a sequential-only
//! optimization and converges to the same plans).
//!
//! Artifact: `FIG_03.json` — per cache size, the iteration count and final
//! bound as metrics plus the full per-iteration objective trace as a series.

use sprout::sim::sweep::{Sample, SweepGrid};
use sprout_bench::{emit, experiment_config, paper_scale, paper_system, scale_cache, FigureCli};

fn main() {
    let cli = FigureCli::parse();
    let paper_sizes = [100usize, 200, 300, 400, 500, 600, 700];

    let grid = SweepGrid::named("fig03_convergence", 2016).axis(
        "cache_chunks_paper",
        paper_sizes.iter().map(|c| c.to_string()),
    );
    let config = experiment_config();
    let report = grid.run(
        cli.threads_or(FigureCli::available_threads()),
        |cell, _, _| {
            let paper_c: usize = cell
                .coord("cache_chunks_paper")
                .parse()
                .expect("axis label");
            let system = paper_system(scale_cache(paper_c));
            let plan = system
                .optimize_with(&config)
                .expect("the paper's simulation setup is stable");
            Sample::new()
                .metric("latency_bound_s", plan.objective)
                .metric("outer_iterations", plan.trace.outer_iterations() as f64)
                .series("objective_trace", plan.trace.outer_objectives.clone())
        },
    );

    let worst = report
        .rows
        .iter()
        .map(|row| row.metric("outer_iterations").expect("metric present").mean)
        .fold(0.0f64, f64::max);
    let report = report
        .with_meta("scale", if paper_scale() { "paper" } else { "reduced" })
        .with_meta("quick", cli.quick.to_string())
        .with_meta(
            "objective",
            "mean latency bound (seconds); series = per-iteration objective",
        )
        .with_note("paper claim: convergence within 20 iterations (tolerance 0.01)")
        .with_note(format!("measured: worst case {worst:.0} iterations"));
    emit(&report, cli.out_or("FIG_03.json"));
}
