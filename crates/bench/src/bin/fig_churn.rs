//! `FIG_churn` — the placement-strategy zoo raced under node churn.
//!
//! Races every placement strategy (the paper's random placement groups,
//! consistent-hash ring, power-of-two-choices, XOR proximity and zone
//! anti-affinity) over the paper system while nodes fail and recover at
//! increasing churn rates. Each cell reports the simulated latency under
//! degraded reads plus the analytic rebalance cost (`rebalance_bytes`:
//! bytes the strategy would move to restore its preferred placement after
//! each membership change). Byte-backend cells decode-verify every
//! completed request against real stored bytes.
//!
//! ```text
//! cargo run --release --bin fig_churn            # full grid
//! cargo run --release --bin fig_churn -- --quick # CI-sized grid
//! ```
//!
//! The emitted `FIG_churn.json` is byte-identical for any `--threads` value
//! (cell seeds derive from grid coordinates, not worker schedule).

use sprout::sim::SimConfig;
use sprout::{PlacementChoice, ScenarioActionSpec, ScenarioSpec, SimSweep, SweepBackend};
use sprout_bench::{emit_with_timings, paper_scale, paper_system, scale_cache, FigureCli};

/// A churn scenario with `cycles` non-overlapping down/up cycles: cycle `j`
/// takes node `j % num_nodes` down for the middle half of its slice of the
/// horizon, so at most one node is offline at a time and the (7, 4) code
/// always keeps a quorum.
fn churn(cycles: usize, num_nodes: usize, horizon: f64) -> ScenarioSpec {
    let mut spec = ScenarioSpec::named(format!("churn{cycles}"));
    for j in 0..cycles {
        let node = j % num_nodes;
        let slice = horizon / cycles as f64;
        let start = j as f64 * slice;
        spec = spec
            .at(start + 0.25 * slice, ScenarioActionSpec::NodeDown { node })
            .at(start + 0.75 * slice, ScenarioActionSpec::NodeUp { node });
    }
    spec
}

fn main() {
    let cli = FigureCli::parse();
    let horizon = if cli.quick { 6_000.0 } else { 24_000.0 };
    let replications = if cli.quick { 2 } else { 4 };
    let byte_replications = if cli.quick { 1 } else { 2 };

    let system = paper_system(scale_cache(500));
    let num_nodes = system.spec().node_services.len();

    let sweep = SimSweep::new("fig_churn", &system, SimConfig::new(horizon, 2016))
        .scenarios(
            [0usize, 1, 2, 4]
                .into_iter()
                .map(|cycles| churn(cycles, num_nodes, horizon))
                .collect(),
        )
        .placements(vec![
            PlacementChoice::default(), // the paper baseline: random groups
            PlacementChoice::ConsistentHash { vnodes: 64 },
            PlacementChoice::TwoChoices,
            PlacementChoice::XorProximity,
            PlacementChoice::AntiAffinity { zones: 3 },
        ])
        .backends(vec![SweepBackend::Analytic, SweepBackend::Byte])
        // Byte cells store real coded payloads; 64 KiB objects keep the leg
        // affordable while plans, placements and scheduling stay identical
        // to the 100 MB shape (rebalance bytes are priced on the spec's
        // declared 100 MB files either way).
        .byte_object_bytes(64 * 1024)
        .replications(replications)
        .byte_replications(byte_replications);

    // Byte replications decode-verify every request, so the byte leg covers
    // the churn extremes only; the analytic leg runs the full grid.
    let cells: Vec<_> = sweep
        .cells()
        .into_iter()
        .filter(|c| {
            c.coord("backend") == "analytic"
                || c.coord("scenario") == "churn0"
                || c.coord("scenario") == "churn4"
        })
        .collect();
    let (report, timings) = sweep
        .run_cells_timed(cells, cli.threads_or(FigureCli::available_threads()))
        .expect("the paper system is stable under every churn scenario");

    let spec = system.spec();
    let report = report
        .with_meta("scale", if paper_scale() { "paper" } else { "reduced" })
        .with_meta("quick", cli.quick.to_string())
        .with_meta(
            "system",
            format!(
                "{} nodes, {} files, ({}, {}) code",
                spec.node_services.len(),
                spec.files.len(),
                spec.files[0].n,
                spec.files[0].k
            ),
        )
        .with_meta("horizon_s", format!("{horizon}"))
        .with_note(
            "scenario churnN = N non-overlapping single-node down/up cycles; \
             rebalance_* metrics price the strategy's analytic re-placement response \
             to each membership change (the simulation itself serves degraded reads \
             from surviving chunks without moving data)",
        )
        .with_note(
            "byte cells decode-verify every completed request against the stored \
             payloads; reconstruction_failures must stay 0",
        );
    emit_with_timings(&report, &timings, cli.out_or("FIG_churn.json"));
}
