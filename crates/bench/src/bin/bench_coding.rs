//! Coding-layer throughput snapshot, emitted as `BENCH_coding.json`.
//!
//! Measures MB/s for the three coding-hot-path operations — `encode`,
//! `decode` (2 cache + 2 storage chunks) and `cache_chunks` (d = 2) — at
//! 64 KiB and 1 MiB objects, once per slice kernel (`scalar`, `table`,
//! `word`), so the kernel-vs-kernel speedup and the absolute throughput
//! trajectory are tracked from one JSON artifact per run.
//!
//! The kernel × size grid runs on the shared sweep harness, but **defaults
//! to `--threads 1`**: unlike the simulation sweeps, these cells measure
//! wall-clock throughput, and concurrent cells would contend for cores and
//! corrupt each other's numbers. (`--threads` is still honoured for a quick
//! parallel smoke where absolute numbers do not matter.)
//!
//! Usage:
//!
//! ```sh
//! cargo run --release -p sprout-bench --bin bench_coding -- [--quick] [--out PATH]
//! ```

use std::time::Instant;

use sprout::erasure::{Chunk, CodeParams, FunctionalCacheCodec, Kernel};
use sprout::sim::sweep::{Sample, SweepGrid};
use sprout_bench::{emit, FigureCli};

const SIZES: [usize; 2] = [64 * 1024, 1024 * 1024];
const CACHE_CHUNKS: usize = 2;

/// Runs `f` repeatedly until the time budget is spent and returns MB/s
/// (throughput of `bytes` of input per call).
fn throughput(bytes: usize, budget_secs: f64, mut f: impl FnMut()) -> f64 {
    // Warm-up: populate lazy tables, page in buffers, settle the allocator.
    f();
    let mut iters = 0u64;
    let start = Instant::now();
    loop {
        f();
        iters += 1;
        if start.elapsed().as_secs_f64() >= budget_secs && iters >= 3 {
            break;
        }
    }
    (bytes as f64 * iters as f64) / start.elapsed().as_secs_f64() / 1e6
}

fn main() {
    let cli = FigureCli::parse();
    let budget = if cli.quick { 0.05 } else { 0.5 };
    let params = CodeParams::new(7, 4).expect("(7, 4) is a valid code");

    let grid = SweepGrid::named("bench_coding", 0)
        .axis("kernel", Kernel::ALL.iter().map(|k| k.name()))
        .axis("size_bytes", SIZES.iter().map(|s| s.to_string()));
    let report = grid.run(cli.threads_or(1), |cell, _, _| {
        let kernel = Kernel::ALL[cell.idx("kernel")];
        let size = SIZES[cell.idx("size_bytes")];
        let codec = FunctionalCacheCodec::with_kernel(params, kernel).expect("valid kernel");
        let data: Vec<u8> = (0..size).map(|i| (i * 31 + 7) as u8).collect();

        let encode = throughput(size, budget, || {
            std::hint::black_box(codec.encode(&data).unwrap());
        });
        let cache = throughput(size, budget, || {
            std::hint::black_box(codec.cache_chunks(&data, CACHE_CHUNKS).unwrap());
        });

        // Decode from a non-systematic mix: 2 cache chunks + the last 2
        // storage (parity) chunks, so real GF work happens on every row.
        let stored = codec.encode(&data).unwrap();
        let mut have: Vec<Chunk> = codec.cache_chunks(&data, CACHE_CHUNKS).unwrap();
        have.push(stored.chunks()[5].clone());
        have.push(stored.chunks()[6].clone());
        let decode = throughput(size, budget, || {
            std::hint::black_box(codec.decode(&have, size).unwrap());
        });

        Sample::new()
            .metric("encode_mb_per_s", encode)
            .metric("cache_chunks_mb_per_s", cache)
            .metric("decode_mb_per_s", decode)
    });

    let report = report
        .with_meta("quick", cli.quick.to_string())
        .with_meta("code", "(7, 4), cache_chunks_d = 2")
        .with_meta("unit", "MB/s of object bytes per operation")
        .with_note(
            "wall-clock throughput: numbers vary run to run (no thresholds gated on them) \
             and are only comparable within a --threads 1 run",
        );
    emit(&report, cli.out_or("BENCH_coding.json"));
}
