//! Coding-layer throughput snapshot, emitted as `BENCH_coding.json`.
//!
//! Measures MB/s for the three coding-hot-path operations — `encode`,
//! `decode` (2 cache + 2 storage chunks) and `cache_chunks` (d = 2) — over a
//! `kernel × size × threads` grid:
//!
//! * **kernel** — every slice-kernel rung (`scalar`, `table`, `word`,
//!   `simd`), so the ladder's rung-over-rung speedup is tracked from one
//!   JSON artifact. `SPROUT_KERNEL=<name>` restricts the axis to one rung.
//! * **size_bytes** — 64 KiB, 1 MiB and 8 MiB objects.
//! * **threads** — 1 (the plain single-pass paths) or 2/4 (striped coding on
//!   a scoped worker pool, 64 KiB stripes), measuring the multi-core payoff.
//!
//! Every cell runs 3 replications, so the emitted `std_dev`/`ci95` are real
//! run-to-run spread, and records the decode-matrix memo's hit/miss counters
//! (summed across replications).
//!
//! The grid runs on the shared sweep harness, but **defaults to
//! `--threads 1`**: unlike the simulation sweeps, these cells measure
//! wall-clock throughput, and concurrent cells would contend for cores and
//! corrupt each other's numbers. (`--threads` is still honoured for a quick
//! parallel smoke where absolute numbers do not matter; it is the harness's
//! cell parallelism, unrelated to the grid's `threads` axis.)
//!
//! Usage:
//!
//! ```sh
//! cargo run --release -p sprout-bench --bin bench_coding -- [--quick] [--out PATH]
//! ```

use std::time::Instant;

use sprout::erasure::{Chunk, CodeParams, FunctionalCacheCodec, Kernel, StripeOpts};
use sprout::sim::sweep::{Sample, SweepGrid};
use sprout_bench::{emit, FigureCli};

const SIZES: [usize; 3] = [64 * 1024, 1024 * 1024, 8 * 1024 * 1024];
const THREADS: [usize; 3] = [1, 2, 4];
const STRIPE_LEN: usize = 64 * 1024;
const CACHE_CHUNKS: usize = 2;
const REPLICATIONS: usize = 3;

/// Runs `f` repeatedly until the time budget is spent and returns MB/s
/// (throughput of `bytes` of input per call).
fn throughput(bytes: usize, budget_secs: f64, mut f: impl FnMut()) -> f64 {
    // Warm-up: populate lazy tables, page in buffers, settle the allocator.
    f();
    let mut iters = 0u64;
    let start = Instant::now();
    loop {
        f();
        iters += 1;
        if start.elapsed().as_secs_f64() >= budget_secs && iters >= 3 {
            break;
        }
    }
    (bytes as f64 * iters as f64) / start.elapsed().as_secs_f64() / 1e6
}

fn main() {
    let cli = FigureCli::parse();
    let budget = if cli.quick { 0.05 } else { 0.5 };
    let params = CodeParams::new(7, 4).expect("(7, 4) is a valid code");

    // SPROUT_KERNEL pins the kernel axis to a single rung (e.g. the CI
    // fallback leg benches only `word`); unset, every rung is measured.
    let kernels: Vec<Kernel> = match Kernel::from_env() {
        Ok(Some(k)) => vec![k],
        Ok(None) => Kernel::ALL.to_vec(),
        Err(msg) => {
            eprintln!("bench_coding: {msg}");
            std::process::exit(2);
        }
    };

    let grid = SweepGrid::named("bench_coding", 0)
        .axis("kernel", kernels.iter().map(|k| k.name()))
        .axis("size_bytes", SIZES.iter().map(|s| s.to_string()))
        .axis("threads", THREADS.iter().map(|t| t.to_string()))
        .replications(REPLICATIONS);
    let report = grid.run(cli.threads_or(1), |cell, _, _| {
        let kernel = kernels[cell.idx("kernel")];
        let size = SIZES[cell.idx("size_bytes")];
        let threads = THREADS[cell.idx("threads")];
        // threads == 1 measures the plain single-pass paths; more threads
        // switch the codec to striped coding on a scoped worker pool.
        let striping = (threads > 1).then(|| StripeOpts::new(STRIPE_LEN, threads));
        let codec = FunctionalCacheCodec::with_kernel(params, kernel)
            .expect("valid kernel")
            .with_striping(striping);
        let data: Vec<u8> = (0..size).map(|i| (i * 31 + 7) as u8).collect();

        let encode = throughput(size, budget, || {
            std::hint::black_box(codec.encode(&data).unwrap());
        });
        let cache = throughput(size, budget, || {
            std::hint::black_box(codec.cache_chunks(&data, CACHE_CHUNKS).unwrap());
        });

        // Decode from a non-systematic mix: 2 cache chunks + the last 2
        // storage (parity) chunks, so real GF work happens on every row.
        let stored = codec.encode(&data).unwrap();
        let mut have: Vec<Chunk> = codec.cache_chunks(&data, CACHE_CHUNKS).unwrap();
        have.push(stored.chunks()[5].clone());
        have.push(stored.chunks()[6].clone());
        let decode = throughput(size, budget, || {
            std::hint::black_box(codec.decode(&have, size).unwrap());
        });

        // The decode-matrix memo: every decode above reuses one row subset,
        // so a healthy memo shows exactly 1 miss and the rest hits.
        let (memo_hits, memo_misses) = codec.code().decode_memo_stats();
        Sample::new()
            .metric("encode_mb_per_s", encode)
            .metric("cache_chunks_mb_per_s", cache)
            .metric("decode_mb_per_s", decode)
            .counter("decode_memo_hits", memo_hits)
            .counter("decode_memo_misses", memo_misses)
    });

    let simd = sprout::gf::simd_level();
    let report = report
        .with_meta("quick", cli.quick.to_string())
        .with_meta("code", "(7, 4), cache_chunks_d = 2")
        .with_meta("unit", "MB/s of object bytes per operation")
        .with_meta("replications", REPLICATIONS.to_string())
        .with_meta("simd_level", simd.name())
        .with_meta("stripe_len_bytes", STRIPE_LEN.to_string())
        .with_note(
            "wall-clock throughput: numbers vary run to run (no thresholds gated on them) \
             and are only comparable within a --threads 1 run",
        )
        .with_note(
            "threads axis: 1 = plain single-pass coding; >1 = striped coding over 64 KiB \
             stripes on a scoped thread pool (objects whose chunks fit one stripe degenerate \
             to the single-pass path)",
        )
        .with_note(
            "decode_memo_hits/misses count decode-matrix memo lookups per cell (summed over \
             replications); striped decode computes the matrix once, so misses stay at 1 per \
             distinct row subset",
        );
    let report = if simd == sprout::gf::SimdLevel::None {
        report.with_note(
            "simd fallback: no usable SIMD level on this host (or SPROUT_DISABLE_SIMD set) — \
             the `simd` kernel rows measure its word-kernel fallback path",
        )
    } else {
        report
    };
    emit(&report, cli.out_or("BENCH_coding.json"));
}
