//! Coding-layer throughput snapshot, emitted as `BENCH_coding.json`.
//!
//! Measures MB/s for the three coding-hot-path operations — `encode`,
//! `decode` (2 cache + 2 storage chunks) and `cache_chunks` (d = 2) — at
//! 64 KiB and 1 MiB objects, once per slice kernel (`scalar`, `table`,
//! `word`), so the kernel-vs-kernel speedup and the absolute throughput
//! trajectory are tracked from one JSON artifact per run.
//!
//! Usage:
//!
//! ```sh
//! cargo run --release -p sprout-bench --bin bench_coding -- [--quick] [--out PATH]
//! ```
//!
//! `--quick` shortens the per-measurement budget (CI smoke mode; numbers are
//! noisier but the artifact shape is identical). `--out` defaults to
//! `BENCH_coding.json` in the current directory.

use std::fmt::Write as _;
use std::time::Instant;

use sprout::erasure::{Chunk, CodeParams, FunctionalCacheCodec, Kernel};

const SIZES: [usize; 2] = [64 * 1024, 1024 * 1024];
const CACHE_CHUNKS: usize = 2;

struct Measurement {
    op: &'static str,
    kernel: &'static str,
    size_bytes: usize,
    mb_per_s: f64,
}

/// Runs `f` repeatedly until the time budget is spent and returns MB/s
/// (throughput of `bytes` of input per call).
fn throughput(bytes: usize, budget_secs: f64, mut f: impl FnMut()) -> f64 {
    // Warm-up: populate lazy tables, page in buffers, settle the allocator.
    f();
    let mut iters = 0u64;
    let start = Instant::now();
    loop {
        f();
        iters += 1;
        if start.elapsed().as_secs_f64() >= budget_secs && iters >= 3 {
            break;
        }
    }
    (bytes as f64 * iters as f64) / start.elapsed().as_secs_f64() / 1e6
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_coding.json".to_string());
    let budget = if quick { 0.05 } else { 0.5 };

    let params = CodeParams::new(7, 4).unwrap();
    let mut results: Vec<Measurement> = Vec::new();

    for kernel in Kernel::ALL {
        let codec = FunctionalCacheCodec::with_kernel(params, kernel).unwrap();
        for &size in &SIZES {
            let data: Vec<u8> = (0..size).map(|i| (i * 31 + 7) as u8).collect();

            let mbps = throughput(size, budget, || {
                std::hint::black_box(codec.encode(&data).unwrap());
            });
            results.push(Measurement {
                op: "encode",
                kernel: kernel.name(),
                size_bytes: size,
                mb_per_s: mbps,
            });

            let mbps = throughput(size, budget, || {
                std::hint::black_box(codec.cache_chunks(&data, CACHE_CHUNKS).unwrap());
            });
            results.push(Measurement {
                op: "cache_chunks",
                kernel: kernel.name(),
                size_bytes: size,
                mb_per_s: mbps,
            });

            // Decode from a non-systematic mix: 2 cache chunks + the last 2
            // storage (parity) chunks, so real GF work happens on every row.
            let stored = codec.encode(&data).unwrap();
            let mut have: Vec<Chunk> = codec.cache_chunks(&data, CACHE_CHUNKS).unwrap();
            have.push(stored.chunks()[5].clone());
            have.push(stored.chunks()[6].clone());
            let mbps = throughput(size, budget, || {
                std::hint::black_box(codec.decode(&have, size).unwrap());
            });
            results.push(Measurement {
                op: "decode",
                kernel: kernel.name(),
                size_bytes: size,
                mb_per_s: mbps,
            });
        }
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"benchmark\": \"coding\",\n");
    json.push_str("  \"code\": {\"n\": 7, \"k\": 4, \"cache_chunks_d\": 2},\n");
    json.push_str("  \"unit\": \"MB/s of object bytes per operation\",\n");
    let _ = writeln!(json, "  \"quick\": {quick},");
    json.push_str("  \"results\": [\n");
    for (i, m) in results.iter().enumerate() {
        let comma = if i + 1 == results.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"op\": \"{}\", \"kernel\": \"{}\", \"size_bytes\": {}, \"mb_per_s\": {:.1}}}{}",
            m.op, m.kernel, m.size_bytes, m.mb_per_s, comma
        );
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&out_path, &json).expect("failed to write benchmark JSON");
    print!("{json}");
    eprintln!("wrote {out_path}");
}
