//! Warm-start benchmark: plan chaining along the load axis, emitted as
//! `BENCH_warmstart.json`.
//!
//! The paper warm-starts Algorithm 1 across cache sizes in its convergence
//! experiment; [`SimSweep::warm_start_loads`](sprout::SimSweep) applies the
//! same trick across a sweep's load axis, where each cell seeds the
//! optimizer with the plan its previous load point converged to. This
//! binary quantifies the payoff on the paper's §V-A system: for a monotone
//! ramp of load multipliers it optimizes every point twice — cold from the
//! default start, and warm through the chain — and records the outer
//! iteration count and final latency bound of both.
//!
//! The artifact is deterministic (iteration counts and objectives, never
//! wall times), so CI can diff it; both starts must agree on the bound
//! within the convergence tolerance while the warm chain spends fewer
//! iterations after the first point.
//!
//! Usage:
//!
//! ```sh
//! cargo run --release -p sprout-bench --bin bench_warmstart -- \
//!     [--quick] [--threads N] [--out PATH]
//! ```

use sprout::optimizer::CachePlan;
use sprout::sim::sweep::{Sample, SweepGrid};
use sprout::SproutSystem;
use sprout_bench::{emit, experiment_config, paper_scale, paper_system, scale_cache, FigureCli};

const LOADS: [f64; 4] = [0.4, 0.6, 0.8, 1.0];

/// The paper system with every arrival rate scaled by `load`.
fn system_at(base: &SproutSystem, load: f64) -> SproutSystem {
    let mut spec = base.spec().clone();
    for file in &mut spec.files {
        file.arrival_rate *= load;
    }
    SproutSystem::new(spec).expect("a rescaled stable spec stays valid")
}

fn main() {
    let cli = FigureCli::parse();
    let config = experiment_config();
    let base = paper_system(scale_cache(500));

    // The warm chain is inherently sequential (each plan consumes its
    // predecessor), so both ramps are computed up front and the grid below
    // only reports them.
    let cold: Vec<CachePlan> = LOADS
        .iter()
        .map(|&load| {
            system_at(&base, load)
                .optimize_with(&config)
                .expect("the swept loads keep the cluster stable")
        })
        .collect();
    let mut warm: Vec<CachePlan> = Vec::with_capacity(LOADS.len());
    for (i, &load) in LOADS.iter().enumerate() {
        let system = system_at(&base, load);
        let plan = match i {
            0 => system.optimize_with(&config),
            _ => system.optimize_warm(&config, &warm[i - 1]),
        }
        .expect("the swept loads keep the cluster stable");
        warm.push(plan);
    }

    let grid = SweepGrid::named("bench_warmstart", 2016)
        .axis("load", LOADS.iter().map(|l| format!("{l}")))
        .axis("start", ["cold", "warm"].iter().map(|s| s.to_string()));
    let report = grid.run(cli.threads_or(1), |cell, _, _| {
        let ramp = match cell.coord("start") {
            "warm" => &warm,
            _ => &cold,
        };
        let plan = &ramp[cell.idx("load")];
        Sample::new()
            .metric("latency_bound_s", plan.objective)
            .metric("outer_iterations", plan.trace.outer_iterations() as f64)
            .series("objective_trace", plan.trace.outer_objectives.clone())
    });

    let iterations =
        |ramp: &[CachePlan]| -> usize { ramp.iter().map(|p| p.trace.outer_iterations()).sum() };
    let report = report
        .with_meta("scale", if paper_scale() { "paper" } else { "reduced" })
        .with_meta("quick", cli.quick.to_string())
        .with_meta(
            "objective",
            "mean latency bound (seconds); series = per-iteration objective",
        )
        .with_note(format!(
            "total outer iterations over the load ramp: cold {}, warm-chained {}",
            iterations(&cold),
            iterations(&warm)
        ));
    emit(&report, cli.out_or("BENCH_warmstart.json"));
}
