//! Tail-latency snapshot of the threaded serving path, emitted as
//! `BENCH_serving.json`.
//!
//! Replays a `sprout_workload` arrival stream (Zipf-popular Poisson by
//! default, or a real trace via `--trace PATH`) open-loop against a live
//! [`Sproutd`] worker pool over a lock-sharded [`StoreHandle`], at worker
//! counts 1 and 4 and two offered loads:
//!
//! * **paced** — the submitter sleeps to the arrival schedule, so the run
//!   measures latency at a fixed offered load below saturation;
//! * **saturate** — arrivals are submitted back-to-back with blocking
//!   backpressure, so completed-requests-per-second is the pool's maximum
//!   throughput at that worker count.
//!
//! Midway through every run the cache plan is swapped (real optimizer
//! output, recomputed for a rotated popularity profile) while requests are
//! in flight; the binary asserts at least one swap landed under load, that
//! every completed request decoded to its recorded checksum
//! (`verified == completed`), and that nothing errored or was dropped.
//!
//! Two contracts, same split as `bench_sharding`:
//!
//! * **Correctness (hard, asserted here):** `verified == completed ==
//!   submitted`, `errors == 0`, `dropped == 0`, `swaps_under_load >= 1`,
//!   and requests were served under both plan epochs.
//! * **Throughput/latency (informational):** requests/s and the latency
//!   quantiles are wall-clock and scale with the cores actually available —
//!   on a single-core runner the 4-worker pool ties the 1-worker pool.
//!   `available_parallelism` is recorded in the meta so a number is never
//!   read without its context. No threshold is gated on these values.
//!
//! Usage:
//!
//! ```sh
//! cargo run --release -p sprout-bench --bin bench_serving -- \
//!     [--quick] [--workers N] [--trace PATH] [--out PATH]
//! ```

use std::time::{Duration, Instant};

use sprout::cluster::{CachePolicy, ClusterConfig, StoreHandle};
use sprout::sim::sweep::{Sample, SweepGrid};
use sprout::workload::{parse_trace_csv, PoissonArrivals, Request, ZipfPopularity};
use sprout::{FileConfig, ServeOpts, ServePlan, ServeReport, SproutSystem, Sproutd, SystemSpec};
use sprout_bench::{emit, FigureCli};

const NODES: usize = 12;
const CODE_N: usize = 7;
const CODE_K: usize = 4;
const OBJECT_BYTES: usize = 64 * 1024;
const ZIPF_EXPONENT: f64 = 0.9;
const PACED_RATE: f64 = 1_500.0;
const QUEUE_DEPTH: usize = 256;
const STORE_SEED: u64 = 2016;
/// Requests submitted back-to-back right before the mid-run plan swap, so
/// the queue is demonstrably non-empty when the swap is installed.
const SWAP_BURST: usize = 32;

/// One measured cell: the merged worker report plus the submitter's view.
struct CellResult {
    report: ServeReport,
    wall_s: f64,
}

/// Build the arrival schedule: `total` requests over files `0..num_files`.
///
/// Poisson arrivals with Zipf-distributed per-file rates by default; with
/// `--trace`, the trace's own (time, file) pairs rescaled to the paced
/// duration. Either way the times are only consulted by the *paced* cells.
fn build_schedule(total: usize, num_files: usize, trace: Option<&str>) -> Vec<Request> {
    let mut requests = match trace {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .unwrap_or_else(|e| panic!("failed to read trace {path}: {e}"));
            let events = parse_trace_csv(&text).expect("trace must parse");
            assert!(!events.is_empty(), "trace {path} contains no events");
            let span = events.last().map(|e| e.at).unwrap_or(0.0).max(1e-9);
            // Rescale the trace's own clock so the replay lasts as long as
            // `total` paced arrivals would, then tile it to `total` events.
            let target = total as f64 / PACED_RATE;
            events
                .iter()
                .cycle()
                .take(total)
                .enumerate()
                .map(|(i, e)| Request {
                    time: (i / events.len()) as f64 * target + e.at / span * target,
                    file: e.file % num_files,
                })
                .collect()
        }
        None => {
            let rates = ZipfPopularity::new(num_files, ZIPF_EXPONENT).arrival_rates(PACED_RATE);
            // Generate past the target count, then truncate to exactly it.
            let horizon = total as f64 / PACED_RATE * 2.0 + 1.0;
            PoissonArrivals::new(0x5EED_BE9C).generate(&rates, horizon)
        }
    };
    assert!(
        requests.len() >= total,
        "schedule too short: {} < {total}",
        requests.len()
    );
    requests.truncate(total);
    requests
}

/// Optimize a functional-cache plan for the given per-file rates — the same
/// Prob Z / Prob Π pipeline the rest of the repo uses, not a synthetic plan.
///
/// Only the *relative* popularity shapes the plan, so the rates are
/// normalized to ~60% virtual-node utilization to keep the queueing model
/// stable regardless of the wall-clock offered load.
fn optimize_plan(rates: &[f64], label: &str) -> ServePlan {
    let mu = 40.0;
    let aggregate: f64 = rates.iter().sum();
    let scale = 0.6 * NODES as f64 * mu / (CODE_K as f64 * aggregate);
    let mut builder = SystemSpec::builder();
    builder
        .node_service_rates(&[mu; NODES])
        .cache_capacity_chunks(rates.len())
        .seed(STORE_SEED);
    for &rate in rates {
        builder.file(FileConfig::new(
            rate * scale,
            CODE_N,
            CODE_K,
            OBJECT_BYTES as u64,
        ));
    }
    let spec = builder.build().expect("serving spec must validate");
    let system = SproutSystem::new(spec).expect("serving system must build");
    let plan = system.optimize().expect("optimizer must converge");
    ServePlan::from_cache_plan(&plan, label)
}

/// Run one (workers, load) cell: fresh store, preload, plan A installed
/// before traffic, the schedule replayed (paced or saturating), plan B
/// swapped mid-stream under load, then shutdown + hard assertions.
fn run_cell(
    workers: usize,
    paced: bool,
    num_files: usize,
    schedule: &[Request],
    plan_a: &ServePlan,
    plan_b: &ServePlan,
) -> CellResult {
    let config = ClusterConfig::builder()
        .nodes(NODES)
        .code(CODE_N, CODE_K)
        .cache_policy(CachePolicy::Functional)
        .cache_capacity_bytes((2 * num_files * OBJECT_BYTES.div_ceil(CODE_K)) as u64)
        .striping(None)
        .seed(STORE_SEED)
        .build();
    let store = StoreHandle::new(config).expect("store must build");
    let daemon = Sproutd::start(
        store,
        ServeOpts::default()
            .workers(workers)
            .queue_depth(QUEUE_DEPTH),
    );

    for object in 0..num_files as u64 {
        let data = sprout::backend::synthetic_payload(object as usize, OBJECT_BYTES, 5);
        daemon.preload(object, &data).expect("preload must succeed");
    }
    // Plan A lands before any traffic: epoch 1, not under load.
    daemon.swap_plan(plan_a.clone()).expect("plan A must apply");

    let mid = schedule.len() / 2;
    let start = Instant::now();
    for (i, request) in schedule.iter().enumerate() {
        // The burst right before the swap is never paced, so the queue is
        // non-empty when plan B is installed.
        let in_burst = (mid..mid + SWAP_BURST).contains(&i);
        if paced && !in_burst {
            let ahead = request.time - start.elapsed().as_secs_f64();
            if ahead > 0.0 {
                std::thread::sleep(Duration::from_secs_f64(ahead));
            }
        }
        assert!(
            daemon.submit_get(request.file as u64),
            "blocking submit must be accepted"
        );
        if i + 1 == mid + SWAP_BURST {
            daemon.swap_plan(plan_b.clone()).expect("plan B must apply");
        }
    }
    let report = daemon.shutdown();
    let wall_s = start.elapsed().as_secs_f64();

    let total = schedule.len() as u64;
    assert_eq!(report.submitted, total, "every request must be accepted");
    assert_eq!(report.completed, total, "every request must complete");
    assert_eq!(
        report.verified, report.completed,
        "every completed get must decode to its recorded checksum"
    );
    assert_eq!(report.errors, 0, "no request may error");
    assert_eq!(report.dropped, 0, "blocking submission must never drop");
    assert_eq!(report.plan_swaps, 2, "plans A and B must both install");
    assert!(
        report.swaps_under_load >= 1,
        "plan B must land while requests are in flight"
    );
    assert_eq!(
        report.max_epoch_served, 2,
        "requests after the swap must be served under plan B"
    );
    CellResult { report, wall_s }
}

fn main() {
    let (cli, extras) = FigureCli::parse_with_extras(&["--workers", "--trace"]);
    let mut worker_counts: Vec<usize> = vec![1, 4];
    let mut trace: Option<String> = None;
    for (flag, value) in extras {
        match flag.as_str() {
            "--workers" => {
                let n: usize = value.parse().unwrap_or_else(|_| {
                    panic!("--workers expects a positive integer, got {value:?}")
                });
                assert!(n > 0, "--workers must be at least 1");
                worker_counts = vec![n];
            }
            "--trace" => trace = Some(value),
            _ => unreachable!("unregistered extra flag {flag}"),
        }
    }

    let (num_files, total_requests) = if cli.quick { (32, 1_200) } else { (64, 6_000) };
    let schedule = build_schedule(total_requests, num_files, trace.as_deref());

    // Plan A optimizes for the real popularity profile; plan B for the same
    // profile rotated half a turn — a different hot set, so the mid-run swap
    // genuinely moves cached chunks while workers are reading.
    let rates = ZipfPopularity::new(num_files, ZIPF_EXPONENT).arrival_rates(PACED_RATE);
    let mut rotated = rates.clone();
    rotated.rotate_left(num_files / 2);
    let plan_a = optimize_plan(&rates, "zipf-hot-front");
    let plan_b = optimize_plan(&rotated, "zipf-hot-back");

    // Measure sequentially (never on the sweep pool: concurrent cells would
    // contend for the cores the worker pools are trying to use).
    let loads = ["paced", "saturate"];
    let mut cells: Vec<Vec<CellResult>> = Vec::with_capacity(worker_counts.len());
    for &workers in &worker_counts {
        let mut row = Vec::with_capacity(loads.len());
        for &load in &loads {
            row.push(run_cell(
                workers,
                load == "paced",
                num_files,
                &schedule,
                &plan_a,
                &plan_b,
            ));
        }
        cells.push(row);
    }

    let grid = SweepGrid::named("bench_serving", 0)
        .axis("workers", worker_counts.iter().map(|w| w.to_string()))
        .axis("load", loads.iter().map(|l| l.to_string()));
    let report = grid.run(1, |cell, _, _| {
        let wi = cell.idx("workers");
        let li = cell.idx("load");
        let result = &cells[wi][li];
        let r = &result.report;
        let h = &r.histogram;
        Sample::new()
            .metric("requests_per_sec", r.requests_per_sec())
            .metric(
                "speedup_vs_first_workers",
                cells[0][li].report.requests_per_sec().max(1e-12).recip() * r.requests_per_sec(),
            )
            .metric("wall_s", result.wall_s)
            .metric("mean_ms", h.mean_us() / 1_000.0)
            .metric("p50_ms", h.quantile_us(0.50) / 1_000.0)
            .metric("p99_ms", h.quantile_us(0.99) / 1_000.0)
            .metric("p999_ms", h.quantile_us(0.999) / 1_000.0)
            .metric("max_ms", h.max_us() as f64 / 1_000.0)
            .counter("submitted", r.submitted)
            .counter("completed", r.completed)
            .counter("verified", r.verified)
            .counter("errors", r.errors)
            .counter("dropped", r.dropped)
            .counter("backpressure_waits", r.backpressure_waits)
            .counter("plan_swaps", r.plan_swaps)
            .counter("swaps_under_load", r.swaps_under_load)
            .maximum("max_epoch_served", r.max_epoch_served)
    });

    let report = report
        .with_meta("quick", cli.quick.to_string())
        .with_meta(
            "system",
            format!(
                "{NODES} nodes, ({CODE_N}, {CODE_K}) code, {num_files} x {OBJECT_BYTES} B \
                 objects, Zipf({ZIPF_EXPONENT}) popularity, {total_requests} requests, \
                 paced rate {PACED_RATE}/s, queue depth {QUEUE_DEPTH}"
            ),
        )
        .with_meta(
            "workload",
            trace.map_or_else(
                || "poisson-zipf".to_string(),
                |path| format!("trace replay of {path}"),
            ),
        )
        .with_meta(
            "available_parallelism",
            FigureCli::available_threads().to_string(),
        )
        .with_note(
            "verified == completed == submitted, zero errors/drops, and a plan swap under load \
             are asserted on every run; requests_per_sec and the latency quantiles are \
             wall-clock, vary run to run and scale with available cores (a 1-core runner ties \
             all worker counts) — no threshold is gated on them",
        );
    emit(&report, cli.out_or("BENCH_serving.json"));
}
