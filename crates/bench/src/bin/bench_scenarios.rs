//! Scenario-suite snapshot, emitted as `BENCH_scenarios.json`.
//!
//! Runs the streaming runtime through a small suite of dynamic scenarios on
//! the paper's §V-A system — steady state, mid-horizon node churn (analytic
//! *and* byte-accurate), and a flash crowd with an online re-optimization —
//! each as R seeded replications spread across worker threads, and records
//! mean latency ± 95 % CI, throughput counters and the event-heap high-water
//! mark (the streaming-arrivals regression guard).
//!
//! Usage:
//!
//! ```sh
//! cargo run --release -p sprout-bench --bin bench_scenarios -- [--quick] [--out PATH]
//! ```
//!
//! `--quick` shortens horizons and replication counts (CI smoke mode; the
//! artifact shape is identical). `--out` defaults to `BENCH_scenarios.json`.

use std::fmt::Write as _;
use std::time::Instant;

use sprout::optimizer::OptimizerConfig;
use sprout::sim::{replication_seed, run_replications, ReplicationSummary, Scenario, SimConfig};
use sprout::{CachePolicyChoice, ScenarioActionSpec, ScenarioSpec, SproutSystem};
use sprout_bench::{paper_system, scale_cache};

struct Row {
    scenario: &'static str,
    backend: &'static str,
    summary: ReplicationSummary,
    peak_event_queue: usize,
    wall_ms: u128,
}

fn churn(horizon: f64) -> ScenarioSpec {
    ScenarioSpec::named("node_churn")
        .at(horizon / 3.0, ScenarioActionSpec::NodeDown { node: 0 })
        .at(2.0 * horizon / 3.0, ScenarioActionSpec::NodeUp { node: 0 })
}

fn flash_crowd(system: &SproutSystem, horizon: f64) -> ScenarioSpec {
    // The ten hottest files double their arrival rate halfway through, and
    // the optimizer is re-run online against the new rates.
    let mut rates: Vec<f64> = system.spec().files.iter().map(|f| f.arrival_rate).collect();
    let mut hottest: Vec<usize> = (0..rates.len()).collect();
    hottest.sort_by(|&a, &b| rates[b].partial_cmp(&rates[a]).unwrap());
    for &f in hottest.iter().take(10) {
        rates[f] *= 2.0;
    }
    ScenarioSpec::named("flash_crowd_reoptimize")
        .at(horizon / 2.0, ScenarioActionSpec::SetRates { rates })
        .at(horizon / 2.0, ScenarioActionSpec::Reoptimize)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_scenarios.json".to_string());
    let horizon = if quick { 10_000.0 } else { 50_000.0 };
    let replications = if quick { 4 } else { 8 };
    let byte_replications = if quick { 2 } else { 4 };
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(replications);

    let system = paper_system(scale_cache(500));
    let plan = system.optimize().expect("the paper system is stable");
    let optimizer = OptimizerConfig::default();
    let base_seed = 2016u64;

    let scenarios: Vec<(&'static str, Scenario)> = vec![
        ("steady", Scenario::default()),
        (
            "node_churn",
            churn(horizon)
                .compile(&system, &optimizer)
                .expect("churn scenario compiles"),
        ),
        (
            "flash_crowd_reoptimize",
            flash_crowd(&system, horizon)
                .compile(&system, &optimizer)
                .expect("flash-crowd scenario compiles"),
        ),
    ];

    let mut rows: Vec<Row> = Vec::new();
    for (name, scenario) in &scenarios {
        let sim = system
            .simulation(
                CachePolicyChoice::Functional,
                Some(&plan),
                SimConfig::new(horizon, base_seed),
            )
            .with_scenario(scenario.clone());
        let start = Instant::now();
        let summary = sim.run_replications(replications, threads);
        let wall_ms = start.elapsed().as_millis();
        let peak = summary
            .reports
            .iter()
            .map(|r| r.peak_event_queue)
            .max()
            .unwrap_or(0);
        rows.push(Row {
            scenario: name,
            backend: "analytic",
            summary,
            peak_event_queue: peak,
            wall_ms,
        });
    }

    // Byte-accurate churn: the same event loop driving the real
    // erasure-coded store, with every completed request decode-verified.
    // The paper spec declares 100 MB objects; storing real bytes at that
    // size would need ~20 GB, so the byte leg runs the same system shape
    // with 64 KiB objects — plans, placements and scheduling decisions are
    // size-independent, only the stored payloads shrink.
    {
        let mut byte_spec = system.spec().clone();
        for f in &mut byte_spec.files {
            f.size_bytes = 64 * 1024;
        }
        let byte_system = SproutSystem::new(byte_spec).expect("resized spec stays valid");
        let scenario = scenarios[1].1.clone();
        let sim = byte_system
            .simulation(
                CachePolicyChoice::Functional,
                Some(&plan),
                SimConfig::new(horizon, base_seed),
            )
            .with_scenario(scenario);
        let start = Instant::now();
        let summary = run_replications(byte_replications, threads.min(byte_replications), |r| {
            let seed = replication_seed(base_seed, r);
            let mut backend = byte_system
                .byte_backend(CachePolicyChoice::Functional, Some(&plan), seed)
                .expect("byte backend builds for the paper system");
            let report = sim.clone().with_seed(seed).run_on(&mut backend);
            assert_eq!(
                backend.verified_reconstructions(),
                report.completed_requests,
                "byte backend must verify every request"
            );
            report
        });
        let wall_ms = start.elapsed().as_millis();
        let peak = summary
            .reports
            .iter()
            .map(|r| r.peak_event_queue)
            .max()
            .unwrap_or(0);
        rows.push(Row {
            scenario: "node_churn",
            backend: "byte",
            summary,
            peak_event_queue: peak,
            wall_ms,
        });
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"benchmark\": \"scenarios\",\n");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(
        json,
        "  \"system\": {{\"nodes\": {}, \"files\": {}, \"code\": {{\"n\": {}, \"k\": {}}}}},",
        system.spec().node_services.len(),
        system.spec().files.len(),
        system.spec().files[0].n,
        system.spec().files[0].k
    );
    let _ = writeln!(json, "  \"horizon_s\": {horizon},");
    let _ = writeln!(json, "  \"threads\": {threads},");
    json.push_str("  \"results\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let s = &row.summary;
        let _ = writeln!(
            json,
            "    {{\"scenario\": \"{}\", \"backend\": \"{}\", \"replications\": {}, \
             \"mean_latency_s\": {:.6}, \"ci95_s\": {:.6}, \"p95_latency_s\": {:.6}, \
             \"completed\": {}, \"failed\": {}, \"reconstruction_failures\": {}, \
             \"peak_event_queue\": {}, \"wall_ms\": {}}}{}",
            row.scenario,
            row.backend,
            s.mean_latency.replications,
            s.mean_latency.mean,
            s.mean_latency.ci95,
            s.p95_latency.mean,
            s.completed_requests,
            s.failed_requests,
            s.reconstruction_failures,
            row.peak_event_queue,
            row.wall_ms,
            comma
        );
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&out_path, &json).expect("write benchmark artifact");
    print!("{json}");
    eprintln!("wrote {out_path}");
}
