//! Scenario-suite snapshot, emitted as `BENCH_scenarios.json`.
//!
//! Runs the streaming runtime through a small suite of dynamic scenarios on
//! the paper's §V-A system — steady state, mid-horizon node churn (analytic
//! *and* byte-accurate), and a flash crowd with an online re-optimization —
//! as one [`SimSweep`]: scenario × backend cells, each as R seeded
//! replications on the work-stealing pool, recording mean latency ± 95 % CI,
//! throughput counters and the event-heap/in-flight high-water marks (the
//! streaming-arrivals and pooled-allocation regression guards).
//!
//! The artifact is the determinism canary of the whole sweep subsystem: CI
//! runs this binary with `--threads 1`, `2` and `4` and with `--shards 1`,
//! `2` and `4`, and requires every JSON file to be byte-identical to the
//! single-thread single-shard reference.
//!
//! Usage:
//!
//! ```sh
//! cargo run --release -p sprout-bench --bin bench_scenarios -- \
//!     [--quick] [--threads N] [--shards N] [--out PATH]
//! ```

use sprout::sim::SimConfig;
use sprout::{ScenarioActionSpec, ScenarioSpec, SimSweep, SproutSystem, SweepBackend};
use sprout_bench::{emit_with_timings, paper_scale, paper_system, scale_cache, FigureCli};

fn churn(horizon: f64) -> ScenarioSpec {
    ScenarioSpec::named("node_churn")
        .at(horizon / 3.0, ScenarioActionSpec::NodeDown { node: 0 })
        .at(2.0 * horizon / 3.0, ScenarioActionSpec::NodeUp { node: 0 })
}

fn flash_crowd(system: &SproutSystem, horizon: f64) -> ScenarioSpec {
    // The ten hottest files double their arrival rate halfway through, and
    // the optimizer is re-run online against the new rates.
    let mut rates: Vec<f64> = system.spec().files.iter().map(|f| f.arrival_rate).collect();
    let mut hottest: Vec<usize> = (0..rates.len()).collect();
    hottest.sort_by(|&a, &b| rates[b].partial_cmp(&rates[a]).expect("rates are finite"));
    for &f in hottest.iter().take(10) {
        rates[f] *= 2.0;
    }
    ScenarioSpec::named("flash_crowd_reoptimize")
        .at(horizon / 2.0, ScenarioActionSpec::SetRates { rates })
        .at(horizon / 2.0, ScenarioActionSpec::Reoptimize)
}

fn main() {
    let cli = FigureCli::parse();
    let horizon = if cli.quick { 10_000.0 } else { 50_000.0 };
    let replications = if cli.quick { 4 } else { 8 };
    let byte_replications = if cli.quick { 2 } else { 4 };

    let system = paper_system(scale_cache(500));
    let sweep = SimSweep::new("bench_scenarios", &system, SimConfig::new(horizon, 2016))
        .scenarios(vec![
            ScenarioSpec::named("steady"),
            churn(horizon),
            flash_crowd(&system, horizon),
        ])
        .backends(vec![SweepBackend::Analytic, SweepBackend::Byte])
        // The paper spec declares 100 MB objects; storing real bytes at that
        // size would need ~20 GB, so the byte leg runs the same system shape
        // with 64 KiB objects — plans, placements and scheduling decisions are
        // size-independent, only the stored payloads shrink.
        .byte_object_bytes(64 * 1024)
        .replications(replications)
        .byte_replications(byte_replications)
        .shards(cli.shards_or(1));

    // Byte-accurate replications (with per-request decode verification) are
    // expensive, so the byte leg covers the node-churn scenario only.
    let cells: Vec<_> = sweep
        .cells()
        .into_iter()
        .filter(|c| c.coord("backend") == "analytic" || c.coord("scenario") == "node_churn")
        .collect();
    let (report, timings) = sweep
        .run_cells_timed(cells, cli.threads_or(FigureCli::available_threads()))
        .expect("the paper system is stable under every suite scenario");

    let spec = system.spec();
    let report = report
        .with_meta("scale", if paper_scale() { "paper" } else { "reduced" })
        .with_meta("quick", cli.quick.to_string())
        .with_meta(
            "system",
            format!(
                "{} nodes, {} files, ({}, {}) code",
                spec.node_services.len(),
                spec.files.len(),
                spec.files[0].n,
                spec.files[0].k
            ),
        )
        .with_meta("horizon_s", format!("{horizon}"))
        .with_note(
            "byte cells decode-verify every completed request against the stored payloads; \
             reconstruction_failures must stay 0",
        );
    // The timing side-channel is written next to the artifact but never
    // committed or diffed — the JSON artifact itself stays byte-identical
    // across thread counts (the determinism canary above).
    emit_with_timings(&report, &timings, cli.out_or("BENCH_scenarios.json"));
}
