//! Fig. 10 — Average access latency versus object size: optimized functional
//! caching vs Ceph's LRU cache-tier baseline vs the analytical bound.
//!
//! The paper stores 1000 objects of each Table III size class on its (7,4)
//! Ceph pool with a 10 GB cache, replays the trace-derived arrival rates for
//! 1800 s, and reports the mean access latency of (i) optimal functional
//! caching, (ii) the LRU replicated cache tier, and (iii) the analytical
//! bound. Latency grows with object size and functional caching wins at every
//! size (26 % on average).

use sprout::queueing::dist::ServiceDistribution;
use sprout::sim::SimConfig;
use sprout::{CachePolicyChoice, FileConfig, SproutSystem, SystemSpec};
use sprout_bench::{experiment_config, header, paper_scale};

/// Paper-reported mean access latency (milliseconds) per object size for
/// optimized caching and the Ceph cache-tier baseline.
const PAPER_MS: [(&str, f64, f64); 5] = [
    ("4MB", 8.0, 10.0),
    ("16MB", 384.0, 430.0),
    ("64MB", 2182.0, 2833.0),
    ("256MB", 7901.0, 11163.0),
    ("1GB", 21516.0, 39021.0),
];

fn main() {
    let objects = if paper_scale() { 1000 } else { 100 };
    let population_scale = 1000.0 / objects as f64;
    // The paper's testbed is driven hard enough that queueing dominates (its
    // reported latencies are 3-20x the bare chunk service time). The Table III
    // trace rates alone leave a 12-node cluster nearly idle, so each size
    // class is scaled to a common no-cache storage utilization (~70 %), which
    // recreates the paper's operating regime while preserving the class's
    // relative popularity within the trace.
    let target_utilization = 0.70;
    let cache_bytes = 10.0 * 1e9 / population_scale;
    let horizon = 1800.0;

    header(
        "Fig. 10: mean access latency (ms) by object size",
        &[
            "object_size",
            "functional_ms",
            "lru_baseline_ms",
            "analytic_bound_ms",
            "paper_functional_ms",
            "paper_lru_ms",
        ],
    );

    let mut improvements = Vec::new();
    for (class, (label, paper_opt, paper_lru)) in sprout::workload::spec::table_iii_object_classes()
        .into_iter()
        .zip(PAPER_MS)
    {
        assert_eq!(class.label, label);
        let chunk_bytes = class.size_bytes.div_ceil(4);
        let hdd = sprout::cluster::DeviceModel::hdd().service_moments(chunk_bytes);
        let ssd = sprout::cluster::DeviceModel::ssd().mean_service_time(chunk_bytes);
        let node_service = ServiceDistribution::from_mean_variance(hdd.mean, hdd.variance());
        let cache_chunks = ((cache_bytes / chunk_bytes as f64) as usize).max(1);
        // Scale this class's per-object rate so that, without any cache, the
        // 12 nodes run at the target utilization.
        let rate = target_utilization * 12.0 / (4.0 * hdd.mean * objects as f64);
        let _ = class.arrival_rate;

        let mut builder = SystemSpec::builder();
        builder
            .node_services(vec![node_service; 12])
            .cache_capacity_chunks(cache_chunks)
            .seed(10);
        for _ in 0..objects {
            builder.file(FileConfig::new(rate, 7, 4, class.size_bytes));
        }
        let system = SproutSystem::new(builder.build().expect("valid spec")).expect("valid system");
        // Latencies span milliseconds to seconds across the size classes, so
        // tighten the convergence tolerance relative to the paper's 0.01 s.
        let mut opt_config = experiment_config();
        opt_config.tolerance = 1e-4;
        let plan = system.optimize_with(&opt_config).expect("stable system");

        let config = SimConfig::new(horizon, 10).with_cache_latency(ssd);
        let functional =
            system.simulate_with_config(CachePolicyChoice::Functional, Some(&plan), config);
        let lru = system.simulate_with_config(CachePolicyChoice::LruReplicated, None, config);

        let functional_ms = functional.overall.mean * 1e3;
        let lru_ms = lru.overall.mean * 1e3;
        println!(
            "{label}\t{functional_ms:.1}\t{lru_ms:.1}\t{:.1}\t{paper_opt:.0}\t{paper_lru:.0}",
            plan.objective * 1e3
        );
        if lru_ms > 0.0 {
            improvements.push(1.0 - functional_ms / lru_ms);
        }
    }
    let avg = improvements.iter().sum::<f64>() / improvements.len().max(1) as f64;
    println!(
        "# paper shape: latency grows with object size; optimal caching beats the LRU cache tier"
    );
    println!(
        "# at every size (26% average improvement). Measured average improvement: {:.1}%",
        avg * 100.0
    );
}
