//! Fig. 10 — Average access latency versus object size: optimized functional
//! caching vs Ceph's LRU cache-tier baseline vs the analytical bound.
//!
//! The paper stores 1000 objects of each Table III size class on its (7,4)
//! Ceph pool with a 10 GB cache, replays the trace-derived arrival rates for
//! 1800 s, and reports the mean access latency of (i) optimal functional
//! caching, (ii) the LRU replicated cache tier, and (iii) the analytical
//! bound. Latency grows with object size and functional caching wins at every
//! size (26 % on average).
//!
//! Sweep grid: object size class × policy {functional, lru} × backend
//! {analytic, byte}. The analytic cells carry the figure's latency numbers;
//! the byte cells re-run each `(size, policy)` point on the real
//! erasure-coded store — LRU promotions/evictions mirrored from the engine's
//! tier, every completed request decoded and verified against the original
//! payload. Byte-cell payloads are shrunk (plans, placements and hit/miss
//! decisions are size-independent) so the integrity leg stays affordable at
//! every size class. Artifact: `FIG_10.json` (+ non-diffed
//! `FIG_10.timing.json`).

use sprout::queueing::dist::ServiceDistribution;
use sprout::sim::sweep::{Sample, SweepGrid};
use sprout::sim::SimConfig;
use sprout::{policy_label, CachePolicyChoice, FileConfig, SproutSystem, SystemSpec};
use sprout_bench::{emit_with_timings, experiment_config, paper_scale, FigureCli};

/// Paper-reported mean access latency (milliseconds) per object size for
/// optimized caching and the Ceph cache-tier baseline.
const PAPER_MS: [(&str, f64, f64); 5] = [
    ("4MB", 8.0, 10.0),
    ("16MB", 384.0, 430.0),
    ("64MB", 2182.0, 2833.0),
    ("256MB", 7901.0, 11163.0),
    ("1GB", 21516.0, 39021.0),
];

const POLICIES: [CachePolicyChoice; 2] = [
    CachePolicyChoice::Functional,
    CachePolicyChoice::LruReplicated,
];

const BACKENDS: [&str; 2] = ["analytic", "byte"];

/// Payload size of byte-backend cells: decisions and plans are
/// size-independent, so small payloads verify the same request sequence.
const BYTE_OBJECT_BYTES: u64 = 16 * 1024;

fn main() {
    let cli = FigureCli::parse();
    let objects = match (paper_scale(), cli.quick) {
        (true, _) => 1000,
        (false, false) => 100,
        (false, true) => 50,
    };
    let horizon = if cli.quick { 300.0 } else { 1800.0 };
    let population_scale = 1000.0 / objects as f64;
    // The paper's testbed is driven hard enough that queueing dominates (its
    // reported latencies are 3-20x the bare chunk service time). The Table III
    // trace rates alone leave a 12-node cluster nearly idle, so each size
    // class is scaled to a common no-cache storage utilization (~70 %), which
    // recreates the paper's operating regime while preserving the class's
    // relative popularity within the trace.
    let target_utilization = 0.70;
    let cache_bytes = 10.0 * 1e9 / population_scale;

    let classes = sprout::workload::spec::table_iii_object_classes();
    let grid = SweepGrid::named("fig10_latency_vs_object_size", 10)
        .axis("object_size", classes.iter().map(|c| c.label.to_string()))
        .axis("policy", POLICIES.iter().map(|&p| policy_label(p)))
        .axis("backend", BACKENDS);
    let (report, timings) = grid.run_timed(
        cli.threads_or(FigureCli::available_threads()),
        |cell, _, seed| {
            let class = &classes[cell.idx("object_size")];
            let policy = POLICIES[cell.idx("policy")];
            let byte_backend = cell.coord("backend") == "byte";
            let (paper_label, paper_opt, paper_lru) = PAPER_MS[cell.idx("object_size")];
            assert_eq!(
                class.label, paper_label,
                "PAPER_MS must stay positionally aligned with table_iii_object_classes()"
            );
            let chunk_bytes = class.size_bytes.div_ceil(4);
            let hdd = sprout::cluster::DeviceModel::hdd().service_moments(chunk_bytes);
            let ssd = sprout::cluster::DeviceModel::ssd().mean_service_time(chunk_bytes);
            let node_service = ServiceDistribution::from_mean_variance(hdd.mean, hdd.variance());
            let cache_chunks = ((cache_bytes / chunk_bytes as f64) as usize).max(1);
            // Scale this class's per-object rate so that, without any cache,
            // the 12 nodes run at the target utilization.
            let rate = target_utilization * 12.0 / (4.0 * hdd.mean * objects as f64);

            let mut builder = SystemSpec::builder();
            builder
                .node_services(vec![node_service; 12])
                .cache_capacity_chunks(cache_chunks)
                .seed(10);
            let size_bytes = if byte_backend {
                BYTE_OBJECT_BYTES
            } else {
                class.size_bytes
            };
            for _ in 0..objects {
                builder.file(FileConfig::new(rate, 7, 4, size_bytes));
            }
            let system =
                SproutSystem::new(builder.build().expect("valid spec")).expect("valid system");

            let config = SimConfig::new(horizon, seed).with_cache_latency(ssd);
            let (plan, bound_ms) = match policy {
                CachePolicyChoice::Functional => {
                    // Latencies span milliseconds to seconds across the size
                    // classes, so tighten the convergence tolerance relative
                    // to the paper's 0.01 s.
                    let mut opt_config = experiment_config();
                    opt_config.tolerance = 1e-4;
                    let plan = system.optimize_with(&opt_config).expect("stable system");
                    let bound = plan.objective * 1e3;
                    (Some(plan), Some(bound))
                }
                _ => (None, None),
            };
            let sim = system.simulation(policy, plan.as_ref(), config);
            let report = if byte_backend {
                let mut backend = system
                    .byte_backend(policy, plan.as_ref(), seed)
                    .expect("every policy is byte-modelled");
                let report = sim.run_on(&mut backend);
                assert_eq!(
                    backend.verified_reconstructions(),
                    report.completed_requests,
                    "every completed request must decode-verify"
                );
                assert_eq!(backend.tier_mirror_failures(), 0);
                report
            } else {
                sim.run()
            };
            let paper_ms = match policy {
                CachePolicyChoice::Functional => paper_opt,
                _ => paper_lru,
            };
            let mut sample = Sample::new()
                .metric("latency_ms", report.overall.mean * 1e3)
                .metric("paper_ms", paper_ms)
                .counter("completed", report.completed_requests)
                .counter("cache_promotions", report.cache_promotions)
                .counter("cache_evictions", report.cache_evictions);
            if byte_backend {
                sample = sample.counter("reconstruction_failures", report.reconstruction_failures);
            }
            if let Some(bound) = bound_ms {
                sample = sample.metric("analytic_bound_ms", bound);
            }
            sample
        },
    );

    let improvements: Vec<f64> = classes
        .iter()
        .filter_map(|class| {
            let functional = report
                .find_row(&[
                    ("object_size", class.label),
                    ("policy", "functional"),
                    ("backend", "analytic"),
                ])?
                .metric("latency_ms")?
                .mean;
            let lru = report
                .find_row(&[
                    ("object_size", class.label),
                    ("policy", "lru"),
                    ("backend", "analytic"),
                ])?
                .metric("latency_ms")?
                .mean;
            (lru > 0.0).then(|| 1.0 - functional / lru)
        })
        .collect();
    let avg = improvements.iter().sum::<f64>() / improvements.len().max(1) as f64;
    let report = report
        .with_meta("scale", if paper_scale() { "paper" } else { "reduced" })
        .with_meta("quick", cli.quick.to_string())
        .with_meta("objects", objects.to_string())
        .with_meta("horizon_s", format!("{horizon}"))
        .with_meta("byte_object_bytes", BYTE_OBJECT_BYTES.to_string())
        .with_note(
            "paper shape: latency grows with object size; optimal caching beats the LRU cache \
             tier at every size (26% average improvement).",
        )
        .with_note(
            "byte cells replay each point on the real erasure-coded store with shrunk payloads: \
             identical hit/miss decisions, every request decode-verified (their latency_ms uses \
             the shrunk-payload SSD cache model; the figure's numbers are the analytic rows).",
        )
        .with_note(format!("measured average improvement: {:.1}%", avg * 100.0));
    emit_with_timings(&report, &timings, cli.out_or("FIG_10.json"));
}
