//! Table I + Fig. 5 — Evolution of cache content across three time bins.
//!
//! Ten files whose arrival rates follow Table I of the paper; the cache plan
//! is recomputed at every bin and the per-file cache occupancy is reported.
//! The paper observes that the files whose rates rise gain cache chunks and
//! the files whose rates drop lose them.
//!
//! Output: one line per (bin, file) with the arrival rate and cached chunks.

use sprout::optimizer::OptimizerConfig;
use sprout::workload::timebins::{table_i_schedule, RateSchedule, TimeBin};
use sprout::{SproutSystem, SystemSpec, TimeBinManager};
use sprout_bench::header;

fn main() {
    // The paper's 10-file experiment: (7,4) code on the 12 measured servers.
    // The published per-file rates (~1.5e-4/s) put negligible load on the
    // servers when only 10 files exist, so — as in our EXPERIMENTS.md note —
    // we scale the rates by 60x to recreate realistic contention while
    // keeping the *relative* Table I structure intact.
    let rate_boost = 60.0;
    let cache_chunks = 12;

    let spec = SystemSpec::builder()
        .node_service_rates(&sprout::workload::spec::paper_server_service_rates())
        .uniform_files(10, 4, 7, 0.000_15)
        .cache_capacity_chunks(cache_chunks)
        .seed(5)
        .build()
        .expect("valid spec");
    let system = SproutSystem::new(spec).expect("valid system");

    let schedule = RateSchedule::new(
        table_i_schedule(100.0)
            .bins()
            .iter()
            .map(|b| TimeBin::new(b.duration, b.rates.iter().map(|r| r * rate_boost).collect()))
            .collect(),
    );

    let manager = TimeBinManager::new(system, OptimizerConfig::default());
    let outcomes = manager.run(&schedule).expect("stable system");

    header(
        "Fig. 5 / Table I: cache content per file in each time bin",
        &["bin", "file", "arrival_rate_paper", "cached_chunks"],
    );
    for outcome in &outcomes {
        for (file, (&rate, &chunks)) in outcome
            .rates
            .iter()
            .zip(&outcome.plan.cached_chunks)
            .enumerate()
        {
            println!(
                "{}\t{}\t{:.6}\t{}",
                outcome.bin + 1,
                file + 1,
                rate / rate_boost,
                chunks
            );
        }
        println!(
            "# bin {}: cache used {}/{} chunks, latency bound {:.2} s, {} chunks evicted, {} added",
            outcome.bin + 1,
            outcome.plan.cache_chunks_used(),
            cache_chunks,
            outcome.plan.objective,
            outcome.chunks_removed(),
            outcome.chunks_added()
        );
    }
    println!("# paper shape: bin 1 favours files 4 & 9; bin 2 favours 1, 2, 6, 7; bin 3 favours 2, 7 (and 9)");
}
