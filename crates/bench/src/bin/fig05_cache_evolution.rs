//! Table I + Fig. 5 — Evolution of cache content across three time bins.
//!
//! Ten files whose arrival rates follow Table I of the paper; the cache plan
//! is recomputed at every bin and the per-file cache occupancy is reported.
//! The paper observes that the files whose rates rise gain cache chunks and
//! the files whose rates drop lose them.
//!
//! One sweep cell per time bin. Re-optimization warm-starts from the
//! previous bin's plan, so each cell replays the schedule prefix up to its
//! bin through [`TimeBinManager`] — three cheap optimizations at most, and
//! the cells stay independent (parallel, coordinate-seeded).
//!
//! Artifact: `FIG_05.json` — per bin, the latency bound and eviction/fill
//! counts as metrics plus the per-file rates and cache occupancy as series.

use sprout::optimizer::OptimizerConfig;
use sprout::sim::sweep::{Sample, SweepGrid};
use sprout::workload::timebins::table_i_schedule;
use sprout::{SproutSystem, SystemSpec, TimeBinManager};
use sprout_bench::{emit, FigureCli};

/// The paper's published per-file rates (~1.5e-4/s) put negligible load on
/// the 12 servers when only 10 files exist, so — as in our EXPERIMENTS.md
/// note — rates are boosted 60x to recreate realistic contention while
/// keeping the *relative* Table I structure intact.
const RATE_BOOST: f64 = 60.0;
const CACHE_CHUNKS: usize = 12;

fn table_i_system() -> SproutSystem {
    let spec = SystemSpec::builder()
        .node_service_rates(&sprout::workload::spec::paper_server_service_rates())
        .uniform_files(10, 4, 7, 0.000_15)
        .cache_capacity_chunks(CACHE_CHUNKS)
        .seed(5)
        .build()
        .expect("valid spec");
    SproutSystem::new(spec).expect("valid system")
}

fn main() {
    let cli = FigureCli::parse();
    let schedule = table_i_schedule(100.0).scaled(RATE_BOOST);

    let grid = SweepGrid::named("fig05_cache_evolution", 5)
        .axis("bin", (1..=schedule.len()).map(|b| b.to_string()));
    let report = grid.run(
        cli.threads_or(FigureCli::available_threads()),
        |cell, _, _| {
            let bin: usize = cell.coord("bin").parse().expect("axis label");
            let manager = TimeBinManager::new(table_i_system(), OptimizerConfig::default());
            let outcomes = manager
                .run(&schedule.truncated(bin))
                .expect("stable system");
            let outcome = outcomes.last().expect("at least one bin ran");
            Sample::new()
                .metric("latency_bound_s", outcome.plan.objective)
                .metric("cache_used_chunks", outcome.plan.cache_chunks_used() as f64)
                .metric("chunks_evicted", outcome.chunks_removed() as f64)
                .metric("chunks_added", outcome.chunks_added() as f64)
                .series(
                    "arrival_rate_paper",
                    outcome.rates.iter().map(|r| r / RATE_BOOST).collect(),
                )
                .series(
                    "cached_chunks",
                    outcome
                        .plan
                        .cached_chunks
                        .iter()
                        .map(|&c| c as f64)
                        .collect(),
                )
        },
    );

    let report = report
        .with_meta("quick", cli.quick.to_string())
        .with_meta("cache_capacity_chunks", CACHE_CHUNKS.to_string())
        .with_meta("rate_boost", format!("{RATE_BOOST}"))
        .with_meta(
            "series",
            "arrival_rate_paper and cached_chunks are per-file (files 1..10)",
        )
        .with_note(
            "paper shape: bin 1 favours files 4 & 9; bin 2 favours 1, 2, 6, 7; bin 3 favours \
             2, 7 (and 9)",
        );
    emit(&report, cli.out_or("FIG_05.json"));
}
