//! Compares freshly generated `SCENARIO_*.json` artifacts against the
//! committed latency baselines in `scenarios/BASELINES.json`.
//!
//! The committed scenario runs are seeded and advance virtual time, so a
//! `--quick` run of the same spec on any machine reproduces the same mean
//! latencies; a drift beyond the tolerance means the *code* changed the
//! numbers, not the runner. CI regenerates every artifact and runs this
//! checker; a deliberate model change re-records with `--update`.
//!
//! Usage:
//!
//! ```sh
//! check_scenario_baselines SCENARIO_a.json [SCENARIO_b.json ...] \
//!     [--baselines scenarios/BASELINES.json] [--tolerance 0.02] [--update]
//! ```
//!
//! Exit status: `0` when every per-cell `mean_latency_s` is within the
//! relative tolerance of its baseline (or after a successful `--update`),
//! `1` on any drift, missing baseline, or malformed artifact.

use std::collections::BTreeMap;

use serde_json::Value;

const DEFAULT_BASELINES: &str = "scenarios/BASELINES.json";
const DEFAULT_TOLERANCE: f64 = 0.02;

/// scenario name -> (cell label -> mean_latency_s)
type Baselines = BTreeMap<String, BTreeMap<String, f64>>;

fn cell_label(cell: &Value) -> String {
    let Value::Object(map) = cell else {
        die("row cell is not an object")
    };
    // BTreeMap iteration is already key-sorted, so the label is canonical.
    map.iter()
        .map(|(k, v)| format!("{k}={}", v.as_str().unwrap_or("?")))
        .collect::<Vec<String>>()
        .join(",")
}

/// Extracts `(scenario name, cell -> mean_latency_s)` from one artifact.
fn read_artifact(path: &str) -> (String, BTreeMap<String, f64>) {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
    let root: Value = serde_json::from_str(&text)
        .unwrap_or_else(|e| die(&format!("{path}: not valid JSON: {e}")));
    let name = root
        .get("sweep")
        .and_then(Value::as_str)
        .unwrap_or_else(|| die(&format!("{path}: missing \"sweep\" name")))
        .to_string();
    let rows = root
        .get("rows")
        .and_then(Value::as_array)
        .unwrap_or_else(|| die(&format!("{path}: missing \"rows\"")));
    let mut cells = BTreeMap::new();
    for row in rows {
        let mean = row
            .get("metrics")
            .and_then(|m| m.get("mean_latency_s"))
            .and_then(|m| m.get("mean"))
            .and_then(Value::as_f64)
            .unwrap_or_else(|| die(&format!("{path}: row without mean_latency_s")));
        let cell = row
            .get("cell")
            .unwrap_or_else(|| die(&format!("{path}: row without cell")));
        cells.insert(cell_label(cell), mean);
    }
    if cells.is_empty() {
        die(&format!("{path}: artifact has no rows"));
    }
    (name, cells)
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1);
}

fn main() {
    let mut artifacts: Vec<String> = Vec::new();
    let mut baselines_path = DEFAULT_BASELINES.to_string();
    let mut tolerance = DEFAULT_TOLERANCE;
    let mut update = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--baselines" => {
                baselines_path = args
                    .next()
                    .unwrap_or_else(|| die("--baselines needs a path"));
            }
            "--tolerance" => {
                tolerance = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--tolerance needs a number"));
            }
            "--update" => update = true,
            other if other.starts_with("--") => die(&format!("unknown flag {other}")),
            path => artifacts.push(path.to_string()),
        }
    }
    if artifacts.is_empty() {
        die("no SCENARIO_*.json artifacts given");
    }

    let fresh: Baselines = artifacts.iter().map(|path| read_artifact(path)).collect();

    if update {
        let rendered = serde_json::to_string_pretty(&fresh).expect("baselines serialize");
        std::fs::write(&baselines_path, rendered + "\n")
            .unwrap_or_else(|e| die(&format!("cannot write {baselines_path}: {e}")));
        println!(
            "recorded {} scenario baseline(s) to {baselines_path}",
            fresh.len()
        );
        return;
    }

    let text = std::fs::read_to_string(&baselines_path).unwrap_or_else(|e| {
        die(&format!(
            "cannot read {baselines_path}: {e} (run with --update to record)"
        ))
    });
    let committed: Baselines = serde_json::from_str(&text)
        .unwrap_or_else(|e| die(&format!("{baselines_path}: malformed: {e}")));

    let mut failures = 0usize;
    let mut checked = 0usize;
    for (name, cells) in &fresh {
        let Some(expected_cells) = committed.get(name) else {
            eprintln!("FAIL {name}: no committed baseline (run with --update)");
            failures += 1;
            continue;
        };
        for (cell, &mean) in cells {
            let Some(&expected) = expected_cells.get(cell) else {
                eprintln!("FAIL {name} [{cell}]: cell missing from baseline");
                failures += 1;
                continue;
            };
            checked += 1;
            let drift = (mean - expected).abs() / expected.abs().max(1e-12);
            if drift > tolerance {
                eprintln!(
                    "FAIL {name} [{cell}]: mean_latency_s {mean:.6} vs baseline \
                     {expected:.6} (drift {:.2}% > {:.2}%)",
                    drift * 100.0,
                    tolerance * 100.0
                );
                failures += 1;
            } else {
                println!(
                    "ok   {name} [{cell}]: {mean:.6} within {:.2}% of {expected:.6}",
                    tolerance * 100.0
                );
            }
        }
    }

    if failures > 0 {
        eprintln!("{failures} baseline check(s) failed ({checked} compared)");
        std::process::exit(1);
    }
    println!("all {checked} scenario latency cell(s) match the committed baselines");
}
