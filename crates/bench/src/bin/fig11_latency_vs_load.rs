//! Fig. 11 — Average access latency versus workload intensity.
//!
//! The paper fixes 64 MB objects (1000 of them, 10 GB cache) and sweeps the
//! aggregate read request arrival rate over {0.5, 1, 2, 4, 8} requests/second.
//! Latency grows steeply with load and optimal functional caching beats the
//! LRU cache tier at every intensity (23.86 % average reduction).

use sprout::queueing::dist::ServiceDistribution;
use sprout::sim::SimConfig;
use sprout::{CachePolicyChoice, FileConfig, SproutSystem, SystemSpec};
use sprout_bench::{experiment_config, header, paper_scale};

/// Paper-reported mean latency (ms): (aggregate rate, optimized, LRU baseline).
const PAPER_MS: [(f64, f64, f64); 5] = [
    (0.5, 2055.0, 2800.0),
    (1.0, 4730.0, 6510.0),
    (2.0, 18379.0, 24179.0),
    (4.0, 44679.0, 58917.0),
    (8.0, 112172.0, 135468.0),
];

fn main() {
    let objects = if paper_scale() { 1000 } else { 100 };
    let population_scale = 1000.0 / objects as f64;
    let object_bytes = 64 * sprout::workload::spec::MB;
    let chunk_bytes = object_bytes / 4;
    let hdd = sprout::cluster::DeviceModel::hdd().service_moments(chunk_bytes);
    let ssd = sprout::cluster::DeviceModel::ssd().mean_service_time(chunk_bytes);
    let node_service = ServiceDistribution::from_mean_variance(hdd.mean, hdd.variance());
    let cache_chunks = ((10.0 * 1e9 / population_scale / chunk_bytes as f64) as usize).max(1);
    let horizon = 1800.0;

    header(
        "Fig. 11: mean access latency (ms) of 64 MB objects vs aggregate arrival rate",
        &[
            "aggregate_rate",
            "functional_ms",
            "lru_baseline_ms",
            "analytic_bound_ms",
            "paper_functional_ms",
            "paper_lru_ms",
        ],
    );

    let mut improvements = Vec::new();
    // The paper's testbed saturates well below an aggregate rate of 8 req/s
    // (its latencies reach 100+ seconds); our 12-node model with the Table IV
    // service times only reaches ~40 % utilization at that rate, so the sweep
    // is scaled by a constant factor that places its top point at ~70 %
    // utilization — the same qualitative regime, with the paper's labels kept.
    let load_factor = 1.8;
    for (aggregate, paper_opt, paper_lru) in PAPER_MS {
        let per_object = aggregate * load_factor / objects as f64;
        let mut builder = SystemSpec::builder();
        builder
            .node_services(vec![node_service; 12])
            .cache_capacity_chunks(cache_chunks)
            .seed(11);
        for _ in 0..objects {
            builder.file(FileConfig::new(per_object, 7, 4, object_bytes));
        }
        let system = SproutSystem::new(builder.build().expect("valid spec")).expect("valid system");
        let mut opt_config = experiment_config();
        opt_config.tolerance = 1e-4;
        let plan = system
            .optimize_with(&opt_config)
            .expect("the swept loads keep the cluster stable");

        let config = SimConfig::new(horizon, 11).with_cache_latency(ssd);
        let functional =
            system.simulate_with_config(CachePolicyChoice::Functional, Some(&plan), config);
        let lru = system.simulate_with_config(CachePolicyChoice::LruReplicated, None, config);
        let functional_ms = functional.overall.mean * 1e3;
        let lru_ms = lru.overall.mean * 1e3;
        println!(
            "{aggregate}\t{functional_ms:.1}\t{lru_ms:.1}\t{:.1}\t{paper_opt:.0}\t{paper_lru:.0}",
            plan.objective * 1e3
        );
        if lru_ms > 0.0 {
            improvements.push(1.0 - functional_ms / lru_ms);
        }
    }
    let avg = improvements.iter().sum::<f64>() / improvements.len().max(1) as f64;
    println!("# paper shape: latency rises steeply with load; optimal caching beats LRU at every");
    println!(
        "# intensity (23.86% average). Measured average improvement: {:.1}%",
        avg * 100.0
    );
}
