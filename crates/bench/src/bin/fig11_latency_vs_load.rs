//! Fig. 11 — Average access latency versus workload intensity.
//!
//! The paper fixes 64 MB objects (1000 of them, 10 GB cache) and sweeps the
//! aggregate read request arrival rate over {0.5, 1, 2, 4, 8} requests/second.
//! Latency grows steeply with load and optimal functional caching beats the
//! LRU cache tier at every intensity (23.86 % average reduction).
//!
//! Sweep grid: aggregate rate × policy {functional, lru} × backend
//! {analytic, byte}. Analytic cells carry the figure's latency numbers; byte
//! cells re-run each point on the real erasure-coded store (engine-mirrored
//! LRU tier, per-request decode verification) with shrunk payloads.
//! Artifact: `FIG_11.json` (+ non-diffed `FIG_11.timing.json`).

use sprout::queueing::dist::ServiceDistribution;
use sprout::sim::sweep::{Sample, SweepGrid};
use sprout::sim::SimConfig;
use sprout::{policy_label, CachePolicyChoice, FileConfig, SproutSystem, SystemSpec};
use sprout_bench::{emit_with_timings, experiment_config, paper_scale, FigureCli};

/// Paper-reported mean latency (ms): (aggregate rate, optimized, LRU baseline).
const PAPER_MS: [(f64, f64, f64); 5] = [
    (0.5, 2055.0, 2800.0),
    (1.0, 4730.0, 6510.0),
    (2.0, 18379.0, 24179.0),
    (4.0, 44679.0, 58917.0),
    (8.0, 112172.0, 135468.0),
];

const POLICIES: [CachePolicyChoice; 2] = [
    CachePolicyChoice::Functional,
    CachePolicyChoice::LruReplicated,
];

const BACKENDS: [&str; 2] = ["analytic", "byte"];

/// Payload size of byte-backend cells (see fig10: decisions are
/// size-independent, so small payloads verify the same request sequence).
const BYTE_OBJECT_BYTES: u64 = 64 * 1024;

fn main() {
    let cli = FigureCli::parse();
    let objects = match (paper_scale(), cli.quick) {
        (true, _) => 1000,
        (false, false) => 100,
        (false, true) => 50,
    };
    let horizon = if cli.quick { 300.0 } else { 1800.0 };
    let population_scale = 1000.0 / objects as f64;
    let object_bytes = 64 * sprout::workload::spec::MB;
    let chunk_bytes = object_bytes / 4;
    let hdd = sprout::cluster::DeviceModel::hdd().service_moments(chunk_bytes);
    let ssd = sprout::cluster::DeviceModel::ssd().mean_service_time(chunk_bytes);
    let node_service = ServiceDistribution::from_mean_variance(hdd.mean, hdd.variance());
    let cache_chunks = ((10.0 * 1e9 / population_scale / chunk_bytes as f64) as usize).max(1);
    // The paper's testbed saturates well below an aggregate rate of 8 req/s
    // (its latencies reach 100+ seconds); our 12-node model with the Table IV
    // service times only reaches ~40 % utilization at that rate, so the sweep
    // is scaled by a constant factor that places its top point at ~70 %
    // utilization — the same qualitative regime, with the paper's labels kept.
    let load_factor = 1.8;

    let grid = SweepGrid::named("fig11_latency_vs_load", 11)
        .axis(
            "aggregate_rate",
            PAPER_MS.iter().map(|(rate, _, _)| format!("{rate}")),
        )
        .axis("policy", POLICIES.iter().map(|&p| policy_label(p)))
        .axis("backend", BACKENDS);
    let (report, timings) = grid.run_timed(
        cli.threads_or(FigureCli::available_threads()),
        |cell, _, seed| {
            let (aggregate, paper_opt, paper_lru) = PAPER_MS[cell.idx("aggregate_rate")];
            let policy = POLICIES[cell.idx("policy")];
            let byte_backend = cell.coord("backend") == "byte";
            let per_object = aggregate * load_factor / objects as f64;
            let mut builder = SystemSpec::builder();
            builder
                .node_services(vec![node_service; 12])
                .cache_capacity_chunks(cache_chunks)
                .seed(11);
            let size_bytes = if byte_backend {
                BYTE_OBJECT_BYTES
            } else {
                object_bytes
            };
            for _ in 0..objects {
                builder.file(FileConfig::new(per_object, 7, 4, size_bytes));
            }
            let system =
                SproutSystem::new(builder.build().expect("valid spec")).expect("valid system");

            let config = SimConfig::new(horizon, seed).with_cache_latency(ssd);
            let (plan, bound_ms) = match policy {
                CachePolicyChoice::Functional => {
                    let mut opt_config = experiment_config();
                    opt_config.tolerance = 1e-4;
                    let plan = system
                        .optimize_with(&opt_config)
                        .expect("the swept loads keep the cluster stable");
                    let bound = plan.objective * 1e3;
                    (Some(plan), Some(bound))
                }
                _ => (None, None),
            };
            let sim = system.simulation(policy, plan.as_ref(), config);
            let report = if byte_backend {
                let mut backend = system
                    .byte_backend(policy, plan.as_ref(), seed)
                    .expect("every policy is byte-modelled");
                let report = sim.run_on(&mut backend);
                assert_eq!(
                    backend.verified_reconstructions(),
                    report.completed_requests,
                    "every completed request must decode-verify"
                );
                assert_eq!(backend.tier_mirror_failures(), 0);
                report
            } else {
                sim.run()
            };
            let paper_ms = match policy {
                CachePolicyChoice::Functional => paper_opt,
                _ => paper_lru,
            };
            let mut sample = Sample::new()
                .metric("latency_ms", report.overall.mean * 1e3)
                .metric("paper_ms", paper_ms)
                .counter("completed", report.completed_requests)
                .counter("cache_promotions", report.cache_promotions)
                .counter("cache_evictions", report.cache_evictions);
            if byte_backend {
                sample = sample.counter("reconstruction_failures", report.reconstruction_failures);
            }
            if let Some(bound) = bound_ms {
                sample = sample.metric("analytic_bound_ms", bound);
            }
            sample
        },
    );

    let improvements: Vec<f64> = PAPER_MS
        .iter()
        .filter_map(|(rate, _, _)| {
            let label = format!("{rate}");
            let functional = report
                .find_row(&[
                    ("aggregate_rate", label.as_str()),
                    ("policy", "functional"),
                    ("backend", "analytic"),
                ])?
                .metric("latency_ms")?
                .mean;
            let lru = report
                .find_row(&[
                    ("aggregate_rate", label.as_str()),
                    ("policy", "lru"),
                    ("backend", "analytic"),
                ])?
                .metric("latency_ms")?
                .mean;
            (lru > 0.0).then(|| 1.0 - functional / lru)
        })
        .collect();
    let avg = improvements.iter().sum::<f64>() / improvements.len().max(1) as f64;
    let report = report
        .with_meta("scale", if paper_scale() { "paper" } else { "reduced" })
        .with_meta("quick", cli.quick.to_string())
        .with_meta("objects", objects.to_string())
        .with_meta("horizon_s", format!("{horizon}"))
        .with_meta("load_factor", format!("{load_factor}"))
        .with_meta("byte_object_bytes", BYTE_OBJECT_BYTES.to_string())
        .with_note(
            "paper shape: latency rises steeply with load; optimal caching beats LRU at every \
             intensity (23.86% average).",
        )
        .with_note(
            "byte cells replay each point on the real erasure-coded store with shrunk payloads: \
             identical hit/miss decisions, every request decode-verified (their latency_ms uses \
             the shrunk-payload SSD cache model; the figure's numbers are the analytic rows).",
        )
        .with_note(format!("measured average improvement: {:.1}%", avg * 100.0));
    emit_with_timings(&report, &timings, cli.out_or("FIG_11.json"));
}
