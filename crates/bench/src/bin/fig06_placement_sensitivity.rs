//! Fig. 6 — Cache placement depends on content placement, not only on
//! arrival rates.
//!
//! Ten (7,4)-coded files on 12 servers: files 1–3 are placed on the first
//! seven servers, the remaining files on the last seven (so servers 6 and 7
//! host chunks of every file). The arrival rate of the first two files is
//! swept over the paper's six values while the others stay fixed; the paper
//! shows that the first two files only start earning cache chunks once their
//! rate is high enough to outweigh their lightly-loaded placement.
//!
//! Output: one line per swept arrival rate with the cache chunks allocated to
//! the first two files and to the last six files.

use sprout::optimizer::OptimizerConfig;
use sprout::{FileConfig, SproutSystem, SystemSpec};
use sprout_bench::header;

fn main() {
    // The paper's swept arrival rates for files 1-2 (requests/second).
    let sweep = [
        0.000_125,
        0.000_156_3,
        0.000_178_6,
        0.000_208_3,
        0.000_25,
        0.000_277_8,
    ];
    // Fixed rates: files 3-4 at 0.0000962, files 5-10 at 0.0001042.
    // As in fig05, rates are boosted so that 10 files create the per-node load
    // the paper's full population would; the *relative* rates are unchanged.
    let boost = 60.0;
    let cache_chunks = 10;

    header(
        "Fig. 6: cache chunks vs arrival rate of the first two files",
        &[
            "lambda_first_two_paper",
            "chunks_files_1_2",
            "chunks_files_3_4",
            "chunks_files_5_10",
        ],
    );

    for &lambda in &sweep {
        let mut builder = SystemSpec::builder();
        builder
            .node_service_rates(&sprout::workload::spec::paper_server_service_rates())
            .cache_capacity_chunks(cache_chunks)
            .seed(6);
        let first_seven: Vec<usize> = (0..7).collect();
        let last_seven: Vec<usize> = (5..12).collect();
        for i in 0..10usize {
            let (rate, placement) = match i {
                0 | 1 => (lambda, first_seven.clone()),
                2 => (0.000_096_2, first_seven.clone()),
                3 => (0.000_096_2, last_seven.clone()),
                _ => (0.000_104_2, last_seven.clone()),
            };
            builder.file(
                FileConfig::new(rate * boost, 7, 4, 100 * sprout::workload::spec::MB)
                    .with_placement(placement),
            );
        }
        let system = SproutSystem::new(builder.build().expect("valid spec")).expect("valid system");
        let plan = system
            .optimize_with(&OptimizerConfig::default())
            .expect("stable system");
        let d = &plan.cached_chunks;
        let first_two: usize = d[..2].iter().sum();
        let mid: usize = d[2..4].iter().sum();
        let last_six: usize = d[4..].iter().sum();
        println!("{lambda:.7}\t{first_two}\t{mid}\t{last_six}");
    }
    println!(
        "# paper shape: at the lowest rate the first two files get no cache despite having the"
    );
    println!("# highest arrival rate (their servers are lightly loaded); their share grows with the rate.");
}
