//! Fig. 6 — Cache placement depends on content placement, not only on
//! arrival rates.
//!
//! Ten (7,4)-coded files on 12 servers: files 1–3 are placed on the first
//! seven servers, the remaining files on the last seven (so servers 6 and 7
//! host chunks of every file). The arrival rate of the first two files is
//! swept over the paper's six values while the others stay fixed; the paper
//! shows that the first two files only start earning cache chunks once their
//! rate is high enough to outweigh their lightly-loaded placement.
//!
//! One sweep cell per swept arrival rate. Artifact: `FIG_06.json` — per
//! rate, the cache chunks earned by files 1–2, 3–4 and 5–10.

use sprout::optimizer::OptimizerConfig;
use sprout::sim::sweep::{Sample, SweepGrid};
use sprout::{FileConfig, SproutSystem, SystemSpec};
use sprout_bench::{emit, FigureCli};

/// As in fig05, rates are boosted so that 10 files create the per-node load
/// the paper's full population would; the *relative* rates are unchanged.
const RATE_BOOST: f64 = 60.0;
const CACHE_CHUNKS: usize = 10;

fn system_with_first_two_at(lambda: f64) -> SproutSystem {
    let mut builder = SystemSpec::builder();
    builder
        .node_service_rates(&sprout::workload::spec::paper_server_service_rates())
        .cache_capacity_chunks(CACHE_CHUNKS)
        .seed(6);
    let first_seven: Vec<usize> = (0..7).collect();
    let last_seven: Vec<usize> = (5..12).collect();
    for i in 0..10usize {
        // Fixed rates: files 3-4 at 0.0000962, files 5-10 at 0.0001042.
        let (rate, placement) = match i {
            0 | 1 => (lambda, first_seven.clone()),
            2 => (0.000_096_2, first_seven.clone()),
            3 => (0.000_096_2, last_seven.clone()),
            _ => (0.000_104_2, last_seven.clone()),
        };
        builder.file(
            FileConfig::new(rate * RATE_BOOST, 7, 4, 100 * sprout::workload::spec::MB)
                .with_placement(placement),
        );
    }
    SproutSystem::new(builder.build().expect("valid spec")).expect("valid system")
}

fn main() {
    let cli = FigureCli::parse();
    // The paper's swept arrival rates for files 1-2 (requests/second).
    let sweep = [
        0.000_125,
        0.000_156_3,
        0.000_178_6,
        0.000_208_3,
        0.000_25,
        0.000_277_8,
    ];

    let grid = SweepGrid::named("fig06_placement_sensitivity", 6).axis(
        "lambda_first_two_paper",
        sweep.iter().map(|l| format!("{l:.7}")),
    );
    let report = grid.run(
        cli.threads_or(FigureCli::available_threads()),
        |cell, _, _| {
            let lambda: f64 = cell
                .coord("lambda_first_two_paper")
                .parse()
                .expect("axis label");
            let plan = system_with_first_two_at(lambda)
                .optimize_with(&OptimizerConfig::default())
                .expect("stable system");
            let d = &plan.cached_chunks;
            Sample::new()
                .metric("chunks_files_1_2", d[..2].iter().sum::<usize>() as f64)
                .metric("chunks_files_3_4", d[2..4].iter().sum::<usize>() as f64)
                .metric("chunks_files_5_10", d[4..].iter().sum::<usize>() as f64)
        },
    );

    let report = report
        .with_meta("quick", cli.quick.to_string())
        .with_meta("cache_capacity_chunks", CACHE_CHUNKS.to_string())
        .with_meta("rate_boost", format!("{RATE_BOOST}"))
        .with_note(
            "paper shape: at the lowest rate the first two files get no cache despite having \
             the highest arrival rate (their servers are lightly loaded); their share grows \
             with the rate.",
        );
    emit(&report, cli.out_or("FIG_06.json"));
}
