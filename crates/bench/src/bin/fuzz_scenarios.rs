//! The seeded scenario fuzzer's CI entry point.
//!
//! Generates bounded random systems + event streams with
//! [`sprout::ScenarioFuzzer`] and checks every engine invariant on each one:
//! event-queue and in-flight high-water bounds, shard-count bit-identity,
//! byte-backend/analytic agreement, decode verification of every completed
//! request, and zero tier-mirror failures. Any violation prints the case
//! seed (replay it with `--seed <that seed> --iterations 1`) and exits
//! non-zero.
//!
//! Usage:
//!
//! ```sh
//! cargo run --release -p sprout-bench --bin fuzz_scenarios -- \
//!     [--iterations N] [--seed S]
//! ```
//!
//! Environment fallbacks (what CI sets): `SPROUT_FUZZ_ITERS` for the
//! iteration count (default 50) and `SPROUT_FUZZ_SEED` for the base seed
//! (decimal or `0x`-prefixed hex; default [`sprout::fuzz::DEFAULT_BASE_SEED`]),
//! so a CI failure reproduces locally by exporting the same two variables.

use sprout::fuzz::{ScenarioFuzzer, DEFAULT_BASE_SEED};

fn parse_seed(value: &str) -> Option<u64> {
    match value
        .strip_prefix("0x")
        .or_else(|| value.strip_prefix("0X"))
    {
        Some(hex) => u64::from_str_radix(hex, 16).ok(),
        None => value.parse().ok(),
    }
}

fn env_or<T>(name: &str, parse: impl Fn(&str) -> Option<T>, default: T) -> T {
    match std::env::var(name) {
        Ok(value) => parse(&value).unwrap_or_else(|| {
            eprintln!("error: {name}='{value}' does not parse");
            std::process::exit(2);
        }),
        Err(_) => default,
    }
}

fn main() {
    let mut iterations = env_or("SPROUT_FUZZ_ITERS", |v| v.parse().ok(), 50usize);
    let mut base_seed = env_or("SPROUT_FUZZ_SEED", parse_seed, DEFAULT_BASE_SEED);

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value_of = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("error: {flag} requires a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--iterations" => {
                let value = value_of("--iterations");
                iterations = value.parse().unwrap_or_else(|_| {
                    eprintln!("error: --iterations expects a number, got '{value}'");
                    std::process::exit(2);
                });
            }
            "--seed" => {
                let value = value_of("--seed");
                base_seed = parse_seed(&value).unwrap_or_else(|| {
                    eprintln!("error: --seed expects a u64 (decimal or 0x hex), got '{value}'");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("unknown argument '{other}' (supported: --iterations N, --seed S)");
                std::process::exit(2);
            }
        }
    }

    println!("# fuzz_scenarios: {iterations} iterations, base seed {base_seed:#018x}");
    let fuzzer = ScenarioFuzzer::new(base_seed);
    let mut total_completed = 0u64;
    let mut total_failed = 0u64;
    let mut total_events = 0usize;
    for index in 0..iterations {
        let case = fuzzer.case(index);
        match ScenarioFuzzer::run_case(&case) {
            Ok(stats) => {
                println!(
                    "case {index:>4} seed {seed:#018x}: ok ({nodes} nodes, {files} files, \
                     ({n},{k}) code, {events} events, {completed} completed)",
                    seed = case.seed,
                    nodes = case.spec.node_services.len(),
                    files = case.spec.files.len(),
                    n = case.spec.files[0].n,
                    k = case.spec.files[0].k,
                    events = stats.events,
                    completed = stats.completed,
                );
                total_completed += stats.completed;
                total_failed += stats.failed;
                total_events += stats.events;
            }
            Err(failure) => {
                eprintln!("case {index} FAILED: {failure}");
                eprintln!(
                    "replay: fuzz_scenarios --seed {:#x} --iterations {}",
                    base_seed,
                    index + 1
                );
                std::process::exit(1);
            }
        }
    }
    println!(
        "# all {iterations} cases passed: {total_completed} completed requests, \
         {total_failed} scheduled-while-down failures, {total_events} scenario events"
    );
}
