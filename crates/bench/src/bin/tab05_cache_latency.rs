//! Table V — Chunk read latency from the SSD cache.
//!
//! The paper measures the read latency of different chunk sizes from the SAS
//! SSDs used as the cache device and argues it is negligible compared with
//! the HDD-backed OSD reads of Table IV (which justifies ignoring cache-read
//! latency in the optimization). This binary prints the model's values next
//! to the paper's and the HDD/SSD ratio.

use sprout::cluster::DeviceModel;
use sprout_bench::header;

fn main() {
    header(
        "Table V: chunk read latency from the cache (milliseconds)",
        &[
            "chunk_size",
            "paper_ssd_ms",
            "model_ssd_ms",
            "model_hdd_ms",
            "hdd_over_ssd",
        ],
    );
    let ssd = DeviceModel::ssd();
    let hdd = DeviceModel::hdd();
    for (bytes, paper_ms) in sprout::workload::spec::table_v_ssd_latency_ms() {
        let ssd_ms = ssd.mean_service_time(bytes) * 1e3;
        let hdd_ms = hdd.mean_service_time(bytes) * 1e3;
        println!(
            "{}MB\t{paper_ms:.3}\t{ssd_ms:.3}\t{hdd_ms:.3}\t{:.1}x",
            bytes / 1_000_000,
            hdd_ms / ssd_ms
        );
    }
    println!(
        "# paper conclusion: cache reads are 3-20x faster than OSD reads at every chunk size,"
    );
    println!("# so cache-read latency can be neglected when optimizing the placement.");
}
