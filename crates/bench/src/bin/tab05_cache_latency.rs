//! Table V — Chunk read latency from the SSD cache.
//!
//! The paper measures the read latency of different chunk sizes from the SAS
//! SSDs used as the cache device and argues it is negligible compared with
//! the HDD-backed OSD reads of Table IV (which justifies ignoring cache-read
//! latency in the optimization). One sweep cell per chunk size compares the
//! model's values with the paper's and reports the HDD/SSD ratio.
//!
//! Artifact: `TAB_05.json`.

use sprout::cluster::DeviceModel;
use sprout::sim::sweep::{Sample, SweepGrid};
use sprout_bench::{emit, FigureCli};

fn main() {
    let cli = FigureCli::parse();
    let table = sprout::workload::spec::table_v_ssd_latency_ms();

    let grid = SweepGrid::named("tab05_cache_latency", 5).axis(
        "chunk_size_mb",
        table
            .iter()
            .map(|(bytes, _)| (bytes / 1_000_000).to_string()),
    );
    let report = grid.run(
        cli.threads_or(FigureCli::available_threads()),
        |cell, _, _| {
            let (bytes, paper_ms) = table[cell.idx("chunk_size_mb")];
            let ssd_ms = DeviceModel::ssd().mean_service_time(bytes) * 1e3;
            let hdd_ms = DeviceModel::hdd().mean_service_time(bytes) * 1e3;
            Sample::new()
                .metric("paper_ssd_ms", paper_ms)
                .metric("model_ssd_ms", ssd_ms)
                .metric("model_hdd_ms", hdd_ms)
                .metric("hdd_over_ssd", hdd_ms / ssd_ms)
        },
    );

    let report = report.with_meta("quick", cli.quick.to_string()).with_note(
        "paper conclusion: cache reads are 3-20x faster than OSD reads at every chunk \
             size, so cache-read latency can be neglected when optimizing the placement.",
    );
    emit(&report, cli.out_or("TAB_05.json"));
}
