//! Fig. 9 + Table IV — Chunk service-time distribution at an HDD OSD.
//!
//! The paper measures the CDF of chunk read service times on its Ceph testbed
//! for chunk sizes of 1, 4, 16 and 64 MB (256 MB is reported separately) and
//! tabulates the mean and variance (Table IV). Our HDD device model is
//! calibrated to those numbers; this binary samples it and prints both the
//! CDF points and the mean/variance comparison.

use sprout::cluster::DeviceModel;
use sprout_bench::header;

fn main() {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    let device = DeviceModel::hdd();
    let sizes_mb = [1u64, 4, 16, 64];
    let samples_per_size = 20_000;

    header(
        "Fig. 9: CDF of chunk service time (seconds) for read operations",
        &["chunk_size_mb", "service_time_s", "cdf"],
    );
    for &mb in &sizes_mb {
        let dist = device.service_distribution(mb * 1_000_000);
        let mut samples: Vec<f64> = (0..samples_per_size)
            .map(|_| dist.sample(&mut rng))
            .collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for pct in [1usize, 5, 10, 25, 50, 75, 90, 95, 99] {
            let idx = (samples.len() - 1) * pct / 100;
            println!("{mb}\t{:.5}\t{:.2}", samples[idx], pct as f64 / 100.0);
        }
    }

    println!("\n# Table IV: mean / variance of chunk service time (milliseconds)");
    println!("chunk_size\tpaper_mean_ms\tmodel_mean_ms\tpaper_var_ms2\tmodel_var_ms2");
    for (bytes, paper_mean, paper_var) in sprout::workload::spec::table_iv_hdd_service_ms() {
        let m = device.service_moments(bytes);
        println!(
            "{}MB\t{paper_mean:.3}\t{:.3}\t{paper_var:.3}\t{:.3}",
            bytes / 1_000_000,
            m.mean * 1e3,
            m.variance() * 1e6
        );
    }
    println!("# the model reproduces Table IV exactly at the calibration points and interpolates between them");
}
