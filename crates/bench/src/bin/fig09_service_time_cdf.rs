//! Fig. 9 + Table IV — Chunk service-time distribution at an HDD OSD.
//!
//! The paper measures the CDF of chunk read service times on its Ceph testbed
//! for chunk sizes of 1, 4, 16 and 64 MB (256 MB is reported separately) and
//! tabulates the mean and variance (Table IV). Our HDD device model is
//! calibrated to those numbers; one sweep cell per chunk size samples it and
//! reports both the CDF points and the mean/variance comparison.
//!
//! Artifact: `FIG_09.json` — per chunk size, model-vs-paper moments as
//! metrics and the service-time CDF (at the percentiles in `cdf_levels`) as
//! a series.

use rand::SeedableRng;
use sprout::cluster::DeviceModel;
use sprout::sim::sweep::{Sample, SweepGrid};
use sprout_bench::{emit, FigureCli};

const CDF_LEVELS: [usize; 9] = [1, 5, 10, 25, 50, 75, 90, 95, 99];

fn main() {
    let cli = FigureCli::parse();
    let sizes_mb = [1u64, 4, 16, 64];
    let samples_per_size = if cli.quick { 4_000 } else { 20_000 };

    let grid = SweepGrid::named("fig09_service_time_cdf", 9)
        .axis("chunk_size_mb", sizes_mb.iter().map(|m| m.to_string()));
    let report = grid.run(
        cli.threads_or(FigureCli::available_threads()),
        |cell, _, seed| {
            let mb: u64 = cell.coord("chunk_size_mb").parse().expect("axis label");
            let bytes = mb * 1_000_000;
            let device = DeviceModel::hdd();
            let dist = device.service_distribution(bytes);
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let mut samples: Vec<f64> = (0..samples_per_size)
                .map(|_| dist.sample(&mut rng))
                .collect();
            samples.sort_by(|a, b| a.partial_cmp(b).expect("service times are finite"));
            let cdf: Vec<f64> = CDF_LEVELS
                .iter()
                .map(|&pct| samples[(samples.len() - 1) * pct / 100])
                .collect();

            let moments = device.service_moments(bytes);
            let (paper_mean_ms, paper_var_ms2) = sprout::workload::spec::table_iv_hdd_service_ms()
                .into_iter()
                .find(|&(b, _, _)| b == bytes)
                .map(|(_, mean, var)| (mean, var))
                .expect("every swept size is a Table IV calibration point");
            Sample::new()
                .metric("model_mean_ms", moments.mean * 1e3)
                .metric("model_var_ms2", moments.variance() * 1e6)
                .metric("paper_mean_ms", paper_mean_ms)
                .metric("paper_var_ms2", paper_var_ms2)
                .series("cdf_service_time_s", cdf)
        },
    );

    let report = report
        .with_meta("quick", cli.quick.to_string())
        .with_meta("samples_per_size", samples_per_size.to_string())
        .with_meta(
            "cdf_levels",
            CDF_LEVELS
                .iter()
                .map(|p| p.to_string())
                .collect::<Vec<_>>()
                .join(","),
        )
        .with_note(
            "the model reproduces Table IV exactly at the calibration points and interpolates \
             between them",
        );
    emit(&report, cli.out_or("FIG_09.json"));
}
