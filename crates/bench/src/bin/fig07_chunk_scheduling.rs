//! Fig. 7 — Chunks served from the cache versus the storage nodes over time.
//!
//! The paper runs two workload intensities over a 100-second time bin split
//! into 20 slots of 5 seconds, counting how many chunk requests the client
//! satisfies from the cache versus the OSDs. With a cache of 1250 chunks for
//! 1000 objects (each needing 4 chunks), roughly a third of the chunks come
//! from the cache under both intensities.
//!
//! Output: per slot, the chunk counts from cache and storage, for both
//! workloads.

use sprout::{CachePolicyChoice, SproutSystem};
use sprout_bench::{experiment_config, header, paper_system, scale_cache};

fn run(system: &SproutSystem, label: &str, rate_multiplier: f64) {
    let rates: Vec<f64> = system
        .spec()
        .files
        .iter()
        .map(|f| f.arrival_rate * rate_multiplier)
        .collect();
    let system = system.with_arrival_rates(&rates).expect("valid rates");
    let plan = system
        .optimize_with(&experiment_config())
        .expect("stable system");
    // One 100-second time bin, 5-second slots; warm-up disabled so the counts
    // cover the whole bin like the paper's plot.
    let report = system.simulate(CachePolicyChoice::Functional, Some(&plan), 100.0, 7);
    for (slot, (&cache, &storage)) in report
        .slots
        .cache_chunks
        .iter()
        .zip(&report.slots.storage_chunks)
        .enumerate()
    {
        println!("{label}\t{}\t{cache}\t{storage}", slot + 1);
    }
    println!(
        "# {label}: cache fraction over the bin = {:.1}% (paper reports ~33%)",
        report.slots.cache_fraction() * 100.0
    );
}

fn main() {
    header(
        "Fig. 7: chunk requests served by cache vs storage per 5-second slot",
        &["workload", "slot", "cache_chunks", "storage_chunks"],
    );
    // The paper's Fig. 7 uses 200 MB objects and a 62.5 GB cache = 1250 chunks
    // of 50 MB, i.e. 1250 cache chunks for 4000 total chunks (~31%).
    let system = paper_system(scale_cache(1250));
    // Two intensities; the paper's absolute per-object rates (0.0225/s and
    // 0.0384/s) are far above its own simulation rates, so we express them as
    // two intensities in the same 1:1.3 ratio region that keeps every node stable (x0.75 and x1.0).
    run(&system, "lambda=0.0225", 0.75);
    run(&system, "lambda=0.0384", 1.0);
    println!("# paper shape: more chunks come from storage than from cache in every slot, and the");
    println!("# cache share stays roughly constant (~1/3) when the arrival rate scales up.");
}
