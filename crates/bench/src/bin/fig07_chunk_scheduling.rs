//! Fig. 7 — Chunks served from the cache versus the storage nodes over time.
//!
//! The paper runs two workload intensities over a 100-second time bin split
//! into 20 slots of 5 seconds, counting how many chunk requests the client
//! satisfies from the cache versus the OSDs. With a cache of 1250 chunks for
//! 1000 objects (each needing 4 chunks), roughly a third of the chunks come
//! from the cache under both intensities.
//!
//! One [`SimSweep`] cell per intensity (the load axis), each re-optimizing
//! the plan for its rates and recording the per-slot chunk-source counts.
//! Artifact: `FIG_07.json` — the cache fraction as a metric plus
//! `cache_chunks_per_slot` / `storage_chunks_per_slot` series.

use sprout::sim::SimConfig;
use sprout::SimSweep;
use sprout_bench::{emit, paper_scale, paper_system, scale_cache, FigureCli};

fn main() {
    let cli = FigureCli::parse();
    // The paper's Fig. 7 uses 200 MB objects and a 62.5 GB cache = 1250
    // chunks of 50 MB, i.e. 1250 cache chunks for 4000 total chunks (~31%).
    let system = paper_system(scale_cache(1250));
    // Two intensities; the paper's absolute per-object rates (0.0225/s and
    // 0.0384/s) are far above its own simulation rates, so we express them
    // as two intensities in the same 1:1.3 ratio region that keeps every
    // node stable (x0.75 and x1.0).
    let report = SimSweep::new("fig07_chunk_scheduling", &system, SimConfig::new(100.0, 7))
        .load_points(vec![0.75, 1.0])
        .record_slots(true)
        .run(cli.threads_or(FigureCli::available_threads()))
        .expect("the paper system is stable at both intensities");

    let fractions: Vec<String> = report
        .rows
        .iter()
        .map(|row| {
            format!(
                "load {}: cache fraction {:.1}%",
                row.coord("load"),
                row.metric("cache_fraction").expect("metric present").mean * 100.0
            )
        })
        .collect();
    let report = report
        .with_meta("scale", if paper_scale() { "paper" } else { "reduced" })
        .with_meta("quick", cli.quick.to_string())
        .with_meta("slot_length_s", "5")
        .with_meta("load_labels", "0.75 ~ lambda=0.0225, 1 ~ lambda=0.0384")
        .with_note(
            "paper shape: more chunks come from storage than from cache in every slot, and \
             the cache share stays roughly constant (~1/3) when the arrival rate scales up.",
        )
        .with_note(format!(
            "measured (paper reports ~33%): {}",
            fractions.join("; ")
        ));
    emit(&report, cli.out_or("FIG_07.json"));
}
