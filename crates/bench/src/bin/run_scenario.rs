//! Runs one committed scenario file end to end and emits its sweep artifact.
//!
//! This is the CI smoke leg for the `scenarios/` library: every file under
//! `scenarios/` must load through the real serde stack, compile onto its
//! system, and run — `run_scenario scenarios/<name>.toml --quick` proves it
//! in seconds. Without `--quick` the scenario runs at its full declared
//! horizon, which is how the committed specs are meant to be studied.
//!
//! Usage:
//!
//! ```sh
//! cargo run --release -p sprout-bench --bin run_scenario -- \
//!     scenarios/flash_crowd.toml [--quick] [--threads N] [--shards N] [--out PATH]
//! ```
//!
//! The artifact defaults to `SCENARIO_<name>.json` next to the working
//! directory; exit status is non-zero on any load, validation, or run error
//! so CI fails loudly on a broken spec.

use sprout::loader::RunSpec;
use sprout_bench::{emit_with_timings, FigureCli};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let path = match args.first() {
        Some(first) if !first.starts_with("--") => args.remove(0),
        _ => {
            eprintln!(
                "usage: run_scenario <scenario.toml|.json> [--quick] [--threads N] [--shards N] [--out PATH]"
            );
            std::process::exit(2);
        }
    };
    let cli = FigureCli::from_args(args);

    let spec = RunSpec::load(&path).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });
    let mut sweep = spec.to_sweep(cli.quick).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });
    if let Some(shards) = cli.shards {
        sweep = sweep.shards(shards);
    }

    let (report, timings) = sweep
        .run_timed(cli.threads_or(FigureCli::available_threads()))
        .unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(1);
        });
    let report = report
        .with_meta("scenario_file", path.as_str())
        .with_meta("quick", cli.quick.to_string());

    let default_out = format!("SCENARIO_{}.json", spec.name);
    emit_with_timings(&report, &timings, cli.out_or(&default_out));
}
