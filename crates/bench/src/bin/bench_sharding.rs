//! Sharded-engine scaling snapshot, emitted as `BENCH_sharding.json`.
//!
//! Runs **one replication** of a large streaming scenario — a cluster of
//! disjoint placement groups with mid-horizon node churn crossing epoch
//! boundaries — at shard counts 1, 2, 4 and 8, and records the wall-clock
//! of each run plus the engine's per-shard high-water guards
//! (`peak_event_queue`, `peak_in_flight`, maximized over logical shards).
//!
//! Two different contracts are on display:
//!
//! * **Determinism (hard, asserted here):** every run's `SimReport` must be
//!   bit-identical to the 1-shard reference. The binary aborts otherwise, so
//!   regenerating this artifact in CI is itself a shard-determinism canary.
//! * **Speedup (informational):** `speedup_vs_1shard` is wall-clock and
//!   scales with the cores actually available — on a single-core runner the
//!   sharded runs tie (or pay a small barrier tax); on an N-core machine the
//!   disjoint groups run genuinely in parallel. `available_parallelism` is
//!   recorded in the meta so a number is never read without its context. No
//!   threshold is gated on these values.
//!
//! Usage:
//!
//! ```sh
//! cargo run --release -p sprout-bench --bin bench_sharding -- [--quick] [--out PATH]
//! ```

use std::time::Instant;

use sprout::queueing::dist::ServiceDistribution;
use sprout::sim::sweep::{Sample, SweepGrid};
use sprout::sim::{CacheScheme, Scenario, SimConfig, SimFile, SimReport, Simulation};
use sprout_bench::{emit, FigureCli};

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const GROUPS: usize = 16;
const NODES_PER_GROUP: usize = 4;
const FILES_PER_GROUP: usize = 128;

/// The large streaming scenario: `GROUPS` disjoint placement groups (so the
/// partitioner finds `GROUPS` logical shards), every file erasure-coded
/// `(4, 2)` across its group at ~0.64 per-node utilization, with one node
/// failing and recovering mid-horizon (two epoch edges every loop must
/// synchronize on).
fn scenario_sim(horizon: f64, shards: usize) -> Simulation {
    let nodes = vec![ServiceDistribution::exponential(25.0); GROUPS * NODES_PER_GROUP];
    let mut files = Vec::with_capacity(GROUPS * FILES_PER_GROUP);
    for g in 0..GROUPS {
        for _ in 0..FILES_PER_GROUP {
            let placement: Vec<usize> = (0..NODES_PER_GROUP)
                .map(|j| g * NODES_PER_GROUP + j)
                .collect();
            files.push(SimFile::new(0.25, 2, placement));
        }
    }
    Simulation::new(
        nodes,
        files,
        CacheScheme::NoCache,
        SimConfig::new(horizon, 2016).with_shards(shards),
    )
    .with_scenario(
        Scenario::default()
            .node_down(horizon / 3.0, 0)
            .node_up(2.0 * horizon / 3.0, 0),
    )
}

fn main() {
    let cli = FigureCli::parse();
    let horizon = if cli.quick { 400.0 } else { 4_000.0 };

    // Measure sequentially (never on the sweep pool: concurrent cells would
    // contend for the cores the sharded runs are trying to use), asserting
    // every report against the 1-shard reference.
    let mut walls: Vec<f64> = Vec::with_capacity(SHARD_COUNTS.len());
    let mut reports: Vec<SimReport> = Vec::with_capacity(SHARD_COUNTS.len());
    for &shards in &SHARD_COUNTS {
        let sim = scenario_sim(horizon, shards);
        let start = Instant::now();
        let report = sim.run();
        walls.push(start.elapsed().as_secs_f64());
        if let Some(reference) = reports.first() {
            assert_eq!(
                reference, &report,
                "report at {shards} shards must be bit-identical to the 1-shard reference"
            );
        }
        reports.push(report);
    }

    let grid = SweepGrid::named("bench_sharding", 0)
        .axis("shards", SHARD_COUNTS.iter().map(|s| s.to_string()));
    let report = grid.run(1, |cell, _, _| {
        let i = cell.idx("shards");
        let r = &reports[i];
        Sample::new()
            .metric("wall_s", walls[i])
            .metric("speedup_vs_1shard", walls[0] / walls[i])
            .counter("completed", r.completed_requests)
            .counter("failed", r.failed_requests)
            .maximum("peak_event_queue", r.peak_event_queue as u64)
            .maximum("peak_in_flight", r.peak_in_flight as u64)
            .maximum("logical_shards", r.logical_shards as u64)
    });

    let report = report
        .with_meta("quick", cli.quick.to_string())
        .with_meta(
            "system",
            format!(
                "{} nodes in {GROUPS} disjoint groups, {} files, (4, 2) code, node churn at h/3 and 2h/3",
                GROUPS * NODES_PER_GROUP,
                GROUPS * FILES_PER_GROUP,
            ),
        )
        .with_meta("horizon_s", format!("{horizon}"))
        .with_meta(
            "available_parallelism",
            FigureCli::available_threads().to_string(),
        )
        .with_note(
            "reports are asserted bit-identical across shard counts on every run; wall_s and \
             speedup_vs_1shard are wall-clock, vary run to run and scale with available cores \
             (no thresholds gated on them)",
        );
    emit(&report, cli.out_or("BENCH_sharding.json"));
}
