//! Fig. 4 — Average latency versus cache size.
//!
//! The paper sweeps the cache from 0 to 4000 chunks (4 chunks per file × 1000
//! files) and shows the average latency falling from ~23 s to 0 s as a convex,
//! diminishing-returns curve.
//!
//! One sweep cell per cache size (each optimized cold, in parallel).
//! Artifact: `FIG_04.json` — cache size (in paper chunks) against the
//! optimized mean latency bound.

use sprout::sim::sweep::{Sample, SweepGrid};
use sprout_bench::{emit, experiment_config, paper_scale, paper_system, scale_cache, FigureCli};

fn main() {
    let cli = FigureCli::parse();
    let sweep = [
        0usize, 250, 500, 750, 1000, 1500, 2000, 2500, 3000, 3500, 4000,
    ];

    let grid = SweepGrid::named("fig04_latency_vs_cache", 2016)
        .axis("cache_chunks_paper", sweep.iter().map(|c| c.to_string()));
    let config = experiment_config();
    let report = grid.run(
        cli.threads_or(FigureCli::available_threads()),
        |cell, _, _| {
            let paper_c: usize = cell
                .coord("cache_chunks_paper")
                .parse()
                .expect("axis label");
            let cache = if paper_c == 0 {
                0
            } else {
                scale_cache(paper_c)
            };
            let plan = paper_system(cache)
                .optimize_with(&config)
                .expect("stable system");
            Sample::new().metric("latency_s", plan.objective)
        },
    );

    let series: Vec<f64> = report
        .rows
        .iter()
        .map(|row| row.metric("latency_s").expect("metric present").mean)
        .collect();
    let first = series.first().copied().unwrap_or(0.0);
    let last = series.last().copied().unwrap_or(0.0);
    let monotone = series.windows(2).all(|w| w[1] <= w[0] + 0.05);
    let report = report
        .with_meta("scale", if paper_scale() { "paper" } else { "reduced" })
        .with_meta("quick", cli.quick.to_string())
        .with_note(
            "paper shape: ~23 s with no cache, 0 s once all 4 chunks of every file fit \
             (4000 chunks)",
        )
        .with_note(format!(
            "measured: {first:.2} s with no cache, {last:.2} s at full capacity"
        ))
        .with_note(format!("monotone non-increasing: {monotone}"));
    emit(&report, cli.out_or("FIG_04.json"));
}
