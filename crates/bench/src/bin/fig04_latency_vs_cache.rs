//! Fig. 4 — Average latency versus cache size.
//!
//! The paper sweeps the cache from 0 to 4000 chunks (4 chunks per file × 1000
//! files) and shows the average latency falling from ~23 s to 0 s as a convex,
//! diminishing-returns curve.
//!
//! Output: cache size (in paper chunks) and the optimized mean latency bound.

use sprout_bench::{experiment_config, header, paper_system, scale_cache};

fn main() {
    header(
        "Fig. 4: average file latency vs cache size",
        &["cache_chunks_paper", "latency_s"],
    );
    let config = experiment_config();
    let mut previous = None;
    let sweep = [
        0usize, 250, 500, 750, 1000, 1500, 2000, 2500, 3000, 3500, 4000,
    ];
    let mut series = Vec::new();
    for &paper_c in &sweep {
        let cache = if paper_c == 0 {
            0
        } else {
            scale_cache(paper_c)
        };
        let system = paper_system(cache);
        let plan = match &previous {
            Some(prev) => system.optimize_warm(&config, prev),
            None => system.optimize_with(&config),
        }
        .expect("stable system");
        println!("{paper_c}\t{:.4}", plan.objective);
        series.push(plan.objective);
        previous = Some(plan);
    }
    let first = series.first().copied().unwrap_or(0.0);
    let last = series.last().copied().unwrap_or(0.0);
    println!(
        "# paper shape: ~23 s with no cache, 0 s once all 4 chunks of every file fit (4000 chunks)"
    );
    println!("# measured   : {first:.2} s with no cache, {last:.2} s at full capacity");
    let monotone = series.windows(2).all(|w| w[1] <= w[0] + 0.05);
    println!("# monotone non-increasing: {monotone}");
}
