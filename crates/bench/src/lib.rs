//! Shared helpers for the experiment binaries that regenerate the paper's
//! tables and figures.
//!
//! Each figure/table has its own binary under `src/bin/`, written as a
//! declarative sweep grid executed on the work-stealing pool of
//! [`sprout::sim::sweep`] and emitted through the shared [`harness`]: every
//! binary accepts `--quick`, `--threads N` and `--out PATH`, writes a
//! machine-readable `FIG_*.json` / `TAB_*.json` / `BENCH_*.json` artifact
//! whose bytes are independent of the worker count, and prints the same rows
//! as a tab-separated table for eyeballing/plotting.
//!
//! All experiments also accept the environment variable `SPROUT_SCALE`:
//! * `SPROUT_SCALE=paper` — the paper's full problem sizes (r = 1000 files);
//!   slower, but matches the evaluation section exactly.
//! * unset or any other value — a proportionally scaled-down instance that
//!   preserves per-node load (and therefore the *shape* of every result)
//!   while finishing in seconds.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;

pub use harness::{emit, emit_with_timings, timing_path, FigureCli};

use sprout::optimizer::OptimizerConfig;
use sprout::{SproutSystem, SystemSpec};

/// Number of files used by the "simulation" experiments (Figs. 3–7).
pub fn simulation_file_count() -> usize {
    if paper_scale() {
        1000
    } else {
        100
    }
}

/// Whether the full paper-scale instances were requested.
pub fn paper_scale() -> bool {
    std::env::var("SPROUT_SCALE")
        .map(|v| v == "paper")
        .unwrap_or(false)
}

/// Scaling factor applied to the paper's per-file arrival rates so that a
/// reduced file population puts the same load on the 12 servers as the
/// paper's 1000 files do.
pub fn rate_scale() -> f64 {
    1000.0 / simulation_file_count() as f64
}

/// The optimizer configuration used by the experiments (the paper's
/// tolerance of 0.01).
pub fn experiment_config() -> OptimizerConfig {
    OptimizerConfig::default()
}

/// Builds the paper's §V-A simulation system: 12 heterogeneous servers,
/// (7, 4)-coded 100 MB files with the grouped arrival rates, and the given
/// cache size (in chunks of 25 MB).
pub fn paper_system(cache_chunks: usize) -> SproutSystem {
    let count = simulation_file_count();
    let spec = SystemSpec::builder()
        .node_service_rates(&sprout::workload::spec::paper_server_service_rates())
        .paper_files(count, 7, 4, 100 * sprout::workload::spec::MB)
        .cache_capacity_chunks(cache_chunks)
        .seed(2016)
        .build()
        .expect("paper spec is valid");
    let system = SproutSystem::new(spec).expect("paper system is valid");
    let rates: Vec<f64> = system
        .spec()
        .files
        .iter()
        .map(|f| f.arrival_rate * rate_scale())
        .collect();
    system
        .with_arrival_rates(&rates)
        .expect("rate rescaling preserves validity")
}

/// Scales a paper cache size (given in chunks for 1000 files) down to the
/// reduced file population so cache pressure stays comparable.
pub fn scale_cache(paper_chunks: usize) -> usize {
    ((paper_chunks as f64) / rate_scale()).round().max(1.0) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduced_scale_preserves_aggregate_load() {
        let system = paper_system(10);
        let total = system.model().total_arrival_rate();
        // The paper's aggregate arrival rate is ~0.1416 regardless of scale.
        assert!((total - 0.1416).abs() < 2e-3, "total = {total}");
    }

    #[test]
    fn cache_scaling_is_proportional() {
        assert_eq!(scale_cache(500), (500.0 / rate_scale()).round() as usize);
        assert!(scale_cache(1) >= 1);
    }

    #[test]
    fn experiment_config_matches_paper_tolerance() {
        assert!((experiment_config().tolerance - 0.01).abs() < 1e-12);
    }
}
