//! Property tests for the placement-strategy zoo.
//!
//! The anchor is the differential test proving the `RandomGroups` strategy
//! reproduces the legacy `PlacementMap` bit-for-bit — that identity is what
//! keeps every artifact generated before the strategy API byte-identical.
//! The rest are per-strategy properties: distinct online nodes, seed
//! stability, and bounded rebalance under single-node churn.

use sprout_cluster::placement::strategies::RandomGroups;
use sprout_cluster::{ClusterView, ObjectDesc, Placement, PlacementChoice, PlacementMap};

const NUM_NODES: usize = 12;
const OBJECTS: u64 = 500;

/// Every strategy on the axis, by its serde-able choice.
fn zoo() -> Vec<PlacementChoice> {
    vec![
        PlacementChoice::RandomGroups { groups: None },
        PlacementChoice::ConsistentHash { vnodes: 64 },
        PlacementChoice::TwoChoices,
        PlacementChoice::XorProximity,
        PlacementChoice::AntiAffinity { zones: 3 },
    ]
}

#[test]
fn random_groups_reproduces_the_legacy_placement_map_bit_for_bit() {
    let view = ClusterView::all_online(NUM_NODES);
    for seed in [0u64, 1, 42, 2016] {
        #[allow(deprecated)]
        let legacy = PlacementMap::new(NUM_NODES, seed);
        let strategy = PlacementChoice::RandomGroups { groups: None }.build(NUM_NODES, seed);
        for n in [4usize, 7] {
            for id in 0..OBJECTS {
                assert_eq!(
                    legacy.place(id, n),
                    strategy.place(id, n, &view),
                    "seed {seed}, n {n}, object {id}"
                );
            }
        }
    }
}

#[test]
fn random_groups_reproduces_explicit_group_counts_too() {
    let view = ClusterView::all_online(NUM_NODES);
    #[allow(deprecated)]
    let legacy = PlacementMap::with_groups(NUM_NODES, 256, 7);
    let strategy = PlacementChoice::RandomGroups { groups: Some(256) }.build(NUM_NODES, 7);
    let direct = RandomGroups::new(NUM_NODES, Some(256), 7);
    for id in 0..OBJECTS {
        assert_eq!(legacy.place(id, 7), strategy.place(id, 7, &view));
        assert_eq!(legacy.place(id, 7), direct.place(id, 7, &view));
    }
}

#[test]
fn every_strategy_places_n_distinct_online_nodes() {
    let full = ClusterView::all_online(NUM_NODES);
    let degraded = full.with_node_online(2, false).with_node_online(9, false);
    for choice in zoo() {
        let strategy = choice.build(NUM_NODES, 11);
        for view in [&full, &degraded] {
            for id in 0..OBJECTS {
                let nodes = strategy.place(id, 7, view);
                assert_eq!(nodes.len(), 7, "{}: object {id}", strategy.name());
                let mut unique = nodes.clone();
                unique.sort_unstable();
                unique.dedup();
                assert_eq!(unique.len(), 7, "{}: duplicate node", strategy.name());
                assert!(
                    nodes.iter().all(|&n| view.is_online(n)),
                    "{}: placed on an offline node",
                    strategy.name()
                );
            }
        }
    }
}

#[test]
fn every_strategy_is_seed_stable_and_seed_sensitive() {
    let view = ClusterView::all_online(NUM_NODES);
    for choice in zoo() {
        let a = choice.build(NUM_NODES, 5);
        let b = choice.build(NUM_NODES, 5);
        let c = choice.build(NUM_NODES, 6);
        let mut differs = false;
        for id in 0..200u64 {
            assert_eq!(
                a.place(id, 7, &view),
                b.place(id, 7, &view),
                "{}: same seed must reproduce",
                a.name()
            );
            differs |= a.place(id, 7, &view) != c.place(id, 7, &view);
        }
        assert!(differs, "{}: seed must matter", a.name());
    }
}

#[test]
fn batch_placement_matches_grid_shape_and_is_deterministic() {
    let view = ClusterView::all_online(NUM_NODES);
    let objects: Vec<(u64, usize)> = (0..OBJECTS).map(|id| (id, 7)).collect();
    for choice in zoo() {
        let strategy = choice.build(NUM_NODES, 3);
        let once = strategy.place_batch(&objects, &view);
        let twice = strategy.place_batch(&objects, &view);
        assert_eq!(
            once,
            twice,
            "{}: batch must be deterministic",
            strategy.name()
        );
        assert_eq!(once.len(), objects.len());
        assert!(once.iter().all(|p| p.len() == 7));
    }
}

#[test]
fn single_node_churn_rebalance_is_bounded() {
    let before = ClusterView::all_online(NUM_NODES);
    let after = before.with_node_online(4, false);
    let objects: Vec<ObjectDesc> = (0..OBJECTS)
        .map(|id| ObjectDesc {
            id,
            n: 7,
            chunk_bytes: 1 << 20,
        })
        .collect();
    for choice in zoo() {
        let strategy = choice.build(NUM_NODES, 13);
        let affected = (0..OBJECTS)
            .filter(|&id| strategy.place(id, 7, &before).contains(&4))
            .count() as u64;
        let report = strategy.on_membership_change(&objects, &before, &after);
        assert!(
            report.objects_moved >= affected,
            "{}: every object that lost a host must move",
            strategy.name()
        );
        assert!(
            report.moved_chunks <= 7 * OBJECTS,
            "{}: cannot move more than every chunk",
            strategy.name()
        );
        assert_eq!(report.moved_bytes, report.moved_chunks * (1 << 20));
        // Prefix-walk and ranking strategies are minimally disruptive: only
        // the objects that lost their host move, and each replaces exactly
        // the one lost chunk. (Two-choices re-runs its load ledger and the
        // zone wrapper re-stripes, so they may cascade further.)
        let minimal = matches!(
            choice,
            PlacementChoice::RandomGroups { .. }
                | PlacementChoice::ConsistentHash { .. }
                | PlacementChoice::XorProximity
        );
        if minimal {
            assert_eq!(
                report.objects_moved,
                affected,
                "{}: only objects that lost a host may move",
                strategy.name()
            );
            assert_eq!(
                report.moved_chunks,
                affected,
                "{}: exactly one replacement chunk per affected object",
                strategy.name()
            );
        }
    }
}

#[test]
fn recovery_rebalance_restores_the_original_placement() {
    // Down then up must be a round trip for pure (stateless) strategies:
    // re-placing under the recovered view equals the original placement, so
    // the recovery rebalance moves chunks straight back.
    let full = ClusterView::all_online(NUM_NODES);
    let degraded = full.with_node_online(4, false);
    for choice in zoo() {
        let strategy = choice.build(NUM_NODES, 17);
        for id in 0..200u64 {
            let original = strategy.place(id, 7, &full);
            let recovered = strategy.place(id, 7, &full);
            assert_eq!(original, recovered, "{}", strategy.name());
            // And the degraded placement never uses the down node.
            assert!(!strategy.place(id, 7, &degraded).contains(&4));
        }
    }
}
