//! The lock-sharded store core: [`StoreHandle`], a cheaply clonable
//! `Send + Sync` handle over the erasure-coded store's shared state.
//!
//! The single-threaded [`ErasureCodedStore`](crate::ErasureCodedStore) used
//! to own every piece of store state directly; the serving path needs the
//! same state shared across a worker pool without a single big lock. The
//! interior is therefore sharded so independent requests never contend:
//!
//! * **Per-node locks** — each [`StorageNode`] (chunk map + FIFO queue
//!   clock) sits behind its own `RwLock`. Two gets that read disjoint nodes
//!   take disjoint locks; candidate probing takes brief read locks and only
//!   the actual chunk read (which advances the queue) takes a write lock.
//! * **Striped object metadata** — the object → (length, placement) map is
//!   split into [`META_STRIPES`] hash stripes, each behind its own
//!   `RwLock`, so puts of different objects rarely serialize.
//! * **Cache tier** — the [`Cache`] (LRU recency + payload chunks) sits
//!   behind one `Mutex`; every lookup mutates recency and counters, so a
//!   shared lock buys nothing. Critical sections are kept to map/recency
//!   updates — decode never happens under it.
//! * **Codec** — the [`FunctionalCacheCodec`] is immutable and internally
//!   shares its decode-matrix memo behind an `Arc<Mutex<_>>`, so all
//!   workers reuse each O(k³) inversion.
//! * **Membership view** — a small `RwLock<ClusterView>` snapshot used for
//!   placement decisions.
//!
//! Lock discipline: at most one node lock is held at a time, metadata
//! stripe locks are only held around metadata mutation plus the node-map
//! updates that must stay atomic with it (put/delete), and the cache lock
//! is never taken while a node lock is held. No lock is held across a
//! decode. That ordering (stripe → node → cache) is acyclic, so the
//! structure cannot deadlock.
//!
//! Every method takes `&self`; service-time sampling takes the caller's RNG
//! (`*_with_rng`) so the deterministic single-threaded wrapper keeps its
//! historical draw order, while [`StoreHandle::get`] derives a per-request
//! RNG from an atomic ticket for free-running concurrent callers.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock, RwLockReadGuard};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sprout_erasure::{Chunk, CodeParams, FunctionalCacheCodec, Kernel};

use crate::cache::{Cache, CachePolicy, CacheStats};
use crate::error::ClusterError;
use crate::node::StorageNode;
use crate::placement::{ClusterView, ObjectDesc, Placement};
use crate::store::{ClusterConfig, ReadOutcome};

/// Number of hash stripes the object-metadata map is split into. A small
/// power of two: object ids are mixed before striping, so any id
/// distribution spreads evenly.
pub const META_STRIPES: usize = 16;

/// Salt folded into per-request RNG derivation on the concurrent get path.
const REQUEST_RNG_SALT: u64 = 0x5EED_0DD5_EED0_0DD5;

/// Metadata kept per stored object.
#[derive(Debug, Clone)]
struct ObjectMeta {
    len: usize,
    placement: Vec<usize>,
}

fn stripe_of(object: u64) -> usize {
    // Fibonacci-hash the id so sequential object ids spread over stripes.
    (object.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % META_STRIPES
}

/// Splits decoded object bytes into the `k` data chunks a cache-tier
/// promotion installs (generator rows `0..k` of the systematic code).
fn data_chunks_of(data: &[u8], k: usize) -> Vec<Chunk> {
    let (data_chunks, _) = sprout_erasure::stripe::split(data, k);
    data_chunks
        .into_iter()
        .enumerate()
        .map(|(i, payload)| Chunk::new(sprout_erasure::ChunkId::cache(i), payload))
        .collect()
}

/// The shared interior. Private: all access goes through [`StoreHandle`].
#[derive(Debug)]
struct StoreShared {
    config: ClusterConfig,
    codec: FunctionalCacheCodec,
    placement: Box<dyn Placement>,
    nodes: Vec<RwLock<StorageNode>>,
    meta: Vec<RwLock<HashMap<u64, ObjectMeta>>>,
    view: RwLock<ClusterView>,
    cache: Mutex<Cache>,
    /// Ticket counter deriving one RNG stream per concurrent request.
    ticket: AtomicU64,
}

/// A cheaply clonable, `Send + Sync` handle to a lock-sharded
/// erasure-coded store.
///
/// Cloning bumps one `Arc`; all clones observe the same cluster. The
/// single-threaded [`ErasureCodedStore`](crate::ErasureCodedStore) is a
/// thin wrapper over this type that adds a private RNG.
#[derive(Debug, Clone)]
pub struct StoreHandle {
    shared: Arc<StoreShared>,
}

impl StoreHandle {
    /// Creates an empty cluster.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::InvalidConfig`] for inconsistent parameters
    /// (no nodes, `n > num_nodes`, device-list length mismatch) and
    /// propagates invalid `(n, k)` pairs as [`ClusterError::Coding`].
    pub fn new(config: ClusterConfig) -> Result<Self, ClusterError> {
        if config.num_nodes == 0 {
            return Err(ClusterError::InvalidConfig("no storage nodes".into()));
        }
        if config.n > config.num_nodes {
            return Err(ClusterError::InvalidConfig(format!(
                "n = {} exceeds the number of nodes {}",
                config.n, config.num_nodes
            )));
        }
        if config.devices.len() != config.num_nodes {
            return Err(ClusterError::InvalidConfig(format!(
                "expected {} device models, got {}",
                config.num_nodes,
                config.devices.len()
            )));
        }
        let params = CodeParams::new(config.n, config.k)?;
        // The codec rides the best kernel the CPU supports (unless pinned)
        // and stripes large objects across threads; both choices affect
        // throughput only — coded bytes are kernel- and stripe-invariant.
        let codec = FunctionalCacheCodec::with_kernel(
            params,
            config.coding_kernel.unwrap_or_else(Kernel::auto),
        )?
        .with_striping(config.striping);
        let nodes = config
            .devices
            .iter()
            .enumerate()
            .map(|(id, &device)| RwLock::new(StorageNode::new(id, device)))
            .collect();
        let placement = config.placement.build(config.num_nodes, config.seed);
        let view = RwLock::new(ClusterView::all_online(config.num_nodes));
        let cache = Mutex::new(Cache::new(config.cache_policy, config.cache_capacity_bytes));
        let meta = (0..META_STRIPES)
            .map(|_| RwLock::new(HashMap::new()))
            .collect();
        Ok(StoreHandle {
            shared: Arc::new(StoreShared {
                config,
                codec,
                placement,
                nodes,
                meta,
                view,
                cache,
                ticket: AtomicU64::new(0),
            }),
        })
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.shared.config
    }

    /// The erasure-code parameters.
    pub fn code_params(&self) -> CodeParams {
        self.shared.codec.params()
    }

    /// The GF(2^8) slice kernel the store's codec resolved to (the config's
    /// pin, or [`Kernel::auto`]'s pick for this CPU).
    pub fn coding_kernel(&self) -> Kernel {
        self.shared.codec.kernel()
    }

    /// Number of stored objects.
    pub fn num_objects(&self) -> usize {
        self.shared
            .meta
            .iter()
            .map(|s| s.read().expect("meta stripe lock poisoned").len())
            .sum()
    }

    /// Read access to a storage node (a lock guard; hold it briefly).
    ///
    /// # Panics
    ///
    /// Panics if the node id is out of range.
    pub fn node(&self, id: usize) -> RwLockReadGuard<'_, StorageNode> {
        self.shared.nodes[id].read().expect("node lock poisoned")
    }

    /// Access to the cache tier (a lock guard; hold it briefly).
    pub fn cache(&self) -> MutexGuard<'_, Cache> {
        self.shared.cache.lock().expect("cache lock poisoned")
    }

    /// Cache statistics.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache().stats()
    }

    /// The nodes hosting an object's chunks (chunk row `i` on entry `i`).
    pub fn object_placement(&self, object: u64) -> Option<Vec<usize>> {
        self.meta_of(object).map(|m| m.placement)
    }

    /// The stored length of an object in bytes.
    pub fn object_len(&self, object: u64) -> Option<usize> {
        self.meta_of(object).map(|m| m.len)
    }

    fn meta_of(&self, object: u64) -> Option<ObjectMeta> {
        self.shared.meta[stripe_of(object)]
            .read()
            .expect("meta stripe lock poisoned")
            .get(&object)
            .cloned()
    }

    /// The chunk of `object` hosted on `node` (the row the placement assigns
    /// to that node), if the node holds it. Management path: no queueing or
    /// latency accounting — external schedulers (the simulation engine's
    /// byte-accurate backend) fetch bytes this way after deciding the timing
    /// themselves. The returned chunk shares the stored payload (`Bytes` is
    /// refcounted), so this is O(1) and copies nothing.
    pub fn chunk_on_node(&self, object: u64, node: usize) -> Option<Chunk> {
        let meta = self.meta_of(object)?;
        let row = meta.placement.iter().position(|&n| n == node)?;
        self.shared.nodes[node]
            .read()
            .expect("node lock poisoned")
            .chunk(object, row)
            .cloned()
    }

    /// Decodes an object from caller-gathered chunks (any `k` distinct rows
    /// of the extended code), trimming to the object's stored length.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownObject`] for unknown objects and
    /// propagates coding errors (too few chunks, duplicate rows).
    pub fn decode_with_chunks(
        &self,
        object: u64,
        chunks: &[Chunk],
    ) -> Result<Vec<u8>, ClusterError> {
        let meta = self
            .meta_of(object)
            .ok_or(ClusterError::UnknownObject(object))?;
        Ok(self.shared.codec.decode(chunks, meta.len)?)
    }

    /// Writes an object, placing its `n` coded chunks via the placement map.
    ///
    /// # Errors
    ///
    /// Propagates coding errors.
    pub fn put(&self, object: u64, data: &[u8]) -> Result<(), ClusterError> {
        let view = self.shared.view.read().expect("view lock poisoned").clone();
        let placement = self
            .shared
            .placement
            .place(object, self.shared.config.n, &view);
        self.put_with_placement(object, data, placement)
    }

    /// Writes an object onto an explicit list of `n` distinct nodes (used by
    /// experiments that control placement, e.g. Fig. 6 of the paper).
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::InvalidConfig`] if the placement list is not
    /// `n` distinct, valid node ids; propagates coding errors.
    pub fn put_with_placement(
        &self,
        object: u64,
        data: &[u8],
        placement: Vec<usize>,
    ) -> Result<(), ClusterError> {
        let s = &*self.shared;
        if placement.len() != s.config.n {
            return Err(ClusterError::InvalidConfig(format!(
                "placement lists {} nodes but the code stores n = {} chunks",
                placement.len(),
                s.config.n
            )));
        }
        let mut seen = HashSet::new();
        for &node in &placement {
            if node >= s.config.num_nodes || !seen.insert(node) {
                return Err(ClusterError::InvalidConfig(format!(
                    "invalid or duplicate node {node} in placement"
                )));
            }
        }
        // Encode outside every lock: coding is the expensive part, and
        // chunks are *moved* onto their nodes — payloads are `Bytes`
        // (`Arc`-backed since PR 2), so no byte is copied below.
        let encoded = s.codec.encode(data)?;
        // The object's stripe lock makes replace-or-insert atomic: a
        // concurrent put of the same object serializes here, so node chunk
        // maps and metadata can never disagree about the live version.
        let mut stripe = self.shared.meta[stripe_of(object)]
            .write()
            .expect("meta stripe lock poisoned");
        if let Some(old) = stripe.remove(&object) {
            for &node in &old.placement {
                s.nodes[node]
                    .write()
                    .expect("node lock poisoned")
                    .remove_object(object);
            }
        }
        for (chunk, &node) in encoded.into_chunks().into_iter().zip(&placement) {
            s.nodes[node]
                .write()
                .expect("node lock poisoned")
                .store_chunk(object, chunk);
        }
        stripe.insert(
            object,
            ObjectMeta {
                len: data.len(),
                placement,
            },
        );
        drop(stripe);
        self.cache().remove(object);
        Ok(())
    }

    /// Deletes an object from the storage nodes and the cache.
    pub fn delete(&self, object: u64) {
        let mut stripe = self.shared.meta[stripe_of(object)]
            .write()
            .expect("meta stripe lock poisoned");
        if let Some(meta) = stripe.remove(&object) {
            for &node in &meta.placement {
                self.shared.nodes[node]
                    .write()
                    .expect("node lock poisoned")
                    .remove_object(object);
            }
        }
        drop(stripe);
        self.cache().remove(object);
    }

    /// Marks a storage node failed (offline) or recovered.
    ///
    /// # Panics
    ///
    /// Panics if the node id is out of range.
    pub fn set_node_online(&self, node: usize, online: bool) {
        self.shared.nodes[node]
            .write()
            .expect("node lock poisoned")
            .set_online(online);
        let mut view = self.shared.view.write().expect("view lock poisoned");
        *view = view.with_node_online(node, online);
    }

    /// The placement strategy writes route through.
    pub fn placement_strategy(&self) -> &dyn Placement {
        self.shared.placement.as_ref()
    }

    /// A snapshot of the store's current membership view (updated by
    /// [`set_node_online`](Self::set_node_online)).
    pub fn cluster_view(&self) -> ClusterView {
        self.shared.view.read().expect("view lock poisoned").clone()
    }

    /// Descriptors of every stored object, sorted by id — the input
    /// [`Placement::on_membership_change`] prices a rebalance against.
    pub fn object_descs(&self) -> Vec<ObjectDesc> {
        let k = self.shared.config.k as u64;
        let mut descs: Vec<ObjectDesc> = self
            .shared
            .meta
            .iter()
            .flat_map(|stripe| {
                stripe
                    .read()
                    .expect("meta stripe lock poisoned")
                    .iter()
                    .map(|(&id, meta)| ObjectDesc {
                        id,
                        n: meta.placement.len(),
                        chunk_bytes: (meta.len as u64).div_ceil(k),
                    })
                    .collect::<Vec<_>>()
            })
            .collect();
        descs.sort_by_key(|d| d.id);
        descs
    }

    /// Gathers every storage chunk of `object` currently present on online
    /// *and* offline nodes (management path; clones are refcount bumps).
    fn gather_available(&self, meta: &ObjectMeta, object: u64) -> Vec<Chunk> {
        let mut available = Vec::new();
        for &node in &meta.placement {
            let guard = self.shared.nodes[node].read().expect("node lock poisoned");
            for index in guard.chunk_indices(object) {
                if let Some(chunk) = guard.chunk(object, index) {
                    available.push(chunk.clone());
                }
            }
        }
        available
    }

    /// Installs `d` planner-chosen chunks of an object into the cache
    /// (functional or exact caching). `d = 0` removes the object's cache
    /// entry. Chunk contents are rebuilt from the chunks currently on the
    /// storage nodes, mirroring the paper's lazy population on first access.
    ///
    /// # Errors
    ///
    /// * [`ClusterError::InvalidConfig`] if the cache policy is not
    ///   planner-managed or the chunks do not fit the cache.
    /// * [`ClusterError::UnknownObject`] if the object does not exist.
    /// * Propagated coding errors (e.g. `d > k`).
    pub fn set_cached_chunks(&self, object: u64, d: usize) -> Result<(), ClusterError> {
        let s = &*self.shared;
        if !s.config.cache_policy.is_planned() {
            return Err(ClusterError::InvalidConfig(
                "set_cached_chunks requires the functional or exact cache policy".into(),
            ));
        }
        let meta = self
            .meta_of(object)
            .ok_or(ClusterError::UnknownObject(object))?;
        if d == 0 {
            self.cache().remove(object);
            return Ok(());
        }
        let available = self.gather_available(&meta, object);
        let chunks = match s.config.cache_policy {
            CachePolicy::Functional => s.codec.cache_chunks_from_chunks(&available, d)?,
            CachePolicy::Exact => {
                // Copy the first d storage chunks verbatim.
                let mut copies: Vec<Chunk> = available
                    .into_iter()
                    .filter(|c| c.id.index < d.min(s.config.n))
                    .collect();
                copies.sort_by_key(|c| c.id.index);
                copies.truncate(d);
                if copies.len() < d {
                    return Err(ClusterError::NotEnoughReplicas {
                        object,
                        available: copies.len(),
                        required: d,
                    });
                }
                copies
            }
            _ => unreachable!("checked is_planned above"),
        };
        if self.cache().install_planned(object, chunks) {
            Ok(())
        } else {
            Err(ClusterError::InvalidConfig(format!(
                "cache capacity exceeded while installing {d} chunks of object {object}"
            )))
        }
    }

    /// Reads an object at virtual time `now` with a self-derived RNG stream.
    ///
    /// This is the concurrent serving entry point: each call draws a ticket
    /// from an atomic counter and seeds an independent `StdRng` from it, so
    /// parallel readers never share (or lock) RNG state. Latency samples are
    /// therefore deterministic per *ticket*, not per wall-clock
    /// interleaving. Single-threaded deterministic callers should use
    /// [`get_with_rng`](Self::get_with_rng) (as the
    /// [`ErasureCodedStore`](crate::ErasureCodedStore) wrapper does).
    ///
    /// # Errors
    ///
    /// See [`get_with_rng`](Self::get_with_rng).
    pub fn get(&self, object: u64, now: f64) -> Result<ReadOutcome, ClusterError> {
        let ticket = self.shared.ticket.fetch_add(1, Ordering::Relaxed);
        let mut rng = StdRng::seed_from_u64(
            self.shared.config.seed ^ REQUEST_RNG_SALT ^ ticket.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        self.get_with_rng(object, now, &mut rng)
    }

    /// Reads an object at virtual time `now`, honouring the cache policy, and
    /// returns the reconstructed bytes together with the request latency.
    /// Service times are sampled from `rng`.
    ///
    /// # Errors
    ///
    /// * [`ClusterError::UnknownObject`] if the object was never written.
    /// * [`ClusterError::NotEnoughReplicas`] if node failures (or a racing
    ///   delete) leave fewer than `k` chunks reachable.
    /// * Propagated coding errors on reconstruction.
    pub fn get_with_rng<R: Rng + ?Sized>(
        &self,
        object: u64,
        now: f64,
        rng: &mut R,
    ) -> Result<ReadOutcome, ClusterError> {
        let s = &*self.shared;
        let meta = self
            .meta_of(object)
            .ok_or(ClusterError::UnknownObject(object))?;
        let k = s.config.k;

        // 1. Chunks available from the cache (one short lock: recency +
        // counters update and refcounted payload clones).
        let cached: Vec<Chunk> = match s.config.cache_policy {
            CachePolicy::None => Vec::new(),
            _ => self.cache().lookup(object),
        };
        let lru = matches!(s.config.cache_policy, CachePolicy::LruReplicated { .. });

        // Cache-resident LRU objects (or fully functional-cached objects) are
        // served without touching storage.
        if cached.len() >= k {
            let cache_latency = self.cache_read_latency_with(&cached[..k], rng);
            let data = s.codec.decode(&cached, meta.len)?;
            return Ok(ReadOutcome {
                data,
                latency: cache_latency,
                storage_chunks_used: 0,
                cache_chunks_used: k,
                nodes_used: Vec::new(),
            });
        }

        let needed_from_storage = k - cached.len();

        // 2. Candidate storage chunks: for exact caching the cached rows are
        // copies of storage rows, so their hosts cannot contribute new rows.
        // Probing takes one brief *read* lock per placed node.
        let cached_rows: HashSet<usize> = cached.iter().map(|c| c.id.index).collect();
        let mut candidates: Vec<(f64, usize, usize)> = Vec::new(); // (queue delay, node, row)
        for (row, &node) in meta.placement.iter().enumerate() {
            if s.config.cache_policy == CachePolicy::Exact && cached_rows.contains(&row) {
                continue;
            }
            let guard = s.nodes[node].read().expect("node lock poisoned");
            if !guard.is_online() || !guard.has_chunk(object, row) {
                continue;
            }
            candidates.push((guard.queue_delay(now), node, row));
        }
        if candidates.len() < needed_from_storage {
            return Err(ClusterError::NotEnoughReplicas {
                object,
                available: candidates.len() + cached.len(),
                required: k,
            });
        }
        // Least-busy-first selection (the "optimal request scheduling" the
        // functional-caching example in §III argues for).
        candidates.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        candidates.truncate(needed_from_storage);

        // 3. Issue the storage reads and take the fork-join maximum. One
        // write lock per selected node, taken one at a time; a chunk that a
        // racing delete/failure snatched between probe and read degrades to
        // a clean NotEnoughReplicas instead of a panic.
        let mut storage_chunks = Vec::with_capacity(needed_from_storage);
        let mut nodes_used = Vec::with_capacity(needed_from_storage);
        let mut finish = now;
        for &(_, node, row) in &candidates {
            let served = s.nodes[node]
                .write()
                .expect("node lock poisoned")
                .read(object, row, now, rng);
            match served {
                Some((chunk, done)) => {
                    finish = finish.max(done);
                    storage_chunks.push(chunk);
                    nodes_used.push(node);
                }
                None => {
                    return Err(ClusterError::NotEnoughReplicas {
                        object,
                        available: cached.len() + storage_chunks.len(),
                        required: k,
                    });
                }
            }
        }
        let storage_latency = finish - now;
        let cache_latency = self.cache_read_latency_with(&cached, rng);
        let latency = storage_latency.max(cache_latency);

        // 4. Reconstruct and verify — no lock held.
        let cache_chunks_used = cached.len();
        let mut all = cached;
        all.extend(storage_chunks);
        let data = s.codec.decode(&all, meta.len)?;

        // 5. LRU promotion on a miss: the whole object enters the cache tier.
        if lru {
            let chunks = data_chunks_of(&data, k);
            self.cache().promote_lru(object, chunks);
        }

        Ok(ReadOutcome {
            data,
            latency,
            storage_chunks_used: needed_from_storage,
            cache_chunks_used,
            nodes_used,
        })
    }

    /// Promotes a whole object into the cache tier *unconditionally* — the
    /// mirror of an admission decided by an external
    /// [`CacheTier`](crate::CacheTier) (the simulation engine's; see
    /// [`crate::tier`]). The object's `k` data chunks are rebuilt from
    /// whatever storage chunks are present (management path: no queueing or
    /// latency accounting) and installed without consulting this cache's own
    /// admission policy.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownObject`] for unknown objects and
    /// propagates decode errors when too few chunks survive.
    pub fn promote_object(&self, object: u64) -> Result<(), ClusterError> {
        let meta = self
            .meta_of(object)
            .ok_or(ClusterError::UnknownObject(object))?;
        let available = self.gather_available(&meta, object);
        let data = self.shared.codec.decode(&available, meta.len)?;
        let chunks = data_chunks_of(&data, self.shared.config.k);
        self.cache().mirror_promote(object, chunks);
        Ok(())
    }

    /// Evicts an object from the cache tier — the mirror of an eviction
    /// decided by an external [`CacheTier`](crate::CacheTier). Returns
    /// whether it was resident.
    pub fn evict_cached(&self, object: u64) -> bool {
        self.cache().mirror_evict(object)
    }

    /// Drops every cache entry (e.g. when a scenario swaps the cache scheme
    /// mid-run and the tier restarts cold).
    pub fn reset_cache(&self) {
        self.cache().clear();
    }

    /// Fork-join maximum of per-chunk cache-device reads, sampled from the
    /// caller's RNG.
    pub(crate) fn cache_read_latency_with<R: Rng + ?Sized>(
        &self,
        chunks: &[Chunk],
        rng: &mut R,
    ) -> f64 {
        chunks
            .iter()
            .map(|c| {
                self.shared
                    .config
                    .cache_device
                    .service_distribution(c.len() as u64)
                    .sample(rng)
            })
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceModel;

    fn handle(policy: CachePolicy) -> StoreHandle {
        let config = ClusterConfig::builder()
            .nodes(8)
            .code(7, 4)
            .uniform_device(DeviceModel::exponential(0.010))
            .cache_policy(policy)
            .cache_capacity_bytes(1_000_000)
            .seed(11)
            .build();
        StoreHandle::new(config).unwrap()
    }

    #[test]
    fn handle_is_send_sync_and_clonable() {
        fn assert_send_sync<T: Send + Sync + Clone>() {}
        assert_send_sync::<StoreHandle>();
    }

    #[test]
    fn clones_observe_the_same_store() {
        let a = handle(CachePolicy::None);
        let b = a.clone();
        a.put(1, &[7u8; 4096]).unwrap();
        assert_eq!(b.num_objects(), 1);
        assert_eq!(b.get(1, 0.0).unwrap().data, vec![7u8; 4096]);
        b.delete(1);
        assert_eq!(a.num_objects(), 0);
    }

    #[test]
    fn stripes_spread_object_ids() {
        let hit: HashSet<usize> = (0u64..256).map(stripe_of).collect();
        assert!(hit.len() > META_STRIPES / 2, "ids should span most stripes");
        assert!(hit.iter().all(|&s| s < META_STRIPES));
    }

    #[test]
    fn concurrent_gets_from_many_threads_all_verify() {
        let h = handle(CachePolicy::Functional);
        let payload: Vec<u8> = (0..20_000u32).map(|i| (i % 251) as u8).collect();
        for object in 0..6u64 {
            h.put(object, &payload).unwrap();
            h.set_cached_chunks(object, (object % 3) as usize).unwrap();
        }
        std::thread::scope(|scope| {
            for t in 0..4 {
                let h = h.clone();
                let payload = payload.clone();
                scope.spawn(move || {
                    for i in 0..50u64 {
                        let object = (t + i) % 6;
                        let out = h.get(object, i as f64).unwrap();
                        assert_eq!(out.data, payload, "decode must verify under concurrency");
                    }
                });
            }
        });
    }

    #[test]
    fn racing_delete_degrades_to_a_clean_error() {
        let h = handle(CachePolicy::None);
        h.put(3, &[9u8; 8192]).unwrap();
        let reader = h.clone();
        std::thread::scope(|scope| {
            let r = scope.spawn(move || {
                let mut ok = 0u32;
                for i in 0..200 {
                    match reader.get(3, i as f64) {
                        Ok(out) => {
                            assert_eq!(out.data, vec![9u8; 8192]);
                            ok += 1;
                        }
                        Err(
                            ClusterError::UnknownObject(_) | ClusterError::NotEnoughReplicas { .. },
                        ) => {}
                        Err(other) => panic!("unexpected error under race: {other:?}"),
                    }
                }
                ok
            });
            scope.spawn(|| {
                for _ in 0..20 {
                    h.delete(3);
                    h.put(3, &[9u8; 8192]).unwrap();
                }
            });
            let _ = r.join().unwrap();
        });
    }
}
