//! Storage nodes: chunk storage plus a FIFO service queue in virtual time.

use std::collections::HashMap;

use rand::Rng;
use sprout_erasure::Chunk;

use crate::device::DeviceModel;

/// A storage node (OSD): it owns a device, stores chunk payloads and serves
/// read requests one at a time in FIFO order.
///
/// Time is *virtual*: callers pass the arrival time of each read, and the
/// node tracks when its device frees up (`busy_until`), so queueing delay
/// emerges naturally without a real-time event loop.
#[derive(Debug, Clone)]
pub struct StorageNode {
    id: usize,
    device: DeviceModel,
    chunks: HashMap<(u64, usize), Chunk>,
    busy_until: f64,
    busy_time: f64,
    reads_served: u64,
    online: bool,
}

impl StorageNode {
    /// Creates an empty, online node.
    pub fn new(id: usize, device: DeviceModel) -> Self {
        StorageNode {
            id,
            device,
            chunks: HashMap::new(),
            busy_until: 0.0,
            busy_time: 0.0,
            reads_served: 0,
            online: true,
        }
    }

    /// Node identifier.
    pub fn id(&self) -> usize {
        self.id
    }

    /// The node's device model.
    pub fn device(&self) -> DeviceModel {
        self.device
    }

    /// Whether the node is currently serving requests.
    pub fn is_online(&self) -> bool {
        self.online
    }

    /// Marks the node as failed (offline) or recovered (online).
    pub fn set_online(&mut self, online: bool) {
        self.online = online;
    }

    /// Stores a chunk of an object on this node (overwrites an existing one).
    pub fn store_chunk(&mut self, object: u64, chunk: Chunk) {
        self.chunks.insert((object, chunk.id.index), chunk);
    }

    /// Removes every chunk of the given object; returns how many were removed.
    pub fn remove_object(&mut self, object: u64) -> usize {
        let keys: Vec<_> = self
            .chunks
            .keys()
            .filter(|(o, _)| *o == object)
            .cloned()
            .collect();
        for key in &keys {
            self.chunks.remove(key);
        }
        keys.len()
    }

    /// Whether the node holds the chunk with the given generator-row index.
    pub fn has_chunk(&self, object: u64, index: usize) -> bool {
        self.chunks.contains_key(&(object, index))
    }

    /// Borrows a stored chunk without touching the service queue or
    /// statistics (management paths; simulated reads go through
    /// [`StorageNode::read`]).
    pub fn chunk(&self, object: u64, index: usize) -> Option<&Chunk> {
        self.chunks.get(&(object, index))
    }

    /// The stored chunk indices for an object, in ascending order.
    pub fn chunk_indices(&self, object: u64) -> Vec<usize> {
        let mut v: Vec<usize> = self
            .chunks
            .keys()
            .filter(|(o, _)| *o == object)
            .map(|(_, idx)| *idx)
            .collect();
        v.sort_unstable();
        v
    }

    /// Total number of chunks stored on the node.
    pub fn num_chunks(&self) -> usize {
        self.chunks.len()
    }

    /// Queueing delay a request arriving at `now` would experience before its
    /// service starts.
    pub fn queue_delay(&self, now: f64) -> f64 {
        (self.busy_until - now).max(0.0)
    }

    /// Serves a chunk read arriving at `now`.
    ///
    /// Returns the chunk and the virtual completion time, or `None` if the
    /// node is offline or does not hold the chunk. Service time is sampled
    /// from the device model for the chunk's size, and the node's FIFO queue
    /// advances accordingly.
    ///
    /// The returned chunk *shares* the stored payload (`Bytes` is
    /// `Arc`-backed): handing it out is a refcount bump, not a byte copy.
    pub fn read<R: Rng + ?Sized>(
        &mut self,
        object: u64,
        index: usize,
        now: f64,
        rng: &mut R,
    ) -> Option<(Chunk, f64)> {
        if !self.online {
            return None;
        }
        let chunk = self.chunks.get(&(object, index))?.clone();
        let start = self.busy_until.max(now);
        let service = self
            .device
            .service_distribution(chunk.len() as u64)
            .sample(rng);
        let done = start + service;
        self.busy_until = done;
        self.busy_time += service;
        self.reads_served += 1;
        Some((chunk, done))
    }

    /// Number of chunk reads served so far.
    pub fn reads_served(&self) -> u64 {
        self.reads_served
    }

    /// Fraction of `[0, horizon]` the device spent serving reads.
    pub fn utilization(&self, horizon: f64) -> f64 {
        if horizon <= 0.0 {
            0.0
        } else {
            (self.busy_time / horizon).min(1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use sprout_erasure::ChunkId;

    fn chunk(index: usize, len: usize) -> Chunk {
        Chunk::new(ChunkId::storage(index), vec![7u8; len])
    }

    #[test]
    fn store_read_and_remove() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut node = StorageNode::new(3, DeviceModel::exponential(0.01));
        assert_eq!(node.id(), 3);
        node.store_chunk(10, chunk(0, 100));
        node.store_chunk(10, chunk(2, 100));
        node.store_chunk(11, chunk(1, 100));
        assert_eq!(node.num_chunks(), 3);
        assert!(node.has_chunk(10, 0));
        assert!(!node.has_chunk(10, 1));
        assert_eq!(node.chunk_indices(10), vec![0, 2]);

        let (c, done) = node.read(10, 0, 5.0, &mut rng).unwrap();
        assert_eq!(c.id.index, 0);
        assert!(done > 5.0);
        assert_eq!(node.reads_served(), 1);

        assert_eq!(node.remove_object(10), 2);
        assert_eq!(node.num_chunks(), 1);
        assert!(node.read(10, 0, 6.0, &mut rng).is_none());
    }

    #[test]
    fn fifo_queue_accumulates_delay() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let mut node = StorageNode::new(0, DeviceModel::exponential(1.0));
        node.store_chunk(1, chunk(0, 10));
        // two back-to-back reads at the same instant: the second waits for the first
        let (_, done1) = node.read(1, 0, 0.0, &mut rng).unwrap();
        assert!(node.queue_delay(0.0) > 0.0);
        let (_, done2) = node.read(1, 0, 0.0, &mut rng).unwrap();
        assert!(done2 > done1);
        // a read arriving after the queue drains starts immediately
        let later = done2 + 100.0;
        assert_eq!(node.queue_delay(later), 0.0);
        let (_, done3) = node.read(1, 0, later, &mut rng).unwrap();
        assert!(done3 > later);
        assert!(node.utilization(done3) > 0.0);
    }

    #[test]
    fn offline_node_serves_nothing() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut node = StorageNode::new(0, DeviceModel::ssd());
        node.store_chunk(1, chunk(0, 10));
        node.set_online(false);
        assert!(!node.is_online());
        assert!(node.read(1, 0, 0.0, &mut rng).is_none());
        node.set_online(true);
        assert!(node.read(1, 0, 0.0, &mut rng).is_some());
    }

    #[test]
    fn utilization_is_bounded() {
        let node = StorageNode::new(0, DeviceModel::ssd());
        assert_eq!(node.utilization(0.0), 0.0);
        assert_eq!(node.utilization(10.0), 0.0);
    }

    #[test]
    fn read_shares_the_stored_payload_without_copying() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let mut node = StorageNode::new(0, DeviceModel::ssd());
        node.store_chunk(1, chunk(0, 64));
        let stored_ptr = node.chunk(1, 0).unwrap().data.as_ptr();
        let (served, _) = node.read(1, 0, 0.0, &mut rng).unwrap();
        assert_eq!(
            served.data.as_ptr(),
            stored_ptr,
            "a served chunk must alias the stored allocation (refcount bump, not a copy)"
        );
    }
}
