//! Per-device chunk service-time models.
//!
//! The paper measures chunk read service times on its testbed for a range of
//! chunk sizes: Table IV gives the mean and variance at an HDD-backed OSD,
//! Table V the read latency from the SSD cache. Those tables are reproduced
//! here as calibration points; intermediate chunk sizes are handled by
//! log-linear interpolation of the mean (and of the coefficient of variation
//! for the variance), which preserves the tables' strong size dependence.

use serde::{Deserialize, Serialize};
use sprout_queueing::dist::{ServiceDistribution, ServiceMoments};

/// Milliseconds per second (the tables are in ms; the cluster works in seconds).
const MS: f64 = 1e-3;

/// Calibration table: (chunk bytes, mean seconds, variance seconds²).
fn hdd_table() -> Vec<(f64, f64, f64)> {
    vec![
        (1e6, 6.6696 * MS, 0.0963 * MS * MS),
        (4e6, 35.88 * MS, 2.6925 * MS * MS),
        (16e6, 147.8462 * MS, 388.9872 * MS * MS),
        (64e6, 355.08 * MS, 1256.61 * MS * MS),
        (256e6, 6758.06 * MS, 554_180.0 * MS * MS),
    ]
}

/// Calibration table for the SSD cache: (chunk bytes, mean seconds).
/// The paper only reports means for the cache; we model a 5 % coefficient of
/// variation, which keeps cache reads effectively deterministic relative to
/// HDD reads (the paper treats them as negligible).
fn ssd_table() -> Vec<(f64, f64)> {
    vec![
        (1e6, 1.866_19 * MS),
        (4e6, 7.356_39 * MS),
        (16e6, 30.4927 * MS),
        (64e6, 97.0968 * MS),
        (256e6, 349.133 * MS),
    ]
}

/// A storage-device latency model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DeviceModel {
    /// An HDD-backed OSD calibrated to Table IV, with its service rate scaled
    /// so that a 25 MB chunk (the paper's simulation chunk size) is served at
    /// `rate_scale` times the table's speed. Use `rate_scale = 1.0` for the
    /// table as measured.
    Hdd {
        /// Multiplier on the service *rate* (2.0 = twice as fast).
        rate_scale: f64,
    },
    /// The SSD cache device calibrated to Table V.
    Ssd,
    /// A synthetic device with exponential chunk service times of the given
    /// mean (seconds), independent of chunk size — matches the abstract
    /// simulation setup of §V-A where per-server service rates are specified
    /// directly.
    Exponential {
        /// Mean chunk service time in seconds.
        mean: f64,
    },
}

impl DeviceModel {
    /// An HDD device exactly matching Table IV.
    pub fn hdd() -> Self {
        DeviceModel::Hdd { rate_scale: 1.0 }
    }

    /// An HDD device whose service rate is scaled by `rate_scale`.
    ///
    /// # Panics
    ///
    /// Panics if `rate_scale <= 0`.
    pub fn hdd_scaled(rate_scale: f64) -> Self {
        assert!(rate_scale > 0.0, "rate scale must be positive");
        DeviceModel::Hdd { rate_scale }
    }

    /// The SSD cache device of Table V.
    pub fn ssd() -> Self {
        DeviceModel::Ssd
    }

    /// A size-independent exponential device with the given mean service time.
    ///
    /// # Panics
    ///
    /// Panics if `mean <= 0`.
    pub fn exponential(mean: f64) -> Self {
        assert!(mean > 0.0, "mean service time must be positive");
        DeviceModel::Exponential { mean }
    }

    /// The service-time distribution for reading one chunk of `chunk_bytes`
    /// from this device.
    pub fn service_distribution(&self, chunk_bytes: u64) -> ServiceDistribution {
        match *self {
            DeviceModel::Hdd { rate_scale } => {
                let (mean, variance) = interpolate_mean_variance(&hdd_table(), chunk_bytes as f64);
                let mean = mean / rate_scale;
                let variance = variance / (rate_scale * rate_scale);
                ServiceDistribution::from_mean_variance(mean, variance.max(1e-12))
            }
            DeviceModel::Ssd => {
                let mean = interpolate_mean(&ssd_table(), chunk_bytes as f64);
                let cv = 0.05;
                ServiceDistribution::from_mean_variance(mean, (cv * mean).powi(2))
            }
            DeviceModel::Exponential { mean } => ServiceDistribution::exponential(1.0 / mean),
        }
    }

    /// Convenience accessor for the first three moments.
    pub fn service_moments(&self, chunk_bytes: u64) -> ServiceMoments {
        self.service_distribution(chunk_bytes).moments()
    }

    /// Mean chunk read time for the given chunk size (seconds).
    pub fn mean_service_time(&self, chunk_bytes: u64) -> f64 {
        self.service_moments(chunk_bytes).mean
    }
}

/// Log-log interpolation of the mean over the calibration points, with
/// proportional extrapolation beyond the table ends.
fn interpolate_mean(table: &[(f64, f64)], size: f64) -> f64 {
    let size = size.max(1.0);
    if size <= table[0].0 {
        return table[0].1 * size / table[0].0;
    }
    if size >= table[table.len() - 1].0 {
        let (s, m) = table[table.len() - 1];
        return m * size / s;
    }
    for w in table.windows(2) {
        let (s0, m0) = w[0];
        let (s1, m1) = w[1];
        if size >= s0 && size <= s1 {
            let t = (size.ln() - s0.ln()) / (s1.ln() - s0.ln());
            return (m0.ln() + t * (m1.ln() - m0.ln())).exp();
        }
    }
    table[table.len() - 1].1
}

fn interpolate_mean_variance(table: &[(f64, f64, f64)], size: f64) -> (f64, f64) {
    let means: Vec<(f64, f64)> = table.iter().map(|&(s, m, _)| (s, m)).collect();
    // Interpolate the squared coefficient of variation, which varies far less
    // violently with size than the raw variance.
    let scv: Vec<(f64, f64)> = table
        .iter()
        .map(|&(s, m, v)| (s, (v / (m * m)).max(1e-9)))
        .collect();
    let mean = interpolate_mean(&means, size);
    let c2 = interpolate_mean(&scv, size);
    (mean, c2 * mean * mean)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hdd_matches_table_iv_at_calibration_points() {
        let hdd = DeviceModel::hdd();
        for (bytes, mean_ms, var_ms2) in [
            (1_000_000u64, 6.6696, 0.0963),
            (4_000_000, 35.88, 2.6925),
            (16_000_000, 147.8462, 388.9872),
            (64_000_000, 355.08, 1256.61),
            (256_000_000, 6758.06, 554_180.0),
        ] {
            let m = hdd.service_moments(bytes);
            assert!(
                (m.mean - mean_ms * 1e-3).abs() / (mean_ms * 1e-3) < 1e-6,
                "mean mismatch at {bytes}"
            );
            assert!(
                (m.variance() - var_ms2 * 1e-6).abs() / (var_ms2 * 1e-6) < 1e-3,
                "variance mismatch at {bytes}: {} vs {}",
                m.variance(),
                var_ms2 * 1e-6
            );
        }
    }

    #[test]
    fn ssd_matches_table_v_and_is_faster_than_hdd() {
        let ssd = DeviceModel::ssd();
        let hdd = DeviceModel::hdd();
        for (bytes, ms) in [
            (1_000_000u64, 1.866_19),
            (4_000_000, 7.356_39),
            (16_000_000, 30.4927),
            (64_000_000, 97.0968),
            (256_000_000, 349.133),
        ] {
            let mean = ssd.mean_service_time(bytes);
            assert!((mean - ms * 1e-3).abs() / (ms * 1e-3) < 1e-6);
            assert!(mean < hdd.mean_service_time(bytes));
        }
    }

    #[test]
    fn interpolation_is_monotone_in_chunk_size() {
        let hdd = DeviceModel::hdd();
        let mut prev = 0.0;
        for mb in [1u64, 2, 4, 8, 16, 25, 32, 64, 128, 256, 512] {
            let mean = hdd.mean_service_time(mb * 1_000_000);
            assert!(mean > prev, "mean should grow with chunk size at {mb} MB");
            prev = mean;
        }
    }

    #[test]
    fn rate_scaling_speeds_up_the_device() {
        let slow = DeviceModel::hdd();
        let fast = DeviceModel::hdd_scaled(2.0);
        let bytes = 25_000_000;
        assert!((fast.mean_service_time(bytes) - slow.mean_service_time(bytes) / 2.0).abs() < 1e-9);
    }

    #[test]
    fn exponential_device_ignores_chunk_size() {
        let d = DeviceModel::exponential(10.0);
        assert!((d.mean_service_time(1) - 10.0).abs() < 1e-9);
        assert!((d.mean_service_time(1_000_000_000) - 10.0).abs() < 1e-9);
        let m = d.service_moments(123);
        assert!((m.scv() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sampling_is_nonnegative() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for device in [
            DeviceModel::hdd(),
            DeviceModel::ssd(),
            DeviceModel::exponential(1.0),
        ] {
            let dist = device.service_distribution(25_000_000);
            for _ in 0..100 {
                assert!(dist.sample(&mut rng) >= 0.0);
            }
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_scale_panics() {
        let _ = DeviceModel::hdd_scaled(0.0);
    }
}
