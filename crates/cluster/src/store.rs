//! The erasure-coded object store: write and read paths over the node,
//! placement and cache substrates.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::SeedableRng;
use sprout_erasure::{Chunk, CodeParams, FunctionalCacheCodec, Kernel, StripeOpts};

use crate::cache::{Cache, CachePolicy, CacheStats};
use crate::device::DeviceModel;
use crate::error::ClusterError;
use crate::node::StorageNode;
use crate::placement::{ClusterView, ObjectDesc, Placement, PlacementChoice};

/// Static description of a cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterConfig {
    /// Number of storage nodes (OSDs).
    pub num_nodes: usize,
    /// Erasure-code parameter `n` (storage chunks per object).
    pub n: usize,
    /// Erasure-code parameter `k` (data chunks per object).
    pub k: usize,
    /// Per-node device models; length must equal `num_nodes`.
    pub devices: Vec<DeviceModel>,
    /// Cache policy at the compute server.
    pub cache_policy: CachePolicy,
    /// Cache capacity in bytes.
    pub cache_capacity_bytes: u64,
    /// Device model of the cache.
    pub cache_device: DeviceModel,
    /// Seed for placement and service-time sampling.
    pub seed: u64,
    /// Chunk-placement strategy (defaults to the paper's random placement
    /// groups, [`PlacementChoice::RandomGroups`]).
    pub placement: PlacementChoice,
    /// GF(2^8) slice kernel for all coding; `None` (the default) resolves
    /// to [`Kernel::auto`] — the best rung the running CPU supports.
    pub coding_kernel: Option<Kernel>,
    /// Striped multi-threaded coding for large objects; `Some` (the
    /// default) makes put/get of multi-MiB objects fan chunk-length stripes
    /// out over a scoped thread pool. Coded bytes are identical either way.
    pub striping: Option<StripeOpts>,
}

impl ClusterConfig {
    /// Starts building a configuration.
    pub fn builder() -> ClusterConfigBuilder {
        ClusterConfigBuilder::default()
    }
}

/// Builder for [`ClusterConfig`].
#[derive(Debug, Clone)]
pub struct ClusterConfigBuilder {
    num_nodes: usize,
    n: usize,
    k: usize,
    devices: Option<Vec<DeviceModel>>,
    cache_policy: CachePolicy,
    cache_capacity_bytes: u64,
    cache_device: DeviceModel,
    seed: u64,
    placement: PlacementChoice,
    coding_kernel: Option<Kernel>,
    striping: Option<StripeOpts>,
}

impl Default for ClusterConfigBuilder {
    fn default() -> Self {
        ClusterConfigBuilder {
            num_nodes: 12,
            n: 7,
            k: 4,
            devices: None,
            cache_policy: CachePolicy::Functional,
            cache_capacity_bytes: 10 * 1_000_000_000,
            cache_device: DeviceModel::ssd(),
            seed: 0,
            placement: PlacementChoice::default(),
            coding_kernel: None,
            striping: Some(StripeOpts::default()),
        }
    }
}

impl ClusterConfigBuilder {
    /// Sets the number of storage nodes.
    pub fn nodes(&mut self, num_nodes: usize) -> &mut Self {
        self.num_nodes = num_nodes;
        self
    }

    /// Sets the erasure code `(n, k)`.
    pub fn code(&mut self, n: usize, k: usize) -> &mut Self {
        self.n = n;
        self.k = k;
        self
    }

    /// Sets one device model for every node.
    pub fn uniform_device(&mut self, device: DeviceModel) -> &mut Self {
        self.devices = Some(vec![device; self.num_nodes]);
        self
    }

    /// Sets per-node device models (length must match `nodes`).
    pub fn devices(&mut self, devices: Vec<DeviceModel>) -> &mut Self {
        self.devices = Some(devices);
        self
    }

    /// Sets the cache policy.
    pub fn cache_policy(&mut self, policy: CachePolicy) -> &mut Self {
        self.cache_policy = policy;
        self
    }

    /// Sets the cache capacity in bytes.
    pub fn cache_capacity_bytes(&mut self, bytes: u64) -> &mut Self {
        self.cache_capacity_bytes = bytes;
        self
    }

    /// Sets the cache device model.
    pub fn cache_device(&mut self, device: DeviceModel) -> &mut Self {
        self.cache_device = device;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(&mut self, seed: u64) -> &mut Self {
        self.seed = seed;
        self
    }

    /// Sets the chunk-placement strategy.
    pub fn placement(&mut self, placement: PlacementChoice) -> &mut Self {
        self.placement = placement;
        self
    }

    /// Pins the GF(2^8) slice kernel (`None` → [`Kernel::auto`]).
    pub fn coding_kernel(&mut self, kernel: Option<Kernel>) -> &mut Self {
        self.coding_kernel = kernel;
        self
    }

    /// Configures striped multi-threaded coding of large objects (`None`
    /// disables it; the default is [`StripeOpts::default`]).
    pub fn striping(&mut self, striping: Option<StripeOpts>) -> &mut Self {
        self.striping = striping;
        self
    }

    /// Sets the number of placement groups of the random-groups strategy.
    #[deprecated(note = "use .placement(PlacementChoice::RandomGroups { groups: Some(g) })")]
    pub fn placement_groups(&mut self, groups: usize) -> &mut Self {
        self.placement = PlacementChoice::RandomGroups {
            groups: Some(groups),
        };
        self
    }

    /// Finalizes the configuration.
    pub fn build(&self) -> ClusterConfig {
        ClusterConfig {
            num_nodes: self.num_nodes,
            n: self.n,
            k: self.k,
            devices: self
                .devices
                .clone()
                .unwrap_or_else(|| vec![DeviceModel::hdd(); self.num_nodes]),
            cache_policy: self.cache_policy,
            cache_capacity_bytes: self.cache_capacity_bytes,
            cache_device: self.cache_device,
            seed: self.seed,
            placement: self.placement.clone(),
            coding_kernel: self.coding_kernel,
            striping: self.striping,
        }
    }
}

/// Metadata kept per stored object.
#[derive(Debug, Clone)]
struct ObjectMeta {
    len: usize,
    placement: Vec<usize>,
}

/// Splits decoded object bytes into the `k` data chunks a cache-tier
/// promotion installs (generator rows `0..k` of the systematic code).
fn data_chunks_of(data: &[u8], k: usize) -> Vec<Chunk> {
    let (data_chunks, _) = sprout_erasure::stripe::split(data, k);
    data_chunks
        .into_iter()
        .enumerate()
        .map(|(i, payload)| Chunk::new(sprout_erasure::ChunkId::cache(i), payload))
        .collect()
}

/// The result of a read.
#[derive(Debug, Clone, PartialEq)]
pub struct ReadOutcome {
    /// The reconstructed object bytes.
    pub data: Vec<u8>,
    /// End-to-end latency of the read in virtual seconds.
    pub latency: f64,
    /// Number of chunks fetched from storage nodes.
    pub storage_chunks_used: usize,
    /// Number of chunks served by the cache.
    pub cache_chunks_used: usize,
    /// Storage nodes that served chunks, in the order they were selected.
    pub nodes_used: Vec<usize>,
}

/// An in-memory erasure-coded object store with a pluggable cache tier.
#[derive(Debug)]
pub struct ErasureCodedStore {
    config: ClusterConfig,
    codec: FunctionalCacheCodec,
    nodes: Vec<StorageNode>,
    placement: Box<dyn Placement>,
    view: ClusterView,
    cache: Cache,
    objects: HashMap<u64, ObjectMeta>,
    rng: StdRng,
}

impl ErasureCodedStore {
    /// Creates an empty cluster.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::InvalidConfig`] for inconsistent parameters
    /// (no nodes, `n > num_nodes`, device-list length mismatch) and
    /// propagates invalid `(n, k)` pairs as [`ClusterError::Coding`].
    pub fn new(config: ClusterConfig) -> Result<Self, ClusterError> {
        if config.num_nodes == 0 {
            return Err(ClusterError::InvalidConfig("no storage nodes".into()));
        }
        if config.n > config.num_nodes {
            return Err(ClusterError::InvalidConfig(format!(
                "n = {} exceeds the number of nodes {}",
                config.n, config.num_nodes
            )));
        }
        if config.devices.len() != config.num_nodes {
            return Err(ClusterError::InvalidConfig(format!(
                "expected {} device models, got {}",
                config.num_nodes,
                config.devices.len()
            )));
        }
        let params = CodeParams::new(config.n, config.k)?;
        // The codec rides the best kernel the CPU supports (unless pinned)
        // and stripes large objects across threads; both choices affect
        // throughput only — coded bytes are kernel- and stripe-invariant.
        let codec = FunctionalCacheCodec::with_kernel(
            params,
            config.coding_kernel.unwrap_or_else(Kernel::auto),
        )?
        .with_striping(config.striping);
        let nodes = config
            .devices
            .iter()
            .enumerate()
            .map(|(id, &device)| StorageNode::new(id, device))
            .collect();
        let placement = config.placement.build(config.num_nodes, config.seed);
        let view = ClusterView::all_online(config.num_nodes);
        let cache = Cache::new(config.cache_policy, config.cache_capacity_bytes);
        let rng = StdRng::seed_from_u64(config.seed ^ 0xC0FF_EE00);
        Ok(ErasureCodedStore {
            config,
            codec,
            nodes,
            placement,
            view,
            cache,
            objects: HashMap::new(),
            rng,
        })
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// The erasure-code parameters.
    pub fn code_params(&self) -> CodeParams {
        self.codec.params()
    }

    /// The GF(2^8) slice kernel the store's codec resolved to (the config's
    /// pin, or [`Kernel::auto`]'s pick for this CPU).
    pub fn coding_kernel(&self) -> Kernel {
        self.codec.kernel()
    }

    /// Number of stored objects.
    pub fn num_objects(&self) -> usize {
        self.objects.len()
    }

    /// Immutable access to a storage node.
    ///
    /// # Panics
    ///
    /// Panics if the node id is out of range.
    pub fn node(&self, id: usize) -> &StorageNode {
        &self.nodes[id]
    }

    /// Immutable access to the cache tier.
    pub fn cache(&self) -> &Cache {
        &self.cache
    }

    /// Cache statistics.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// The nodes hosting an object's chunks (chunk row `i` on entry `i`).
    pub fn object_placement(&self, object: u64) -> Option<&[usize]> {
        self.objects.get(&object).map(|m| m.placement.as_slice())
    }

    /// The stored length of an object in bytes.
    pub fn object_len(&self, object: u64) -> Option<usize> {
        self.objects.get(&object).map(|m| m.len)
    }

    /// Borrows the chunk of `object` hosted on `node` (the row the placement
    /// assigns to that node), if the node holds it. Management path: no
    /// queueing or latency accounting — external schedulers (the simulation
    /// engine's byte-accurate backend) fetch bytes this way after deciding
    /// the timing themselves.
    pub fn chunk_on_node(&self, object: u64, node: usize) -> Option<&Chunk> {
        let meta = self.objects.get(&object)?;
        let row = meta.placement.iter().position(|&n| n == node)?;
        self.nodes[node].chunk(object, row)
    }

    /// Decodes an object from caller-gathered chunks (any `k` distinct rows
    /// of the extended code), trimming to the object's stored length.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownObject`] for unknown objects and
    /// propagates coding errors (too few chunks, duplicate rows).
    pub fn decode_with_chunks(
        &self,
        object: u64,
        chunks: &[Chunk],
    ) -> Result<Vec<u8>, ClusterError> {
        let meta = self
            .objects
            .get(&object)
            .ok_or(ClusterError::UnknownObject(object))?;
        Ok(self.codec.decode(chunks, meta.len)?)
    }

    /// Writes an object, placing its `n` coded chunks via the placement map.
    ///
    /// # Errors
    ///
    /// Propagates coding errors.
    pub fn put(&mut self, object: u64, data: &[u8]) -> Result<(), ClusterError> {
        let placement = self.placement.place(object, self.config.n, &self.view);
        self.put_with_placement(object, data, placement)
    }

    /// Writes an object onto an explicit list of `n` distinct nodes (used by
    /// experiments that control placement, e.g. Fig. 6 of the paper).
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::InvalidConfig`] if the placement list is not
    /// `n` distinct, valid node ids; propagates coding errors.
    pub fn put_with_placement(
        &mut self,
        object: u64,
        data: &[u8],
        placement: Vec<usize>,
    ) -> Result<(), ClusterError> {
        if placement.len() != self.config.n {
            return Err(ClusterError::InvalidConfig(format!(
                "placement lists {} nodes but the code stores n = {} chunks",
                placement.len(),
                self.config.n
            )));
        }
        let mut seen = std::collections::HashSet::new();
        for &node in &placement {
            if node >= self.config.num_nodes || !seen.insert(node) {
                return Err(ClusterError::InvalidConfig(format!(
                    "invalid or duplicate node {node} in placement"
                )));
            }
        }
        // Remove any previous version of the object.
        self.delete(object);
        // Chunks are *moved* onto their nodes: payloads are `Bytes`
        // (`Arc`-backed since PR 2), so no byte is copied and no refcount is
        // even touched on this path.
        let encoded = self.codec.encode(data)?;
        for (chunk, &node) in encoded.into_chunks().into_iter().zip(&placement) {
            self.nodes[node].store_chunk(object, chunk);
        }
        self.objects.insert(
            object,
            ObjectMeta {
                len: data.len(),
                placement,
            },
        );
        Ok(())
    }

    /// Deletes an object from the storage nodes and the cache.
    pub fn delete(&mut self, object: u64) {
        if let Some(meta) = self.objects.remove(&object) {
            for &node in &meta.placement {
                self.nodes[node].remove_object(object);
            }
        }
        self.cache.remove(object);
    }

    /// Marks a storage node failed (offline) or recovered.
    ///
    /// # Panics
    ///
    /// Panics if the node id is out of range.
    pub fn set_node_online(&mut self, node: usize, online: bool) {
        self.nodes[node].set_online(online);
        self.view = self.view.with_node_online(node, online);
    }

    /// The placement strategy writes route through.
    pub fn placement_strategy(&self) -> &dyn Placement {
        self.placement.as_ref()
    }

    /// The store's current membership view (updated by
    /// [`set_node_online`](Self::set_node_online)).
    pub fn cluster_view(&self) -> &ClusterView {
        &self.view
    }

    /// Descriptors of every stored object, sorted by id — the input
    /// [`Placement::on_membership_change`] prices a rebalance against.
    pub fn object_descs(&self) -> Vec<ObjectDesc> {
        let mut descs: Vec<ObjectDesc> = self
            .objects
            .iter()
            .map(|(&id, meta)| ObjectDesc {
                id,
                n: meta.placement.len(),
                chunk_bytes: (meta.len as u64).div_ceil(self.config.k as u64),
            })
            .collect();
        descs.sort_by_key(|d| d.id);
        descs
    }

    /// Installs `d` planner-chosen chunks of an object into the cache
    /// (functional or exact caching). `d = 0` removes the object's cache
    /// entry. Chunk contents are rebuilt from the chunks currently on the
    /// storage nodes, mirroring the paper's lazy population on first access.
    ///
    /// # Errors
    ///
    /// * [`ClusterError::InvalidConfig`] if the cache policy is not
    ///   planner-managed or the chunks do not fit the cache.
    /// * [`ClusterError::UnknownObject`] if the object does not exist.
    /// * Propagated coding errors (e.g. `d > k`).
    pub fn set_cached_chunks(&mut self, object: u64, d: usize) -> Result<(), ClusterError> {
        if !self.config.cache_policy.is_planned() {
            return Err(ClusterError::InvalidConfig(
                "set_cached_chunks requires the functional or exact cache policy".into(),
            ));
        }
        let meta = self
            .objects
            .get(&object)
            .ok_or(ClusterError::UnknownObject(object))?;
        if d == 0 {
            self.cache.remove(object);
            return Ok(());
        }
        // Gather every available storage chunk (management path: no latency
        // accounting, mirroring off-peak prefetch in the paper). Chunk
        // payloads are reference-counted, so these clones copy no data.
        let mut available = Vec::new();
        for &node in &meta.placement {
            for index in self.nodes[node].chunk_indices(object) {
                if let Some(chunk) = self.nodes[node].chunk(object, index) {
                    available.push(chunk.clone());
                }
            }
        }
        let chunks = match self.config.cache_policy {
            CachePolicy::Functional => self.codec.cache_chunks_from_chunks(&available, d)?,
            CachePolicy::Exact => {
                // Copy the first d storage chunks verbatim.
                let mut copies: Vec<Chunk> = available
                    .into_iter()
                    .filter(|c| c.id.index < d.min(self.config.n))
                    .collect();
                copies.sort_by_key(|c| c.id.index);
                copies.truncate(d);
                if copies.len() < d {
                    return Err(ClusterError::NotEnoughReplicas {
                        object,
                        available: copies.len(),
                        required: d,
                    });
                }
                copies
            }
            _ => unreachable!("checked is_planned above"),
        };
        if self.cache.install_planned(object, chunks) {
            Ok(())
        } else {
            Err(ClusterError::InvalidConfig(format!(
                "cache capacity exceeded while installing {d} chunks of object {object}"
            )))
        }
    }

    /// Reads an object at virtual time `now`, honouring the cache policy, and
    /// returns the reconstructed bytes together with the request latency.
    ///
    /// # Errors
    ///
    /// * [`ClusterError::UnknownObject`] if the object was never written.
    /// * [`ClusterError::NotEnoughReplicas`] if node failures leave fewer
    ///   than `k` chunks reachable.
    /// * Propagated coding errors on reconstruction.
    pub fn get(&mut self, object: u64, now: f64) -> Result<ReadOutcome, ClusterError> {
        let meta = self
            .objects
            .get(&object)
            .cloned()
            .ok_or(ClusterError::UnknownObject(object))?;
        let k = self.config.k;

        // 1. Chunks available from the cache.
        let cached: Vec<Chunk> = match self.config.cache_policy {
            CachePolicy::None => Vec::new(),
            _ => self.cache.lookup(object),
        };
        let lru = matches!(self.config.cache_policy, CachePolicy::LruReplicated { .. });

        // Cache-resident LRU objects (or fully functional-cached objects) are
        // served without touching storage.
        if cached.len() >= k {
            let cache_latency = self.cache_read_latency(&cached[..k]);
            let data = self.codec.decode(&cached, meta.len)?;
            return Ok(ReadOutcome {
                data,
                latency: cache_latency,
                storage_chunks_used: 0,
                cache_chunks_used: k,
                nodes_used: Vec::new(),
            });
        }

        let needed_from_storage = k - cached.len();

        // 2. Candidate storage chunks: for exact caching the cached rows are
        // copies of storage rows, so their hosts cannot contribute new rows.
        let cached_rows: std::collections::HashSet<usize> =
            cached.iter().map(|c| c.id.index).collect();
        let mut candidates: Vec<(f64, usize, usize)> = Vec::new(); // (queue delay, node, row)
        for (row, &node) in meta.placement.iter().enumerate() {
            if !self.nodes[node].is_online() || !self.nodes[node].has_chunk(object, row) {
                continue;
            }
            if self.config.cache_policy == CachePolicy::Exact && cached_rows.contains(&row) {
                continue;
            }
            candidates.push((self.nodes[node].queue_delay(now), node, row));
        }
        if candidates.len() < needed_from_storage {
            return Err(ClusterError::NotEnoughReplicas {
                object,
                available: candidates.len() + cached.len(),
                required: k,
            });
        }
        // Least-busy-first selection (the "optimal request scheduling" the
        // functional-caching example in §III argues for).
        candidates.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        candidates.truncate(needed_from_storage);

        // 3. Issue the storage reads and take the fork-join maximum.
        let mut storage_chunks = Vec::with_capacity(needed_from_storage);
        let mut nodes_used = Vec::with_capacity(needed_from_storage);
        let mut finish = now;
        for &(_, node, row) in &candidates {
            let (chunk, done) = self.nodes[node]
                .read(object, row, now, &mut self.rng)
                .expect("candidate chunks were verified present and online");
            finish = finish.max(done);
            storage_chunks.push(chunk);
            nodes_used.push(node);
        }
        let storage_latency = finish - now;
        let cache_latency = self.cache_read_latency(&cached);
        let latency = storage_latency.max(cache_latency);

        // 4. Reconstruct and verify.
        let cache_chunks_used = cached.len();
        let mut all = cached;
        all.extend(storage_chunks);
        let data = self.codec.decode(&all, meta.len)?;

        // 5. LRU promotion on a miss: the whole object enters the cache tier.
        if lru {
            let chunks = data_chunks_of(&data, k);
            self.cache.promote_lru(object, chunks);
        }

        Ok(ReadOutcome {
            data,
            latency,
            storage_chunks_used: needed_from_storage,
            cache_chunks_used,
            nodes_used,
        })
    }

    /// Promotes a whole object into the cache tier *unconditionally* — the
    /// mirror of an admission decided by an external [`CacheTier`] (the
    /// simulation engine's; see [`crate::tier`]). The object's `k` data
    /// chunks are rebuilt from whatever storage chunks are present
    /// (management path: no queueing or latency accounting) and installed
    /// without consulting this cache's own admission policy.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownObject`] for unknown objects and
    /// propagates decode errors when too few chunks survive.
    pub fn promote_object(&mut self, object: u64) -> Result<(), ClusterError> {
        let meta = self
            .objects
            .get(&object)
            .ok_or(ClusterError::UnknownObject(object))?;
        let mut available = Vec::new();
        for &node in &meta.placement {
            for index in self.nodes[node].chunk_indices(object) {
                if let Some(chunk) = self.nodes[node].chunk(object, index) {
                    available.push(chunk.clone());
                }
            }
        }
        let data = self.codec.decode(&available, meta.len)?;
        let chunks = data_chunks_of(&data, self.config.k);
        self.cache.mirror_promote(object, chunks);
        Ok(())
    }

    /// Evicts an object from the cache tier — the mirror of an eviction
    /// decided by an external [`CacheTier`]. Returns whether it was resident.
    pub fn evict_cached(&mut self, object: u64) -> bool {
        self.cache.mirror_evict(object)
    }

    /// Drops every cache entry (e.g. when a scenario swaps the cache scheme
    /// mid-run and the tier restarts cold).
    pub fn reset_cache(&mut self) {
        self.cache.clear();
    }

    fn cache_read_latency(&mut self, chunks: &[Chunk]) -> f64 {
        chunks
            .iter()
            .map(|c| {
                self.config
                    .cache_device
                    .service_distribution(c.len() as u64)
                    .sample(&mut self.rng)
            })
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(len: usize, seed: u8) -> Vec<u8> {
        (0..len)
            .map(|i| (i as u8).wrapping_mul(31).wrapping_add(seed))
            .collect()
    }

    fn store(policy: CachePolicy) -> ErasureCodedStore {
        let config = ClusterConfig::builder()
            .nodes(8)
            .code(7, 4)
            .uniform_device(DeviceModel::exponential(0.010))
            .cache_policy(policy)
            .cache_capacity_bytes(1_000_000)
            .seed(11)
            .build();
        ErasureCodedStore::new(config).unwrap()
    }

    #[test]
    fn put_get_round_trip_without_cache() {
        let mut s = store(CachePolicy::None);
        let data = payload(10_000, 1);
        s.put(1, &data).unwrap();
        assert_eq!(s.num_objects(), 1);
        let out = s.get(1, 0.0).unwrap();
        assert_eq!(out.data, data);
        assert_eq!(out.storage_chunks_used, 4);
        assert_eq!(out.cache_chunks_used, 0);
        assert!(out.latency > 0.0);
        assert_eq!(out.nodes_used.len(), 4);
    }

    #[test]
    fn striped_multi_mib_put_get_matches_unstriped() {
        // Defaults: kernel auto + striping on. Pin: scalar kernel, no
        // striping. Stored chunk bytes and read-back data must be identical.
        let data = payload(3 * 1024 * 1024 + 13, 7);
        let mut fast = store(CachePolicy::None);
        assert!(fast.config().striping.is_some(), "striping on by default");
        assert_eq!(fast.coding_kernel(), Kernel::auto());
        let pinned_config = ClusterConfig::builder()
            .nodes(8)
            .code(7, 4)
            .uniform_device(DeviceModel::exponential(0.010))
            .cache_policy(CachePolicy::None)
            .cache_capacity_bytes(1_000_000)
            .seed(11)
            .coding_kernel(Some(Kernel::Scalar))
            .striping(None)
            .build();
        let mut slow = ErasureCodedStore::new(pinned_config).unwrap();
        assert_eq!(slow.coding_kernel(), Kernel::Scalar);
        fast.put(9, &data).unwrap();
        slow.put(9, &data).unwrap();
        for node in 0..8 {
            assert_eq!(
                fast.chunk_on_node(9, node).map(|c| c.data.as_ref()),
                slow.chunk_on_node(9, node).map(|c| c.data.as_ref()),
                "chunk bytes must be kernel- and stripe-invariant (node {node})"
            );
        }
        assert_eq!(fast.get(9, 0.0).unwrap().data, data);
        assert_eq!(slow.get(9, 0.0).unwrap().data, data);
    }

    #[test]
    fn unknown_object_is_an_error() {
        let mut s = store(CachePolicy::None);
        assert_eq!(
            s.get(404, 0.0).unwrap_err(),
            ClusterError::UnknownObject(404)
        );
    }

    #[test]
    fn functional_cache_serves_part_of_the_read() {
        let mut s = store(CachePolicy::Functional);
        let data = payload(20_000, 2);
        s.put(5, &data).unwrap();
        s.set_cached_chunks(5, 2).unwrap();
        assert_eq!(s.cache().cached_chunk_count(5), 2);
        let out = s.get(5, 0.0).unwrap();
        assert_eq!(out.data, data);
        assert_eq!(out.cache_chunks_used, 2);
        assert_eq!(out.storage_chunks_used, 2);
        // Fully cached: no storage reads at all.
        s.set_cached_chunks(5, 4).unwrap();
        let out = s.get(5, 0.0).unwrap();
        assert_eq!(out.data, data);
        assert_eq!(out.storage_chunks_used, 0);
        assert_eq!(out.cache_chunks_used, 4);
        // Shrinking back to zero removes the entry.
        s.set_cached_chunks(5, 0).unwrap();
        assert_eq!(s.cache().cached_chunk_count(5), 0);
    }

    #[test]
    fn exact_cache_excludes_hosts_of_cached_rows() {
        let mut s = store(CachePolicy::Exact);
        let data = payload(8_000, 3);
        s.put(9, &data).unwrap();
        s.set_cached_chunks(9, 2).unwrap();
        let placement = s.object_placement(9).unwrap().to_vec();
        let out = s.get(9, 0.0).unwrap();
        assert_eq!(out.data, data);
        assert_eq!(out.cache_chunks_used, 2);
        assert_eq!(out.storage_chunks_used, 2);
        // The hosts of rows 0 and 1 (the exact-cached rows) must not serve.
        assert!(!out.nodes_used.contains(&placement[0]));
        assert!(!out.nodes_used.contains(&placement[1]));
    }

    #[test]
    fn lru_cache_promotes_on_miss_and_hits_afterwards() {
        let mut s = store(CachePolicy::ceph_baseline());
        let data = payload(4_000, 4);
        s.put(77, &data).unwrap();
        let miss = s.get(77, 0.0).unwrap();
        assert_eq!(miss.cache_chunks_used, 0);
        assert_eq!(miss.data, data);
        let hit = s.get(77, 100.0).unwrap();
        assert_eq!(hit.storage_chunks_used, 0);
        assert_eq!(hit.data, data);
        assert!(hit.latency < miss.latency);
        assert!(s.cache_stats().hits >= 1);
    }

    #[test]
    fn node_failures_are_tolerated_up_to_n_minus_k() {
        let mut s = store(CachePolicy::None);
        let data = payload(6_000, 5);
        s.put(3, &data).unwrap();
        let placement = s.object_placement(3).unwrap().to_vec();
        // (7,4): up to 3 node failures are fine.
        for &node in placement.iter().take(3) {
            s.set_node_online(node, false);
        }
        assert_eq!(s.get(3, 0.0).unwrap().data, data);
        // a fourth failure makes the object unreadable
        s.set_node_online(placement[3], false);
        assert!(matches!(
            s.get(3, 0.0).unwrap_err(),
            ClusterError::NotEnoughReplicas { required: 4, .. }
        ));
        // recovery restores readability
        s.set_node_online(placement[0], true);
        assert_eq!(s.get(3, 0.0).unwrap().data, data);
    }

    #[test]
    fn queueing_under_back_to_back_reads_increases_latency() {
        let mut s = store(CachePolicy::None);
        let data = payload(50_000, 6);
        s.put(8, &data).unwrap();
        let first = s.get(8, 0.0).unwrap().latency;
        // many reads at the same instant pile up in the FIFO queues
        let mut last = first;
        for _ in 0..20 {
            last = s.get(8, 0.0).unwrap().latency;
        }
        assert!(
            last > first,
            "queueing should grow latency: {first} -> {last}"
        );
        // reads far in the future see empty queues again
        let later = s.get(8, 1e9).unwrap().latency;
        assert!(later < last);
    }

    #[test]
    fn delete_removes_chunks_everywhere() {
        let mut s = store(CachePolicy::Functional);
        let data = payload(5_000, 7);
        s.put(2, &data).unwrap();
        s.set_cached_chunks(2, 1).unwrap();
        s.delete(2);
        assert_eq!(s.num_objects(), 0);
        assert!(matches!(s.get(2, 0.0), Err(ClusterError::UnknownObject(2))));
        assert_eq!(s.cache().cached_chunk_count(2), 0);
        let total_chunks: usize = (0..8).map(|i| s.node(i).num_chunks()).sum();
        assert_eq!(total_chunks, 0);
    }

    #[test]
    fn explicit_placement_is_honoured_and_validated() {
        let mut s = store(CachePolicy::None);
        let data = payload(3_000, 8);
        s.put_with_placement(1, &data, vec![0, 1, 2, 3, 4, 5, 6])
            .unwrap();
        assert_eq!(s.object_placement(1).unwrap(), &[0, 1, 2, 3, 4, 5, 6]);
        assert!(s.put_with_placement(2, &data, vec![0, 1, 2]).is_err());
        assert!(s
            .put_with_placement(2, &data, vec![0, 0, 1, 2, 3, 4, 5])
            .is_err());
        assert!(s
            .put_with_placement(2, &data, vec![0, 1, 2, 3, 4, 5, 99])
            .is_err());
    }

    #[test]
    fn set_cached_chunks_requires_planned_policy_and_known_object() {
        let mut s = store(CachePolicy::ceph_baseline());
        let data = payload(1_000, 9);
        s.put(1, &data).unwrap();
        assert!(matches!(
            s.set_cached_chunks(1, 1),
            Err(ClusterError::InvalidConfig(_))
        ));
        let mut s = store(CachePolicy::Functional);
        assert!(matches!(
            s.set_cached_chunks(1, 1),
            Err(ClusterError::UnknownObject(1))
        ));
        s.put(1, &data).unwrap();
        assert!(matches!(
            s.set_cached_chunks(1, 9),
            Err(ClusterError::Coding(_))
        ));
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut builder = ClusterConfig::builder();
        let bad = builder.nodes(3).code(7, 4).build();
        assert!(matches!(
            ErasureCodedStore::new(bad),
            Err(ClusterError::InvalidConfig(_))
        ));
        let mut builder = ClusterConfig::builder();
        let mut cfg = builder.nodes(8).code(7, 4).build();
        cfg.devices.truncate(3);
        assert!(matches!(
            ErasureCodedStore::new(cfg),
            Err(ClusterError::InvalidConfig(_))
        ));
        let mut builder = ClusterConfig::builder();
        let bad_code = builder.nodes(8).code(4, 7).build();
        assert!(matches!(
            ErasureCodedStore::new(bad_code),
            Err(ClusterError::Coding(_))
        ));
    }

    #[test]
    fn chunk_on_node_follows_the_placement() {
        let mut s = store(CachePolicy::None);
        let data = payload(9_000, 12);
        s.put(4, &data).unwrap();
        assert_eq!(s.object_len(4), Some(9_000));
        let placement = s.object_placement(4).unwrap().to_vec();
        for (row, &node) in placement.iter().enumerate() {
            let c = s.chunk_on_node(4, node).unwrap();
            assert_eq!(c.id.index, row);
        }
        // A node outside the placement hosts nothing.
        let outside = (0..8).find(|n| !placement.contains(n)).unwrap();
        assert!(s.chunk_on_node(4, outside).is_none());
        assert!(s.chunk_on_node(999, placement[0]).is_none());
    }

    #[test]
    fn decode_with_chunks_reconstructs_from_any_k_rows() {
        let mut s = store(CachePolicy::None);
        let data = payload(11_000, 13);
        s.put(6, &data).unwrap();
        let placement = s.object_placement(6).unwrap().to_vec();
        // Gather rows 3..7 (parity-heavy subset) by node.
        let chunks: Vec<Chunk> = placement[3..7]
            .iter()
            .map(|&n| s.chunk_on_node(6, n).unwrap().clone())
            .collect();
        assert_eq!(s.decode_with_chunks(6, &chunks).unwrap(), data);
        assert!(matches!(
            s.decode_with_chunks(7, &chunks),
            Err(ClusterError::UnknownObject(7))
        ));
        assert!(s.decode_with_chunks(6, &chunks[..2]).is_err());
    }

    #[test]
    fn stored_and_cached_chunks_share_payload_allocations() {
        let mut s = store(CachePolicy::Exact);
        let data = payload(12_000, 14);
        s.put(8, &data).unwrap();
        s.set_cached_chunks(8, 2).unwrap();
        let placement = s.object_placement(8).unwrap().to_vec();
        // Exact caching copies storage rows 0 and 1 into the cache: the cache
        // entry must alias the node's allocation, not duplicate it.
        let node_chunk_ptr = s.chunk_on_node(8, placement[0]).unwrap().data.as_ptr();
        let cached = s.cache().peek(8).unwrap();
        let cache_ptr = cached
            .iter()
            .find(|c| c.id.index == 0)
            .expect("row 0 is cached")
            .data
            .as_ptr();
        assert_eq!(
            cache_ptr, node_chunk_ptr,
            "exact-cached chunk must share the stored allocation"
        );
    }

    #[test]
    fn overwriting_an_object_replaces_its_contents() {
        let mut s = store(CachePolicy::None);
        let first = payload(2_000, 10);
        let second = payload(3_000, 11);
        s.put(6, &first).unwrap();
        s.put(6, &second).unwrap();
        assert_eq!(s.get(6, 0.0).unwrap().data, second);
        assert_eq!(s.num_objects(), 1);
    }
}
