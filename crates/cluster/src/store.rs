//! The erasure-coded object store: write and read paths over the node,
//! placement and cache substrates.

use std::sync::{MutexGuard, RwLockReadGuard};

use rand::rngs::StdRng;
use rand::SeedableRng;
use sprout_erasure::{Chunk, CodeParams, Kernel, StripeOpts};

use crate::cache::{Cache, CachePolicy, CacheStats};
use crate::device::DeviceModel;
use crate::error::ClusterError;
use crate::handle::StoreHandle;
use crate::node::StorageNode;
use crate::placement::{ClusterView, ObjectDesc, Placement, PlacementChoice};

/// Static description of a cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterConfig {
    /// Number of storage nodes (OSDs).
    pub num_nodes: usize,
    /// Erasure-code parameter `n` (storage chunks per object).
    pub n: usize,
    /// Erasure-code parameter `k` (data chunks per object).
    pub k: usize,
    /// Per-node device models; length must equal `num_nodes`.
    pub devices: Vec<DeviceModel>,
    /// Cache policy at the compute server.
    pub cache_policy: CachePolicy,
    /// Cache capacity in bytes.
    pub cache_capacity_bytes: u64,
    /// Device model of the cache.
    pub cache_device: DeviceModel,
    /// Seed for placement and service-time sampling.
    pub seed: u64,
    /// Chunk-placement strategy (defaults to the paper's random placement
    /// groups, [`PlacementChoice::RandomGroups`]).
    pub placement: PlacementChoice,
    /// GF(2^8) slice kernel for all coding; `None` (the default) resolves
    /// to [`Kernel::auto`] — the best rung the running CPU supports.
    pub coding_kernel: Option<Kernel>,
    /// Striped multi-threaded coding for large objects; `Some` (the
    /// default) makes put/get of multi-MiB objects fan chunk-length stripes
    /// out over a scoped thread pool. Coded bytes are identical either way.
    pub striping: Option<StripeOpts>,
}

impl ClusterConfig {
    /// Starts building a configuration.
    pub fn builder() -> ClusterConfigBuilder {
        ClusterConfigBuilder::default()
    }
}

/// Builder for [`ClusterConfig`].
#[derive(Debug, Clone)]
pub struct ClusterConfigBuilder {
    num_nodes: usize,
    n: usize,
    k: usize,
    devices: Option<Vec<DeviceModel>>,
    cache_policy: CachePolicy,
    cache_capacity_bytes: u64,
    cache_device: DeviceModel,
    seed: u64,
    placement: PlacementChoice,
    coding_kernel: Option<Kernel>,
    striping: Option<StripeOpts>,
}

impl Default for ClusterConfigBuilder {
    fn default() -> Self {
        ClusterConfigBuilder {
            num_nodes: 12,
            n: 7,
            k: 4,
            devices: None,
            cache_policy: CachePolicy::Functional,
            cache_capacity_bytes: 10 * 1_000_000_000,
            cache_device: DeviceModel::ssd(),
            seed: 0,
            placement: PlacementChoice::default(),
            coding_kernel: None,
            striping: Some(StripeOpts::default()),
        }
    }
}

impl ClusterConfigBuilder {
    /// Sets the number of storage nodes.
    pub fn nodes(&mut self, num_nodes: usize) -> &mut Self {
        self.num_nodes = num_nodes;
        self
    }

    /// Sets the erasure code `(n, k)`.
    pub fn code(&mut self, n: usize, k: usize) -> &mut Self {
        self.n = n;
        self.k = k;
        self
    }

    /// Sets one device model for every node.
    pub fn uniform_device(&mut self, device: DeviceModel) -> &mut Self {
        self.devices = Some(vec![device; self.num_nodes]);
        self
    }

    /// Sets per-node device models (length must match `nodes`).
    pub fn devices(&mut self, devices: Vec<DeviceModel>) -> &mut Self {
        self.devices = Some(devices);
        self
    }

    /// Sets the cache policy.
    pub fn cache_policy(&mut self, policy: CachePolicy) -> &mut Self {
        self.cache_policy = policy;
        self
    }

    /// Sets the cache capacity in bytes.
    pub fn cache_capacity_bytes(&mut self, bytes: u64) -> &mut Self {
        self.cache_capacity_bytes = bytes;
        self
    }

    /// Sets the cache device model.
    pub fn cache_device(&mut self, device: DeviceModel) -> &mut Self {
        self.cache_device = device;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(&mut self, seed: u64) -> &mut Self {
        self.seed = seed;
        self
    }

    /// Sets the chunk-placement strategy.
    pub fn placement(&mut self, placement: PlacementChoice) -> &mut Self {
        self.placement = placement;
        self
    }

    /// Pins the GF(2^8) slice kernel (`None` → [`Kernel::auto`]).
    pub fn coding_kernel(&mut self, kernel: Option<Kernel>) -> &mut Self {
        self.coding_kernel = kernel;
        self
    }

    /// Configures striped multi-threaded coding of large objects (`None`
    /// disables it; the default is [`StripeOpts::default`]).
    pub fn striping(&mut self, striping: Option<StripeOpts>) -> &mut Self {
        self.striping = striping;
        self
    }

    /// Sets the number of placement groups of the random-groups strategy.
    #[deprecated(note = "use .placement(PlacementChoice::RandomGroups { groups: Some(g) })")]
    pub fn placement_groups(&mut self, groups: usize) -> &mut Self {
        self.placement = PlacementChoice::RandomGroups {
            groups: Some(groups),
        };
        self
    }

    /// Finalizes the configuration.
    pub fn build(&self) -> ClusterConfig {
        ClusterConfig {
            num_nodes: self.num_nodes,
            n: self.n,
            k: self.k,
            devices: self
                .devices
                .clone()
                .unwrap_or_else(|| vec![DeviceModel::hdd(); self.num_nodes]),
            cache_policy: self.cache_policy,
            cache_capacity_bytes: self.cache_capacity_bytes,
            cache_device: self.cache_device,
            seed: self.seed,
            placement: self.placement.clone(),
            coding_kernel: self.coding_kernel,
            striping: self.striping,
        }
    }
}

/// The result of a read.
#[derive(Debug, Clone, PartialEq)]
pub struct ReadOutcome {
    /// The reconstructed object bytes.
    pub data: Vec<u8>,
    /// End-to-end latency of the read in virtual seconds.
    pub latency: f64,
    /// Number of chunks fetched from storage nodes.
    pub storage_chunks_used: usize,
    /// Number of chunks served by the cache.
    pub cache_chunks_used: usize,
    /// Storage nodes that served chunks, in the order they were selected.
    pub nodes_used: Vec<usize>,
}

/// An in-memory erasure-coded object store with a pluggable cache tier.
///
/// Since the serving-path refactor this type is a thin single-threaded
/// wrapper over [`StoreHandle`], the lock-sharded `Send + Sync` core: it
/// adds a private seeded RNG and threads it through every sampling path in
/// the store's historical draw order, so deterministic single-owner callers
/// (the simulation engine, the figure suite) see byte-identical latencies
/// and contents, while concurrent callers grab [`Self::handle`] and share
/// the same cluster across threads.
#[derive(Debug)]
pub struct ErasureCodedStore {
    handle: StoreHandle,
    rng: StdRng,
}

impl ErasureCodedStore {
    /// Creates an empty cluster.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::InvalidConfig`] for inconsistent parameters
    /// (no nodes, `n > num_nodes`, device-list length mismatch) and
    /// propagates invalid `(n, k)` pairs as [`ClusterError::Coding`].
    pub fn new(config: ClusterConfig) -> Result<Self, ClusterError> {
        let seed = config.seed;
        let handle = StoreHandle::new(config)?;
        Ok(ErasureCodedStore {
            handle,
            rng: StdRng::seed_from_u64(seed ^ 0xC0FF_EE00),
        })
    }

    /// A `Send + Sync` handle sharing this store's state — the entry point
    /// for concurrent callers (cloning is an `Arc` bump). Reads through the
    /// handle's own [`StoreHandle::get`] draw from per-request RNG streams
    /// and do not perturb this wrapper's deterministic sequence.
    pub fn handle(&self) -> StoreHandle {
        self.handle.clone()
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        self.handle.config()
    }

    /// The erasure-code parameters.
    pub fn code_params(&self) -> CodeParams {
        self.handle.code_params()
    }

    /// The GF(2^8) slice kernel the store's codec resolved to (the config's
    /// pin, or [`Kernel::auto`]'s pick for this CPU).
    pub fn coding_kernel(&self) -> Kernel {
        self.handle.coding_kernel()
    }

    /// Number of stored objects.
    pub fn num_objects(&self) -> usize {
        self.handle.num_objects()
    }

    /// Read access to a storage node (a lock guard; hold it briefly).
    ///
    /// # Panics
    ///
    /// Panics if the node id is out of range.
    pub fn node(&self, id: usize) -> RwLockReadGuard<'_, StorageNode> {
        self.handle.node(id)
    }

    /// Access to the cache tier (a lock guard; hold it briefly).
    pub fn cache(&self) -> MutexGuard<'_, Cache> {
        self.handle.cache()
    }

    /// Cache statistics.
    pub fn cache_stats(&self) -> CacheStats {
        self.handle.cache_stats()
    }

    /// The nodes hosting an object's chunks (chunk row `i` on entry `i`).
    pub fn object_placement(&self, object: u64) -> Option<Vec<usize>> {
        self.handle.object_placement(object)
    }

    /// The stored length of an object in bytes.
    pub fn object_len(&self, object: u64) -> Option<usize> {
        self.handle.object_len(object)
    }

    /// The chunk of `object` hosted on `node` (the row the placement
    /// assigns to that node), if the node holds it. Management path: no
    /// queueing or latency accounting. The returned chunk shares the stored
    /// payload (`Bytes` is refcounted), so this copies nothing.
    pub fn chunk_on_node(&self, object: u64, node: usize) -> Option<Chunk> {
        self.handle.chunk_on_node(object, node)
    }

    /// Decodes an object from caller-gathered chunks (any `k` distinct rows
    /// of the extended code), trimming to the object's stored length.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownObject`] for unknown objects and
    /// propagates coding errors (too few chunks, duplicate rows).
    pub fn decode_with_chunks(
        &self,
        object: u64,
        chunks: &[Chunk],
    ) -> Result<Vec<u8>, ClusterError> {
        self.handle.decode_with_chunks(object, chunks)
    }

    /// Writes an object, placing its `n` coded chunks via the placement map.
    ///
    /// # Errors
    ///
    /// Propagates coding errors.
    pub fn put(&mut self, object: u64, data: &[u8]) -> Result<(), ClusterError> {
        self.handle.put(object, data)
    }

    /// Writes an object onto an explicit list of `n` distinct nodes (used by
    /// experiments that control placement, e.g. Fig. 6 of the paper).
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::InvalidConfig`] if the placement list is not
    /// `n` distinct, valid node ids; propagates coding errors.
    pub fn put_with_placement(
        &mut self,
        object: u64,
        data: &[u8],
        placement: Vec<usize>,
    ) -> Result<(), ClusterError> {
        self.handle.put_with_placement(object, data, placement)
    }

    /// Deletes an object from the storage nodes and the cache.
    pub fn delete(&mut self, object: u64) {
        self.handle.delete(object);
    }

    /// Marks a storage node failed (offline) or recovered.
    ///
    /// # Panics
    ///
    /// Panics if the node id is out of range.
    pub fn set_node_online(&mut self, node: usize, online: bool) {
        self.handle.set_node_online(node, online);
    }

    /// The placement strategy writes route through.
    pub fn placement_strategy(&self) -> &dyn Placement {
        self.handle.placement_strategy()
    }

    /// A snapshot of the store's current membership view (updated by
    /// [`set_node_online`](Self::set_node_online)).
    pub fn cluster_view(&self) -> ClusterView {
        self.handle.cluster_view()
    }

    /// Descriptors of every stored object, sorted by id — the input
    /// [`Placement::on_membership_change`] prices a rebalance against.
    pub fn object_descs(&self) -> Vec<ObjectDesc> {
        self.handle.object_descs()
    }

    /// Installs `d` planner-chosen chunks of an object into the cache
    /// (functional or exact caching). `d = 0` removes the object's cache
    /// entry. Chunk contents are rebuilt from the chunks currently on the
    /// storage nodes, mirroring the paper's lazy population on first access.
    ///
    /// # Errors
    ///
    /// * [`ClusterError::InvalidConfig`] if the cache policy is not
    ///   planner-managed or the chunks do not fit the cache.
    /// * [`ClusterError::UnknownObject`] if the object does not exist.
    /// * Propagated coding errors (e.g. `d > k`).
    pub fn set_cached_chunks(&mut self, object: u64, d: usize) -> Result<(), ClusterError> {
        self.handle.set_cached_chunks(object, d)
    }

    /// Reads an object at virtual time `now`, honouring the cache policy, and
    /// returns the reconstructed bytes together with the request latency.
    /// Samples from the store's own seeded RNG, in the same draw order as
    /// before the handle refactor.
    ///
    /// # Errors
    ///
    /// * [`ClusterError::UnknownObject`] if the object was never written.
    /// * [`ClusterError::NotEnoughReplicas`] if node failures leave fewer
    ///   than `k` chunks reachable.
    /// * Propagated coding errors on reconstruction.
    pub fn get(&mut self, object: u64, now: f64) -> Result<ReadOutcome, ClusterError> {
        self.handle.get_with_rng(object, now, &mut self.rng)
    }

    /// Promotes a whole object into the cache tier *unconditionally* — the
    /// mirror of an admission decided by an external [`CacheTier`] (the
    /// simulation engine's; see [`crate::tier`]).
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownObject`] for unknown objects and
    /// propagates decode errors when too few chunks survive.
    ///
    /// [`CacheTier`]: crate::CacheTier
    pub fn promote_object(&mut self, object: u64) -> Result<(), ClusterError> {
        self.handle.promote_object(object)
    }

    /// Evicts an object from the cache tier — the mirror of an eviction
    /// decided by an external [`CacheTier`](crate::CacheTier). Returns
    /// whether it was resident.
    pub fn evict_cached(&mut self, object: u64) -> bool {
        self.handle.evict_cached(object)
    }

    /// Drops every cache entry (e.g. when a scenario swaps the cache scheme
    /// mid-run and the tier restarts cold).
    pub fn reset_cache(&mut self) {
        self.handle.reset_cache();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(len: usize, seed: u8) -> Vec<u8> {
        (0..len)
            .map(|i| (i as u8).wrapping_mul(31).wrapping_add(seed))
            .collect()
    }

    fn store(policy: CachePolicy) -> ErasureCodedStore {
        let config = ClusterConfig::builder()
            .nodes(8)
            .code(7, 4)
            .uniform_device(DeviceModel::exponential(0.010))
            .cache_policy(policy)
            .cache_capacity_bytes(1_000_000)
            .seed(11)
            .build();
        ErasureCodedStore::new(config).unwrap()
    }

    #[test]
    fn put_get_round_trip_without_cache() {
        let mut s = store(CachePolicy::None);
        let data = payload(10_000, 1);
        s.put(1, &data).unwrap();
        assert_eq!(s.num_objects(), 1);
        let out = s.get(1, 0.0).unwrap();
        assert_eq!(out.data, data);
        assert_eq!(out.storage_chunks_used, 4);
        assert_eq!(out.cache_chunks_used, 0);
        assert!(out.latency > 0.0);
        assert_eq!(out.nodes_used.len(), 4);
    }

    #[test]
    fn striped_multi_mib_put_get_matches_unstriped() {
        // Defaults: kernel auto + striping on. Pin: scalar kernel, no
        // striping. Stored chunk bytes and read-back data must be identical.
        let data = payload(3 * 1024 * 1024 + 13, 7);
        let mut fast = store(CachePolicy::None);
        assert!(fast.config().striping.is_some(), "striping on by default");
        assert_eq!(fast.coding_kernel(), Kernel::auto());
        let pinned_config = ClusterConfig::builder()
            .nodes(8)
            .code(7, 4)
            .uniform_device(DeviceModel::exponential(0.010))
            .cache_policy(CachePolicy::None)
            .cache_capacity_bytes(1_000_000)
            .seed(11)
            .coding_kernel(Some(Kernel::Scalar))
            .striping(None)
            .build();
        let mut slow = ErasureCodedStore::new(pinned_config).unwrap();
        assert_eq!(slow.coding_kernel(), Kernel::Scalar);
        fast.put(9, &data).unwrap();
        slow.put(9, &data).unwrap();
        for node in 0..8 {
            assert_eq!(
                fast.chunk_on_node(9, node).map(|c| c.data),
                slow.chunk_on_node(9, node).map(|c| c.data),
                "chunk bytes must be kernel- and stripe-invariant (node {node})"
            );
        }
        assert_eq!(fast.get(9, 0.0).unwrap().data, data);
        assert_eq!(slow.get(9, 0.0).unwrap().data, data);
    }

    #[test]
    fn unknown_object_is_an_error() {
        let mut s = store(CachePolicy::None);
        assert_eq!(
            s.get(404, 0.0).unwrap_err(),
            ClusterError::UnknownObject(404)
        );
    }

    #[test]
    fn functional_cache_serves_part_of_the_read() {
        let mut s = store(CachePolicy::Functional);
        let data = payload(20_000, 2);
        s.put(5, &data).unwrap();
        s.set_cached_chunks(5, 2).unwrap();
        assert_eq!(s.cache().cached_chunk_count(5), 2);
        let out = s.get(5, 0.0).unwrap();
        assert_eq!(out.data, data);
        assert_eq!(out.cache_chunks_used, 2);
        assert_eq!(out.storage_chunks_used, 2);
        // Fully cached: no storage reads at all.
        s.set_cached_chunks(5, 4).unwrap();
        let out = s.get(5, 0.0).unwrap();
        assert_eq!(out.data, data);
        assert_eq!(out.storage_chunks_used, 0);
        assert_eq!(out.cache_chunks_used, 4);
        // Shrinking back to zero removes the entry.
        s.set_cached_chunks(5, 0).unwrap();
        assert_eq!(s.cache().cached_chunk_count(5), 0);
    }

    #[test]
    fn exact_cache_excludes_hosts_of_cached_rows() {
        let mut s = store(CachePolicy::Exact);
        let data = payload(8_000, 3);
        s.put(9, &data).unwrap();
        s.set_cached_chunks(9, 2).unwrap();
        let placement = s.object_placement(9).unwrap().to_vec();
        let out = s.get(9, 0.0).unwrap();
        assert_eq!(out.data, data);
        assert_eq!(out.cache_chunks_used, 2);
        assert_eq!(out.storage_chunks_used, 2);
        // The hosts of rows 0 and 1 (the exact-cached rows) must not serve.
        assert!(!out.nodes_used.contains(&placement[0]));
        assert!(!out.nodes_used.contains(&placement[1]));
    }

    #[test]
    fn lru_cache_promotes_on_miss_and_hits_afterwards() {
        let mut s = store(CachePolicy::ceph_baseline());
        let data = payload(4_000, 4);
        s.put(77, &data).unwrap();
        let miss = s.get(77, 0.0).unwrap();
        assert_eq!(miss.cache_chunks_used, 0);
        assert_eq!(miss.data, data);
        let hit = s.get(77, 100.0).unwrap();
        assert_eq!(hit.storage_chunks_used, 0);
        assert_eq!(hit.data, data);
        assert!(hit.latency < miss.latency);
        assert!(s.cache_stats().hits >= 1);
    }

    #[test]
    fn node_failures_are_tolerated_up_to_n_minus_k() {
        let mut s = store(CachePolicy::None);
        let data = payload(6_000, 5);
        s.put(3, &data).unwrap();
        let placement = s.object_placement(3).unwrap().to_vec();
        // (7,4): up to 3 node failures are fine.
        for &node in placement.iter().take(3) {
            s.set_node_online(node, false);
        }
        assert_eq!(s.get(3, 0.0).unwrap().data, data);
        // a fourth failure makes the object unreadable
        s.set_node_online(placement[3], false);
        assert!(matches!(
            s.get(3, 0.0).unwrap_err(),
            ClusterError::NotEnoughReplicas { required: 4, .. }
        ));
        // recovery restores readability
        s.set_node_online(placement[0], true);
        assert_eq!(s.get(3, 0.0).unwrap().data, data);
    }

    #[test]
    fn queueing_under_back_to_back_reads_increases_latency() {
        let mut s = store(CachePolicy::None);
        let data = payload(50_000, 6);
        s.put(8, &data).unwrap();
        let first = s.get(8, 0.0).unwrap().latency;
        // many reads at the same instant pile up in the FIFO queues
        let mut last = first;
        for _ in 0..20 {
            last = s.get(8, 0.0).unwrap().latency;
        }
        assert!(
            last > first,
            "queueing should grow latency: {first} -> {last}"
        );
        // reads far in the future see empty queues again
        let later = s.get(8, 1e9).unwrap().latency;
        assert!(later < last);
    }

    #[test]
    fn delete_removes_chunks_everywhere() {
        let mut s = store(CachePolicy::Functional);
        let data = payload(5_000, 7);
        s.put(2, &data).unwrap();
        s.set_cached_chunks(2, 1).unwrap();
        s.delete(2);
        assert_eq!(s.num_objects(), 0);
        assert!(matches!(s.get(2, 0.0), Err(ClusterError::UnknownObject(2))));
        assert_eq!(s.cache().cached_chunk_count(2), 0);
        let total_chunks: usize = (0..8).map(|i| s.node(i).num_chunks()).sum();
        assert_eq!(total_chunks, 0);
    }

    #[test]
    fn explicit_placement_is_honoured_and_validated() {
        let mut s = store(CachePolicy::None);
        let data = payload(3_000, 8);
        s.put_with_placement(1, &data, vec![0, 1, 2, 3, 4, 5, 6])
            .unwrap();
        assert_eq!(s.object_placement(1).unwrap(), &[0, 1, 2, 3, 4, 5, 6]);
        assert!(s.put_with_placement(2, &data, vec![0, 1, 2]).is_err());
        assert!(s
            .put_with_placement(2, &data, vec![0, 0, 1, 2, 3, 4, 5])
            .is_err());
        assert!(s
            .put_with_placement(2, &data, vec![0, 1, 2, 3, 4, 5, 99])
            .is_err());
    }

    #[test]
    fn set_cached_chunks_requires_planned_policy_and_known_object() {
        let mut s = store(CachePolicy::ceph_baseline());
        let data = payload(1_000, 9);
        s.put(1, &data).unwrap();
        assert!(matches!(
            s.set_cached_chunks(1, 1),
            Err(ClusterError::InvalidConfig(_))
        ));
        let mut s = store(CachePolicy::Functional);
        assert!(matches!(
            s.set_cached_chunks(1, 1),
            Err(ClusterError::UnknownObject(1))
        ));
        s.put(1, &data).unwrap();
        assert!(matches!(
            s.set_cached_chunks(1, 9),
            Err(ClusterError::Coding(_))
        ));
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut builder = ClusterConfig::builder();
        let bad = builder.nodes(3).code(7, 4).build();
        assert!(matches!(
            ErasureCodedStore::new(bad),
            Err(ClusterError::InvalidConfig(_))
        ));
        let mut builder = ClusterConfig::builder();
        let mut cfg = builder.nodes(8).code(7, 4).build();
        cfg.devices.truncate(3);
        assert!(matches!(
            ErasureCodedStore::new(cfg),
            Err(ClusterError::InvalidConfig(_))
        ));
        let mut builder = ClusterConfig::builder();
        let bad_code = builder.nodes(8).code(4, 7).build();
        assert!(matches!(
            ErasureCodedStore::new(bad_code),
            Err(ClusterError::Coding(_))
        ));
    }

    #[test]
    fn chunk_on_node_follows_the_placement() {
        let mut s = store(CachePolicy::None);
        let data = payload(9_000, 12);
        s.put(4, &data).unwrap();
        assert_eq!(s.object_len(4), Some(9_000));
        let placement = s.object_placement(4).unwrap().to_vec();
        for (row, &node) in placement.iter().enumerate() {
            let c = s.chunk_on_node(4, node).unwrap();
            assert_eq!(c.id.index, row);
        }
        // A node outside the placement hosts nothing.
        let outside = (0..8).find(|n| !placement.contains(n)).unwrap();
        assert!(s.chunk_on_node(4, outside).is_none());
        assert!(s.chunk_on_node(999, placement[0]).is_none());
    }

    #[test]
    fn decode_with_chunks_reconstructs_from_any_k_rows() {
        let mut s = store(CachePolicy::None);
        let data = payload(11_000, 13);
        s.put(6, &data).unwrap();
        let placement = s.object_placement(6).unwrap().to_vec();
        // Gather rows 3..7 (parity-heavy subset) by node.
        let chunks: Vec<Chunk> = placement[3..7]
            .iter()
            .map(|&n| s.chunk_on_node(6, n).unwrap())
            .collect();
        assert_eq!(s.decode_with_chunks(6, &chunks).unwrap(), data);
        assert!(matches!(
            s.decode_with_chunks(7, &chunks),
            Err(ClusterError::UnknownObject(7))
        ));
        assert!(s.decode_with_chunks(6, &chunks[..2]).is_err());
    }

    #[test]
    fn stored_and_cached_chunks_share_payload_allocations() {
        let mut s = store(CachePolicy::Exact);
        let data = payload(12_000, 14);
        s.put(8, &data).unwrap();
        s.set_cached_chunks(8, 2).unwrap();
        let placement = s.object_placement(8).unwrap().to_vec();
        // Exact caching copies storage rows 0 and 1 into the cache: the cache
        // entry must alias the node's allocation, not duplicate it.
        let node_chunk_ptr = s.chunk_on_node(8, placement[0]).unwrap().data.as_ptr();
        let cache = s.cache();
        let cache_ptr = cache
            .peek(8)
            .unwrap()
            .iter()
            .find(|c| c.id.index == 0)
            .expect("row 0 is cached")
            .data
            .as_ptr();
        assert_eq!(
            cache_ptr, node_chunk_ptr,
            "exact-cached chunk must share the stored allocation"
        );
    }

    #[test]
    fn overwriting_an_object_replaces_its_contents() {
        let mut s = store(CachePolicy::None);
        let first = payload(2_000, 10);
        let second = payload(3_000, 11);
        s.put(6, &first).unwrap();
        s.put(6, &second).unwrap();
        assert_eq!(s.get(6, 0.0).unwrap().data, second);
        assert_eq!(s.num_objects(), 1);
    }
}
