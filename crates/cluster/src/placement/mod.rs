//! Placement strategies: where an object's coded chunks live.
//!
//! The paper evaluates Algorithm 1 over one *fixed* pseudo-random placement
//! (the CRUSH-like [`PlacementMap`]). Real clusters choose from a whole
//! family of policies — consistent-hash rings, load-aware two-choices,
//! XOR-proximity overlays, rack/zone anti-affinity — and the interesting
//! question is how each behaves **under node churn**: how much latency a
//! failure costs, and how many bytes the strategy wants to move to restore
//! its invariant. This module makes that seam first-class:
//!
//! * [`ClusterView`] — the membership snapshot a strategy places against
//!   (node count plus per-node online flags).
//! * [`Placement`] — the strategy contract: a deterministic, seed-derived
//!   `place(object_id, n, &ClusterView) -> Vec<usize>` plus a rebalance hook
//!   [`Placement::on_membership_change`] reporting the chunks/bytes that
//!   must move when membership changes.
//! * [`PlacementChoice`] — the serde-able configuration enum consumed by
//!   `ClusterConfig` and `sprout::SystemSpec`; [`PlacementChoice::build`]
//!   instantiates the strategy for a concrete cluster.
//! * [`strategies`] — the zoo: [`RandomGroups`] (the legacy placement map,
//!   bit-for-bit), [`ConsistentHashRing`], [`TwoChoices`], [`XorProximity`],
//!   and the [`AntiAffinity`] constraint wrapper.
//!
//! Every strategy is a pure function of `(seed, object_id, view)` — or, for
//! load-aware strategies, of the deterministic batch order — so placements
//! are reproducible across runs, threads and processes.

#![warn(missing_docs)]

pub mod map;
pub mod strategies;

pub use map::{PlacementMap, DEFAULT_PGS_PER_NODE};
pub use strategies::{AntiAffinity, ConsistentHashRing, RandomGroups, TwoChoices, XorProximity};

use serde::{Deserialize, Serialize};

/// A membership snapshot: how many nodes the cluster has and which of them
/// are currently online. Strategies place only onto online nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterView {
    online: Vec<bool>,
}

impl ClusterView {
    /// A view with every node online.
    ///
    /// # Panics
    ///
    /// Panics if `num_nodes == 0`.
    pub fn all_online(num_nodes: usize) -> Self {
        assert!(num_nodes > 0, "need at least one node");
        ClusterView {
            online: vec![true; num_nodes],
        }
    }

    /// A view from explicit per-node online flags.
    ///
    /// # Panics
    ///
    /// Panics if `online` is empty.
    pub fn from_flags(online: Vec<bool>) -> Self {
        assert!(!online.is_empty(), "need at least one node");
        ClusterView { online }
    }

    /// Total number of nodes (online or not).
    pub fn num_nodes(&self) -> usize {
        self.online.len()
    }

    /// Whether `node` is online. Out-of-range nodes are offline.
    pub fn is_online(&self, node: usize) -> bool {
        self.online.get(node).copied().unwrap_or(false)
    }

    /// Number of online nodes.
    pub fn online_count(&self) -> usize {
        self.online.iter().filter(|&&o| o).count()
    }

    /// Returns a copy of the view with `node`'s online flag changed.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn with_node_online(&self, node: usize, online: bool) -> Self {
        let mut next = self.clone();
        next.online[node] = online;
        next
    }

    /// Online node ids, ascending.
    pub fn online_nodes(&self) -> impl Iterator<Item = usize> + '_ {
        self.online
            .iter()
            .enumerate()
            .filter(|(_, &o)| o)
            .map(|(i, _)| i)
    }
}

/// One object a rebalance computation considers: its id, how many chunks it
/// stores, and how large each chunk is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObjectDesc {
    /// Object id (the value fed to [`Placement::place`]).
    pub id: u64,
    /// Number of stored chunks `n`.
    pub n: usize,
    /// Bytes per chunk (for rebalance byte accounting).
    pub chunk_bytes: u64,
}

/// What a membership change costs: the chunks (and bytes) that land on nodes
/// they were not on before and therefore have to be copied over the network.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RebalanceReport {
    /// Objects whose placement changed at all.
    pub objects_moved: u64,
    /// Chunks that moved to a node that did not hold them before.
    pub moved_chunks: u64,
    /// Bytes behind those chunks.
    pub moved_bytes: u64,
}

impl RebalanceReport {
    /// Accumulates another report into this one.
    pub fn absorb(&mut self, other: RebalanceReport) {
        self.objects_moved += other.objects_moved;
        self.moved_chunks += other.moved_chunks;
        self.moved_bytes += other.moved_bytes;
    }
}

/// A deterministic, seed-derived placement strategy.
///
/// Implementations are built for a concrete cluster (node count and seed,
/// via [`PlacementChoice::build`] or the strategy constructors) and must be
/// pure in `(object_id, view)` — two calls with the same arguments return
/// the same nodes. Load-aware strategies keep their load ledger inside
/// [`Placement::place_batch`], whose deterministic object order stands in
/// for arrival order.
pub trait Placement: std::fmt::Debug + Send + Sync {
    /// A short stable label (used as sweep-axis value and artifact key).
    fn name(&self) -> String;

    /// The `n` distinct **online** nodes hosting the chunks of `object_id`,
    /// in chunk order.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds the number of online nodes in `view`, or if the
    /// view's node count disagrees with the cluster the strategy was built
    /// for.
    fn place(&self, object_id: u64, n: usize, view: &ClusterView) -> Vec<usize>;

    /// Places a whole batch in order. The default maps [`Placement::place`]
    /// over the batch; load-aware strategies override it to thread their
    /// load ledger through the batch deterministically.
    fn place_batch(&self, objects: &[(u64, usize)], view: &ClusterView) -> Vec<Vec<usize>> {
        objects
            .iter()
            .map(|&(id, n)| self.place(id, n, view))
            .collect()
    }

    /// The rebalance hook: how many chunks/bytes move when membership
    /// changes from `before` to `after`. The default re-places every object
    /// under both views and counts chunks that land on new nodes.
    fn on_membership_change(
        &self,
        objects: &[ObjectDesc],
        before: &ClusterView,
        after: &ClusterView,
    ) -> RebalanceReport {
        let batch: Vec<(u64, usize)> = objects.iter().map(|o| (o.id, o.n)).collect();
        let old = self.place_batch(&batch, before);
        let new = self.place_batch(&batch, after);
        let mut report = RebalanceReport::default();
        for ((object, old_nodes), new_nodes) in objects.iter().zip(&old).zip(&new) {
            let moved = new_nodes
                .iter()
                .filter(|node| !old_nodes.contains(node))
                .count() as u64;
            if moved > 0 {
                report.objects_moved += 1;
                report.moved_chunks += moved;
                report.moved_bytes += moved * object.chunk_bytes;
            }
        }
        report
    }
}

/// Serde-able strategy configuration, the form `ClusterConfig` and
/// `SystemSpec` carry. [`PlacementChoice::build`] turns it into a boxed
/// [`Placement`] for a concrete cluster.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlacementChoice {
    /// The legacy CRUSH-like placement-group map (the paper's baseline);
    /// `groups = None` uses the default 100 groups per node. Placements are
    /// bit-for-bit identical to the historical [`PlacementMap`] on a fully
    /// online cluster.
    RandomGroups {
        /// Explicit placement-group count, or `None` for the default.
        groups: Option<usize>,
    },
    /// A consistent-hash ring with `vnodes` virtual nodes per physical node.
    ConsistentHash {
        /// Virtual nodes per physical node (more = smoother balance).
        vnodes: usize,
    },
    /// Power-of-two-choices by chunk load, hashed candidates per slot.
    TwoChoices,
    /// XOR-proximity: nodes ranked by `node_key ^ object_key` (the overlay
    /// `find` of Kademlia-style storage simulations).
    XorProximity,
    /// Zone anti-affinity constraint wrapped around the consistent-hash
    /// ring: nodes are striped into `zones` zones round-robin and chunks
    /// spread across zones before doubling up in any one.
    AntiAffinity {
        /// Number of zones the nodes are striped into.
        zones: usize,
    },
}

impl Default for PlacementChoice {
    fn default() -> Self {
        PlacementChoice::RandomGroups { groups: None }
    }
}

impl PlacementChoice {
    /// A short stable label (sweep-axis value, artifact key).
    pub fn label(&self) -> String {
        match self {
            PlacementChoice::RandomGroups { .. } => "random".into(),
            PlacementChoice::ConsistentHash { vnodes } => format!("ring{vnodes}"),
            PlacementChoice::TwoChoices => "two_choice".into(),
            PlacementChoice::XorProximity => "xor".into(),
            PlacementChoice::AntiAffinity { zones } => format!("zones{zones}"),
        }
    }

    /// Instantiates the strategy for a cluster of `num_nodes` nodes with the
    /// given seed.
    ///
    /// # Panics
    ///
    /// Panics if `num_nodes == 0` or a strategy parameter is degenerate
    /// (zero `vnodes` or `zones`).
    pub fn build(&self, num_nodes: usize, seed: u64) -> Box<dyn Placement> {
        match *self {
            PlacementChoice::RandomGroups { groups } => {
                Box::new(RandomGroups::new(num_nodes, groups, seed))
            }
            PlacementChoice::ConsistentHash { vnodes } => {
                Box::new(ConsistentHashRing::new(num_nodes, vnodes, seed))
            }
            PlacementChoice::TwoChoices => Box::new(TwoChoices::new(num_nodes, seed)),
            PlacementChoice::XorProximity => Box::new(XorProximity::new(num_nodes, seed)),
            PlacementChoice::AntiAffinity { zones } => Box::new(AntiAffinity::new(
                zones,
                Box::new(ConsistentHashRing::new(num_nodes, 64, seed)),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn view_tracks_membership() {
        let view = ClusterView::all_online(4);
        assert_eq!(view.num_nodes(), 4);
        assert_eq!(view.online_count(), 4);
        let degraded = view.with_node_online(2, false);
        assert!(!degraded.is_online(2));
        assert!(degraded.is_online(1));
        assert_eq!(degraded.online_count(), 3);
        assert_eq!(degraded.online_nodes().collect::<Vec<_>>(), vec![0, 1, 3]);
        assert!(!degraded.is_online(99));
        assert_eq!(view, ClusterView::from_flags(vec![true; 4]));
    }

    #[test]
    fn choice_labels_are_distinct_and_stable() {
        let choices = [
            PlacementChoice::default(),
            PlacementChoice::ConsistentHash { vnodes: 64 },
            PlacementChoice::TwoChoices,
            PlacementChoice::XorProximity,
            PlacementChoice::AntiAffinity { zones: 3 },
        ];
        let labels: Vec<String> = choices.iter().map(|c| c.label()).collect();
        assert_eq!(
            labels,
            vec!["random", "ring64", "two_choice", "xor", "zones3"]
        );
        let unique: std::collections::HashSet<_> = labels.iter().collect();
        assert_eq!(unique.len(), labels.len());
    }

    #[test]
    fn every_choice_builds_and_places() {
        for choice in [
            PlacementChoice::default(),
            PlacementChoice::ConsistentHash { vnodes: 16 },
            PlacementChoice::TwoChoices,
            PlacementChoice::XorProximity,
            PlacementChoice::AntiAffinity { zones: 4 },
        ] {
            let strategy = choice.build(8, 7);
            let view = ClusterView::all_online(8);
            let nodes = strategy.place(42, 5, &view);
            assert_eq!(nodes.len(), 5, "{}", strategy.name());
            let unique: std::collections::HashSet<_> = nodes.iter().collect();
            assert_eq!(unique.len(), 5, "{}", strategy.name());
        }
    }

    #[test]
    fn rebalance_report_absorbs() {
        let mut total = RebalanceReport::default();
        total.absorb(RebalanceReport {
            objects_moved: 1,
            moved_chunks: 2,
            moved_bytes: 200,
        });
        total.absorb(RebalanceReport {
            objects_moved: 3,
            moved_chunks: 4,
            moved_bytes: 400,
        });
        assert_eq!(total.objects_moved, 4);
        assert_eq!(total.moved_chunks, 6);
        assert_eq!(total.moved_bytes, 600);
    }
}
