//! The placement-strategy zoo.
//!
//! Four contenders plus a constraint wrapper, all deterministic in
//! `(seed, object_id, membership view)`:
//!
//! * [`RandomGroups`] — the paper baseline: the CRUSH-like placement-group
//!   map, bit-for-bit identical to the legacy [`PlacementMap`] on a fully
//!   online cluster, walking past offline nodes under churn.
//! * [`ConsistentHashRing`] — virtual-node consistent hashing; a membership
//!   change moves only the chunks that hashed next to the changed node.
//! * [`TwoChoices`] — power-of-two-choices by chunk load: each slot hashes
//!   two candidates and takes the less-loaded one (the ingest policy of
//!   Kademlia-style storage simulators).
//! * [`XorProximity`] — nodes ranked by `node_key ^ object_key`, the overlay
//!   `find` of those same simulators.
//! * [`AntiAffinity`] — a wrapper constraining any inner strategy to spread
//!   chunks across failure zones before doubling up in one.

use super::map::{splitmix64, PlacementMap};
use super::{ClusterView, Placement};

/// Salt mixed into per-strategy hash streams so strategies sharing a seed do
/// not shadow each other's choices.
const RING_SALT: u64 = 0x52494E47_u64; // "RING"
const XOR_SALT: u64 = 0x584F522D_u64; // "XOR-"
const CHOICE_SALT: u64 = 0x32434849_u64; // "2CHI"

fn assert_view(view: &ClusterView, num_nodes: usize, name: &str) {
    assert_eq!(
        view.num_nodes(),
        num_nodes,
        "{name} was built for {num_nodes} nodes but the view has {}",
        view.num_nodes()
    );
}

fn assert_fits(n: usize, view: &ClusterView, name: &str) {
    assert!(
        n <= view.online_count(),
        "{name} cannot place {n} chunks on {} online nodes",
        view.online_count()
    );
}

/// The legacy CRUSH-like placement-group map as a [`Placement`] strategy.
///
/// On a fully online cluster `place` returns exactly what the historical
/// [`PlacementMap::place`] returned for the same `(num_nodes, groups, seed)`
/// — the differential test in `tests/placement_properties.rs` pins this
/// bit-for-bit, which is what keeps every pre-existing figure artifact
/// byte-identical. Under churn the strategy walks the object's
/// placement-group permutation past offline nodes.
#[derive(Debug, Clone)]
pub struct RandomGroups {
    map: PlacementMap,
}

impl RandomGroups {
    /// Builds the strategy; `groups = None` uses the default group count.
    ///
    /// # Panics
    ///
    /// Panics if `num_nodes == 0` or `groups == Some(0)`.
    pub fn new(num_nodes: usize, groups: Option<usize>, seed: u64) -> Self {
        #[allow(deprecated)]
        let map = match groups {
            Some(g) => PlacementMap::with_groups(num_nodes, g, seed),
            None => PlacementMap::new(num_nodes, seed),
        };
        RandomGroups { map }
    }

    /// The underlying placement-group map.
    pub fn map(&self) -> &PlacementMap {
        &self.map
    }
}

impl Placement for RandomGroups {
    fn name(&self) -> String {
        "random".into()
    }

    fn place(&self, object_id: u64, n: usize, view: &ClusterView) -> Vec<usize> {
        assert_view(view, self.map.num_nodes(), "RandomGroups");
        assert_fits(n, view, "RandomGroups");
        self.map
            .permutation(object_id)
            .iter()
            .copied()
            .filter(|&node| view.is_online(node))
            .take(n)
            .collect()
    }
}

/// Consistent hashing with virtual nodes.
///
/// Every physical node owns `vnodes` pseudo-random points on a `u64` ring;
/// an object hashes to a point and walks clockwise collecting the first `n`
/// distinct online nodes. Removing a node only re-homes the chunks that
/// walked through its points, which is the bounded-rebalance property the
/// churn figure measures.
#[derive(Debug, Clone)]
pub struct ConsistentHashRing {
    num_nodes: usize,
    vnodes: usize,
    seed: u64,
    /// `(ring position, node)`, sorted by position.
    ring: Vec<(u64, usize)>,
}

impl ConsistentHashRing {
    /// Builds a ring with `vnodes` virtual nodes per physical node.
    ///
    /// # Panics
    ///
    /// Panics if `num_nodes == 0` or `vnodes == 0`.
    pub fn new(num_nodes: usize, vnodes: usize, seed: u64) -> Self {
        assert!(num_nodes > 0, "need at least one node");
        assert!(vnodes > 0, "need at least one virtual node per node");
        let mut ring = Vec::with_capacity(num_nodes * vnodes);
        for node in 0..num_nodes {
            for v in 0..vnodes {
                let key = splitmix64(
                    seed ^ RING_SALT
                        ^ (node as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        ^ (v as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F),
                );
                ring.push((key, node));
            }
        }
        ring.sort_unstable();
        ConsistentHashRing {
            num_nodes,
            vnodes,
            seed,
            ring,
        }
    }

    /// Virtual nodes per physical node.
    pub fn vnodes(&self) -> usize {
        self.vnodes
    }
}

impl Placement for ConsistentHashRing {
    fn name(&self) -> String {
        format!("ring{}", self.vnodes)
    }

    fn place(&self, object_id: u64, n: usize, view: &ClusterView) -> Vec<usize> {
        assert_view(view, self.num_nodes, "ConsistentHashRing");
        assert_fits(n, view, "ConsistentHashRing");
        let point = splitmix64(object_id ^ splitmix64(self.seed ^ RING_SALT));
        let start = self.ring.partition_point(|&(key, _)| key < point);
        let mut chosen = Vec::with_capacity(n);
        for i in 0..self.ring.len() {
            let (_, node) = self.ring[(start + i) % self.ring.len()];
            if view.is_online(node) && !chosen.contains(&node) {
                chosen.push(node);
                if chosen.len() == n {
                    break;
                }
            }
        }
        chosen
    }
}

/// Power-of-two-choices by chunk load.
///
/// Each chunk slot hashes two candidate nodes from the online, not-yet-used
/// set and stores on the one carrying fewer chunks. The load ledger threads
/// through [`Placement::place_batch`] in object order, which is what makes
/// the strategy deterministic; a lone [`Placement::place`] call sees an
/// empty ledger (pure tie-breaking by hash order).
#[derive(Debug, Clone)]
pub struct TwoChoices {
    num_nodes: usize,
    seed: u64,
}

impl TwoChoices {
    /// Builds the strategy.
    ///
    /// # Panics
    ///
    /// Panics if `num_nodes == 0`.
    pub fn new(num_nodes: usize, seed: u64) -> Self {
        assert!(num_nodes > 0, "need at least one node");
        TwoChoices { num_nodes, seed }
    }

    /// Places one object, consulting and updating the chunk-load ledger.
    fn place_with_loads(
        &self,
        object_id: u64,
        n: usize,
        view: &ClusterView,
        loads: &mut [u64],
    ) -> Vec<usize> {
        assert_view(view, self.num_nodes, "TwoChoices");
        assert_fits(n, view, "TwoChoices");
        let mut chosen: Vec<usize> = Vec::with_capacity(n);
        let mut state = splitmix64(object_id ^ splitmix64(self.seed ^ CHOICE_SALT));
        for _slot in 0..n {
            let eligible: Vec<usize> = view
                .online_nodes()
                .filter(|node| !chosen.contains(node))
                .collect();
            state = splitmix64(state);
            let a = eligible[(state % eligible.len() as u64) as usize];
            state = splitmix64(state);
            let b = eligible[(state % eligible.len() as u64) as usize];
            // Less-loaded candidate wins; ties break on the lower node id so
            // the choice never depends on draw order.
            let pick = match loads[a].cmp(&loads[b]) {
                std::cmp::Ordering::Less => a,
                std::cmp::Ordering::Greater => b,
                std::cmp::Ordering::Equal => a.min(b),
            };
            loads[pick] += 1;
            chosen.push(pick);
        }
        chosen
    }
}

impl Placement for TwoChoices {
    fn name(&self) -> String {
        "two_choice".into()
    }

    fn place(&self, object_id: u64, n: usize, view: &ClusterView) -> Vec<usize> {
        let mut loads = vec![0u64; self.num_nodes];
        self.place_with_loads(object_id, n, view, &mut loads)
    }

    fn place_batch(&self, objects: &[(u64, usize)], view: &ClusterView) -> Vec<Vec<usize>> {
        let mut loads = vec![0u64; self.num_nodes];
        objects
            .iter()
            .map(|&(id, n)| self.place_with_loads(id, n, view, &mut loads))
            .collect()
    }
}

/// XOR-proximity placement: rank nodes by `node_key ^ object_key`.
///
/// Every node gets a stable pseudo-random key; an object's chunks go to the
/// `n` online nodes whose keys are XOR-closest to the object's key. Like the
/// ring, removing a node disturbs only the objects that had it in their
/// closest set.
#[derive(Debug, Clone)]
pub struct XorProximity {
    node_keys: Vec<u64>,
    seed: u64,
}

impl XorProximity {
    /// Builds the strategy.
    ///
    /// # Panics
    ///
    /// Panics if `num_nodes == 0`.
    pub fn new(num_nodes: usize, seed: u64) -> Self {
        assert!(num_nodes > 0, "need at least one node");
        let node_keys = (0..num_nodes)
            .map(|node| {
                splitmix64(seed ^ XOR_SALT ^ (node as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            })
            .collect();
        XorProximity { node_keys, seed }
    }
}

impl Placement for XorProximity {
    fn name(&self) -> String {
        "xor".into()
    }

    fn place(&self, object_id: u64, n: usize, view: &ClusterView) -> Vec<usize> {
        assert_view(view, self.node_keys.len(), "XorProximity");
        assert_fits(n, view, "XorProximity");
        let object_key = splitmix64(object_id ^ splitmix64(self.seed ^ XOR_SALT));
        let mut ranked: Vec<(u64, usize)> = view
            .online_nodes()
            .map(|node| (self.node_keys[node] ^ object_key, node))
            .collect();
        ranked.sort_unstable();
        ranked.truncate(n);
        ranked.into_iter().map(|(_, node)| node).collect()
    }
}

/// Zone anti-affinity as a constraint wrapper over any inner strategy.
///
/// Nodes are striped round-robin into `zones` failure zones (`zone = node %
/// zones`, the rack layout of an ironbucket-style deployment). The wrapper
/// asks the inner strategy for its full preference order over online nodes,
/// then fills chunk slots zone-capped: no zone receives a second chunk until
/// every zone with online capacity has one, no third until every zone has
/// two, and so on.
#[derive(Debug)]
pub struct AntiAffinity {
    zones: usize,
    inner: Box<dyn Placement>,
}

impl AntiAffinity {
    /// Wraps `inner` with a `zones`-zone spread constraint.
    ///
    /// # Panics
    ///
    /// Panics if `zones == 0`.
    pub fn new(zones: usize, inner: Box<dyn Placement>) -> Self {
        assert!(zones > 0, "need at least one zone");
        AntiAffinity { zones, inner }
    }

    /// The zone a node belongs to.
    pub fn zone_of(&self, node: usize) -> usize {
        node % self.zones
    }
}

impl Placement for AntiAffinity {
    fn name(&self) -> String {
        format!("zones{}({})", self.zones, self.inner.name())
    }

    fn place(&self, object_id: u64, n: usize, view: &ClusterView) -> Vec<usize> {
        assert_fits(n, view, "AntiAffinity");
        // The inner strategy's preference order over every online node.
        let preference = self.inner.place(object_id, view.online_count(), view);
        let mut chosen: Vec<usize> = Vec::with_capacity(n);
        let mut per_zone = vec![0usize; self.zones];
        let mut cap = 1usize;
        while chosen.len() < n {
            let before = chosen.len();
            for &node in &preference {
                if chosen.len() == n {
                    break;
                }
                if per_zone[self.zone_of(node)] < cap && !chosen.contains(&node) {
                    per_zone[self.zone_of(node)] += 1;
                    chosen.push(node);
                }
            }
            // Every zone at the cap and still short: raise the cap. The
            // fits-check above guarantees this terminates.
            assert!(
                chosen.len() > before || cap < view.online_count(),
                "anti-affinity failed to fill {n} slots from {} online nodes",
                view.online_count()
            );
            cap += 1;
        }
        chosen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn distinct_online(nodes: &[usize], view: &ClusterView) {
        let unique: HashSet<_> = nodes.iter().collect();
        assert_eq!(unique.len(), nodes.len(), "duplicate node in {nodes:?}");
        assert!(
            nodes.iter().all(|&n| view.is_online(n)),
            "offline in {nodes:?}"
        );
    }

    #[test]
    fn random_groups_skips_offline_nodes() {
        let strategy = RandomGroups::new(8, None, 3);
        let full = ClusterView::all_online(8);
        for id in 0..100u64 {
            let placed = strategy.place(id, 5, &full);
            let degraded = full.with_node_online(placed[0], false);
            let replaced = strategy.place(id, 5, &degraded);
            distinct_online(&replaced, &degraded);
            // The surviving prefix keeps its order; one new node fills in.
            assert_eq!(replaced[..4], placed[1..5]);
        }
    }

    #[test]
    fn ring_walk_is_stable_under_unrelated_failures() {
        let strategy = ConsistentHashRing::new(12, 32, 9);
        let full = ClusterView::all_online(12);
        let mut disturbed = 0usize;
        for id in 0..200u64 {
            let placed = strategy.place(id, 4, &full);
            distinct_online(&placed, &full);
            // Failing a node outside the placement leaves it untouched.
            let outside = (0..12).find(|n| !placed.contains(n)).unwrap();
            let degraded = full.with_node_online(outside, false);
            if strategy.place(id, 4, &degraded) != placed {
                disturbed += 1;
            }
        }
        assert_eq!(disturbed, 0, "ring moved objects that lost no node");
    }

    #[test]
    fn two_choices_balances_load_across_a_batch() {
        let strategy = TwoChoices::new(10, 1);
        let view = ClusterView::all_online(10);
        let batch: Vec<(u64, usize)> = (0..500).map(|id| (id, 4)).collect();
        let placements = strategy.place_batch(&batch, &view);
        let mut counts = [0usize; 10];
        for placement in &placements {
            distinct_online(placement, &view);
            for &node in placement {
                counts[node] += 1;
            }
        }
        let expected = 500.0 * 4.0 / 10.0;
        for (node, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - expected).abs() / expected < 0.05,
                "two-choices node {node} holds {c}, expected ~{expected}"
            );
        }
        // Batch placement is idempotent: same batch, same answer.
        assert_eq!(placements, strategy.place_batch(&batch, &view));
    }

    #[test]
    fn xor_ranking_only_moves_objects_that_lost_a_node() {
        let strategy = XorProximity::new(12, 5);
        let full = ClusterView::all_online(12);
        let degraded = full.with_node_online(3, false);
        for id in 0..200u64 {
            let placed = strategy.place(id, 4, &full);
            distinct_online(&placed, &full);
            let replaced = strategy.place(id, 4, &degraded);
            if placed.contains(&3) {
                assert_ne!(placed, replaced);
            } else {
                assert_eq!(placed, replaced, "object {id} moved without losing a node");
            }
        }
    }

    #[test]
    fn anti_affinity_spreads_chunks_across_zones() {
        let inner = Box::new(ConsistentHashRing::new(12, 32, 7));
        let strategy = AntiAffinity::new(3, inner);
        let view = ClusterView::all_online(12);
        for id in 0..100u64 {
            let placed = strategy.place(id, 6, &view);
            distinct_online(&placed, &view);
            let mut per_zone = [0usize; 3];
            for &node in &placed {
                per_zone[node % 3] += 1;
            }
            // 6 chunks over 3 zones: exactly 2 per zone.
            assert_eq!(per_zone, [2, 2, 2], "object {id}: {placed:?}");
        }
    }

    #[test]
    fn anti_affinity_relaxes_the_cap_when_a_zone_dies() {
        let inner = Box::new(ConsistentHashRing::new(6, 32, 7));
        let strategy = AntiAffinity::new(3, inner);
        // Kill zone 0 entirely (nodes 0 and 3): 4 chunks must still fit on
        // the remaining 4 nodes in zones 1 and 2.
        let view = ClusterView::from_flags(vec![false, true, true, false, true, true]);
        let placed = strategy.place(9, 4, &view);
        distinct_online(&placed, &view);
        assert_eq!(placed.len(), 4);
    }

    #[test]
    #[should_panic(expected = "online nodes")]
    fn oversubscribed_placement_panics() {
        let strategy = ConsistentHashRing::new(4, 8, 0);
        let view = ClusterView::all_online(4).with_node_online(1, false);
        let _ = strategy.place(1, 4, &view);
    }

    #[test]
    #[should_panic(expected = "built for")]
    fn mismatched_view_panics() {
        let strategy = XorProximity::new(4, 0);
        let _ = strategy.place(1, 2, &ClusterView::all_online(5));
    }
}
