//! An in-memory erasure-coded object store — the substrate that stands in
//! for the paper's Ceph testbed.
//!
//! The paper prototypes functional caching on a 12-OSD Ceph cluster with an
//! SSD cache tier. We cannot ship that testbed, so this crate rebuilds the
//! pieces of it that the evaluation actually exercises:
//!
//! * [`device`] — per-device chunk service-time models (HDD-backed OSDs and
//!   the SSD cache) calibrated to the measurements in Tables IV and V of the
//!   paper, with arbitrary chunk sizes handled by interpolation.
//! * [`placement`] — the [`Placement`] strategy seam: a zoo of deterministic
//!   chunk-placement policies (the legacy CRUSH-like placement-group map,
//!   consistent hashing, two-choices, XOR proximity, zone anti-affinity)
//!   plus the rebalance hook that prices membership changes.
//! * [`node`] — storage nodes that hold real chunk bytes and serve reads
//!   through a FIFO queue in virtual time.
//! * [`tier`] — the [`CacheTier`] contract (promotion, eviction, hit lookup,
//!   capacity accounting, replication) and its one implementation,
//!   [`LruTier`] — the source of truth for LRU decisions shared with the
//!   simulation engine.
//! * [`cache`] — cache tiers: functional (coded chunks), exact (copies of
//!   stored chunks), LRU replicated (Ceph's cache-tier baseline), or none.
//! * [`store`] — the erasure-coded object store itself: `put` splits,
//!   encodes and places chunks; `get` schedules chunk reads (respecting the
//!   cache), decodes, verifies and reports the request latency.
//!
//! Everything operates on real bytes with real Reed–Solomon coding, so data
//! integrity through the cache/storage paths is tested end to end; latency
//! is tracked in virtual time so experiments are deterministic and fast.
//!
//! Chunk payloads are reference-counted `bytes::Bytes` buffers: a chunk is
//! encoded once and then *shared* — node storage, the cache tier and
//! in-flight reads all clone the same `Chunk` in O(1) without copying
//! payload bytes, so `store_chunk`/read paths never deep-copy data.
//!
//! # Example
//!
//! ```
//! use sprout_cluster::{CachePolicy, ClusterConfig, ErasureCodedStore};
//!
//! let config = ClusterConfig::builder()
//!     .nodes(6)
//!     .code(5, 4)
//!     .cache_policy(CachePolicy::Functional)
//!     .cache_capacity_bytes(64 * 1024)
//!     .seed(7)
//!     .build();
//! let mut store = ErasureCodedStore::new(config)?;
//! let data = vec![42u8; 10_000];
//! store.put(1, &data)?;
//! store.set_cached_chunks(1, 2)?;
//! let read = store.get(1, 0.0)?;
//! assert_eq!(read.data, data);
//! assert!(read.cache_chunks_used == 2);
//! # Ok::<(), sprout_cluster::ClusterError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod device;
pub mod error;
pub mod handle;
pub mod node;
pub mod placement;
pub mod store;
pub mod tier;

pub use cache::CachePolicy;
pub use device::DeviceModel;
pub use error::ClusterError;
pub use handle::StoreHandle;
pub use placement::{
    ClusterView, ObjectDesc, Placement, PlacementChoice, PlacementMap, RebalanceReport,
};
pub use store::{ClusterConfig, ClusterConfigBuilder, ErasureCodedStore, ReadOutcome};
pub use tier::{Admission, CacheTier, LruTier, TierStats};
// Re-exported so store configurers can pick a coding kernel / striping
// without a direct `sprout-erasure` dependency.
pub use sprout_erasure::{Kernel, StripeOpts};
