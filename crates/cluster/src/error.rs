//! Error type for the cluster substrate.

use std::fmt;

use sprout_erasure::CodingError;

/// Errors returned by the erasure-coded object store.
#[derive(Debug, Clone, PartialEq)]
pub enum ClusterError {
    /// The cluster configuration is invalid.
    InvalidConfig(String),
    /// The requested object does not exist.
    UnknownObject(u64),
    /// Not enough live nodes hold chunks of the object to reconstruct it.
    NotEnoughReplicas {
        /// The object being read.
        object: u64,
        /// Chunks available (storage + cache).
        available: usize,
        /// Chunks required (`k`).
        required: usize,
    },
    /// An error bubbled up from the erasure-coding layer.
    Coding(CodingError),
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::InvalidConfig(msg) => write!(f, "invalid cluster configuration: {msg}"),
            ClusterError::UnknownObject(id) => write!(f, "object {id} does not exist"),
            ClusterError::NotEnoughReplicas {
                object,
                available,
                required,
            } => write!(
                f,
                "object {object}: only {available} chunks available but {required} required"
            ),
            ClusterError::Coding(e) => write!(f, "coding error: {e}"),
        }
    }
}

impl std::error::Error for ClusterError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClusterError::Coding(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CodingError> for ClusterError {
    fn from(e: CodingError) -> Self {
        ClusterError::Coding(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = ClusterError::UnknownObject(9);
        assert!(e.to_string().contains("object 9"));
        assert!(e.source().is_none());
        let c: ClusterError = CodingError::NotEnoughChunks { have: 1, need: 4 }.into();
        assert!(c.to_string().contains("coding error"));
        assert!(c.source().is_some());
        assert!(ClusterError::InvalidConfig("bad".into())
            .to_string()
            .contains("bad"));
        assert!(ClusterError::NotEnoughReplicas {
            object: 1,
            available: 2,
            required: 4
        }
        .to_string()
        .contains("2 chunks"));
    }
}
