//! A COSBench-style benchmark client for the object store.
//!
//! The paper drives its Ceph testbed with COSBench: a prepare phase writes
//! every object, then a read phase replays a request trace for a fixed run
//! time and reports the mean access latency. [`BenchmarkClient`] reproduces
//! that driver against [`crate::ErasureCodedStore`], so the byte-level
//! substrate can be exercised by the same workload generators that feed the
//! abstract simulator.

use crate::error::ClusterError;
use crate::store::ErasureCodedStore;

/// Summary of one benchmark run.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchmarkReport {
    /// Number of read requests replayed.
    pub requests: usize,
    /// Mean access latency (virtual seconds).
    pub mean_latency: f64,
    /// Maximum access latency.
    pub max_latency: f64,
    /// Total chunks served from the cache.
    pub cache_chunks: u64,
    /// Total chunks served from storage nodes.
    pub storage_chunks: u64,
}

impl BenchmarkReport {
    /// Fraction of all chunk reads absorbed by the cache.
    pub fn cache_fraction(&self) -> f64 {
        let total = self.cache_chunks + self.storage_chunks;
        if total == 0 {
            0.0
        } else {
            self.cache_chunks as f64 / total as f64
        }
    }
}

/// Replays read traces against an [`ErasureCodedStore`].
#[derive(Debug)]
pub struct BenchmarkClient<'a> {
    store: &'a mut ErasureCodedStore,
}

impl<'a> BenchmarkClient<'a> {
    /// Creates a client bound to a store.
    pub fn new(store: &'a mut ErasureCodedStore) -> Self {
        BenchmarkClient { store }
    }

    /// Prepare phase: writes `objects` objects of `size_bytes` each with
    /// deterministic contents (object id `i` gets payload seeded by `i`).
    ///
    /// # Errors
    ///
    /// Propagates store errors.
    pub fn prepare(&mut self, objects: u64, size_bytes: usize) -> Result<(), ClusterError> {
        for id in 0..objects {
            let data = Self::payload(id, size_bytes);
            self.store.put(id, &data)?;
        }
        Ok(())
    }

    /// Read phase: replays `(time, object)` requests in order, verifying that
    /// every read returns the bytes written during [`BenchmarkClient::prepare`].
    ///
    /// # Errors
    ///
    /// Propagates store errors; returns [`ClusterError::InvalidConfig`] if a
    /// read returns corrupted data (which would indicate a coding bug).
    pub fn replay(&mut self, trace: &[(f64, u64)], size_bytes: usize) -> Result<BenchmarkReport, ClusterError> {
        let mut latencies = Vec::with_capacity(trace.len());
        let mut cache_chunks = 0u64;
        let mut storage_chunks = 0u64;
        for &(time, object) in trace {
            let outcome = self.store.get(object, time)?;
            if outcome.data != Self::payload(object, size_bytes) {
                return Err(ClusterError::InvalidConfig(format!(
                    "object {object} returned corrupted data"
                )));
            }
            latencies.push(outcome.latency);
            cache_chunks += outcome.cache_chunks_used as u64;
            storage_chunks += outcome.storage_chunks_used as u64;
        }
        let mean = if latencies.is_empty() {
            0.0
        } else {
            latencies.iter().sum::<f64>() / latencies.len() as f64
        };
        Ok(BenchmarkReport {
            requests: latencies.len(),
            mean_latency: mean,
            max_latency: latencies.iter().cloned().fold(0.0, f64::max),
            cache_chunks,
            storage_chunks,
        })
    }

    fn payload(id: u64, size_bytes: usize) -> Vec<u8> {
        (0..size_bytes)
            .map(|i| (i as u64).wrapping_mul(31).wrapping_add(id * 7 + 3) as u8)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CachePolicy;
    use crate::device::DeviceModel;
    use crate::store::ClusterConfig;

    fn store(policy: CachePolicy) -> ErasureCodedStore {
        let config = ClusterConfig::builder()
            .nodes(8)
            .code(6, 4)
            .uniform_device(DeviceModel::exponential(0.02))
            .cache_policy(policy)
            .cache_capacity_bytes(100_000)
            .seed(4)
            .build();
        ErasureCodedStore::new(config).unwrap()
    }

    fn trace(objects: u64, repeats: usize) -> Vec<(f64, u64)> {
        let mut t = Vec::new();
        let mut clock = 0.0;
        for r in 0..repeats {
            for id in 0..objects {
                t.push((clock, (id + r as u64) % objects));
                clock += 0.5;
            }
        }
        t
    }

    #[test]
    fn prepare_and_replay_verify_data_integrity() {
        let mut s = store(CachePolicy::None);
        let mut client = BenchmarkClient::new(&mut s);
        client.prepare(6, 4000).unwrap();
        let report = client.replay(&trace(6, 3), 4000).unwrap();
        assert_eq!(report.requests, 18);
        assert!(report.mean_latency > 0.0);
        assert!(report.max_latency >= report.mean_latency);
        assert_eq!(report.cache_chunks, 0);
        assert_eq!(report.storage_chunks, 18 * 4);
        assert_eq!(report.cache_fraction(), 0.0);
    }

    #[test]
    fn functional_cache_lowers_benchmark_latency() {
        let mut baseline = store(CachePolicy::None);
        let mut client = BenchmarkClient::new(&mut baseline);
        client.prepare(6, 4000).unwrap();
        let no_cache = client.replay(&trace(6, 5), 4000).unwrap();

        let mut cached = store(CachePolicy::Functional);
        let mut client = BenchmarkClient::new(&mut cached);
        client.prepare(6, 4000).unwrap();
        for id in 0..6 {
            cached.set_cached_chunks(id, 2).unwrap();
        }
        let mut client = BenchmarkClient::new(&mut cached);
        let with_cache = client.replay(&trace(6, 5), 4000).unwrap();

        assert!(with_cache.mean_latency < no_cache.mean_latency);
        assert!(with_cache.cache_fraction() > 0.4);
    }

    #[test]
    fn lru_cache_fraction_grows_with_repeated_access() {
        let mut s = store(CachePolicy::ceph_baseline());
        let mut client = BenchmarkClient::new(&mut s);
        client.prepare(3, 2000).unwrap();
        let report = client.replay(&trace(3, 10), 2000).unwrap();
        // After the first pass everything fits in the cache, so most requests hit.
        assert!(report.cache_fraction() > 0.5, "fraction {}", report.cache_fraction());
    }

    #[test]
    fn replay_of_unknown_object_fails() {
        let mut s = store(CachePolicy::None);
        let mut client = BenchmarkClient::new(&mut s);
        client.prepare(2, 100).unwrap();
        assert!(client.replay(&[(0.0, 99)], 100).is_err());
    }
}
