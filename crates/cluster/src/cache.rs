//! Compute-server cache tiers.
//!
//! Three cache designs from the paper are modeled, plus "no cache":
//!
//! * **Functional** — the cache holds `d_i` *new* coded chunks per object,
//!   chosen by the optimizer, so the cached chunks plus any `k_i − d_i`
//!   storage chunks reconstruct the object (§III).
//! * **Exact** — the cache holds copies of `d_i` of the object's storage
//!   chunks; those chunks' host nodes can no longer contribute to a read.
//! * **LRU replicated** — Ceph's cache-tier baseline: whole objects are
//!   promoted into the cache on access (with a replication factor for the
//!   tier's redundancy) and the least-recently-used objects are evicted when
//!   space runs out.
//!
//! Capacity is tracked in bytes. [`Cache`] stores the payload chunks; all
//! residency decisions and accounting delegate to the shared
//! [`LruTier`](crate::tier::LruTier), the same implementation the simulation
//! engine drives — see [`crate::tier`]. Reads from the cache device are
//! sampled from the SSD model but never queue — the paper argues cache-read
//! latency is negligible compared to HDD OSD reads, and Table V confirms it.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};
use sprout_erasure::Chunk;

use crate::tier::{Admission, CacheTier, LruTier, TierStats};

/// Which caching scheme the cluster uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CachePolicy {
    /// No cache at all; every read hits the storage nodes.
    None,
    /// Functional caching: optimizer-chosen counts of newly coded chunks.
    Functional,
    /// Exact caching: optimizer-chosen counts of copied storage chunks.
    Exact,
    /// Ceph-style LRU replicated cache tier with the given replication factor
    /// (the paper's baseline uses dual replication).
    LruReplicated {
        /// Number of replicas the cache tier keeps of each promoted object.
        replication: u32,
    },
}

impl CachePolicy {
    /// The paper's baseline configuration: an LRU cache tier with dual
    /// replication.
    pub fn ceph_baseline() -> Self {
        CachePolicy::LruReplicated { replication: 2 }
    }

    /// Whether this policy stores planner-chosen chunks (functional/exact).
    pub fn is_planned(&self) -> bool {
        matches!(self, CachePolicy::Functional | CachePolicy::Exact)
    }

    /// The replication factor the tier charges per promoted object (1 for
    /// the planner-managed policies, whose chunks are already the redundancy).
    pub fn tier_replication(&self) -> u32 {
        match self {
            CachePolicy::LruReplicated { replication } => (*replication).max(1),
            _ => 1,
        }
    }
}

/// Statistics kept by the cache — the embedded tier's counters, re-exported
/// under the cache's historical name.
pub type CacheStats = TierStats;

/// The cache tier of one compute server: payload chunks per resident object,
/// with residency decided by the embedded [`LruTier`].
#[derive(Debug, Clone)]
pub struct Cache {
    policy: CachePolicy,
    tier: LruTier,
    chunks: HashMap<u64, Vec<Chunk>>,
}

fn chunk_bytes(chunks: &[Chunk]) -> u64 {
    chunks.iter().map(|c| c.len() as u64).sum()
}

impl Cache {
    /// Creates an empty cache with the given policy and byte capacity.
    pub fn new(policy: CachePolicy, capacity_bytes: u64) -> Self {
        Cache {
            policy,
            tier: LruTier::new(capacity_bytes, policy.tier_replication()),
            chunks: HashMap::new(),
        }
    }

    /// The cache policy.
    pub fn policy(&self) -> CachePolicy {
        self.policy
    }

    /// Capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.tier.capacity()
    }

    /// Bytes currently occupied (LRU footprints include replication).
    pub fn used_bytes(&self) -> u64 {
        self.tier.used()
    }

    /// Hit/miss/promotion/eviction counters.
    pub fn stats(&self) -> CacheStats {
        self.tier.stats()
    }

    /// Number of chunks currently cached for `object`.
    pub fn cached_chunk_count(&self, object: u64) -> usize {
        self.chunks.get(&object).map_or(0, Vec::len)
    }

    /// The cached chunks of `object` (empty if not resident). Records a hit
    /// or miss and refreshes recency.
    pub fn lookup(&mut self, object: u64) -> Vec<Chunk> {
        if self.tier.touch(object) {
            self.chunks.get(&object).cloned().unwrap_or_default()
        } else {
            Vec::new()
        }
    }

    /// Read-only peek that does not touch statistics or recency.
    pub fn peek(&self, object: u64) -> Option<&[Chunk]> {
        self.chunks.get(&object).map(Vec::as_slice)
    }

    /// Installs planner-chosen chunks for an object (functional or exact
    /// caching). Replaces any previous entry. Returns `false` (and leaves the
    /// cache unchanged) if the chunks do not fit in the remaining capacity.
    pub fn install_planned(&mut self, object: u64, chunks: Vec<Chunk>) -> bool {
        if chunks.is_empty() {
            self.remove(object);
            return true;
        }
        if !self.tier.install(object, chunk_bytes(&chunks)) {
            return false;
        }
        self.chunks.insert(object, chunks);
        true
    }

    /// Promotes a whole object into an LRU cache (called after a cache-miss
    /// read completes). The object's footprint is `bytes × replication`;
    /// least-recently-used objects are evicted until it fits. Objects larger
    /// than the whole cache are not admitted. Returns the tier's admission
    /// outcome (victims and whether the object is now resident).
    pub fn promote_lru(&mut self, object: u64, chunks: Vec<Chunk>) -> Admission {
        let resident = self.chunks.contains_key(&object);
        // The trait impl below keeps tier residency and victim payloads in
        // sync; this carrier only adds the admitted object's payload.
        let admission = CacheTier::admit(self, object, chunk_bytes(&chunks));
        if admission.admitted && !resident {
            self.chunks.insert(object, chunks);
        }
        admission
    }

    /// Mirror of a promotion decided by an *external* tier (the simulation
    /// engine's): installs the payload unconditionally, bypassing this
    /// cache's own admission policy. See [`crate::tier`] for why the byte
    /// path follows the engine's decisions instead of re-deciding.
    pub fn mirror_promote(&mut self, object: u64, chunks: Vec<Chunk>) {
        self.tier.mirror_insert(object, chunk_bytes(&chunks));
        self.chunks.insert(object, chunks);
    }

    /// Mirror of an eviction decided by an external tier; returns whether the
    /// object was resident.
    pub fn mirror_evict(&mut self, object: u64) -> bool {
        self.chunks.remove(&object);
        self.tier.evict(object)
    }

    /// Removes an object from the cache (management path, not counted as an
    /// eviction); returns whether it was resident.
    pub fn remove(&mut self, object: u64) -> bool {
        self.chunks.remove(&object);
        self.tier.remove(object)
    }

    /// Drops everything (counters survive).
    pub fn clear(&mut self) {
        self.chunks.clear();
        self.tier.clear();
    }
}

impl CacheTier for Cache {
    fn capacity(&self) -> u64 {
        self.tier.capacity()
    }

    fn used(&self) -> u64 {
        self.tier.used()
    }

    fn replication(&self) -> u32 {
        self.tier.replication()
    }

    fn contains(&self, object: u64) -> bool {
        self.tier.contains(object)
    }

    fn touch(&mut self, object: u64) -> bool {
        self.tier.touch(object)
    }

    /// Weight-only admission: reserves residency and evicts victims' payloads;
    /// the payload of the admitted object is installed by
    /// [`Cache::promote_lru`], the carrier everyone calls.
    fn admit(&mut self, object: u64, weight: u64) -> Admission {
        let admission = self.tier.admit(object, weight);
        for victim in &admission.evicted {
            self.chunks.remove(victim);
        }
        admission
    }

    fn evict(&mut self, object: u64) -> bool {
        self.chunks.remove(&object);
        self.tier.evict(object)
    }

    fn stats(&self) -> TierStats {
        self.tier.stats()
    }

    fn resident_objects(&self) -> Vec<u64> {
        self.tier.resident_objects()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sprout_erasure::ChunkId;

    fn chunk(index: usize, len: usize) -> Chunk {
        Chunk::new(ChunkId::cache(index), vec![1u8; len])
    }

    #[test]
    fn policy_helpers() {
        assert_eq!(
            CachePolicy::ceph_baseline(),
            CachePolicy::LruReplicated { replication: 2 }
        );
        assert!(CachePolicy::Functional.is_planned());
        assert!(CachePolicy::Exact.is_planned());
        assert!(!CachePolicy::None.is_planned());
        assert!(!CachePolicy::ceph_baseline().is_planned());
        assert_eq!(CachePolicy::ceph_baseline().tier_replication(), 2);
        assert_eq!(CachePolicy::Functional.tier_replication(), 1);
    }

    #[test]
    fn planned_install_and_lookup() {
        let mut cache = Cache::new(CachePolicy::Functional, 1000);
        assert!(cache.install_planned(1, vec![chunk(7, 300), chunk(8, 300)]));
        assert_eq!(cache.used_bytes(), 600);
        assert_eq!(cache.cached_chunk_count(1), 2);
        assert_eq!(cache.lookup(1).len(), 2);
        assert_eq!(cache.lookup(2).len(), 0);
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().misses, 1);

        // replacing shrinks usage
        assert!(cache.install_planned(1, vec![chunk(7, 300)]));
        assert_eq!(cache.used_bytes(), 300);
        // installing empty removes
        assert!(cache.install_planned(1, vec![]));
        assert_eq!(cache.used_bytes(), 0);
        assert!(cache.peek(1).is_none());
    }

    #[test]
    fn planned_install_respects_capacity() {
        let mut cache = Cache::new(CachePolicy::Functional, 500);
        assert!(cache.install_planned(1, vec![chunk(7, 300)]));
        assert!(!cache.install_planned(2, vec![chunk(7, 300)]));
        assert_eq!(cache.cached_chunk_count(2), 0);
        assert_eq!(cache.used_bytes(), 300);
        // replacing object 1 with something bigger but within capacity works
        assert!(cache.install_planned(1, vec![chunk(7, 450)]));
        assert_eq!(cache.used_bytes(), 450);
    }

    #[test]
    fn lru_promotion_and_eviction() {
        let mut cache = Cache::new(CachePolicy::ceph_baseline(), 1000);
        // each object is 200 bytes * 2 replication = 400
        assert!(cache.promote_lru(1, vec![chunk(0, 200)]).admitted);
        assert!(cache.promote_lru(2, vec![chunk(0, 200)]).admitted);
        assert_eq!(cache.used_bytes(), 800);
        // touch object 1 so object 2 becomes the LRU victim
        let _ = cache.lookup(1);
        let admission = cache.promote_lru(3, vec![chunk(0, 200)]);
        assert_eq!(admission.evicted, vec![2]);
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.peek(2).is_none(), "object 2 should have been evicted");
        assert!(cache.peek(1).is_some());
        assert!(cache.peek(3).is_some());
        let resident = cache.resident_objects();
        assert_eq!(resident.last(), Some(&3));
    }

    #[test]
    fn lru_does_not_admit_objects_larger_than_capacity() {
        let mut cache = Cache::new(CachePolicy::ceph_baseline(), 100);
        assert!(!cache.promote_lru(1, vec![chunk(0, 200)]).admitted);
        assert_eq!(cache.used_bytes(), 0);
        assert!(cache.peek(1).is_none());
    }

    #[test]
    fn promoting_resident_object_only_refreshes_recency() {
        let mut cache = Cache::new(CachePolicy::ceph_baseline(), 1000);
        assert!(cache.promote_lru(1, vec![chunk(0, 100)]).admitted);
        let used = cache.used_bytes();
        assert!(cache.promote_lru(1, vec![chunk(0, 100)]).admitted);
        assert_eq!(cache.used_bytes(), used);
        assert_eq!(cache.stats().promotions, 1);
    }

    #[test]
    fn mirror_ops_bypass_the_local_policy() {
        let mut cache = Cache::new(CachePolicy::ceph_baseline(), 100);
        // Too big for this cache's own policy, but the deciding tier said yes.
        cache.mirror_promote(1, vec![chunk(0, 200)]);
        assert_eq!(cache.cached_chunk_count(1), 1);
        assert_eq!(cache.used_bytes(), 400, "bytes x replication");
        assert_eq!(cache.stats().promotions, 1);
        assert!(cache.mirror_evict(1));
        assert!(!cache.mirror_evict(1));
        assert_eq!(cache.used_bytes(), 0);
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn cache_tier_trait_is_implemented_by_the_cache() {
        fn drive<T: CacheTier>(tier: &mut T) {
            assert!(!tier.touch(9));
            assert!(tier.admit(9, 10).admitted);
            assert!(tier.touch(9));
            assert!(tier.contains(9));
            assert_eq!(tier.resident_objects(), vec![9]);
            assert!(tier.evict(9));
            assert_eq!(tier.used(), 0);
        }
        let mut cache = Cache::new(CachePolicy::ceph_baseline(), 1000);
        drive(&mut cache);
        assert_eq!(cache.replication(), 2);
        // Weight-only admission evicts victims' payloads too.
        assert!(cache.promote_lru(1, vec![chunk(0, 400)]).admitted);
        let admission = CacheTier::admit(&mut cache, 2, 400);
        assert!(admission.admitted);
        assert_eq!(admission.evicted, vec![1]);
        assert!(cache.peek(1).is_none(), "victim payload must be dropped");
    }

    #[test]
    fn clear_and_remove() {
        let mut cache = Cache::new(CachePolicy::Functional, 1000);
        cache.install_planned(1, vec![chunk(7, 100)]);
        cache.install_planned(2, vec![chunk(7, 100)]);
        assert!(cache.remove(1));
        assert!(!cache.remove(1));
        assert_eq!(cache.used_bytes(), 100);
        cache.clear();
        assert_eq!(cache.used_bytes(), 0);
        assert!(cache.resident_objects().is_empty());
    }
}
