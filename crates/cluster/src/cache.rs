//! Compute-server cache tiers.
//!
//! Three cache designs from the paper are modeled, plus "no cache":
//!
//! * **Functional** — the cache holds `d_i` *new* coded chunks per object,
//!   chosen by the optimizer, so the cached chunks plus any `k_i − d_i`
//!   storage chunks reconstruct the object (§III).
//! * **Exact** — the cache holds copies of `d_i` of the object's storage
//!   chunks; those chunks' host nodes can no longer contribute to a read.
//! * **LRU replicated** — Ceph's cache-tier baseline: whole objects are
//!   promoted into the cache on access (with a replication factor for the
//!   tier's redundancy) and the least-recently-used objects are evicted when
//!   space runs out.
//!
//! Capacity is tracked in bytes. Reads from the cache device are sampled from
//! the SSD model but never queue — the paper argues cache-read latency is
//! negligible compared to HDD OSD reads, and Table V confirms it.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};
use sprout_erasure::Chunk;

/// Which caching scheme the cluster uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CachePolicy {
    /// No cache at all; every read hits the storage nodes.
    None,
    /// Functional caching: optimizer-chosen counts of newly coded chunks.
    Functional,
    /// Exact caching: optimizer-chosen counts of copied storage chunks.
    Exact,
    /// Ceph-style LRU replicated cache tier with the given replication factor
    /// (the paper's baseline uses dual replication).
    LruReplicated {
        /// Number of replicas the cache tier keeps of each promoted object.
        replication: u32,
    },
}

impl CachePolicy {
    /// The paper's baseline configuration: an LRU cache tier with dual
    /// replication.
    pub fn ceph_baseline() -> Self {
        CachePolicy::LruReplicated { replication: 2 }
    }

    /// Whether this policy stores planner-chosen chunks (functional/exact).
    pub fn is_planned(&self) -> bool {
        matches!(self, CachePolicy::Functional | CachePolicy::Exact)
    }
}

/// An object resident in the cache.
#[derive(Debug, Clone)]
struct CachedObject {
    chunks: Vec<Chunk>,
    bytes: u64,
    last_access: u64,
}

/// Statistics kept by the cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Number of reads that found at least one usable chunk in the cache.
    pub hits: u64,
    /// Number of reads that found nothing usable in the cache.
    pub misses: u64,
    /// Number of objects evicted (LRU policy only).
    pub evictions: u64,
}

/// The cache tier of one compute server.
#[derive(Debug, Clone)]
pub struct Cache {
    policy: CachePolicy,
    capacity_bytes: u64,
    used_bytes: u64,
    entries: HashMap<u64, CachedObject>,
    clock: u64,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty cache with the given policy and byte capacity.
    pub fn new(policy: CachePolicy, capacity_bytes: u64) -> Self {
        Cache {
            policy,
            capacity_bytes,
            used_bytes: 0,
            entries: HashMap::new(),
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// The cache policy.
    pub fn policy(&self) -> CachePolicy {
        self.policy
    }

    /// Capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    /// Bytes currently occupied.
    pub fn used_bytes(&self) -> u64 {
        self.used_bytes
    }

    /// Hit/miss/eviction counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Number of chunks currently cached for `object`.
    pub fn cached_chunk_count(&self, object: u64) -> usize {
        self.entries.get(&object).map_or(0, |e| e.chunks.len())
    }

    /// The cached chunks of `object` (empty if not resident). Records a hit
    /// or miss and refreshes recency.
    pub fn lookup(&mut self, object: u64) -> Vec<Chunk> {
        self.clock += 1;
        match self.entries.get_mut(&object) {
            Some(entry) => {
                entry.last_access = self.clock;
                self.stats.hits += 1;
                entry.chunks.clone()
            }
            None => {
                self.stats.misses += 1;
                Vec::new()
            }
        }
    }

    /// Read-only peek that does not touch statistics or recency.
    pub fn peek(&self, object: u64) -> Option<&[Chunk]> {
        self.entries.get(&object).map(|e| e.chunks.as_slice())
    }

    /// Installs planner-chosen chunks for an object (functional or exact
    /// caching). Replaces any previous entry. Returns `false` (and leaves the
    /// cache unchanged) if the chunks do not fit in the remaining capacity.
    pub fn install_planned(&mut self, object: u64, chunks: Vec<Chunk>) -> bool {
        let bytes: u64 = chunks.iter().map(|c| c.len() as u64).sum();
        let existing = self.entries.get(&object).map_or(0, |e| e.bytes);
        if self.used_bytes - existing + bytes > self.capacity_bytes {
            return false;
        }
        if chunks.is_empty() {
            self.remove(object);
            return true;
        }
        self.clock += 1;
        self.used_bytes = self.used_bytes - existing + bytes;
        self.entries.insert(
            object,
            CachedObject {
                chunks,
                bytes,
                last_access: self.clock,
            },
        );
        true
    }

    /// Promotes a whole object into an LRU cache (called after a cache-miss
    /// read completes). The object's footprint is `bytes × replication`;
    /// least-recently-used objects are evicted until it fits. Objects larger
    /// than the whole cache are not admitted.
    pub fn promote_lru(&mut self, object: u64, chunks: Vec<Chunk>, replication: u32) {
        let bytes: u64 = chunks.iter().map(|c| c.len() as u64).sum::<u64>() * replication as u64;
        if bytes > self.capacity_bytes {
            return;
        }
        if self.entries.contains_key(&object) {
            self.clock += 1;
            if let Some(e) = self.entries.get_mut(&object) {
                e.last_access = self.clock;
            }
            return;
        }
        while self.used_bytes + bytes > self.capacity_bytes {
            if !self.evict_lru() {
                return;
            }
        }
        self.clock += 1;
        self.used_bytes += bytes;
        self.entries.insert(
            object,
            CachedObject {
                chunks,
                bytes,
                last_access: self.clock,
            },
        );
    }

    /// Removes an object from the cache; returns whether it was resident.
    pub fn remove(&mut self, object: u64) -> bool {
        if let Some(entry) = self.entries.remove(&object) {
            self.used_bytes -= entry.bytes;
            true
        } else {
            false
        }
    }

    /// Drops everything.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.used_bytes = 0;
    }

    /// Objects currently resident, most recently used last.
    pub fn resident_objects(&self) -> Vec<u64> {
        let mut ids: Vec<(u64, u64)> = self
            .entries
            .iter()
            .map(|(&id, e)| (e.last_access, id))
            .collect();
        ids.sort_unstable();
        ids.into_iter().map(|(_, id)| id).collect()
    }

    fn evict_lru(&mut self) -> bool {
        let victim = self
            .entries
            .iter()
            .min_by_key(|(_, e)| e.last_access)
            .map(|(&id, _)| id);
        match victim {
            Some(id) => {
                self.remove(id);
                self.stats.evictions += 1;
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sprout_erasure::ChunkId;

    fn chunk(index: usize, len: usize) -> Chunk {
        Chunk::new(ChunkId::cache(index), vec![1u8; len])
    }

    #[test]
    fn policy_helpers() {
        assert_eq!(
            CachePolicy::ceph_baseline(),
            CachePolicy::LruReplicated { replication: 2 }
        );
        assert!(CachePolicy::Functional.is_planned());
        assert!(CachePolicy::Exact.is_planned());
        assert!(!CachePolicy::None.is_planned());
        assert!(!CachePolicy::ceph_baseline().is_planned());
    }

    #[test]
    fn planned_install_and_lookup() {
        let mut cache = Cache::new(CachePolicy::Functional, 1000);
        assert!(cache.install_planned(1, vec![chunk(7, 300), chunk(8, 300)]));
        assert_eq!(cache.used_bytes(), 600);
        assert_eq!(cache.cached_chunk_count(1), 2);
        assert_eq!(cache.lookup(1).len(), 2);
        assert_eq!(cache.lookup(2).len(), 0);
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().misses, 1);

        // replacing shrinks usage
        assert!(cache.install_planned(1, vec![chunk(7, 300)]));
        assert_eq!(cache.used_bytes(), 300);
        // installing empty removes
        assert!(cache.install_planned(1, vec![]));
        assert_eq!(cache.used_bytes(), 0);
        assert!(cache.peek(1).is_none());
    }

    #[test]
    fn planned_install_respects_capacity() {
        let mut cache = Cache::new(CachePolicy::Functional, 500);
        assert!(cache.install_planned(1, vec![chunk(7, 300)]));
        assert!(!cache.install_planned(2, vec![chunk(7, 300)]));
        assert_eq!(cache.cached_chunk_count(2), 0);
        assert_eq!(cache.used_bytes(), 300);
        // replacing object 1 with something bigger but within capacity works
        assert!(cache.install_planned(1, vec![chunk(7, 450)]));
        assert_eq!(cache.used_bytes(), 450);
    }

    #[test]
    fn lru_promotion_and_eviction() {
        let mut cache = Cache::new(CachePolicy::ceph_baseline(), 1000);
        // each object is 200 bytes * 2 replication = 400
        cache.promote_lru(1, vec![chunk(0, 200)], 2);
        cache.promote_lru(2, vec![chunk(0, 200)], 2);
        assert_eq!(cache.used_bytes(), 800);
        // touch object 1 so object 2 becomes the LRU victim
        let _ = cache.lookup(1);
        cache.promote_lru(3, vec![chunk(0, 200)], 2);
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.peek(2).is_none(), "object 2 should have been evicted");
        assert!(cache.peek(1).is_some());
        assert!(cache.peek(3).is_some());
        let resident = cache.resident_objects();
        assert_eq!(resident.last(), Some(&3));
    }

    #[test]
    fn lru_does_not_admit_objects_larger_than_capacity() {
        let mut cache = Cache::new(CachePolicy::ceph_baseline(), 100);
        cache.promote_lru(1, vec![chunk(0, 200)], 2);
        assert_eq!(cache.used_bytes(), 0);
        assert!(cache.peek(1).is_none());
    }

    #[test]
    fn promoting_resident_object_only_refreshes_recency() {
        let mut cache = Cache::new(CachePolicy::ceph_baseline(), 1000);
        cache.promote_lru(1, vec![chunk(0, 100)], 2);
        let used = cache.used_bytes();
        cache.promote_lru(1, vec![chunk(0, 100)], 2);
        assert_eq!(cache.used_bytes(), used);
    }

    #[test]
    fn clear_and_remove() {
        let mut cache = Cache::new(CachePolicy::Functional, 1000);
        cache.install_planned(1, vec![chunk(7, 100)]);
        cache.install_planned(2, vec![chunk(7, 100)]);
        assert!(cache.remove(1));
        assert!(!cache.remove(1));
        assert_eq!(cache.used_bytes(), 100);
        cache.clear();
        assert_eq!(cache.used_bytes(), 0);
        assert!(cache.resident_objects().is_empty());
    }
}
