//! The cache-tier abstraction shared by the analytic and byte-accurate paths.
//!
//! The paper's baseline (Figs. 10/11, Table V) is Ceph's cache tier: whole
//! objects are *promoted* into the cache when a read misses, replicated
//! `replication` times for the tier's own redundancy, and *evicted*
//! least-recently-used when capacity runs out. Before this module existed the
//! repo carried two divergent copies of that logic — byte-granular inside
//! [`Cache`](crate::cache::Cache) and chunk-granular inside the simulation
//! engine — so the two paths could silently disagree on hit/miss decisions.
//!
//! [`CacheTier`] is the shared contract (hit lookup, admission with LRU
//! eviction, driven eviction, capacity accounting, replication) and
//! [`LruTier`] the one implementation of it. The simulation engine drives an
//! `LruTier` directly (weights are chunk counts), the cluster's `Cache`
//! delegates its byte accounting to an embedded `LruTier` (weights are
//! payload bytes), and the byte-accurate `StoreBackend` *mirrors* the
//! engine's admissions and evictions so both paths always agree on which
//! objects are resident — the differential root test proves it request by
//! request.
//!
//! Weights are plain `u64`s: the unit (bytes, chunks) is the caller's choice
//! and every comparison scales linearly with it, so two tiers fed the same
//! access sequence with proportionally scaled weights and capacity make
//! identical decisions.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

/// Counters every tier keeps.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TierStats {
    /// Lookups that found the object resident.
    pub hits: u64,
    /// Lookups that did not.
    pub misses: u64,
    /// Objects promoted (admitted) into the tier.
    pub promotions: u64,
    /// Objects evicted — by LRU pressure during an admission or by a driven
    /// [`CacheTier::evict`] call.
    pub evictions: u64,
}

/// Outcome of a [`CacheTier::admit`] attempt.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Admission {
    /// Whether the object is resident after the call (newly promoted or
    /// already present and refreshed).
    pub admitted: bool,
    /// Objects evicted to make room, in eviction order.
    pub evicted: Vec<u64>,
}

/// The cache-tier contract: promotion, eviction, hit lookup, capacity
/// accounting and replication.
///
/// Implementations track *residency and weight*, not payload bytes — payload
/// storage (if any) wraps the tier, as [`Cache`](crate::cache::Cache) does.
pub trait CacheTier {
    /// Tier capacity, in the implementation's weight unit.
    fn capacity(&self) -> u64;

    /// Weight currently occupied (footprints include replication).
    fn used(&self) -> u64;

    /// Replication factor applied to every admitted object's footprint.
    fn replication(&self) -> u32;

    /// Whether `object` is resident. No statistics or recency side effects.
    fn contains(&self, object: u64) -> bool;

    /// Hit lookup: records a hit (refreshing recency) or a miss and returns
    /// whether the object was resident.
    fn touch(&mut self, object: u64) -> bool;

    /// Tries to admit an object of logical size `weight` (footprint
    /// `weight × replication`), evicting least-recently-used residents until
    /// it fits. Objects whose footprint exceeds the whole tier are not
    /// admitted and evict nothing. Admitting a resident object only
    /// refreshes its recency.
    fn admit(&mut self, object: u64, weight: u64) -> Admission;

    /// Evicts `object` (driven eviction — a mirror of a decision made
    /// elsewhere, or a management drop). Returns whether it was resident.
    fn evict(&mut self, object: u64) -> bool;

    /// Hit/miss/promotion/eviction counters.
    fn stats(&self) -> TierStats;

    /// Resident objects, least recently used first.
    fn resident_objects(&self) -> Vec<u64>;
}

#[derive(Debug, Clone, Copy)]
struct TierEntry {
    /// Footprint (weight × replication) charged against the capacity.
    footprint: u64,
    last_access: u64,
}

/// Byte-accurate LRU bookkeeping — the one implementation of [`CacheTier`].
///
/// Eviction picks the minimum `last_access` tick; ticks strictly increase, so
/// the victim is unique and the policy is deterministic regardless of hash
/// iteration order.
#[derive(Debug, Clone)]
pub struct LruTier {
    capacity: u64,
    replication: u32,
    used: u64,
    clock: u64,
    entries: HashMap<u64, TierEntry>,
    stats: TierStats,
}

impl LruTier {
    /// Creates an empty tier.
    ///
    /// # Panics
    ///
    /// Panics if `replication == 0`.
    pub fn new(capacity: u64, replication: u32) -> Self {
        assert!(replication > 0, "tier replication must be at least 1");
        LruTier {
            capacity,
            replication,
            used: 0,
            clock: 0,
            entries: HashMap::new(),
            stats: TierStats::default(),
        }
    }

    /// Installs or replaces an entry *without* LRU eviction, refusing (and
    /// leaving the tier unchanged) if it would exceed capacity. This is the
    /// planner-managed path (functional/exact cache contents), which never
    /// competes through the LRU policy. Replication is not applied: planned
    /// chunks are already the redundancy.
    pub fn install(&mut self, object: u64, weight: u64) -> bool {
        let existing = self.entries.get(&object).map_or(0, |e| e.footprint);
        if self.used - existing + weight > self.capacity {
            return false;
        }
        self.clock += 1;
        self.used = self.used - existing + weight;
        self.entries.insert(
            object,
            TierEntry {
                footprint: weight,
                last_access: self.clock,
            },
        );
        true
    }

    /// Inserts an entry unconditionally (mirror of an admission decided by
    /// another tier instance — the engine's). Capacity is *not* enforced:
    /// residency is the deciding tier's call; this instance only keeps the
    /// weight accounting honest. Counts a promotion.
    pub fn mirror_insert(&mut self, object: u64, weight: u64) {
        self.clock += 1;
        let footprint = weight.saturating_mul(self.replication as u64);
        let existing = self.entries.insert(
            object,
            TierEntry {
                footprint,
                last_access: self.clock,
            },
        );
        self.used = self.used - existing.map_or(0, |e| e.footprint) + footprint;
        self.stats.promotions += 1;
    }

    /// Removes an entry without counting an eviction (management delete).
    pub fn remove(&mut self, object: u64) -> bool {
        match self.entries.remove(&object) {
            Some(entry) => {
                self.used -= entry.footprint;
                true
            }
            None => false,
        }
    }

    /// Drops everything (counters survive).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.used = 0;
    }

    fn evict_lru(&mut self) -> Option<u64> {
        let victim = self
            .entries
            .iter()
            .min_by_key(|(_, e)| e.last_access)
            .map(|(&id, _)| id)?;
        self.remove(victim);
        self.stats.evictions += 1;
        Some(victim)
    }
}

impl CacheTier for LruTier {
    fn capacity(&self) -> u64 {
        self.capacity
    }

    fn used(&self) -> u64 {
        self.used
    }

    fn replication(&self) -> u32 {
        self.replication
    }

    fn contains(&self, object: u64) -> bool {
        self.entries.contains_key(&object)
    }

    fn touch(&mut self, object: u64) -> bool {
        self.clock += 1;
        match self.entries.get_mut(&object) {
            Some(entry) => {
                entry.last_access = self.clock;
                self.stats.hits += 1;
                true
            }
            None => {
                self.stats.misses += 1;
                false
            }
        }
    }

    fn admit(&mut self, object: u64, weight: u64) -> Admission {
        if let Some(entry) = self.entries.get_mut(&object) {
            self.clock += 1;
            entry.last_access = self.clock;
            return Admission {
                admitted: true,
                evicted: Vec::new(),
            };
        }
        let footprint = weight.saturating_mul(self.replication as u64);
        if footprint > self.capacity {
            return Admission::default();
        }
        let mut evicted = Vec::new();
        while self.used + footprint > self.capacity {
            match self.evict_lru() {
                Some(victim) => evicted.push(victim),
                None => break,
            }
        }
        if self.used + footprint > self.capacity {
            return Admission {
                admitted: false,
                evicted,
            };
        }
        self.clock += 1;
        self.used += footprint;
        self.entries.insert(
            object,
            TierEntry {
                footprint,
                last_access: self.clock,
            },
        );
        self.stats.promotions += 1;
        Admission {
            admitted: true,
            evicted,
        }
    }

    fn evict(&mut self, object: u64) -> bool {
        if self.remove(object) {
            self.stats.evictions += 1;
            true
        } else {
            false
        }
    }

    fn stats(&self) -> TierStats {
        self.stats
    }

    fn resident_objects(&self) -> Vec<u64> {
        let mut ids: Vec<(u64, u64)> = self
            .entries
            .iter()
            .map(|(&id, e)| (e.last_access, id))
            .collect();
        ids.sort_unstable();
        ids.into_iter().map(|(_, id)| id).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admit_touch_and_lru_eviction_order() {
        let mut tier = LruTier::new(10, 1);
        assert!(tier.admit(1, 4).admitted);
        assert!(tier.admit(2, 4).admitted);
        assert_eq!(tier.used(), 8);
        // Touch 1 so 2 becomes the victim.
        assert!(tier.touch(1));
        let adm = tier.admit(3, 4);
        assert!(adm.admitted);
        assert_eq!(adm.evicted, vec![2]);
        assert!(tier.contains(1) && tier.contains(3) && !tier.contains(2));
        assert_eq!(tier.resident_objects(), vec![1, 3]);
        let stats = tier.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.promotions, 3);
        assert_eq!(stats.evictions, 1);
    }

    #[test]
    fn replication_multiplies_the_footprint() {
        let mut tier = LruTier::new(10, 2);
        assert_eq!(tier.replication(), 2);
        assert!(tier.admit(1, 4).admitted);
        assert_eq!(tier.used(), 8, "footprint is weight x replication");
        // A second 4-weight object (footprint 8) evicts the first.
        let adm = tier.admit(2, 4);
        assert!(adm.admitted);
        assert_eq!(adm.evicted, vec![1]);
        assert_eq!(tier.used(), 8);
    }

    #[test]
    fn objects_larger_than_the_tier_are_not_admitted_and_evict_nothing() {
        let mut tier = LruTier::new(10, 2);
        assert!(tier.admit(1, 2).admitted);
        let adm = tier.admit(2, 6); // footprint 12 > 10
        assert!(!adm.admitted);
        assert!(adm.evicted.is_empty(), "an oversized object evicts nothing");
        assert!(tier.contains(1));
        assert_eq!(tier.stats().evictions, 0);
    }

    #[test]
    fn admitting_a_resident_object_refreshes_recency_only() {
        let mut tier = LruTier::new(10, 1);
        assert!(tier.admit(1, 4).admitted);
        assert!(tier.admit(2, 4).admitted);
        let adm = tier.admit(1, 4);
        assert!(adm.admitted && adm.evicted.is_empty());
        assert_eq!(tier.used(), 8);
        assert_eq!(tier.stats().promotions, 2, "a refresh is not a promotion");
        assert_eq!(tier.resident_objects(), vec![2, 1]);
    }

    #[test]
    fn touch_records_hits_and_misses() {
        let mut tier = LruTier::new(10, 1);
        assert!(!tier.touch(7));
        assert!(tier.admit(7, 1).admitted);
        assert!(tier.touch(7));
        let stats = tier.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn driven_evict_counts_and_remove_does_not() {
        let mut tier = LruTier::new(10, 1);
        assert!(tier.admit(1, 3).admitted);
        assert!(tier.admit(2, 3).admitted);
        assert!(tier.evict(1));
        assert!(!tier.evict(1));
        assert!(tier.remove(2));
        assert_eq!(tier.used(), 0);
        assert_eq!(tier.stats().evictions, 1, "only evict() counts");
    }

    #[test]
    fn mirror_insert_bypasses_capacity_but_tracks_weight() {
        let mut tier = LruTier::new(4, 2);
        tier.mirror_insert(1, 4); // footprint 8 > capacity 4: still inserted
        assert!(tier.contains(1));
        assert_eq!(tier.used(), 8);
        assert_eq!(tier.stats().promotions, 1);
        tier.mirror_insert(1, 2); // replace shrinks usage
        assert_eq!(tier.used(), 4);
    }

    #[test]
    fn install_is_capacity_checked_and_eviction_free() {
        let mut tier = LruTier::new(10, 2);
        assert!(tier.install(1, 6));
        assert_eq!(tier.used(), 6, "install does not apply replication");
        assert!(!tier.install(2, 6), "no room and no eviction");
        assert!(tier.contains(1) && !tier.contains(2));
        assert!(tier.install(1, 9), "replace may grow within capacity");
        assert_eq!(tier.used(), 9);
        tier.clear();
        assert_eq!(tier.used(), 0);
        assert!(tier.resident_objects().is_empty());
    }

    #[test]
    fn scaled_weights_make_identical_decisions() {
        // The unit-agnosticism the engine/store split relies on: chunks vs
        // bytes, same decisions when everything scales by the chunk length.
        let scale = 4096u64;
        let mut chunks = LruTier::new(6, 2);
        let mut bytes = LruTier::new(6 * scale, 2);
        let accesses = [1u64, 2, 1, 3, 2, 4, 1, 5, 3, 1, 2];
        for &obj in &accesses {
            let hit_a = chunks.touch(obj);
            let hit_b = bytes.touch(obj);
            assert_eq!(hit_a, hit_b, "hit decision diverged at object {obj}");
            if !hit_a {
                let a = chunks.admit(obj, 1);
                let b = bytes.admit(obj, scale);
                assert_eq!(a.admitted, b.admitted);
                assert_eq!(a.evicted, b.evicted);
            }
        }
        assert_eq!(chunks.resident_objects(), bytes.resident_objects());
        assert_eq!(chunks.stats(), bytes.stats());
    }
}
