//! The unified error type of the `sprout` facade.

use std::fmt;

use sprout_cluster::ClusterError;
use sprout_erasure::CodingError;
use sprout_optimizer::OptimizerError;

/// Errors surfaced by the high-level Sprout API.
#[derive(Debug, Clone, PartialEq)]
pub enum SproutError {
    /// The system specification is inconsistent.
    InvalidSpec(String),
    /// An error from the cache-placement optimizer.
    Optimizer(OptimizerError),
    /// An error from the erasure-coding layer.
    Coding(CodingError),
    /// An error from the cluster substrate.
    Cluster(ClusterError),
}

impl fmt::Display for SproutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SproutError::InvalidSpec(msg) => write!(f, "invalid system specification: {msg}"),
            SproutError::Optimizer(e) => write!(f, "optimizer error: {e}"),
            SproutError::Coding(e) => write!(f, "coding error: {e}"),
            SproutError::Cluster(e) => write!(f, "cluster error: {e}"),
        }
    }
}

impl std::error::Error for SproutError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SproutError::InvalidSpec(_) => None,
            SproutError::Optimizer(e) => Some(e),
            SproutError::Coding(e) => Some(e),
            SproutError::Cluster(e) => Some(e),
        }
    }
}

impl From<OptimizerError> for SproutError {
    fn from(e: OptimizerError) -> Self {
        SproutError::Optimizer(e)
    }
}

impl From<CodingError> for SproutError {
    fn from(e: CodingError) -> Self {
        SproutError::Coding(e)
    }
}

impl From<ClusterError> for SproutError {
    fn from(e: ClusterError) -> Self {
        SproutError::Cluster(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn conversions_and_display() {
        let e: SproutError = OptimizerError::InvalidModel("x".into()).into();
        assert!(e.to_string().contains("optimizer error"));
        assert!(e.source().is_some());
        let e: SproutError = CodingError::NotEnoughChunks { have: 1, need: 2 }.into();
        assert!(e.to_string().contains("coding error"));
        let e: SproutError = ClusterError::UnknownObject(1).into();
        assert!(e.to_string().contains("cluster error"));
        let e = SproutError::InvalidSpec("bad".into());
        assert!(e.to_string().contains("bad"));
        assert!(e.source().is_none());
    }
}
