//! The [`SproutSystem`] facade: optimize → analyze → simulate.

use serde::{Deserialize, Serialize};
use sprout_cluster::{ClusterView, ObjectDesc, RebalanceReport};
use sprout_optimizer::{CachePlan, FileModel, Optimizer, OptimizerConfig, StorageModel};
use sprout_sim::policy::SchedulingRule;
use sprout_sim::{CacheScheme, SimConfig, SimFile, SimReport, Simulation};

use crate::error::SproutError;
use crate::spec::SystemSpec;

/// Which caching policy to evaluate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CachePolicyChoice {
    /// Sprout's functional caching with the optimized plan.
    Functional,
    /// Exact caching: the same per-file cache counts, but the cached chunks
    /// are copies of stored chunks, so their host nodes cannot serve reads.
    Exact,
    /// Ceph's baseline: an LRU cache tier with dual replication.
    LruReplicated,
    /// No cache.
    NoCache,
}

impl CachePolicyChoice {
    /// Whether this policy needs an optimized [`CachePlan`] to simulate.
    pub fn requires_plan(&self) -> bool {
        matches!(
            self,
            CachePolicyChoice::Functional | CachePolicyChoice::Exact
        )
    }
}

/// Simulated latency of every policy on the same workload, plus the analytic
/// bound for the functional plan — the comparison behind Figs. 10 and 11.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyComparison {
    /// Functional caching (optimized plan).
    pub functional: SimReport,
    /// Exact caching with the same cache counts.
    pub exact: SimReport,
    /// LRU replicated cache tier.
    pub lru: SimReport,
    /// No cache at all.
    pub no_cache: SimReport,
    /// The analytical mean-latency bound of the functional plan.
    pub analytic_bound: f64,
}

impl PolicyComparison {
    /// Relative latency reduction of functional caching over the LRU
    /// baseline (the headline number of the paper's evaluation, ~25 %).
    pub fn improvement_over_lru(&self) -> f64 {
        if self.lru.overall.mean <= 0.0 {
            0.0
        } else {
            1.0 - self.functional.overall.mean / self.lru.overall.mean
        }
    }
}

/// A configured storage system: spec, resolved placement and analytic model.
#[derive(Debug, Clone)]
pub struct SproutSystem {
    spec: SystemSpec,
    placements: Vec<Vec<usize>>,
    model: StorageModel,
}

impl SproutSystem {
    /// Builds a system from a validated specification.
    ///
    /// # Errors
    ///
    /// Returns [`SproutError::InvalidSpec`] for malformed placements and
    /// propagates model-validation errors.
    pub fn new(spec: SystemSpec) -> Result<Self, SproutError> {
        let placements = spec.resolved_placements()?;
        let nodes = spec
            .node_services
            .iter()
            .map(|d| d.moments())
            .collect::<Vec<_>>();
        let files = spec
            .files
            .iter()
            .zip(&placements)
            .map(|(f, p)| FileModel::new(f.arrival_rate, f.k, p.clone()))
            .collect();
        let model = StorageModel::new(nodes, files)?;
        Ok(SproutSystem {
            spec,
            placements,
            model,
        })
    }

    /// The system specification.
    pub fn spec(&self) -> &SystemSpec {
        &self.spec
    }

    /// The analytic storage model (arrival rates, moments, placement).
    pub fn model(&self) -> &StorageModel {
        &self.model
    }

    /// The resolved per-file placements.
    pub fn placements(&self) -> &[Vec<usize>] {
        &self.placements
    }

    /// Runs Algorithm 1 with the default configuration.
    ///
    /// # Errors
    ///
    /// Propagates optimizer errors (e.g. an unstable system).
    pub fn optimize(&self) -> Result<CachePlan, SproutError> {
        self.optimize_with(&OptimizerConfig::default())
    }

    /// Runs Algorithm 1 with a custom configuration.
    ///
    /// # Errors
    ///
    /// Propagates optimizer errors.
    pub fn optimize_with(&self, config: &OptimizerConfig) -> Result<CachePlan, SproutError> {
        Ok(Optimizer::new(*config).run(&self.model, self.spec.cache_capacity_chunks)?)
    }

    /// Runs Algorithm 1 warm-started from a previous plan's scheduling (the
    /// paper warm-starts across cache sizes in its convergence experiment).
    ///
    /// # Errors
    ///
    /// Propagates optimizer errors.
    pub fn optimize_warm(
        &self,
        config: &OptimizerConfig,
        previous: &CachePlan,
    ) -> Result<CachePlan, SproutError> {
        Ok(Optimizer::new(*config)
            .warm_start(previous)
            .run(&self.model, self.spec.cache_capacity_chunks)?)
    }

    /// Runs Algorithm 1 on a *degraded* model: the nodes in `down` are
    /// removed from every file's candidate set, so the plan schedules no
    /// storage read onto a failed node. Scheduling rows keep their full
    /// length `m` (down nodes simply carry probability zero), so the plan
    /// drops into the simulation engine unchanged. An empty `down` list is
    /// exactly [`optimize_with`](Self::optimize_with).
    ///
    /// # Errors
    ///
    /// Returns [`SproutError::InvalidSpec`] if a file retains fewer than `k`
    /// online hosts (it cannot be reconstructed from storage at all);
    /// propagates optimizer errors.
    pub fn optimize_excluding(
        &self,
        config: &OptimizerConfig,
        down: &[usize],
    ) -> Result<CachePlan, SproutError> {
        if down.is_empty() {
            return self.optimize_with(config);
        }
        let nodes = self
            .spec
            .node_services
            .iter()
            .map(|d| d.moments())
            .collect::<Vec<_>>();
        let files = self
            .spec
            .files
            .iter()
            .zip(&self.placements)
            .enumerate()
            .map(|(i, (f, p))| {
                let surviving: Vec<usize> =
                    p.iter().copied().filter(|n| !down.contains(n)).collect();
                if surviving.len() < f.k {
                    return Err(SproutError::InvalidSpec(format!(
                        "file {i} keeps only {} of {} hosts with nodes {down:?} down \
                         but needs k = {}",
                        surviving.len(),
                        p.len(),
                        f.k
                    )));
                }
                Ok(FileModel::new(f.arrival_rate, f.k, surviving))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let degraded = StorageModel::new(nodes, files)?;
        Ok(Optimizer::new(*config).run(&degraded, self.spec.cache_capacity_chunks)?)
    }

    /// Prices the rebalance the spec's placement strategy would perform on a
    /// membership change: every auto-placed file is re-placed under `before`
    /// and `after` views and chunks landing on new nodes are counted (files
    /// with an explicit placement are pinned and never move). Chunk sizes
    /// come from each file's `size_bytes`.
    pub fn rebalance_report(&self, before: &ClusterView, after: &ClusterView) -> RebalanceReport {
        let strategy = self
            .spec
            .placement
            .build(self.spec.node_services.len().max(1), self.spec.seed);
        let objects: Vec<ObjectDesc> = self
            .spec
            .files
            .iter()
            .enumerate()
            .filter(|(_, f)| f.placement.is_none())
            .map(|(i, f)| ObjectDesc {
                id: i as u64,
                n: f.n,
                chunk_bytes: f.size_bytes.div_ceil(f.k.max(1) as u64),
            })
            .collect();
        strategy.on_membership_change(&objects, before, after)
    }

    /// Returns a copy of the system with new per-file arrival rates (a new
    /// time bin).
    ///
    /// # Errors
    ///
    /// Returns [`SproutError::InvalidSpec`] if the rate vector length does
    /// not match the number of files.
    pub fn with_arrival_rates(&self, rates: &[f64]) -> Result<Self, SproutError> {
        if rates.len() != self.spec.files.len() {
            return Err(SproutError::InvalidSpec(format!(
                "expected {} arrival rates, got {}",
                self.spec.files.len(),
                rates.len()
            )));
        }
        let mut spec = self.spec.clone();
        for (f, &r) in spec.files.iter_mut().zip(rates) {
            f.arrival_rate = r;
        }
        SproutSystem::new(spec)
    }

    /// Simulates the system under the given policy. `plan` is required for
    /// [`CachePolicyChoice::Functional`] and [`CachePolicyChoice::Exact`];
    /// it is ignored by the other policies.
    ///
    /// # Panics
    ///
    /// Panics if a plan is required but not supplied.
    pub fn simulate(
        &self,
        policy: CachePolicyChoice,
        plan: Option<&CachePlan>,
        horizon: f64,
        seed: u64,
    ) -> SimReport {
        self.simulate_with_config(policy, plan, SimConfig::new(horizon, seed))
    }

    /// Like [`SproutSystem::simulate`] but with full control over the
    /// simulation configuration (warm-up, cache-read latency, slot length).
    ///
    /// # Panics
    ///
    /// Panics if a plan is required but not supplied.
    pub fn simulate_with_config(
        &self,
        policy: CachePolicyChoice,
        plan: Option<&CachePlan>,
        config: SimConfig,
    ) -> SimReport {
        self.simulation(policy, plan, config).run()
    }

    /// Builds the configured [`Simulation`] without running it, so callers
    /// can attach a [`sprout_sim::Scenario`], a rate schedule, or run it on
    /// an explicit backend (e.g. [`crate::backend::StoreBackend`]) or the
    /// replication runner.
    ///
    /// # Panics
    ///
    /// Panics if a plan is required but not supplied.
    pub fn simulation(
        &self,
        policy: CachePolicyChoice,
        plan: Option<&CachePlan>,
        config: SimConfig,
    ) -> Simulation {
        let scheme = self.cache_scheme(policy, plan);
        let sim_files: Vec<SimFile> = self
            .spec
            .files
            .iter()
            .zip(&self.placements)
            .map(|(f, p)| SimFile::new(f.arrival_rate, f.k, p.clone()))
            .collect();
        Simulation::new(self.spec.node_services.clone(), sim_files, scheme, config)
    }

    /// Builds a byte-accurate [`StoreBackend`](crate::backend::StoreBackend)
    /// for this system: every file's actual coded bytes are written onto an
    /// [`sprout_cluster::ErasureCodedStore`] (object id = file index, the
    /// system's resolved placements), and the plan's cache chunks are
    /// installed. Run it with [`Simulation::run_on`] against the simulation
    /// built by [`SproutSystem::simulation`] for the same policy and plan.
    ///
    /// Every policy is supported, including
    /// [`CachePolicyChoice::LruReplicated`]: the engine's LRU tier decides
    /// hits, promotions and evictions and mirrors them into the store, whose
    /// cache then serves (and decode-verifies) the hit requests from real
    /// data chunks.
    ///
    /// Files with `size_bytes = 0` get
    /// [`crate::backend::DEFAULT_OBJECT_BYTES`]-byte synthetic payloads; all
    /// payload bytes are deterministic in the spec seed.
    ///
    /// # Errors
    ///
    /// Returns [`SproutError::InvalidSpec`] if files disagree on `(n, k)` or
    /// a required plan is missing; propagates cluster and coding errors.
    pub fn byte_backend(
        &self,
        policy: CachePolicyChoice,
        plan: Option<&CachePlan>,
        seed: u64,
    ) -> Result<crate::backend::StoreBackend, SproutError> {
        use crate::backend::{
            cluster_policy_for, populate_store, synthetic_payload, StoreBackend,
            DEFAULT_OBJECT_BYTES,
        };

        let cluster_policy = cluster_policy_for(policy);
        let first = &self.spec.files[0];
        let (n, k) = (first.n, first.k);
        if !self.spec.files.iter().all(|f| f.n == n && f.k == k) {
            return Err(SproutError::InvalidSpec(
                "the byte-accurate backend requires a uniform (n, k) across files".into(),
            ));
        }
        if policy.requires_plan() && plan.is_none() {
            return Err(SproutError::InvalidSpec(format!(
                "policy {policy:?} requires an optimized plan"
            )));
        }

        let payloads: Vec<Vec<u8>> = self
            .spec
            .files
            .iter()
            .enumerate()
            .map(|(i, f)| {
                let len = if f.size_bytes == 0 {
                    DEFAULT_OBJECT_BYTES
                } else {
                    f.size_bytes
                } as usize;
                synthetic_payload(i, len, self.spec.seed)
            })
            .collect();
        let total_bytes: u64 = payloads.iter().map(|p| p.len() as u64).sum();
        let cache_capacity_bytes = match policy {
            // The spec's chunk budget translated to bytes. Residency is
            // decided by the engine's tier and mirrored in (so this value is
            // accounting, not admission), but it keeps the store's
            // used-bytes figure honest against the spec's budget.
            CachePolicyChoice::LruReplicated => {
                let max_chunk = payloads
                    .iter()
                    .map(|p| p.len().div_ceil(k) as u64)
                    .max()
                    .unwrap_or(1);
                (self.spec.cache_capacity_chunks as u64).max(1) * max_chunk.max(1)
            }
            // Generous: planner-managed caches hold at most k of n chunks
            // per object, so total object bytes always fit.
            _ => total_bytes.max(1) * 2,
        };

        let config = sprout_cluster::ClusterConfig::builder()
            .nodes(self.spec.node_services.len())
            .code(n, k)
            .uniform_device(sprout_cluster::DeviceModel::ssd())
            .cache_policy(cluster_policy)
            .cache_capacity_bytes(cache_capacity_bytes)
            .seed(self.spec.seed)
            .build();
        let plan_counts = plan.map(|p| p.cached_chunks.as_slice());
        let store = populate_store(config, &self.placements, &payloads, plan_counts)?;
        Ok(StoreBackend::new(
            store,
            self.spec.node_services.clone(),
            payloads,
            seed,
        ))
    }

    /// Simulates all four policies on the same workload and reports the
    /// comparison (plus the analytic bound of the supplied functional plan).
    pub fn compare_policies(&self, plan: &CachePlan, horizon: f64, seed: u64) -> PolicyComparison {
        PolicyComparison {
            functional: self.simulate(CachePolicyChoice::Functional, Some(plan), horizon, seed),
            exact: self.simulate(CachePolicyChoice::Exact, Some(plan), horizon, seed),
            lru: self.simulate(CachePolicyChoice::LruReplicated, None, horizon, seed),
            no_cache: self.simulate(CachePolicyChoice::NoCache, None, horizon, seed),
            analytic_bound: plan.objective,
        }
    }

    /// The engine-level [`CacheScheme`] a policy choice resolves to. `plan`
    /// is required for [`CachePolicyChoice::Functional`] and
    /// [`CachePolicyChoice::Exact`]; it is ignored by the other policies.
    /// Used directly when building scenario plan swaps.
    ///
    /// # Panics
    ///
    /// Panics if a plan is required but not supplied.
    pub fn cache_scheme(&self, policy: CachePolicyChoice, plan: Option<&CachePlan>) -> CacheScheme {
        match policy {
            CachePolicyChoice::NoCache => CacheScheme::NoCache,
            CachePolicyChoice::LruReplicated => {
                CacheScheme::ceph_lru(self.spec.cache_capacity_chunks)
            }
            CachePolicyChoice::Functional => {
                let plan = plan.expect("the functional policy requires an optimized plan");
                CacheScheme::Functional {
                    cached_chunks: plan.cached_chunks.clone(),
                    scheduling: plan.scheduling.clone(),
                    rule: SchedulingRule::Probabilistic,
                }
            }
            CachePolicyChoice::Exact => {
                let plan = plan.expect("the exact policy requires an optimized plan");
                // Exact caching pins copies of the first d_i chunks; the
                // remaining reads spread uniformly over the other hosts.
                let m = self.spec.node_services.len();
                let scheduling: Vec<Vec<f64>> = self
                    .spec
                    .files
                    .iter()
                    .zip(&self.placements)
                    .enumerate()
                    .map(|(i, (f, p))| {
                        let d = plan.cached_chunks.get(i).copied().unwrap_or(0).min(f.k);
                        let eligible = &p[d.min(p.len())..];
                        let mut row = vec![0.0; m];
                        if !eligible.is_empty() && f.k > d {
                            let prob = (f.k - d) as f64 / eligible.len() as f64;
                            for &j in eligible {
                                row[j] = prob.min(1.0);
                            }
                        }
                        row
                    })
                    .collect();
                CacheScheme::Exact {
                    cached_chunks: plan.cached_chunks.clone(),
                    scheduling,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SystemSpec;

    fn small_system() -> SproutSystem {
        let spec = SystemSpec::builder()
            .node_service_rates(&[0.6, 0.6, 0.45, 0.45, 0.3, 0.3])
            .uniform_files(6, 2, 4, 0.04)
            .cache_capacity_chunks(6)
            .seed(3)
            .build()
            .unwrap();
        SproutSystem::new(spec).unwrap()
    }

    #[test]
    fn optimize_and_simulate_pipeline() {
        let system = small_system();
        let plan = system.optimize().unwrap();
        assert!(plan.cache_chunks_used() <= 6);
        let report = system.simulate(CachePolicyChoice::Functional, Some(&plan), 30_000.0, 1);
        assert!(report.completed_requests > 100);
        // The analytic objective is an upper bound on the simulated mean.
        assert!(plan.objective >= report.overall.mean * 0.9);
    }

    #[test]
    fn policy_comparison_orders_policies_sensibly() {
        let system = small_system();
        let plan = system.optimize().unwrap();
        let cmp = system.compare_policies(&plan, 40_000.0, 5);
        // Functional caching should not lose to no caching.
        assert!(cmp.functional.overall.mean <= cmp.no_cache.overall.mean * 1.05);
        // Functional caching should not lose to exact caching with the same counts.
        assert!(cmp.functional.overall.mean <= cmp.exact.overall.mean * 1.10);
        assert!(cmp.analytic_bound > 0.0);
        // improvement metric is well defined
        let imp = cmp.improvement_over_lru();
        assert!(imp <= 1.0);
    }

    #[test]
    fn with_arrival_rates_builds_a_new_bin() {
        let system = small_system();
        let rates = vec![0.01; 6];
        let next = system.with_arrival_rates(&rates).unwrap();
        assert!((next.model().total_arrival_rate() - 0.06).abs() < 1e-12);
        assert!(system.with_arrival_rates(&[0.1]).is_err());
        // placements are preserved across bins
        assert_eq!(system.placements(), next.placements());
    }

    #[test]
    #[should_panic(expected = "requires an optimized plan")]
    fn functional_simulation_without_plan_panics() {
        let system = small_system();
        let _ = system.simulate(CachePolicyChoice::Functional, None, 100.0, 0);
    }
}
