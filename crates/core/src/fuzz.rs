//! A seeded scenario fuzzer: bounded random systems and event streams,
//! checked against the engine's invariants on every run.
//!
//! Each case draws a small random system (nodes, service rates, a uniform
//! `(n, k)` code, object sizes from odd-padded 1 KB up to multi-stripe
//! 128 KB, a cache tier sized anywhere from thrashing to oversized, arrival
//! rates well inside the stability region, a placement strategy, a cache
//! policy) and a bounded random scenario
//! (failures/recoveries that never take more than `nodes - n` hosts down at
//! once, load waves, single-file spikes, re-optimization points), then runs
//! it four ways: on the analytic backend at shard counts 1, 2 and 4, and on
//! the byte-accurate backend. The invariants:
//!
//! * the three analytic reports are **bit-identical** (the sharded engine's
//!   determinism contract);
//! * the byte run makes identical chunk-source decisions and **decode-
//!   verifies every completed request** (`verified == completed`), with zero
//!   mirror failures and zero failed reconstructions;
//! * every report respects the engine's resource bounds
//!   ([`sprout_sim::EngineBounds`]): the event queue stays
//!   `O(files + nodes)` and the in-flight population stays capped.
//!
//! Everything is deterministic from one base seed: case `i` of base `b` is
//! [`fuzz_case_seed`]`(b, i)`, so a CI failure line like `case 17 of base
//! 0xSPROUT` replays locally with the same numbers.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sprout_sim::{
    check_report, check_shard_identity, replication_seed, EngineBounds, InvariantViolation,
    SimConfig, SimReport,
};

use crate::error::SproutError;
use crate::scenario::{ScenarioActionSpec, ScenarioSpec};
use crate::spec::{FileConfig, SystemSpec};
use crate::system::{CachePolicyChoice, SproutSystem};
use sprout_cluster::PlacementChoice;

/// The default base seed of the fuzzer (CI uses this unless
/// `SPROUT_FUZZ_SEED` overrides it).
pub const DEFAULT_BASE_SEED: u64 = 0x5950_0117_2016_0001;

/// The seed of case `index` under `base` — decorrelated so neighbouring
/// cases share nothing.
pub fn fuzz_case_seed(base: u64, index: usize) -> u64 {
    replication_seed(base, index)
}

/// One generated fuzz case: a complete, runnable experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzCase {
    /// The case seed everything below was drawn from (and the run seed).
    pub seed: u64,
    /// The generated system.
    pub spec: SystemSpec,
    /// The generated event stream.
    pub scenario: ScenarioSpec,
    /// The cache policy under test.
    pub policy: CachePolicyChoice,
    /// Run length and sampling parameters.
    pub config: SimConfig,
    /// Cap on concurrently in-flight requests for the bounds check.
    pub in_flight_cap: usize,
}

/// Why a fuzz case failed.
#[derive(Debug, Clone, PartialEq)]
pub enum FuzzFailure {
    /// The generated case did not build/compile — a generator or stack bug
    /// either way, so it fails the run rather than being skipped.
    Build {
        /// The offending case seed.
        seed: u64,
        /// The underlying error.
        error: SproutError,
    },
    /// An engine invariant was violated.
    Invariant {
        /// The offending case seed.
        seed: u64,
        /// Shard count of the offending run (`None` for the byte run).
        shards: Option<usize>,
        /// The violation.
        violation: InvariantViolation,
    },
    /// The byte backend diverged from the analytic run's decisions.
    ByteDivergence {
        /// The offending case seed.
        seed: u64,
        /// First diverging report field.
        field: &'static str,
    },
    /// The byte backend completed requests it never decode-verified.
    Verification {
        /// The offending case seed.
        seed: u64,
        /// Requests the backend decode-verified.
        verified: u64,
        /// Requests the engine completed.
        completed: u64,
    },
    /// Engine tier decisions failed to mirror into the byte store.
    MirrorFailures {
        /// The offending case seed.
        seed: u64,
        /// Number of mirror failures.
        count: u64,
    },
}

impl std::fmt::Display for FuzzFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FuzzFailure::Build { seed, error } => {
                write!(f, "case {seed:#018x}: failed to build: {error}")
            }
            FuzzFailure::Invariant {
                seed,
                shards,
                violation,
            } => match shards {
                Some(s) => write!(f, "case {seed:#018x} (shards={s}): {violation}"),
                None => write!(f, "case {seed:#018x} (byte backend): {violation}"),
            },
            FuzzFailure::ByteDivergence { seed, field } => write!(
                f,
                "case {seed:#018x}: byte backend diverged from analytic decisions at '{field}'"
            ),
            FuzzFailure::Verification {
                seed,
                verified,
                completed,
            } => write!(
                f,
                "case {seed:#018x}: {verified} verified != {completed} completed"
            ),
            FuzzFailure::MirrorFailures { seed, count } => {
                write!(f, "case {seed:#018x}: {count} tier mirror failure(s)")
            }
        }
    }
}

impl std::error::Error for FuzzFailure {}

/// What one passing case exercised (aggregated by [`ScenarioFuzzer::run`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FuzzStats {
    /// Completed requests across the analytic reference run.
    pub completed: u64,
    /// Requests that failed for lack of online hosts (failure scenarios).
    pub failed: u64,
    /// Scenario events in the case.
    pub events: usize,
}

/// A deterministic, seeded scenario fuzzer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScenarioFuzzer {
    base_seed: u64,
}

impl ScenarioFuzzer {
    /// Creates a fuzzer over a base seed.
    pub fn new(base_seed: u64) -> Self {
        ScenarioFuzzer { base_seed }
    }

    /// The fuzzer's base seed.
    pub fn base_seed(&self) -> u64 {
        self.base_seed
    }

    /// Generates case `index` (pure: the same `(base, index)` always yields
    /// the same case).
    pub fn case(&self, index: usize) -> FuzzCase {
        let seed = fuzz_case_seed(self.base_seed, index);
        let mut rng = StdRng::seed_from_u64(seed);

        // --- the system ---
        let num_nodes: usize = rng.gen_range(4..=10);
        let rates: Vec<f64> = (0..num_nodes).map(|_| rng.gen_range(0.3..1.0)).collect();
        let capacity: f64 = rates.iter().sum();
        let k: usize = rng.gen_range(1..=3);
        let n: usize = rng.gen_range(k..=(k + 3).min(num_nodes));
        let num_files: usize = rng.gen_range(3..=12);
        // Byte-backend object-size axis: odd sizes exercise chunk padding
        // (`size % k != 0`), the large end exercises multi-stripe payloads.
        let size_bytes = *pick(&mut rng, &[1_000u64, 3_177, 4_096, 16_384, 65_536, 131_072]);
        // Aggregate chunk load well inside stability, so degraded phases and
        // load waves stay optimizable.
        let target_utilization = rng.gen_range(0.05..0.22);
        let per_file_chunk_rate = target_utilization * capacity / num_files as f64;
        let files: Vec<FileConfig> = (0..num_files)
            .map(|_| {
                let jitter = rng.gen_range(0.5..1.5);
                FileConfig::new(per_file_chunk_rate * jitter / k as f64, n, k, size_bytes)
            })
            .collect();
        // LRU-tier-capacity axis, in three deliberate regimes: a thrashing
        // tier that can hold at most one object's chunks, the historical
        // contended range, and an oversized tier where everything fits and
        // eviction never fires.
        let cache_chunks = match rng.gen_range(0..3) {
            0 => rng.gen_range(1..=k),
            1 => rng.gen_range(1..=num_files * k),
            _ => num_files * n + rng.gen_range(0..=n),
        };
        let placement = match rng.gen_range(0..5) {
            0 => PlacementChoice::RandomGroups { groups: None },
            1 => PlacementChoice::ConsistentHash {
                vnodes: *pick(&mut rng, &[16usize, 32, 64]),
            },
            2 => PlacementChoice::TwoChoices,
            3 => PlacementChoice::XorProximity,
            _ => PlacementChoice::AntiAffinity {
                zones: rng.gen_range(2..=4.min(num_nodes)),
            },
        };
        let policy = *pick(
            &mut rng,
            &[
                CachePolicyChoice::Functional,
                CachePolicyChoice::Exact,
                CachePolicyChoice::LruReplicated,
                CachePolicyChoice::NoCache,
            ],
        );

        let mut builder = SystemSpec::builder();
        builder
            .node_service_rates(&rates)
            .cache_capacity_chunks(cache_chunks)
            .seed(seed)
            .placement_strategy(placement);
        for file in files {
            builder.file(file);
        }
        let spec = builder
            .build()
            .expect("the generator only draws valid specs");

        // --- the scenario ---
        let horizon: f64 = rng.gen_range(1_500.0..3_000.0);
        let max_down = num_nodes - n;
        let mut down: Vec<usize> = Vec::new();
        let mut cumulative_scale = 1.0_f64;
        let mut scenario = ScenarioSpec::named(format!("fuzz_{index}"));
        let num_events: usize = rng.gen_range(0..=5);
        for _ in 0..num_events {
            let at = rng.gen_range(0.05..0.95) * horizon;
            let action = match rng.gen_range(0..5) {
                0 if down.len() < max_down => {
                    let node = loop {
                        let candidate = rng.gen_range(0..num_nodes);
                        if !down.contains(&candidate) {
                            break candidate;
                        }
                    };
                    down.push(node);
                    ScenarioActionSpec::NodeDown { node }
                }
                1 if !down.is_empty() => {
                    let node = down.swap_remove(rng.gen_range(0..down.len()));
                    ScenarioActionSpec::NodeUp { node }
                }
                2 => {
                    let factor = rng.gen_range(0.6..1.4);
                    if cumulative_scale * factor > 1.6 {
                        continue;
                    }
                    cumulative_scale *= factor;
                    ScenarioActionSpec::ScaleRates { factor }
                }
                3 => ScenarioActionSpec::SetFileRate {
                    file: rng.gen_range(0..num_files),
                    rate: per_file_chunk_rate / k as f64 * rng.gen_range(0.0..2.0),
                },
                4 if policy == CachePolicyChoice::Functional => ScenarioActionSpec::Reoptimize,
                _ => continue,
            };
            scenario = scenario.at(at, action);
        }

        FuzzCase {
            seed,
            spec,
            scenario,
            policy,
            config: SimConfig::new(horizon, seed),
            in_flight_cap: 200 + 20 * num_nodes,
        }
    }

    /// Runs one case against every invariant.
    ///
    /// # Errors
    ///
    /// Returns the first [`FuzzFailure`], which carries the case seed.
    pub fn run_case(case: &FuzzCase) -> Result<FuzzStats, FuzzFailure> {
        let rate_events = case
            .scenario
            .events
            .iter()
            .filter(|e| {
                matches!(
                    e.action,
                    ScenarioActionSpec::SetRates { .. }
                        | ScenarioActionSpec::SetFileRate { .. }
                        | ScenarioActionSpec::ScaleRates { .. }
                )
            })
            .count();
        let bounds = EngineBounds::for_run(
            case.spec.files.len(),
            case.spec.node_services.len(),
            case.scenario.events.len(),
            rate_events,
            case.in_flight_cap,
        );
        Self::run_case_with_bounds(case, bounds)
    }

    /// [`ScenarioFuzzer::run_case`] with explicit [`EngineBounds`] — the
    /// hook the harness tests use to prove a violated invariant fails a run
    /// instead of being swallowed.
    ///
    /// # Errors
    ///
    /// See [`ScenarioFuzzer::run_case`].
    pub fn run_case_with_bounds(
        case: &FuzzCase,
        bounds: EngineBounds,
    ) -> Result<FuzzStats, FuzzFailure> {
        let build = |e: SproutError| FuzzFailure::Build {
            seed: case.seed,
            error: e,
        };
        let system = SproutSystem::new(case.spec.clone()).map_err(build)?;
        let plan = match case.policy.requires_plan() {
            true => Some(system.optimize().map_err(build)?),
            false => None,
        };
        let compiled = case
            .scenario
            .compile(&system, &crate::optimizer::OptimizerConfig::default())
            .map_err(build)?;

        // Analytic runs at three shard packings must be bit-identical.
        let shard_counts = [1usize, 2, 4];
        let mut reports: Vec<SimReport> = Vec::with_capacity(shard_counts.len());
        for &shards in &shard_counts {
            let sim = system
                .simulation(case.policy, plan.as_ref(), case.config.with_shards(shards))
                .with_scenario(compiled.clone());
            let report = sim.run();
            check_report(&report, bounds).map_err(|violation| FuzzFailure::Invariant {
                seed: case.seed,
                shards: Some(shards),
                violation,
            })?;
            reports.push(report);
        }
        check_shard_identity(&reports, &shard_counts).map_err(|violation| {
            FuzzFailure::Invariant {
                seed: case.seed,
                shards: Some(0),
                violation,
            }
        })?;

        // The byte-accurate leg: identical decisions, every request verified.
        let mut backend = system
            .byte_backend(case.policy, plan.as_ref(), case.seed)
            .map_err(build)?;
        let byte = system
            .simulation(case.policy, plan.as_ref(), case.config)
            .with_scenario(compiled)
            .run_on(&mut backend);
        check_report(&byte, bounds).map_err(|violation| FuzzFailure::Invariant {
            seed: case.seed,
            shards: None,
            violation,
        })?;
        let analytic = &reports[0];
        let diverged = if byte.slots != analytic.slots {
            Some("slots")
        } else if byte.node_chunks_served != analytic.node_chunks_served {
            Some("node_chunks_served")
        } else if byte.completed_requests != analytic.completed_requests {
            Some("completed_requests")
        } else if byte.full_cache_hits != analytic.full_cache_hits {
            Some("full_cache_hits")
        } else if byte.failed_requests != analytic.failed_requests {
            Some("failed_requests")
        } else {
            None
        };
        if let Some(field) = diverged {
            return Err(FuzzFailure::ByteDivergence {
                seed: case.seed,
                field,
            });
        }
        if backend.verified_reconstructions() != byte.completed_requests {
            return Err(FuzzFailure::Verification {
                seed: case.seed,
                verified: backend.verified_reconstructions(),
                completed: byte.completed_requests,
            });
        }
        if backend.tier_mirror_failures() != 0 {
            return Err(FuzzFailure::MirrorFailures {
                seed: case.seed,
                count: backend.tier_mirror_failures(),
            });
        }

        Ok(FuzzStats {
            completed: analytic.completed_requests,
            failed: analytic.failed_requests,
            events: case.scenario.events.len(),
        })
    }

    /// Generates and runs `iterations` cases, aggregating their stats.
    ///
    /// # Errors
    ///
    /// Returns the first failing case's [`FuzzFailure`].
    pub fn run(&self, iterations: usize) -> Result<FuzzStats, FuzzFailure> {
        let mut total = FuzzStats::default();
        for index in 0..iterations {
            let stats = Self::run_case(&self.case(index))?;
            total.completed += stats.completed;
            total.failed += stats.failed;
            total.events += stats.events;
        }
        Ok(total)
    }
}

fn pick<'a, T, R: Rng>(rng: &mut R, choices: &'a [T]) -> &'a T {
    &choices[rng.gen_range(0..choices.len())]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_generation_is_deterministic_and_bounded() {
        let fuzzer = ScenarioFuzzer::new(42);
        let mut sizes = std::collections::BTreeSet::new();
        let mut tier_regimes = [false; 3];
        for index in 0..32 {
            let a = fuzzer.case(index);
            let b = fuzzer.case(index);
            assert_eq!(a, b, "case {index} must be reproducible");
            let nodes = a.spec.node_services.len();
            assert!((4..=10).contains(&nodes));
            assert!((3..=12).contains(&a.spec.files.len()));
            let n = a.spec.files[0].n;
            let k = a.spec.files[0].k;
            assert!(a.spec.files.iter().all(|f| f.n == n), "uniform (n, k)");
            assert!(n <= nodes);
            assert!(a.scenario.events.len() <= 5);
            sizes.insert(a.spec.files[0].size_bytes);
            let cap = a.spec.cache_capacity_chunks;
            let num_files = a.spec.files.len();
            if cap <= k {
                tier_regimes[0] = true;
            } else if cap <= num_files * k {
                tier_regimes[1] = true;
            } else {
                tier_regimes[2] = true;
            }
        }
        // The object-size and tier-capacity axes both get real coverage in a
        // small batch: several distinct sizes, and tiers from thrashing
        // through contended to oversized.
        assert!(
            sizes.len() >= 3,
            "expected >= 3 object sizes, got {sizes:?}"
        );
        assert!(
            tier_regimes.iter().all(|&hit| hit),
            "all three tier-capacity regimes must appear: {tier_regimes:?}"
        );
        // Different bases give different cases.
        assert_ne!(
            ScenarioFuzzer::new(1).case(0),
            ScenarioFuzzer::new(2).case(0)
        );
    }

    #[test]
    fn a_batch_of_cases_passes_every_invariant() {
        let fuzzer = ScenarioFuzzer::new(DEFAULT_BASE_SEED);
        let stats = fuzzer.run(6).expect("every invariant holds");
        assert!(stats.completed > 0, "the batch must exercise the engine");
    }

    #[test]
    fn a_deliberately_broken_invariant_fails_the_case() {
        let fuzzer = ScenarioFuzzer::new(DEFAULT_BASE_SEED);
        let case = fuzzer.case(0);
        let absurd = EngineBounds {
            event_queue: 0,
            in_flight: 0,
        };
        let failure =
            ScenarioFuzzer::run_case_with_bounds(&case, absurd).expect_err("zero bounds must fail");
        match failure {
            FuzzFailure::Invariant {
                seed, violation, ..
            } => {
                assert_eq!(seed, case.seed, "the failure names the replay seed");
                assert!(matches!(
                    violation,
                    InvariantViolation::EventQueueBound { .. }
                        | InvariantViolation::InFlightBound { .. }
                ));
            }
            other => panic!("expected an invariant failure, got {other}"),
        }
    }
}
