//! System specifications: nodes, files, codes, placement and cache size.

use serde::{Deserialize, Serialize};
use sprout_cluster::{ClusterView, PlacementChoice};
use sprout_queueing::dist::ServiceDistribution;

use crate::error::SproutError;

/// Per-file configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FileConfig {
    /// Request arrival rate in the current time bin (requests/second).
    pub arrival_rate: f64,
    /// Data chunks `k` needed to reconstruct the file.
    pub k: usize,
    /// Coded chunks `n` stored on storage nodes.
    pub n: usize,
    /// File size in bytes (used by the cluster substrate and byte-based
    /// cache accounting; irrelevant to the abstract latency model).
    pub size_bytes: u64,
    /// Explicit placement onto nodes; `None` lets the CRUSH-like placement
    /// map decide.
    pub placement: Option<Vec<usize>>,
}

impl FileConfig {
    /// Creates a file configuration with automatic placement.
    pub fn new(arrival_rate: f64, n: usize, k: usize, size_bytes: u64) -> Self {
        FileConfig {
            arrival_rate,
            k,
            n,
            size_bytes,
            placement: None,
        }
    }

    /// Pins the file to an explicit set of nodes.
    pub fn with_placement(mut self, placement: Vec<usize>) -> Self {
        self.placement = Some(placement);
        self
    }
}

/// A complete description of the storage system for one time bin.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemSpec {
    /// Per-node chunk service-time distributions.
    pub node_services: Vec<ServiceDistribution>,
    /// The file population.
    pub files: Vec<FileConfig>,
    /// Cache capacity in chunks.
    pub cache_capacity_chunks: usize,
    /// Seed used for placement and simulation reproducibility.
    pub seed: u64,
    /// Strategy assigning chunks of files without an explicit placement to
    /// nodes (defaults to the paper's random placement groups).
    pub placement: PlacementChoice,
}

impl SystemSpec {
    /// Starts building a specification.
    pub fn builder() -> SystemSpecBuilder {
        SystemSpecBuilder::default()
    }

    /// Resolves every file's placement: files without an explicit placement
    /// are assigned one by the configured [`PlacementChoice`] strategy with
    /// every node online. File `i` places as object id `i`; auto-placed files
    /// go through [`Placement::place_batch`](sprout_cluster::Placement) in
    /// file order so load-aware strategies spread the whole population.
    ///
    /// # Errors
    ///
    /// Returns [`SproutError::InvalidSpec`] if an explicit placement is
    /// malformed (wrong length, duplicate or out-of-range nodes) or if a file
    /// needs more nodes than the cluster has.
    pub fn resolved_placements(&self) -> Result<Vec<Vec<usize>>, SproutError> {
        self.resolved_placements_under(&ClusterView::all_online(self.node_services.len().max(1)))
    }

    /// [`resolved_placements`](Self::resolved_placements) under an explicit
    /// membership view: auto-placed files only land on online nodes. The view
    /// must describe this spec's cluster.
    ///
    /// # Errors
    ///
    /// As [`resolved_placements`](Self::resolved_placements); additionally if
    /// a file needs more nodes than the view has online.
    pub fn resolved_placements_under(
        &self,
        view: &ClusterView,
    ) -> Result<Vec<Vec<usize>>, SproutError> {
        let strategy = self
            .placement
            .build(self.node_services.len().max(1), self.seed);
        let mut out: Vec<Option<Vec<usize>>> = Vec::with_capacity(self.files.len());
        let mut auto: Vec<(u64, usize)> = Vec::new();
        for (i, file) in self.files.iter().enumerate() {
            if file.n > self.node_services.len() {
                return Err(SproutError::InvalidSpec(format!(
                    "file {i} needs {} nodes but the cluster has {}",
                    file.n,
                    self.node_services.len()
                )));
            }
            if file.n > view.online_count() {
                return Err(SproutError::InvalidSpec(format!(
                    "file {i} needs {} nodes but only {} are online",
                    file.n,
                    view.online_count()
                )));
            }
            match &file.placement {
                Some(p) => {
                    if p.len() != file.n {
                        return Err(SproutError::InvalidSpec(format!(
                            "file {i}: placement lists {} nodes but n = {}",
                            p.len(),
                            file.n
                        )));
                    }
                    let mut seen = std::collections::HashSet::new();
                    for &node in p {
                        if node >= self.node_services.len() || !seen.insert(node) {
                            return Err(SproutError::InvalidSpec(format!(
                                "file {i}: invalid or duplicate node {node} in placement"
                            )));
                        }
                    }
                    out.push(Some(p.clone()));
                }
                None => {
                    auto.push((i as u64, file.n));
                    out.push(None);
                }
            }
        }
        let placed = strategy.place_batch(&auto, view);
        for ((i, _), placement) in auto.into_iter().zip(placed) {
            out[i as usize] = Some(placement);
        }
        Ok(out
            .into_iter()
            .map(|p| p.expect("every slot filled"))
            .collect())
    }
}

/// Builder for [`SystemSpec`].
#[derive(Debug, Clone, Default)]
pub struct SystemSpecBuilder {
    node_services: Vec<ServiceDistribution>,
    files: Vec<FileConfig>,
    cache_capacity_chunks: usize,
    seed: u64,
    placement: PlacementChoice,
}

impl SystemSpecBuilder {
    /// Sets per-node exponential service rates (chunks per second), the way
    /// the paper's simulation section specifies its 12 servers.
    pub fn node_service_rates(&mut self, rates: &[f64]) -> &mut Self {
        self.node_services = rates
            .iter()
            .map(|&mu| ServiceDistribution::exponential(mu))
            .collect();
        self
    }

    /// Sets arbitrary per-node service distributions.
    pub fn node_services(&mut self, services: Vec<ServiceDistribution>) -> &mut Self {
        self.node_services = services;
        self
    }

    /// Adds one file.
    pub fn file(&mut self, file: FileConfig) -> &mut Self {
        self.files.push(file);
        self
    }

    /// Adds `count` identical files (automatic placement) with the given code
    /// and arrival rate.
    pub fn uniform_files(
        &mut self,
        count: usize,
        k: usize,
        n: usize,
        arrival_rate: f64,
    ) -> &mut Self {
        for _ in 0..count {
            self.files.push(FileConfig::new(arrival_rate, n, k, 0));
        }
        self
    }

    /// Adds files with the paper's grouped simulation arrival rates
    /// (`{0.000156, 0.000156, 0.000125, 0.000167, 0.000104}` cycling).
    pub fn paper_files(&mut self, count: usize, n: usize, k: usize, size_bytes: u64) -> &mut Self {
        for rate in sprout_workload::spec::paper_simulation_rates(count) {
            self.files.push(FileConfig::new(rate, n, k, size_bytes));
        }
        self
    }

    /// Sets the cache capacity in chunks.
    pub fn cache_capacity_chunks(&mut self, chunks: usize) -> &mut Self {
        self.cache_capacity_chunks = chunks;
        self
    }

    /// Sets the seed used for placement and simulations.
    pub fn seed(&mut self, seed: u64) -> &mut Self {
        self.seed = seed;
        self
    }

    /// Sets the chunk-placement strategy for files without an explicit
    /// placement (defaults to the paper's random placement groups).
    pub fn placement_strategy(&mut self, placement: PlacementChoice) -> &mut Self {
        self.placement = placement;
        self
    }

    /// Validates and builds the specification.
    ///
    /// # Errors
    ///
    /// Returns [`SproutError::InvalidSpec`] if there are no nodes, no files,
    /// or a file has `k = 0` or `n < k`.
    pub fn build(&self) -> Result<SystemSpec, SproutError> {
        if self.node_services.is_empty() {
            return Err(SproutError::InvalidSpec("no storage nodes".into()));
        }
        if self.files.is_empty() {
            return Err(SproutError::InvalidSpec("no files".into()));
        }
        for (i, f) in self.files.iter().enumerate() {
            if f.k == 0 || f.n < f.k {
                return Err(SproutError::InvalidSpec(format!(
                    "file {i} has invalid code ({}, {})",
                    f.n, f.k
                )));
            }
        }
        let spec = SystemSpec {
            node_services: self.node_services.clone(),
            files: self.files.clone(),
            cache_capacity_chunks: self.cache_capacity_chunks,
            seed: self.seed,
            placement: self.placement.clone(),
        };
        // Validate explicit placements eagerly so errors surface at build time.
        spec.resolved_placements()?;
        Ok(spec)
    }
}

/// The paper's §V-A simulation setup: 12 heterogeneous servers, `r` files of
/// 100 MB each with a (7, 4) code, grouped arrival rates and a cache of
/// `cache_chunks` chunks (the paper's default is 500 chunks of 25 MB).
pub fn paper_simulation_spec(num_files: usize, cache_chunks: usize) -> SystemSpec {
    let rates = sprout_workload::spec::paper_server_service_rates();
    SystemSpec::builder()
        .node_service_rates(&rates)
        .paper_files(num_files, 7, 4, 100 * sprout_workload::spec::MB)
        .cache_capacity_chunks(cache_chunks)
        .seed(2016)
        .build()
        .expect("the paper's simulation setup is a valid specification")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_happy_path() {
        let spec = SystemSpec::builder()
            .node_service_rates(&[0.1, 0.2, 0.3, 0.4])
            .uniform_files(3, 2, 3, 0.01)
            .cache_capacity_chunks(4)
            .seed(1)
            .build()
            .unwrap();
        assert_eq!(spec.node_services.len(), 4);
        assert_eq!(spec.files.len(), 3);
        let placements = spec.resolved_placements().unwrap();
        assert!(placements.iter().all(|p| p.len() == 3));
    }

    #[test]
    fn explicit_placement_is_respected_and_validated() {
        let mut builder = SystemSpec::builder();
        builder
            .node_service_rates(&[0.1, 0.2, 0.3, 0.4])
            .file(FileConfig::new(0.01, 3, 2, 0).with_placement(vec![3, 1, 0]))
            .cache_capacity_chunks(0);
        let spec = builder.build().unwrap();
        assert_eq!(spec.resolved_placements().unwrap()[0], vec![3, 1, 0]);

        let mut bad = SystemSpec::builder();
        bad.node_service_rates(&[0.1, 0.2])
            .file(FileConfig::new(0.01, 2, 2, 0).with_placement(vec![0, 0]));
        assert!(matches!(bad.build(), Err(SproutError::InvalidSpec(_))));
    }

    #[test]
    fn invalid_specs_are_rejected() {
        assert!(SystemSpec::builder().build().is_err());
        assert!(SystemSpec::builder()
            .node_service_rates(&[0.1])
            .build()
            .is_err());
        assert!(SystemSpec::builder()
            .node_service_rates(&[0.1])
            .uniform_files(1, 0, 2, 0.1)
            .build()
            .is_err());
        assert!(SystemSpec::builder()
            .node_service_rates(&[0.1])
            .uniform_files(1, 3, 2, 0.1)
            .build()
            .is_err());
        // n larger than cluster
        assert!(SystemSpec::builder()
            .node_service_rates(&[0.1, 0.1])
            .uniform_files(1, 2, 3, 0.1)
            .build()
            .is_err());
    }

    #[test]
    fn placement_strategy_changes_auto_placements_only() {
        let mut base = SystemSpec::builder();
        base.node_service_rates(&[0.1; 12])
            .uniform_files(50, 4, 7, 0.01)
            .file(FileConfig::new(0.01, 7, 4, 0).with_placement(vec![0, 1, 2, 3, 4, 5, 6]))
            .cache_capacity_chunks(4)
            .seed(9);
        let random = base.build().unwrap();
        let ring = base
            .placement_strategy(PlacementChoice::ConsistentHash { vnodes: 64 })
            .build()
            .unwrap();
        let a = random.resolved_placements().unwrap();
        let b = ring.resolved_placements().unwrap();
        // The pinned file keeps its placement under every strategy…
        assert_eq!(a[50], vec![0, 1, 2, 3, 4, 5, 6]);
        assert_eq!(b[50], vec![0, 1, 2, 3, 4, 5, 6]);
        // …while at least one auto-placed file moves.
        assert_ne!(a, b);
        assert!(b.iter().all(|p| p.len() == 7));
    }

    #[test]
    fn placements_under_a_degraded_view_avoid_the_down_node() {
        let spec = SystemSpec::builder()
            .node_service_rates(&[0.1; 12])
            .uniform_files(20, 4, 7, 0.01)
            .cache_capacity_chunks(4)
            .seed(9)
            .build()
            .unwrap();
        let view = ClusterView::all_online(12).with_node_online(3, false);
        let placements = spec.resolved_placements_under(&view).unwrap();
        assert!(placements.iter().all(|p| !p.contains(&3)));
        assert!(placements.iter().all(|p| p.len() == 7));
    }

    #[test]
    fn paper_spec_matches_the_described_setup() {
        let spec = paper_simulation_spec(1000, 500);
        assert_eq!(spec.node_services.len(), 12);
        assert_eq!(spec.files.len(), 1000);
        assert!(spec.files.iter().all(|f| f.n == 7 && f.k == 4));
        let total: f64 = spec.files.iter().map(|f| f.arrival_rate).sum();
        assert!((total - 0.1416).abs() < 1e-3);
        assert_eq!(spec.cache_capacity_chunks, 500);
    }
}
