//! The byte-accurate simulation backend: the event loop of `sprout_sim`
//! driving the real [`ErasureCodedStore`].
//!
//! The analytic backend treats chunks as abstract tokens; [`StoreBackend`]
//! stores every object's actual coded bytes on the cluster substrate,
//! installs the plan's functional (or exact) cache chunks, and — on every
//! completed request — fetches exactly the chunks the engine scheduled,
//! decodes them and verifies the reconstruction against the original
//! payload. Degraded reads after scenario node failures therefore exercise
//! the real erasure decoder, not a model of it.
//!
//! For the Ceph-style LRU cache tier the engine's
//! [`LruTier`](sprout_cluster::LruTier) is the single source of truth: the
//! engine mirrors every promotion and eviction into this backend
//! ([`ChunkBackend::tier_promote`] / [`ChunkBackend::tier_evict`]), which
//! materializes or drops the object's real data chunks in the store's cache.
//! Engine-declared LRU hits are then served (and decode-verified) from those
//! cached bytes, with the read latency sampled from the cluster's SSD cache
//! device model.
//!
//! Planning randomness lives in the engine and service randomness in the
//! backend, so an analytic run and a byte-accurate run with the same seed
//! make identical chunk-source decisions — see the differential root test.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sprout_cluster::{CachePolicy, ClusterConfig, DeviceModel, ErasureCodedStore, Kernel};
use sprout_erasure::Chunk;
use sprout_queueing::dist::ServiceDistribution;
use sprout_sim::{CacheScheme, ChunkBackend, FinishedRequest};

/// Default payload size for files whose spec declares `size_bytes = 0`
/// (abstract-model specs that never touched bytes before).
pub const DEFAULT_OBJECT_BYTES: u64 = 4096;

/// How the backend prices a storage chunk read.
#[derive(Debug, Clone)]
enum ServiceModel {
    /// Per-node service-time distributions shared with the analytic backend
    /// (keeps the differential comparison tight).
    Shared(Vec<ServiceDistribution>),
    /// Per-node device models sampled at each file's *actual* chunk size, so
    /// object-size heterogeneity shows up in latency (Fig. 10's regime).
    SizeDependent(Vec<DeviceModel>),
}

/// A [`ChunkBackend`] over the in-memory erasure-coded object store.
#[derive(Debug)]
pub struct StoreBackend {
    store: ErasureCodedStore,
    service: ServiceModel,
    rng: StdRng,
    originals: Vec<Vec<u8>>,
    /// Per-file data-chunk length in bytes (drives the SSD cache-read model
    /// and the size-dependent service mode).
    chunk_lens: Vec<u64>,
    verified: u64,
    failed: u64,
    plan_apply_failures: u64,
    tier_promotions: u64,
    tier_evictions: u64,
    tier_mirror_failures: u64,
}

impl StoreBackend {
    /// Builds a backend from an already-populated store. `dists` are the
    /// per-node service-time distributions (usually the same ones the
    /// analytic backend uses, so latency statistics stay comparable);
    /// `originals[file]` is the payload written for file `file` (object id
    /// `file as u64`), kept for reconstruction verification.
    pub fn new(
        store: ErasureCodedStore,
        dists: Vec<ServiceDistribution>,
        originals: Vec<Vec<u8>>,
        seed: u64,
    ) -> Self {
        assert_eq!(
            dists.len(),
            store.config().num_nodes,
            "one service distribution per storage node"
        );
        let k = store.config().k.max(1);
        let chunk_lens = originals
            .iter()
            .map(|p| p.len().div_ceil(k) as u64)
            .collect();
        StoreBackend {
            store,
            service: ServiceModel::Shared(dists),
            rng: StdRng::seed_from_u64(seed ^ 0x570B_ACE0),
            originals,
            chunk_lens,
            verified: 0,
            failed: 0,
            plan_apply_failures: 0,
            tier_promotions: 0,
            tier_evictions: 0,
            tier_mirror_failures: 0,
        }
    }

    /// Opt-in size-dependent service: chunk reads are priced by sampling each
    /// node's [`DeviceModel`] at the file's *actual* chunk byte length
    /// instead of the shared per-node distributions, so object-size
    /// heterogeneity shows up in simulated latency.
    ///
    /// # Panics
    ///
    /// Panics if `devices` does not list one model per storage node.
    pub fn with_size_dependent_service(mut self, devices: Vec<DeviceModel>) -> Self {
        assert_eq!(
            devices.len(),
            self.store.config().num_nodes,
            "one device model per storage node"
        );
        self.service = ServiceModel::SizeDependent(devices);
        self
    }

    /// The underlying store (cache statistics, node contents, ...).
    pub fn store(&self) -> &ErasureCodedStore {
        &self.store
    }

    /// The GF(2^8) slice kernel the store's coder resolved to — with the
    /// default configuration, [`Kernel::auto`]'s pick for this CPU (SIMD on
    /// machines with AVX2/SSSE3, the word kernel otherwise).
    pub fn coding_kernel(&self) -> Kernel {
        self.store.coding_kernel()
    }

    /// Completed requests whose bytes decoded to the original payload.
    pub fn verified_reconstructions(&self) -> u64 {
        self.verified
    }

    /// Completed requests whose reconstruction failed (missing chunks or a
    /// mismatching decode).
    pub fn failed_reconstructions(&self) -> u64 {
        self.failed
    }

    /// Cache-plan swaps that could not be applied to the store (e.g. cache
    /// capacity exceeded).
    pub fn plan_apply_failures(&self) -> u64 {
        self.plan_apply_failures
    }

    /// Objects promoted into the store's cache tier, mirroring the engine's
    /// LRU admissions.
    pub fn tier_promotions(&self) -> u64 {
        self.tier_promotions
    }

    /// Objects dropped from the store's cache tier, mirroring the engine's
    /// LRU evictions.
    pub fn tier_evictions(&self) -> u64 {
        self.tier_evictions
    }

    /// Mirror operations that could not be applied (an eviction for an
    /// object the store never promoted, or a promotion that failed to
    /// decode) — always zero when engine and store are in lockstep.
    pub fn tier_mirror_failures(&self) -> u64 {
        self.tier_mirror_failures
    }

    fn gather(&self, request: &FinishedRequest<'_>) -> Option<Vec<Chunk>> {
        let object = request.file as u64;
        let mut chunks: Vec<Chunk> =
            Vec::with_capacity(request.cache_chunks + request.storage_nodes.len());
        if request.cache_chunks > 0 {
            let cache = self.store.cache();
            let cached = cache.peek(object)?;
            if cached.len() < request.cache_chunks {
                return None;
            }
            chunks.extend(cached.iter().take(request.cache_chunks).cloned());
        }
        for &node in request.storage_nodes {
            chunks.push(self.store.chunk_on_node(object, node)?);
        }
        Some(chunks)
    }
}

impl ChunkBackend for StoreBackend {
    fn num_nodes(&self) -> usize {
        self.store.config().num_nodes
    }

    fn is_online(&self, node: usize) -> bool {
        self.store.node(node).is_online()
    }

    fn set_node_online(&mut self, node: usize, online: bool) {
        self.store.set_node_online(node, online);
    }

    fn sample_service(&mut self, node: usize, file: usize) -> f64 {
        match &self.service {
            ServiceModel::Shared(dists) => dists[node].sample(&mut self.rng),
            ServiceModel::SizeDependent(devices) => {
                let bytes = self.chunk_lens.get(file).copied().unwrap_or(0);
                devices[node]
                    .service_distribution(bytes)
                    .sample(&mut self.rng)
            }
        }
    }

    fn sample_cache_read(&mut self, file: usize, chunks: usize) -> Option<f64> {
        // Cache chunks are read in parallel from the SSD tier device; the
        // request sees the fork-join maximum (mirrors the cluster's own
        // cache-read model).
        let bytes = self.chunk_lens.get(file).copied().unwrap_or(0);
        let dist = self.store.config().cache_device.service_distribution(bytes);
        Some(
            (0..chunks)
                .map(|_| dist.sample(&mut self.rng))
                .fold(0.0, f64::max),
        )
    }

    fn tier_promote(&mut self, file: usize) {
        match self.store.promote_object(file as u64) {
            Ok(()) => self.tier_promotions += 1,
            Err(_) => self.tier_mirror_failures += 1,
        }
    }

    fn tier_evict(&mut self, file: usize) {
        if self.store.evict_cached(file as u64) {
            self.tier_evictions += 1;
        } else {
            self.tier_mirror_failures += 1;
        }
    }

    fn finish_request(&mut self, request: FinishedRequest<'_>) -> bool {
        let ok = match self.gather(&request) {
            Some(chunks) => self
                .store
                .decode_with_chunks(request.file as u64, &chunks)
                .map(|data| data == self.originals[request.file])
                .unwrap_or(false),
            None => false,
        };
        if ok {
            self.verified += 1;
        } else {
            self.failed += 1;
        }
        ok
    }

    fn apply_scheme(&mut self, scheme: &CacheScheme) {
        let counts = match scheme {
            CacheScheme::Functional { cached_chunks, .. }
            | CacheScheme::Exact { cached_chunks, .. } => cached_chunks.as_slice(),
            // A NoCache swap keeps no planner-managed content; stale store
            // cache entries are harmless because the engine stops planning
            // cache chunks.
            CacheScheme::NoCache => return,
            // An LRU swap restarts the engine's tier cold; drop everything so
            // the store's mirrored residency starts cold too and subsequent
            // tier_promote/tier_evict calls keep both sides in lockstep.
            CacheScheme::LruReplicated { .. } => {
                self.store.reset_cache();
                return;
            }
        };
        // A planned swap needs a planner-managed store policy: the cluster
        // cache policy fixes *what* a cached chunk is (newly coded rows vs
        // copies vs whole objects), and that is set at store construction.
        // On a mismatched store, drop any stale cache content (so no hit is
        // served from chunks of the wrong kind) and record one apply
        // failure; the engine's planned hits will then surface as counted
        // reconstruction failures instead of silent decode mismatches.
        if !self.store.config().cache_policy.is_planned() {
            self.store.reset_cache();
            self.plan_apply_failures += 1;
            return;
        }
        for (file, &d) in counts.iter().enumerate() {
            if file >= self.originals.len() {
                break;
            }
            if self.store.set_cached_chunks(file as u64, d).is_err() {
                self.plan_apply_failures += 1;
            }
        }
    }
}

/// Deterministic pseudo-random payload for file `file` (so reconstruction
/// checks catch any row mixup).
pub fn synthetic_payload(file: usize, len: usize, seed: u64) -> Vec<u8> {
    let mut state = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(file as u64 + 1);
    (0..len)
        .map(|_| {
            // xorshift64*: cheap, full-period, good enough for test payloads
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 56) as u8
        })
        .collect()
}

/// Builds a populated store for a uniform-code file population.
///
/// Used by [`crate::SproutSystem::byte_backend`]; exposed for tests that
/// want direct control.
///
/// # Errors
///
/// Propagates cluster construction and write errors.
pub fn populate_store(
    config: ClusterConfig,
    placements: &[Vec<usize>],
    payloads: &[Vec<u8>],
    plan_counts: Option<&[usize]>,
) -> Result<ErasureCodedStore, sprout_cluster::ClusterError> {
    let mut store = ErasureCodedStore::new(config)?;
    for (file, (placement, payload)) in placements.iter().zip(payloads).enumerate() {
        store.put_with_placement(file as u64, payload, placement.clone())?;
    }
    if let Some(counts) = plan_counts {
        if store.config().cache_policy.is_planned() {
            for (file, &d) in counts.iter().enumerate().take(payloads.len()) {
                store.set_cached_chunks(file as u64, d)?;
            }
        }
    }
    Ok(store)
}

/// Maps a facade cache-policy choice onto the cluster substrate's policy.
pub fn cluster_policy_for(policy: crate::system::CachePolicyChoice) -> CachePolicy {
    match policy {
        crate::system::CachePolicyChoice::NoCache => CachePolicy::None,
        crate::system::CachePolicyChoice::Functional => CachePolicy::Functional,
        crate::system::CachePolicyChoice::Exact => CachePolicy::Exact,
        crate::system::CachePolicyChoice::LruReplicated => CachePolicy::ceph_baseline(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{FileConfig, SystemSpec};
    use crate::system::{CachePolicyChoice, SproutSystem};
    use sprout_sim::ChunkBackend;

    fn byte_backend_for(object_bytes: u64) -> StoreBackend {
        let mut builder = SystemSpec::builder();
        builder
            .node_service_rates(&[0.5, 0.5, 0.5, 0.5])
            .cache_capacity_chunks(4)
            .seed(7);
        for _ in 0..3 {
            builder.file(FileConfig::new(0.05, 4, 2, object_bytes));
        }
        let system = SproutSystem::new(builder.build().unwrap()).unwrap();
        system
            .byte_backend(CachePolicyChoice::NoCache, None, 5)
            .unwrap()
    }

    #[test]
    fn size_dependent_service_prices_reads_by_actual_chunk_bytes() {
        let devices = vec![DeviceModel::hdd(); 4];
        let mut small = byte_backend_for(64 * 1024).with_size_dependent_service(devices.clone());
        let mut large = byte_backend_for(16 * 1024 * 1024).with_size_dependent_service(devices);
        let mean =
            |b: &mut StoreBackend| (0..200).map(|_| b.sample_service(0, 0)).sum::<f64>() / 200.0;
        let s = mean(&mut small);
        let l = mean(&mut large);
        assert!(s > 0.0);
        assert!(
            l > s * 10.0,
            "8 MiB chunks must read much slower than 32 KiB chunks ({l} vs {s})"
        );
    }

    #[test]
    fn planned_swap_onto_a_non_planned_store_is_counted_not_silent() {
        use sprout_sim::policy::SchedulingRule;
        // Constructed with the NoCache cluster policy: a planned swap cannot
        // install chunks of the right kind, so it must clear the cache and
        // count an apply failure instead of erroring file by file.
        let mut backend = byte_backend_for(4096);
        backend.apply_scheme(&CacheScheme::Functional {
            cached_chunks: vec![1; 3],
            scheduling: vec![vec![]; 3],
            rule: SchedulingRule::Probabilistic,
        });
        assert_eq!(backend.plan_apply_failures(), 1);
        assert_eq!(backend.store().cache().used_bytes(), 0);
    }

    #[test]
    fn cache_reads_sample_the_ssd_model() {
        let mut backend = byte_backend_for(1_000_000);
        let latency = backend.sample_cache_read(0, 2).unwrap();
        assert!(latency > 0.0, "SSD cache reads take nonzero time");
        // Roughly the Table V scale for a 500 kB chunk: well under the ~6.7 ms
        // HDD read of a 1 MB chunk.
        assert!(latency < 0.005, "cache reads stay SSD-fast, got {latency}");
    }

    #[test]
    fn byte_backend_resolves_the_auto_kernel() {
        // The facade builds its store with the default coding config, so the
        // backend's kernel must be whatever `Kernel::auto()` picks here, and
        // striped large-object coding must be enabled.
        let backend = byte_backend_for(4096);
        assert_eq!(backend.coding_kernel(), Kernel::auto());
        assert!(backend.store().config().striping.is_some());
    }

    #[test]
    fn synthetic_payloads_are_deterministic_and_distinct() {
        let a = synthetic_payload(0, 256, 7);
        let b = synthetic_payload(0, 256, 7);
        let c = synthetic_payload(1, 256, 7);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 256);
    }

    #[test]
    fn policy_mapping_covers_every_policy() {
        use crate::system::CachePolicyChoice as C;
        assert_eq!(cluster_policy_for(C::NoCache), CachePolicy::None);
        assert_eq!(cluster_policy_for(C::Functional), CachePolicy::Functional);
        assert_eq!(cluster_policy_for(C::Exact), CachePolicy::Exact);
        assert_eq!(
            cluster_policy_for(C::LruReplicated),
            CachePolicy::ceph_baseline()
        );
    }
}
