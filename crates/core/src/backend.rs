//! The byte-accurate simulation backend: the event loop of `sprout_sim`
//! driving the real [`ErasureCodedStore`].
//!
//! The analytic backend treats chunks as abstract tokens; [`StoreBackend`]
//! stores every object's actual coded bytes on the cluster substrate,
//! installs the plan's functional (or exact) cache chunks, and — on every
//! completed request — fetches exactly the chunks the engine scheduled,
//! decodes them and verifies the reconstruction against the original
//! payload. Degraded reads after scenario node failures therefore exercise
//! the real erasure decoder, not a model of it.
//!
//! Planning randomness lives in the engine and service randomness in the
//! backend, so an analytic run and a byte-accurate run with the same seed
//! make identical chunk-source decisions — see the differential root test.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sprout_cluster::{CachePolicy, ClusterConfig, ErasureCodedStore};
use sprout_erasure::Chunk;
use sprout_queueing::dist::ServiceDistribution;
use sprout_sim::{CacheScheme, ChunkBackend, FinishedRequest};

/// Default payload size for files whose spec declares `size_bytes = 0`
/// (abstract-model specs that never touched bytes before).
pub const DEFAULT_OBJECT_BYTES: u64 = 4096;

/// A [`ChunkBackend`] over the in-memory erasure-coded object store.
#[derive(Debug)]
pub struct StoreBackend {
    store: ErasureCodedStore,
    dists: Vec<ServiceDistribution>,
    rng: StdRng,
    originals: Vec<Vec<u8>>,
    verified: u64,
    failed: u64,
    plan_apply_failures: u64,
}

impl StoreBackend {
    /// Builds a backend from an already-populated store. `dists` are the
    /// per-node service-time distributions (usually the same ones the
    /// analytic backend uses, so latency statistics stay comparable);
    /// `originals[file]` is the payload written for file `file` (object id
    /// `file as u64`), kept for reconstruction verification.
    pub fn new(
        store: ErasureCodedStore,
        dists: Vec<ServiceDistribution>,
        originals: Vec<Vec<u8>>,
        seed: u64,
    ) -> Self {
        assert_eq!(
            dists.len(),
            store.config().num_nodes,
            "one service distribution per storage node"
        );
        StoreBackend {
            store,
            dists,
            rng: StdRng::seed_from_u64(seed ^ 0x570B_ACE0),
            originals,
            verified: 0,
            failed: 0,
            plan_apply_failures: 0,
        }
    }

    /// The underlying store (cache statistics, node contents, ...).
    pub fn store(&self) -> &ErasureCodedStore {
        &self.store
    }

    /// Completed requests whose bytes decoded to the original payload.
    pub fn verified_reconstructions(&self) -> u64 {
        self.verified
    }

    /// Completed requests whose reconstruction failed (missing chunks or a
    /// mismatching decode).
    pub fn failed_reconstructions(&self) -> u64 {
        self.failed
    }

    /// Cache-plan swaps that could not be applied to the store (e.g. cache
    /// capacity exceeded).
    pub fn plan_apply_failures(&self) -> u64 {
        self.plan_apply_failures
    }

    fn gather(&self, request: &FinishedRequest<'_>) -> Option<Vec<Chunk>> {
        let object = request.file as u64;
        let mut chunks: Vec<Chunk> =
            Vec::with_capacity(request.cache_chunks + request.storage_nodes.len());
        if request.cache_chunks > 0 {
            let cached = self.store.cache().peek(object)?;
            if cached.len() < request.cache_chunks {
                return None;
            }
            chunks.extend(cached.iter().take(request.cache_chunks).cloned());
        }
        for &node in request.storage_nodes {
            chunks.push(self.store.chunk_on_node(object, node)?.clone());
        }
        Some(chunks)
    }
}

impl ChunkBackend for StoreBackend {
    fn num_nodes(&self) -> usize {
        self.store.config().num_nodes
    }

    fn is_online(&self, node: usize) -> bool {
        self.store.node(node).is_online()
    }

    fn set_node_online(&mut self, node: usize, online: bool) {
        self.store.set_node_online(node, online);
    }

    fn sample_service(&mut self, node: usize, _file: usize) -> f64 {
        self.dists[node].sample(&mut self.rng)
    }

    fn finish_request(&mut self, request: FinishedRequest<'_>) -> bool {
        let ok = match self.gather(&request) {
            Some(chunks) => self
                .store
                .decode_with_chunks(request.file as u64, &chunks)
                .map(|data| data == self.originals[request.file])
                .unwrap_or(false),
            None => false,
        };
        if ok {
            self.verified += 1;
        } else {
            self.failed += 1;
        }
        ok
    }

    fn apply_scheme(&mut self, scheme: &CacheScheme) {
        let counts = match scheme {
            CacheScheme::Functional { cached_chunks, .. }
            | CacheScheme::Exact { cached_chunks, .. } => cached_chunks.as_slice(),
            // A NoCache swap keeps no planner-managed content; stale store
            // cache entries are harmless because the engine stops planning
            // cache chunks.
            CacheScheme::NoCache => return,
            // An LRU swap would make the engine report k-chunk cache hits
            // this store never populated, silently miscounting every hit as
            // a reconstruction failure — fail fast instead (mirrors the
            // byte_backend construction-time rejection).
            CacheScheme::LruReplicated { .. } => {
                panic!("the byte-accurate backend does not model the LRU cache tier")
            }
        };
        for (file, &d) in counts.iter().enumerate() {
            if file >= self.originals.len() {
                break;
            }
            if self.store.set_cached_chunks(file as u64, d).is_err() {
                self.plan_apply_failures += 1;
            }
        }
    }
}

/// Deterministic pseudo-random payload for file `file` (so reconstruction
/// checks catch any row mixup).
pub fn synthetic_payload(file: usize, len: usize, seed: u64) -> Vec<u8> {
    let mut state = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(file as u64 + 1);
    (0..len)
        .map(|_| {
            // xorshift64*: cheap, full-period, good enough for test payloads
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 56) as u8
        })
        .collect()
}

/// Builds a populated store for a uniform-code file population.
///
/// Used by [`crate::SproutSystem::byte_backend`]; exposed for tests that
/// want direct control.
///
/// # Errors
///
/// Propagates cluster construction and write errors.
pub fn populate_store(
    config: ClusterConfig,
    placements: &[Vec<usize>],
    payloads: &[Vec<u8>],
    plan_counts: Option<&[usize]>,
) -> Result<ErasureCodedStore, sprout_cluster::ClusterError> {
    let mut store = ErasureCodedStore::new(config)?;
    for (file, (placement, payload)) in placements.iter().zip(payloads).enumerate() {
        store.put_with_placement(file as u64, payload, placement.clone())?;
    }
    if let Some(counts) = plan_counts {
        if store.config().cache_policy.is_planned() {
            for (file, &d) in counts.iter().enumerate().take(payloads.len()) {
                store.set_cached_chunks(file as u64, d)?;
            }
        }
    }
    Ok(store)
}

/// Maps a facade cache-policy choice onto the cluster substrate's policy.
/// The LRU tier is engine-side state, so the byte backend does not support
/// it yet.
pub fn cluster_policy_for(policy: crate::system::CachePolicyChoice) -> Option<CachePolicy> {
    match policy {
        crate::system::CachePolicyChoice::NoCache => Some(CachePolicy::None),
        crate::system::CachePolicyChoice::Functional => Some(CachePolicy::Functional),
        crate::system::CachePolicyChoice::Exact => Some(CachePolicy::Exact),
        crate::system::CachePolicyChoice::LruReplicated => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_payloads_are_deterministic_and_distinct() {
        let a = synthetic_payload(0, 256, 7);
        let b = synthetic_payload(0, 256, 7);
        let c = synthetic_payload(1, 256, 7);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 256);
    }

    #[test]
    fn policy_mapping_covers_planned_policies_only() {
        use crate::system::CachePolicyChoice as C;
        assert_eq!(cluster_policy_for(C::NoCache), Some(CachePolicy::None));
        assert_eq!(
            cluster_policy_for(C::Functional),
            Some(CachePolicy::Functional)
        );
        assert_eq!(cluster_policy_for(C::Exact), Some(CachePolicy::Exact));
        assert_eq!(cluster_policy_for(C::LruReplicated), None);
    }
}
