//! Re-optimizing the cache across time bins.
//!
//! The paper assumes time-scale separation: arrival rates are stationary
//! within a bin and the cache plan is recomputed at every bin boundary
//! (§III). Content whose allocation shrinks is evicted immediately; content
//! whose allocation grows is filled in lazily when the file is next accessed,
//! so the transition adds no extra network traffic. [`TimeBinManager`]
//! reproduces that behaviour and reports how the cache evolves — the data
//! behind Table I / Fig. 5.

use serde::{Deserialize, Serialize};
use sprout_optimizer::{CachePlan, OptimizerConfig};
use sprout_workload::timebins::RateSchedule;

use crate::error::SproutError;
use crate::system::SproutSystem;

/// How a single file's cache allocation changes between two bins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheDelta {
    /// File index.
    pub file: usize,
    /// Cached chunks in the previous bin.
    pub before: usize,
    /// Cached chunks in the new bin.
    pub after: usize,
}

impl CacheDelta {
    /// Chunks that must eventually be added (lazily, on first access).
    pub fn added(&self) -> usize {
        self.after.saturating_sub(self.before)
    }

    /// Chunks evicted at the bin boundary.
    pub fn removed(&self) -> usize {
        self.before.saturating_sub(self.after)
    }
}

/// The outcome of one time bin.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BinOutcome {
    /// Index of the bin in the schedule.
    pub bin: usize,
    /// Arrival rates in force during the bin.
    pub rates: Vec<f64>,
    /// The optimized plan for the bin.
    pub plan: CachePlan,
    /// Per-file changes relative to the previous bin (empty for the first).
    pub deltas: Vec<CacheDelta>,
}

impl BinOutcome {
    /// Total chunks added across files (lazy fills).
    pub fn chunks_added(&self) -> usize {
        self.deltas.iter().map(CacheDelta::added).sum()
    }

    /// Total chunks evicted at the boundary.
    pub fn chunks_removed(&self) -> usize {
        self.deltas.iter().map(CacheDelta::removed).sum()
    }
}

/// Runs the optimizer at every bin of a rate schedule, warm-starting each bin
/// from the previous bin's plan.
#[derive(Debug, Clone)]
pub struct TimeBinManager {
    system: SproutSystem,
    config: OptimizerConfig,
}

impl TimeBinManager {
    /// Creates a manager for the given base system (its file population and
    /// placement are reused in every bin; only arrival rates change).
    pub fn new(system: SproutSystem, config: OptimizerConfig) -> Self {
        TimeBinManager { system, config }
    }

    /// Optimizes every bin of the schedule and reports the cache evolution.
    ///
    /// # Errors
    ///
    /// * [`SproutError::InvalidSpec`] if the schedule's file count differs
    ///   from the system's.
    /// * Propagated optimizer errors.
    pub fn run(&self, schedule: &RateSchedule) -> Result<Vec<BinOutcome>, SproutError> {
        if schedule.num_files() != self.system.spec().files.len() {
            return Err(SproutError::InvalidSpec(format!(
                "schedule covers {} files but the system has {}",
                schedule.num_files(),
                self.system.spec().files.len()
            )));
        }
        let mut outcomes = Vec::with_capacity(schedule.len());
        let mut previous: Option<CachePlan> = None;
        for (bin, timebin) in schedule.bins().iter().enumerate() {
            let system = self.system.with_arrival_rates(&timebin.rates)?;
            let plan = match &previous {
                Some(prev) => system.optimize_warm(&self.config, prev)?,
                None => system.optimize_with(&self.config)?,
            };
            let deltas = match &previous {
                Some(prev) => prev
                    .cached_chunks
                    .iter()
                    .zip(&plan.cached_chunks)
                    .enumerate()
                    .map(|(file, (&before, &after))| CacheDelta {
                        file,
                        before,
                        after,
                    })
                    .collect(),
                None => Vec::new(),
            };
            outcomes.push(BinOutcome {
                bin,
                rates: timebin.rates.clone(),
                plan: plan.clone(),
                deltas,
            });
            previous = Some(plan);
        }
        Ok(outcomes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SystemSpec;
    use sprout_workload::timebins::{RateSchedule, TimeBin};

    fn system(num_files: usize) -> SproutSystem {
        let spec = SystemSpec::builder()
            .node_service_rates(&[0.5, 0.5, 0.4, 0.4, 0.35, 0.35])
            .uniform_files(num_files, 2, 4, 0.02)
            .cache_capacity_chunks(4)
            .seed(8)
            .build()
            .unwrap();
        SproutSystem::new(spec).unwrap()
    }

    #[test]
    fn cache_follows_the_hot_files_across_bins() {
        let system = system(4);
        let manager = TimeBinManager::new(system, OptimizerConfig::default());
        // Bin 1: file 0 hot. Bin 2: file 3 hot.
        let schedule = RateSchedule::new(vec![
            TimeBin::new(100.0, vec![0.20, 0.01, 0.01, 0.01]),
            TimeBin::new(100.0, vec![0.01, 0.01, 0.01, 0.20]),
        ]);
        let outcomes = manager.run(&schedule).unwrap();
        assert_eq!(outcomes.len(), 2);
        let first = &outcomes[0].plan.cached_chunks;
        let second = &outcomes[1].plan.cached_chunks;
        assert!(
            first[0] >= first[3],
            "bin 1 should favour file 0: {first:?}"
        );
        assert!(
            second[3] >= second[0],
            "bin 2 should favour file 3: {second:?}"
        );
        assert!(outcomes[0].deltas.is_empty());
        assert_eq!(outcomes[1].deltas.len(), 4);
        // Conservation: chunks added/removed are consistent with the plans.
        let added = outcomes[1].chunks_added();
        let removed = outcomes[1].chunks_removed();
        let used0: usize = first.iter().sum();
        let used1: usize = second.iter().sum();
        assert_eq!(used0 + added - removed, used1);
    }

    #[test]
    fn mismatched_schedule_is_rejected() {
        let system = system(3);
        let manager = TimeBinManager::new(system, OptimizerConfig::fast());
        let schedule = RateSchedule::new(vec![TimeBin::new(10.0, vec![0.1; 7])]);
        assert!(matches!(
            manager.run(&schedule),
            Err(SproutError::InvalidSpec(_))
        ));
    }

    #[test]
    fn delta_arithmetic() {
        let d = CacheDelta {
            file: 0,
            before: 3,
            after: 1,
        };
        assert_eq!(d.removed(), 2);
        assert_eq!(d.added(), 0);
        let d = CacheDelta {
            file: 1,
            before: 0,
            after: 4,
        };
        assert_eq!(d.added(), 4);
        assert_eq!(d.removed(), 0);
    }
}
